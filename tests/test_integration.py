"""Cross-module integration tests: theory vs simulation agreement,
HTM end-to-end consistency, and experiment-level shape checks."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.model import ConflictKind, ConflictModel
from repro.core.ratios import E_OVER_EM1, corollary1_bound
from repro.core.requestor_aborts import ExponentialRA
from repro.core.requestor_wins import MeanConstrainedRW, UniformRW
from repro.core.verify import expected_cost_curve, simulate_costs
from repro.distributions import ExponentialLengths, UniformLengths
from repro.htm import (
    DetDelay,
    Machine,
    MachineParams,
    NoDelay,
    RandDelay,
    RRWMeanDelay,
    TunedDelay,
)
from repro.workloads import QueueWorkload, StackWorkload, TxAppWorkload

B = 150.0


class TestTheoryVsMonteCarlo:
    """The synthetic simulator must agree with quadrature to MC noise."""

    @pytest.mark.parametrize(
        "policy,kind",
        [
            (UniformRW(B, 2), ConflictKind.REQUESTOR_WINS),
            (MeanConstrainedRW(B, 15.0), ConflictKind.REQUESTOR_WINS),
            (ExponentialRA(B, 2), ConflictKind.REQUESTOR_ABORTS),
            (ExponentialRA(B, 4), ConflictKind.REQUESTOR_ABORTS),
        ],
        ids=["uniform", "mean_rw", "exp_ra", "exp_ra_k4"],
    )
    def test_mc_matches_quadrature(self, policy, kind, rng):
        model = ConflictModel(kind, B, getattr(policy, "k", 2))
        ds = np.asarray([5.0, 30.0, 80.0, model.delay_cap * 0.9])
        theory = expected_cost_curve(policy, model, ds)
        for d, expected in zip(ds, theory):
            mc = simulate_costs(policy, model, float(d), rng, n=120_000).mean()
            assert mc == pytest.approx(expected, rel=0.03)

    def test_empirical_ratio_against_random_adversary(self, rng):
        """Average ratio over random remaining times never exceeds the
        sup-ratio guarantee."""
        model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)
        policy = UniformRW(B, 2)
        d = (1.0 - rng.random(100_000)) * 2 * B
        costs = simulate_costs(policy, model, d, rng)
        ratio = costs.sum() / model.opt_vec(d).sum()
        assert ratio <= 2.0 + 0.02


class TestHTMDelayStatistics:
    """The cycle-level policies must produce the distributions the
    theory prescribes, measured inside a real machine run."""

    def test_rand_delay_uniform_in_machine(self):
        workload = TxAppWorkload(work_cycles=80)
        machine = Machine(MachineParams(n_cores=8), lambda i: RandDelay())
        machine.load(workload, seed=3)
        stats = machine.run(150_000.0)
        workload.verify(machine)
        acc = None
        for core_stats in stats.cores:
            acc = (
                core_stats.grace_delay_stats
                if acc is None
                else acc.merge(core_stats.grace_delay_stats)
            )
        assert acc is not None and acc.n > 20
        assert acc.min >= 0.0

    def test_no_delay_zero_graces(self):
        workload = StackWorkload()
        machine = Machine(MachineParams(n_cores=6), lambda i: NoDelay())
        machine.load(workload, seed=3)
        stats = machine.run(80_000.0)
        for core_stats in stats.cores:
            if core_stats.grace_delay_stats.n:
                assert core_stats.grace_delay_stats.max == 0.0


@pytest.mark.slow
class TestFigure3Shapes:
    """Qualitative Figure 3 claims at a contended operating point."""

    def _throughput(self, workload_factory, policy_factory, seeds=(0, 1, 2)):
        total = 0
        for seed in seeds:
            workload = workload_factory()
            machine = Machine(MachineParams(n_cores=8), policy_factory)
            machine.load(workload, seed=seed)
            stats = machine.run(200_000.0)
            workload.verify(machine)
            total += stats.ops_completed
        return total / len(seeds)

    def test_queue_delays_beat_no_delay(self):
        base = self._throughput(QueueWorkload, lambda i: NoDelay())
        rand = self._throughput(QueueWorkload, lambda i: RandDelay())
        assert rand > base

    def test_stack_tuned_beats_no_delay(self):
        params = MachineParams(n_cores=8)
        tuned = StackWorkload().tuned_delay_cycles(params)
        base = self._throughput(StackWorkload, lambda i: NoDelay())
        hand = self._throughput(StackWorkload, lambda i: TunedDelay(tuned))
        assert hand > base * 0.95  # at worst competitive with NO_DELAY

    def test_txapp_delays_beat_no_delay(self):
        factory = lambda: TxAppWorkload(work_cycles=100)  # noqa: E731
        base = self._throughput(factory, lambda i: NoDelay())
        rand = self._throughput(factory, lambda i: RandDelay())
        assert rand > base * 0.95

    def test_single_thread_policies_equal(self):
        """Uncontended runs must be policy-independent (delays only act
        on conflicts; the paper: 'does not adversely impact performance
        in uncontended' runs)."""
        results = []
        for factory in (lambda i: NoDelay(), lambda i: RandDelay()):
            workload = StackWorkload()
            machine = Machine(MachineParams(n_cores=1), factory)
            machine.load(workload, seed=5)
            stats = machine.run(100_000.0)
            results.append(stats.ops_completed)
        assert results[0] == results[1]


@pytest.mark.slow
class TestArenaVsTheory:
    def test_cor1_bound_over_contention_sweep(self, rng):
        from repro.adversary import ConflictLedgerArena, RandomAdversary
        from repro.adversary.adversaries import make_transactions

        arena = ConflictLedgerArena(
            ConflictKind.REQUESTOR_WINS, B, lambda k: UniformRW(B, k)
        )
        for p_conflict in (0.1, 0.5, 1.0):
            txns = make_transactions(8, 150, ExponentialLengths(300.0), rng)
            sched = RandomAdversary(p_conflict, max_hits=2).build(txns, rng)
            out = arena.run(sched, rng)
            assert out.ratio <= corollary1_bound(out.waste) + 0.05

    def test_ra_policy_in_ra_arena(self, rng):
        """The RA arena with the exponential policy also stays under its
        per-conflict ratio bound globally."""
        from repro.adversary import ConflictLedgerArena, RandomAdversary
        from repro.adversary.adversaries import make_transactions

        arena = ConflictLedgerArena(
            ConflictKind.REQUESTOR_ABORTS, B, lambda k: ExponentialRA(B, k)
        )
        txns = make_transactions(6, 200, UniformLengths(200.0), rng)
        sched = RandomAdversary(0.8).build(txns, rng)
        out = arena.run(sched, rng)
        # per-conflict ratio e/(e-1) -> global bound (rho + C*alpha)/(rho+alpha)
        w = out.waste
        bound = (1 + E_OVER_EM1 * w) / (1 + w)
        assert out.ratio <= bound + 0.05


@pytest.mark.slow
class TestHTMStress:
    """Longer randomized runs across policies; every invariant checked."""

    @pytest.mark.parametrize("seed", range(3))
    def test_all_workloads_all_policies(self, seed):
        policies = [
            lambda i: NoDelay(),
            lambda i: RandDelay(),
            lambda i: DetDelay(),
            lambda i: RRWMeanDelay(60.0),
        ]
        workloads = [
            StackWorkload(),
            QueueWorkload(),
            TxAppWorkload(work_cycles=60),
        ]
        for policy_factory in policies:
            for workload_factory in (
                StackWorkload,
                QueueWorkload,
                lambda: TxAppWorkload(work_cycles=60),
            ):
                workload = workload_factory()
                machine = Machine(
                    MachineParams(n_cores=6), policy_factory
                )
                machine.load(workload, seed=seed)
                machine.run(60_000.0)
                workload.verify(machine)
                machine.check_invariants()

    def test_tiny_cache_capacity_aborts(self):
        """A 2-line L1 forces capacity aborts; correctness must hold."""
        workload = TxAppWorkload(work_cycles=10)
        params = MachineParams(n_cores=4, l1_sets=1, l1_assoc=2)
        machine = Machine(params, lambda i: RandDelay())
        machine.load(workload, seed=2)
        stats = machine.run(60_000.0)
        workload.verify(machine)
        assert stats.abort_reasons().get("capacity", 0) > 0

    def test_no_cycle_detection_still_correct(self):
        """Grace timers alone guarantee progress; disabling cycle
        detection must not break safety."""
        workload = QueueWorkload()
        machine = Machine(
            MachineParams(n_cores=6), lambda i: DetDelay(), detect_cycles=False
        )
        machine.load(workload, seed=4)
        stats = machine.run(80_000.0)
        workload.verify(machine)
        assert machine.stats.cycle_aborts == 0
        assert stats.ops_completed > 0
