"""Latency accounting: histogram quantiles vs the sorted-array truth.

``BENCH_serve.json``'s p50/p99 come from
:meth:`repro.obs.metrics.Histogram.quantile`, a fixed-edge read.  The
contract pinned here: the nearest-rank sample of the raw observation
stream always lies inside the bucket whose upper edge the histogram
reports (clamped at the underflow/overflow boundaries) — i.e. the
histogram never under-reports a latency by more than one bucket's
resolution, on any distribution, including the adversarial shapes
(all-equal, bimodal, everything-in-overflow) that break naive
implementations.
"""

from __future__ import annotations

import bisect
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.obs.metrics import Histogram
from repro.serve.service import LATENCY_EDGES_US

EDGES = (1.0, 10.0, 100.0, 1_000.0)


def nearest_rank(values: list[float], q: float) -> float:
    """The exact reference: rank ``ceil(q * n)`` of the sorted stream."""
    return sorted(values)[max(1, math.ceil(len(values) * q)) - 1]


def filled(values, edges=EDGES) -> Histogram:
    h = Histogram("t", edges)
    for v in values:
        h.observe(v)
    return h


def assert_bracketed(values: list[float], q: float, edges=EDGES) -> None:
    """The histogram answer's bucket must contain the true quantile."""
    got = filled(values, edges).quantile(q)
    ref = nearest_rank(values, q)
    if ref < edges[0]:
        assert got == edges[0]
    elif ref >= edges[-1]:
        assert got == edges[-1]
    else:
        i = bisect.bisect_right(edges, ref) - 1
        assert got == edges[i + 1]


observations = st.lists(
    st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False),
    min_size=1,
    max_size=300,
)
quantiles = st.floats(min_value=0.001, max_value=1.0)


class TestQuantileProperty:
    @given(observations, quantiles)
    @settings(max_examples=400)
    def test_bracket_invariant(self, values, q):
        assert_bracketed(values, q)

    @given(observations)
    @settings(max_examples=100)
    def test_monotone_in_q(self, values):
        h = filled(values)
        qs = [0.1, 0.25, 0.5, 0.9, 0.99, 1.0]
        reads = [h.quantile(q) for q in qs]
        assert reads == sorted(reads)


class TestAdversarialDistributions:
    def test_all_equal(self):
        """Every sample in one bucket: every quantile is its edge."""
        values = [42.0] * 257
        h = filled(values)
        for q in (0.01, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 100.0
            assert_bracketed(values, q)

    def test_bimodal(self):
        """Half fast, half slow: p50 reads the fast mode, p99 the slow."""
        values = [2.0] * 500 + [500.0] * 500
        h = filled(values)
        assert h.quantile(0.50) == 10.0
        assert h.quantile(0.99) == 1_000.0
        for q in (0.25, 0.5, 0.75, 0.99):
            assert_bracketed(values, q)

    def test_single_bucket_overflow(self):
        """Everything at or beyond the last edge clamps to it — the
        read is honest about having lost resolution, not silently NaN
        or out of range."""
        values = [1_000.0, 2_000.0, 99_999.0]
        h = filled(values)
        assert h.overflow == 3
        for q in (0.01, 0.5, 1.0):
            assert h.quantile(q) == 1_000.0

    def test_all_underflow_clamps_to_first_edge(self):
        h = filled([0.0, 0.5, 0.25])
        assert h.underflow == 3
        assert h.quantile(0.99) == 1.0

    def test_underflow_then_real_mass(self):
        values = [0.1] * 50 + [50.0] * 50
        h = filled(values)
        assert h.quantile(0.25) == 1.0
        assert h.quantile(0.75) == 100.0


class TestQuantileEdgeCases:
    def test_empty_histogram_is_nan(self):
        assert math.isnan(Histogram("t", EDGES).quantile(0.5))

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.0000001, 2.0])
    def test_out_of_domain_q_rejected(self, bad):
        with pytest.raises(InvalidParameterError, match="quantile"):
            Histogram("t", EDGES).quantile(bad)

    def test_q_one_is_the_max_bucket(self):
        h = filled([2.0, 2.0, 500.0])
        assert h.quantile(1.0) == 1_000.0

    def test_service_edges_cover_typical_decisions(self):
        """The serve layer's fixed edges bracket sub-millisecond
        decisions with sub-bucket error < one decade."""
        h = filled([3.0, 17.0, 80.0, 450.0], LATENCY_EDGES_US)
        assert h.overflow == 0 and h.underflow == 0
        assert h.quantile(0.5) in LATENCY_EDGES_US
