"""Property tests: sampled/expected costs never beat the theorem bounds.

Hypothesis drives the adversary (remaining time ``D``), the instance
(``B``, ``k``), and — for the randomized policies — the sampling seed,
checking the paper's competitive-ratio guarantees hold *pointwise* for
deterministic policies and *in expectation* for randomized ones:

* Theorem 4 (DET-RW):  ``cost <= (2 + 1/(k-1)) * OPT`` for every D.
* DET-RA:              ``cost <= k * OPT`` for every D.
* Theorem 5 (RRW):     ``E[cost] <= 2 * OPT`` (uniform policy, k = 2).
* Theorems 1/3 (RRA):  ``E[cost] <= E/(E-1) * OPT``, ``E = e^{1/(k-1)}``
                       (``e/(e-1)`` at k = 2).
* Theorem 1 (ski rental): exact expectation of the Karlin strategy is
  within the exact discrete ratio ``1/(1 - (1-1/B)^B)`` of OPT.

Expectations are checked two ways: exactly via the trapezoid quadrature
in :mod:`repro.core.verify` (tight tolerance), and empirically via
seeded Monte Carlo with a 6-standard-error slack so the test is
deterministic (``derandomize=True``) yet statistically sound.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import ConflictKind, ConflictModel
from repro.core.requestor_aborts import (
    DeterministicRA,
    ExponentialRA,
    ra_chain_E,
)
from repro.core.requestor_wins import DeterministicRW, UniformRW
from repro.core.ski_rental import (
    SkiRental,
    deterministic_buy_day,
    discrete_competitive_ratio,
    expected_cost_randomized,
    karlin_pmf,
    optimal_offline_cost,
)
from repro.core.verify import expected_cost

# Every test is derandomized: hypothesis replays a fixed example stream,
# so failures reproduce and CI output is stable.  deadline=None because
# the quadrature examples are slower than the 200 ms default.
COMMON = settings(derandomize=True, deadline=None, max_examples=60)

# Quadrature resolution in core.verify bounds the systematic error of
# the "exact" expectation checks; 1e-3 relative is far above it.
QUAD_RTOL = 1e-3

costs_B = st.floats(min_value=0.5, max_value=500.0)
chains_k = st.integers(min_value=2, max_value=8)
remaining_D = st.floats(min_value=0.0, max_value=2000.0)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _mc_bound_holds(
    policy, model: ConflictModel, D: float, seed: int, ratio: float
) -> None:
    """Seeded Monte Carlo: mean sampled cost <= ratio * OPT + 6 SEM."""
    rng = np.random.default_rng(seed)
    samples = policy.sample_many(4000, rng=rng)
    costs = model.cost_vec(samples, D)
    sem = float(costs.std(ddof=1)) / math.sqrt(len(costs))
    bound = ratio * model.opt(D)
    assert float(costs.mean()) <= bound + 6.0 * sem + 1e-9


class TestDeterministicPointwise:
    @COMMON
    @given(B=costs_B, k=chains_k, D=remaining_D)
    def test_det_rw_never_exceeds_theorem4(self, B, k, D):
        policy = DeterministicRW(B, k)
        model = policy.model()
        bound = 2.0 + 1.0 / (k - 1)
        assert policy.competitive_ratio == pytest.approx(bound)
        assert model.ratio(policy.delay, D) <= bound * (1.0 + 1e-12)

    @COMMON
    @given(B=costs_B, k=chains_k, D=remaining_D)
    def test_det_ra_never_exceeds_k(self, B, k, D):
        policy = DeterministicRA(B, k)
        model = policy.model()
        assert policy.competitive_ratio == pytest.approx(float(k))
        assert model.ratio(policy.delay, D) <= k * (1.0 + 1e-12)


class TestRandomizedExpectation:
    @COMMON
    @given(B=costs_B, D=remaining_D, seed=seeds)
    def test_rrw_uniform_is_2_competitive(self, B, D, seed):
        policy = UniformRW(B, 2)
        model = policy.model()
        assert policy.competitive_ratio == 2.0
        assert expected_cost(policy, model, D) <= 2.0 * model.opt(D) * (
            1.0 + QUAD_RTOL
        ) + 1e-9
        _mc_bound_holds(policy, model, D, seed, 2.0)

    @COMMON
    @given(B=costs_B, k=chains_k, D=remaining_D, seed=seeds)
    def test_rra_exponential_matches_chain_ratio(self, B, k, D, seed):
        policy = ExponentialRA(B, k)
        model = policy.model()
        E = ra_chain_E(k)
        bound = E / (E - 1.0)
        assert policy.competitive_ratio == pytest.approx(bound)
        assert expected_cost(policy, model, D) <= bound * model.opt(D) * (
            1.0 + QUAD_RTOL
        ) + 1e-9
        _mc_bound_holds(policy, model, D, seed, bound)

    def test_rra_k2_bound_is_e_over_e_minus_1(self):
        assert ExponentialRA(10.0, 2).competitive_ratio == pytest.approx(
            math.e / (math.e - 1.0)
        )


class TestSkiRental:
    @COMMON
    @given(B=st.integers(min_value=1, max_value=400), days=st.integers(0, 2000))
    def test_randomized_within_discrete_ratio(self, B, days):
        opt = optimal_offline_cost(B, days)
        bound = discrete_competitive_ratio(B) * opt
        assert expected_cost_randomized(B, days) <= bound + 1e-9

    @COMMON
    @given(B=st.integers(min_value=1, max_value=400), days=st.integers(0, 2000))
    def test_deterministic_rule_is_2_competitive(self, B, days):
        inst = SkiRental(B)
        cost = inst.cost(deterministic_buy_day(B), days)
        # rent B-1 days then buy: cost <= 2B - 1 <= 2 OPT whenever OPT = B,
        # and equals OPT on short tours.
        assert cost <= 2 * inst.offline_cost(days) or inst.offline_cost(days) == 0

    @COMMON
    @given(B=st.integers(min_value=1, max_value=400))
    def test_karlin_pmf_normalizes(self, B):
        pmf = karlin_pmf(B)
        assert pmf.shape == (B,)
        assert np.all(pmf > 0.0)
        assert float(pmf.sum()) == pytest.approx(1.0)

    @COMMON
    @given(B=st.integers(min_value=2, max_value=400))
    def test_discrete_ratio_below_continuous_limit(self, B):
        assert 1.0 < discrete_competitive_ratio(B) < math.e / (math.e - 1.0)

    def test_kind_sanity(self):
        assert UniformRW(5.0).model().kind is ConflictKind.REQUESTOR_WINS
        assert ExponentialRA(5.0).model().kind is ConflictKind.REQUESTOR_ABORTS
