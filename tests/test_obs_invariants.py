"""Metrics-invariant tests: the books balance, at any ``--jobs``.

Three layers of accounting are cross-checked here
(docs/OBSERVABILITY.md):

* machine counters against each other — every started transaction is
  resolved exactly once, grace timers never expire more often than
  they are armed;
* counters against the trace bus — each counted occurrence has its
  structured event;
* the CLI's merged ``--metrics-out`` / ``--trace-out`` artifacts are
  byte-identical across worker counts (the determinism contract the CI
  step enforces on real figure runs).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.htm import Machine, MachineParams, RandDelay
from repro.obs import capture
from repro.parallel.cache import ResultCache
from repro.workloads import CounterWorkload

HORIZON = 60_000.0


@pytest.fixture(scope="module")
def machine_capture():
    """One contended 4-core run recorded under a capture.

    The machine must be *built* inside the capture: its registry chains
    to the active one at handle-creation time.
    """
    with capture() as cap:
        machine = Machine(MachineParams(n_cores=4), lambda i: RandDelay())
        machine.load(CounterWorkload(), seed=7)
        stats = machine.run(HORIZON)
    return cap, stats


class TestMachineInvariants:
    def counters(self, machine_capture):
        return machine_capture[0].snapshot()["counters"]

    def test_run_was_contended(self, machine_capture):
        c = self.counters(machine_capture)
        assert c["conflicts"] > 0
        assert c["aborts_rw"] + c.get("aborts_ra", 0) > 0

    def test_every_txn_resolved_exactly_once(self, machine_capture):
        c = self.counters(machine_capture)
        assert (
            c["commits"] + c["aborts_rw"] + c.get("aborts_ra", 0)
            == c["txns_started"]
        )

    def test_grace_granted_at_least_expired(self, machine_capture):
        c = self.counters(machine_capture)
        assert c["grace_granted"] >= c["grace_expired"]

    def test_delay_histogram_subset_of_conflicts(self, machine_capture):
        # the histogram records policy *decisions*; conflicts also counts
        # probes resolved without a fresh decision (wedged aborts,
        # already-armed grace timers)
        snap = machine_capture[0].snapshot()
        hist = snap["histograms"]["grace_delay_cycles"]
        assert 0 < hist["n"] <= snap["counters"]["conflicts"]

    def test_stats_agree_with_registry(self, machine_capture):
        cap, stats = machine_capture
        c = self.counters(machine_capture)
        assert stats.tx_committed == c["commits"]
        assert stats.tx_aborted == c["aborts_rw"] + c.get("aborts_ra", 0)

    def test_events_match_counters(self, machine_capture):
        cap, _ = machine_capture
        c = self.counters(machine_capture)
        kinds: dict[str, int] = {}
        for event in cap.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        assert kinds["txn_begin"] == c["txns_started"]
        assert kinds["commit"] == c["commits"]
        assert kinds.get("abort", 0) == c["aborts_rw"] + c.get("aborts_ra", 0)
        assert kinds["grace_granted"] == c["grace_granted"]
        assert kinds.get("grace_expired", 0) == c["grace_expired"]


class TestCacheCounters:
    def test_lookups_are_counted_and_traced(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="test")
        with capture() as cap:
            assert cache.get_rows("e", {}, quick=True, seed=1) is None
            cache.put_rows("e", [{"a": 1}], {}, quick=True, seed=1)
            assert cache.get_rows("e", {}, quick=True, seed=1) == [{"a": 1}]
        counters = cap.snapshot()["counters"]
        assert counters == {"cache_hits": 1, "cache_misses": 1}
        assert [e.kind for e in cap.events] == ["cache_miss", "cache_hit"]
        assert counters["cache_hits"] + counters["cache_misses"] == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="test")
        path = cache.put_rows("e", [{"a": 1}], {}, quick=True, seed=1)
        path.write_text("{not json")
        with capture() as cap:
            assert cache.get_rows("e", {}, quick=True, seed=1) is None
        # detected bit rot is both counted in its own right and a miss
        assert cap.snapshot()["counters"] == {
            "cache_corrupt": 1,
            "cache_misses": 1,
        }


class TestCliDeterminism:
    """--metrics-out / --trace-out bytes do not depend on --jobs."""

    def run_cli(self, tmp_path, jobs, label, extra=()):
        metrics = tmp_path / f"metrics-{label}.json"
        trace = tmp_path / f"trace-{label}.jsonl"
        rc = cli_main(
            [
                "fig2a",
                "--quick",
                "--seed",
                "3",
                "--jobs",
                str(jobs),
                "--metrics-out",
                str(metrics),
                "--trace-out",
                str(trace),
                *extra,
            ]
        )
        assert rc == 0
        return metrics.read_bytes(), trace.read_bytes()

    def test_jobs_1_vs_4_byte_identical(self, tmp_path, capsys):
        serial = self.run_cli(tmp_path, 1, "serial")
        parallel = self.run_cli(tmp_path, 4, "parallel")
        assert serial == parallel

    def test_metrics_snapshot_is_wellformed(self, tmp_path, capsys):
        metrics, trace = self.run_cli(tmp_path, 2, "shape")
        snap = json.loads(metrics)
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"].get("synthetic_runs", 0) > 0
        for line in trace.splitlines():
            record = json.loads(line)
            assert set(record) == {"ts", "kind", "core", "data"}

    def test_warm_cache_counts_hits(self, tmp_path, capsys):
        cache_args = ("--cache", "--cache-dir", str(tmp_path / "cache"))
        cold_metrics, _ = self.run_cli(tmp_path, 1, "cold", cache_args)
        warm_metrics, _ = self.run_cli(tmp_path, 1, "warm", cache_args)
        cold = json.loads(cold_metrics)["counters"]
        warm = json.loads(warm_metrics)["counters"]
        assert cold.get("cache_misses", 0) >= 1
        assert cold.get("cache_hits", 0) == 0
        assert warm.get("cache_hits", 0) >= 1
        assert warm.get("cache_misses", 0) == 0
