"""Tests for the requestor-aborts / ski-rental policies (Theorems 1-3)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.model import ConflictKind, ConflictModel
from repro.core.requestor_aborts import (
    ChainRA,
    DeterministicRA,
    DiscreteSkiRentalRA,
    ExponentialRA,
    MeanConstrainedRA,
    optimal_requestor_aborts,
    ra_chain_E,
)
from repro.core.verify import (
    competitive_ratio,
    constrained_competitive_ratio,
    expected_cost_curve,
)
from repro.errors import InvalidParameterError, RegimeError

B = 100.0


def _norm(policy) -> float:
    xs = np.linspace(*policy.support, 30001)
    return float(np.trapezoid(policy.pdf_vec(xs), xs))


class TestChainE:
    def test_k2_is_e(self):
        assert ra_chain_E(2) == pytest.approx(math.e)

    def test_decreasing_to_one(self):
        values = [ra_chain_E(k) for k in (2, 3, 10, 1000)]
        assert all(a > b for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(1.0, abs=2e-3)


class TestDeterministicRA:
    def test_delay(self):
        assert DeterministicRA(B, 2).delay == pytest.approx(B)
        assert DeterministicRA(B, 5).delay == pytest.approx(B / 4)

    def test_classic_ratio_two(self):
        policy = DeterministicRA(B, 2)
        model = ConflictModel(ConflictKind.REQUESTOR_ABORTS, B, 2)
        assert competitive_ratio(policy, model).ratio == pytest.approx(
            2.0, rel=1e-4
        )

    @pytest.mark.parametrize("k", [3, 5])
    def test_chain_ratio_k(self, k):
        policy = DeterministicRA(B, k)
        model = ConflictModel(ConflictKind.REQUESTOR_ABORTS, B, k)
        assert competitive_ratio(policy, model).ratio == pytest.approx(
            float(k), rel=1e-3
        )


class TestExponentialRA:
    @pytest.mark.parametrize("k", [2, 3, 8])
    def test_normalization(self, k):
        assert _norm(ExponentialRA(B, k)) == pytest.approx(1.0, abs=1e-4)

    def test_k2_ratio_e_over_em1(self):
        policy = ExponentialRA(B, 2)
        assert policy.competitive_ratio == pytest.approx(
            math.e / (math.e - 1)
        )

    @pytest.mark.parametrize("k", [2, 3, 6])
    def test_numeric_matches_closed_form(self, k):
        policy = ExponentialRA(B, k)
        model = ConflictModel(ConflictKind.REQUESTOR_ABORTS, B, k)
        result = competitive_ratio(policy, model)
        assert result.ratio == pytest.approx(policy.competitive_ratio, rel=1e-3)

    def test_equalized_cost(self):
        """e/(e-1)-competitiveness is equalized: Cost(p,y) = C1 * y."""
        policy = ExponentialRA(B, 2)
        model = ConflictModel(ConflictKind.REQUESTOR_ABORTS, B, 2)
        ys = np.linspace(1.0, B * 0.999, 40)
        costs = expected_cost_curve(policy, model, ys)
        assert np.allclose(costs, policy.competitive_ratio * ys, rtol=1e-3)

    def test_ratio_increases_with_k(self):
        rats = [ExponentialRA(B, k).competitive_ratio for k in (2, 3, 5, 10)]
        assert all(a < b for a, b in zip(rats, rats[1:]))

    def test_ppf_closed_form_roundtrip(self):
        policy = ExponentialRA(B, 3)
        qs = np.linspace(0.01, 0.99, 17)
        assert np.allclose(policy.cdf_vec(policy.ppf(qs)), qs, atol=1e-9)

    def test_sampling_matches_cdf(self, rng):
        policy = ExponentialRA(B, 2)
        samples = policy.sample_many(40_000, rng)
        for q in (0.25, 0.5, 0.75):
            assert policy.cdf(float(np.quantile(samples, q))) == pytest.approx(
                q, abs=0.02
            )


class TestChainRAConstrained:
    @pytest.mark.parametrize("k", [2, 3, 8])
    def test_normalization(self, k):
        mu = 0.4 * B * ChainRA.regime_threshold(k)
        assert _norm(ChainRA(B, k, mu)) == pytest.approx(1.0, abs=1e-4)

    def test_pdf_vanishes_at_zero(self):
        policy = ChainRA(B, 2, 10.0)
        assert policy.pdf(0.0) == pytest.approx(0.0)

    def test_theorem2_ratio(self):
        mu = 10.0
        expected = 1.0 + mu / (2 * B * (math.e - 2))
        assert MeanConstrainedRA(B, mu).competitive_ratio == pytest.approx(
            expected
        )

    def test_theorem2_regime(self):
        limit = 2 * (math.e - 2) / (math.e - 1)
        assert ChainRA.regime_threshold(2) == pytest.approx(limit)

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_equalization_identity(self, k):
        mu = 0.4 * B * ChainRA.regime_threshold(k)
        policy = ChainRA(B, k, mu)
        model = ConflictModel(ConflictKind.REQUESTOR_ABORTS, B, k)
        ys = np.linspace(0.5, model.delay_cap * 0.999, 40)
        lhs = expected_cost_curve(policy, model, ys) / (model.waiters * ys)
        rhs = 1.0 + policy.lagrange_lambda2 * ys
        assert np.allclose(lhs, rhs, rtol=1e-4)

    @pytest.mark.parametrize("k", [2, 5])
    def test_constrained_numeric_ratio(self, k):
        mu = 0.4 * B * ChainRA.regime_threshold(k)
        policy = ChainRA(B, k, mu)
        model = ConflictModel(ConflictKind.REQUESTOR_ABORTS, B, k)
        result = constrained_competitive_ratio(policy, model, mu)
        assert result.ratio == pytest.approx(policy.competitive_ratio, rel=2e-3)

    def test_out_of_regime_raises(self):
        with pytest.raises(RegimeError):
            ChainRA(B, 2, B)

    def test_beats_unconstrained_in_regime(self):
        for k in (2, 4):
            mu = 0.4 * B * ChainRA.regime_threshold(k)
            assert (
                ChainRA(B, k, mu).competitive_ratio
                < ExponentialRA(B, k).competitive_ratio
            )


class TestDiscreteSkiRental:
    def test_pmf_sums_to_one(self):
        policy = DiscreteSkiRentalRA(50)
        assert policy._pmf.sum() == pytest.approx(1.0)

    def test_pmf_formula(self):
        """p(i) = ((B-1)/B)^{B-i} / (B(1-(1-1/B)^B)) — Theorem 1."""
        Bi = 20
        policy = DiscreteSkiRentalRA(Bi)
        q = (Bi - 1) / Bi
        denom = Bi * (1 - q**Bi)
        for day in (1, 7, 20):
            assert policy.pmf(day) == pytest.approx(q ** (Bi - day) / denom)

    def test_pmf_increasing_toward_day_B(self):
        pmf = DiscreteSkiRentalRA(30)._pmf
        assert np.all(np.diff(pmf) > 0)

    def test_exact_discrete_ratio(self):
        for Bi in (5, 50, 500):
            policy = DiscreteSkiRentalRA(Bi)
            model = ConflictModel(ConflictKind.REQUESTOR_ABORTS, float(Bi), 2)
            result = competitive_ratio(policy, model)
            assert result.ratio == pytest.approx(
                policy.competitive_ratio, rel=1e-6
            )

    def test_ratio_converges_to_e_over_em1(self):
        assert DiscreteSkiRentalRA(5000).competitive_ratio == pytest.approx(
            math.e / (math.e - 1), rel=1e-3
        )

    def test_sample_range(self, rng):
        policy = DiscreteSkiRentalRA(10)
        samples = policy.sample_many(5000, rng)
        assert samples.min() >= 0
        assert samples.max() <= 9
        assert np.allclose(samples, np.round(samples))

    def test_invalid_B(self):
        with pytest.raises(InvalidParameterError):
            DiscreteSkiRentalRA(0)
        with pytest.raises(InvalidParameterError):
            DiscreteSkiRentalRA(2.5)  # type: ignore[arg-type]


class TestFactory:
    def test_default_exponential(self):
        assert isinstance(optimal_requestor_aborts(B), ExponentialRA)

    def test_deterministic(self):
        assert isinstance(
            optimal_requestor_aborts(B, deterministic=True), DeterministicRA
        )

    def test_discrete(self):
        assert isinstance(
            optimal_requestor_aborts(100.0, discrete=True), DiscreteSkiRentalRA
        )

    def test_discrete_needs_integer_B(self):
        with pytest.raises(InvalidParameterError):
            optimal_requestor_aborts(100.5, discrete=True)

    def test_discrete_k2_only(self):
        with pytest.raises(InvalidParameterError):
            optimal_requestor_aborts(100.0, k=3, discrete=True)

    def test_constrained_in_regime(self):
        assert isinstance(optimal_requestor_aborts(B, mu=10.0), ChainRA)

    def test_constrained_out_of_regime_falls_back(self):
        assert isinstance(optimal_requestor_aborts(B, mu=B), ExponentialRA)

    def test_chain(self):
        policy = optimal_requestor_aborts(B, k=5, mu=5.0)
        assert isinstance(policy, ChainRA)
        assert policy.k == 5


class TestRWvsRAComparison:
    """Section 5.3's comparison: RA beats RW at k=2, RW wins for k>=3."""

    def test_k2_ra_beats_rw(self):
        from repro.core.ratios import rand_ra_ratio, rand_rw_optimal_ratio

        assert rand_ra_ratio(2) < rand_rw_optimal_ratio(2)

    @pytest.mark.parametrize("k", [3, 4, 10])
    def test_k3plus_rw_beats_ra(self, k):
        from repro.core.ratios import rand_ra_ratio, rand_rw_optimal_ratio

        assert rand_rw_optimal_ratio(k) < rand_ra_ratio(k)

    def test_constrained_k2_ra_beats_rw(self):
        from repro.core.ratios import constrained_ra_ratio, constrained_rw_ratio

        mu = 10.0
        assert constrained_ra_ratio(B, mu, 2) < constrained_rw_ratio(B, mu, 2)
