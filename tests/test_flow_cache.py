"""Analysis-cache behavior: per-file and run-level hits, invalidation
on edit, corruption tolerance, configuration independence, and
byte-identical reports across cached reruns."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.engine import lint_paths
from repro.analysis.flow import analyze_sources
from repro.analysis.report import render_json
from repro.analysis.sarif import render_sarif

FIXTURES = Path(__file__).parent / "fixtures" / "flow"


def _sources():
    return {
        "pkg/sim/__init__.py": "",
        "pkg/sim/a.py": (
            "import time\n\n\ndef go(n):\n    return time.time() + n\n"
        ),
        "pkg/sim/b.py": "def pure(n):\n    return n + 1\n",
    }


class TestAnalysisCache:
    def test_cold_then_warm(self, tmp_path):
        first, stats1 = analyze_sources(_sources(), cache_dir=tmp_path)
        assert stats1 == {"file_hits": 0, "file_misses": 3, "run_hit": 0}
        second, stats2 = analyze_sources(_sources(), cache_dir=tmp_path)
        assert stats2 == {"file_hits": 3, "file_misses": 0, "run_hit": 1}
        assert first == second

    def test_single_file_edit_invalidates_only_that_file(self, tmp_path):
        analyze_sources(_sources(), cache_dir=tmp_path)
        edited = _sources()
        edited["pkg/sim/b.py"] = "def pure(n):\n    return n + 2\n"
        _findings, stats = analyze_sources(edited, cache_dir=tmp_path)
        assert stats == {"file_hits": 2, "file_misses": 1, "run_hit": 0}

    def test_corrupt_entries_are_misses(self, tmp_path):
        findings, _ = analyze_sources(_sources(), cache_dir=tmp_path)
        for entry in tmp_path.iterdir():
            entry.write_text("{not json", encoding="utf-8")
        again, stats = analyze_sources(_sources(), cache_dir=tmp_path)
        assert stats["run_hit"] == 0
        assert stats["file_misses"] == 3
        assert again == findings

    def test_run_cache_is_configuration_independent(self, tmp_path):
        """Raw findings are cached unfiltered: a --select change must
        not be served stale subsets."""
        result_all = lint_paths(
            [FIXTURES / "transitive"], select=["FLOW"], deep=True,
            cache_dir=tmp_path,
        )
        result_001 = lint_paths(
            [FIXTURES / "transitive"], select=["FLOW001"], deep=True,
            cache_dir=tmp_path,
        )
        assert result_001.analysis_stats["run_hit"] == 1
        rules_all = {f["rule"] for f in result_all.flow}
        assert rules_all == {"FLOW001", "FLOW002"}
        assert {f["rule"] for f in result_001.flow} == {"FLOW001"}

    def test_cached_rerun_reports_are_byte_identical(self, tmp_path):
        kwargs = dict(select=["FLOW"], deep=True, cache_dir=tmp_path)
        cold = lint_paths([FIXTURES / "transitive"], **kwargs)
        warm = lint_paths([FIXTURES / "transitive"], **kwargs)
        assert warm.analysis_stats["run_hit"] == 1
        assert render_json(cold) == render_json(warm)
        assert render_sarif(cold) == render_sarif(warm)
        # stats differ between the runs but never leak into reports
        assert cold.analysis_stats != warm.analysis_stats
        assert "file_hits" not in render_json(cold)

    def test_cache_entries_are_json(self, tmp_path):
        analyze_sources(_sources(), cache_dir=tmp_path)
        entries = sorted(tmp_path.iterdir())
        assert any(e.name.startswith("file-") for e in entries)
        assert any(e.name.startswith("run-") for e in entries)
        for entry in entries:
            json.loads(entry.read_text(encoding="utf-8"))
