"""Tests for the online statistics accumulators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.sim.stats import Histogram, RatioTracker, Welford


class TestWelford:
    def test_empty(self):
        acc = Welford()
        assert acc.n == 0
        assert math.isnan(acc.mean)
        assert math.isnan(acc.variance)

    def test_single(self):
        acc = Welford()
        acc.add(4.0)
        assert acc.mean == 4.0
        assert math.isnan(acc.variance)
        assert acc.min == acc.max == 4.0

    def test_matches_numpy(self, rng):
        data = rng.normal(10.0, 3.0, size=1000)
        acc = Welford()
        for x in data:
            acc.add(float(x))
        assert acc.mean == pytest.approx(data.mean())
        assert acc.variance == pytest.approx(data.var(ddof=1))
        assert acc.min == data.min()
        assert acc.max == data.max()

    def test_add_many_matches_scalar(self, rng):
        data = rng.random(500) * 7
        a, b = Welford(), Welford()
        for x in data:
            a.add(float(x))
        b.add_many(data[:200])
        b.add_many(data[200:])
        assert b.mean == pytest.approx(a.mean)
        assert b.variance == pytest.approx(a.variance)
        assert b.n == a.n

    def test_add_many_empty(self):
        acc = Welford()
        acc.add_many(np.asarray([]))
        assert acc.n == 0

    def test_merge(self, rng):
        data = rng.random(400)
        a, b = Welford(), Welford()
        a.add_many(data[:150])
        b.add_many(data[150:])
        merged = a.merge(b)
        assert merged.n == 400
        assert merged.mean == pytest.approx(data.mean())
        assert merged.variance == pytest.approx(data.var(ddof=1))

    def test_merge_with_empty(self):
        a = Welford()
        a.add(1.0)
        merged = a.merge(Welford())
        assert merged.n == 1
        assert merged.mean == 1.0

    def test_sem(self):
        acc = Welford()
        acc.add_many(np.asarray([1.0, 2.0, 3.0, 4.0]))
        assert acc.sem == pytest.approx(acc.std / 2.0)

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7, 16])
    def test_merge_all_matches_single_stream(self, rng, n_shards):
        """Sharded accumulation == single-stream accumulation to 1e-12.

        This is the contract intra-experiment sharding rests on: a
        trial stream split across shards and folded back with
        merge_all must agree with running every trial through one
        accumulator.
        """
        data = rng.normal(37.0, 5.0, size=1009)  # prime: uneven shards
        single = Welford()
        single.add_many(data)
        shards = []
        for chunk in np.array_split(data, n_shards):
            acc = Welford()
            acc.add_many(chunk)
            shards.append(acc)
        merged = Welford.merge_all(shards)
        assert merged.n == single.n
        assert merged.mean == pytest.approx(single.mean, abs=1e-12)
        assert merged.sem == pytest.approx(single.sem, abs=1e-12)
        assert merged.variance == pytest.approx(single.variance, rel=1e-12)
        assert merged.min == single.min
        assert merged.max == single.max

    def test_merge_all_empty_and_partial(self):
        assert Welford.merge_all([]).n == 0
        a = Welford()
        a.add(2.0)
        merged = Welford.merge_all([Welford(), a, Welford()])
        assert merged.n == 1
        assert merged.mean == 2.0

    def test_merge_is_left_fold_order(self, rng):
        """merge_all folds left-to-right: same shard list, same bits."""
        chunks = [rng.random(50) for _ in range(4)]
        shards = []
        for chunk in chunks:
            acc = Welford()
            acc.add_many(chunk)
            shards.append(acc)
        once = Welford.merge_all(shards)
        again = Welford.merge_all(shards)
        assert once.mean == again.mean  # bit-equal, not approx
        assert once.variance == again.variance

    def test_numerical_stability_large_offset(self):
        """Huge common offset — naive sum-of-squares would cancel."""
        acc = Welford()
        base = 1e12
        acc.add_many(base + np.asarray([1.0, 2.0, 3.0]))
        assert acc.variance == pytest.approx(1.0)


class TestRatioTracker:
    def test_global_ratio_not_mean_of_ratios(self):
        t = RatioTracker()
        t.add(10.0, 5.0)
        t.add(1.0, 10.0)
        assert t.ratio == pytest.approx(11.0 / 15.0)

    def test_empty_is_nan(self):
        assert math.isnan(RatioTracker().ratio)

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            RatioTracker().add(-1.0, 1.0)

    def test_counts(self):
        t = RatioTracker()
        t.add(1.0, 1.0)
        t.add(2.0, 2.0)
        assert t.n == 2


class TestHistogram:
    def test_binning(self):
        h = Histogram(0.0, 10.0, 10)
        for x in (0.5, 1.5, 1.7, 9.99):
            h.add(x)
        assert h.counts[0] == 1
        assert h.counts[1] == 2
        assert h.counts[9] == 1

    def test_under_overflow(self):
        h = Histogram(0.0, 10.0, 5)
        h.add(-1.0)
        h.add(10.0)
        h.add(100.0)
        assert h.underflow == 1
        assert h.overflow == 2
        assert h.total == 3

    def test_add_many_matches_scalar(self, rng):
        data = rng.normal(5, 3, 2000)
        a, b = Histogram(0, 10, 20), Histogram(0, 10, 20)
        for x in data:
            a.add(float(x))
        b.add_many(data)
        assert np.array_equal(a.counts, b.counts)
        assert a.underflow == b.underflow
        assert a.overflow == b.overflow

    def test_density_normalization(self, rng):
        h = Histogram(0.0, 1.0, 50)
        h.add_many(rng.random(10_000))
        width = 1.0 / 50
        assert h.density().sum() * width == pytest.approx(1.0)

    def test_edges(self):
        h = Histogram(0.0, 10.0, 5)
        assert np.allclose(h.edges(), [0, 2, 4, 6, 8, 10])

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            Histogram(1.0, 0.0, 5)
        with pytest.raises(InvalidParameterError):
            Histogram(0.0, 1.0, 0)
