"""Tests for RNG stream management and the error hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro import errors
from repro.rngutil import (
    DEFAULT_SEED,
    ensure_rng,
    interleave_choices,
    spawn_streams,
    stream_for,
)


class TestEnsureRng:
    def test_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_seed(self):
        a = ensure_rng(99).random(5)
        b = ensure_rng(99).random(5)
        assert np.array_equal(a, b)

    def test_none_uses_default(self):
        a = ensure_rng(None).random(3)
        b = ensure_rng(DEFAULT_SEED).random(3)
        assert np.array_equal(a, b)


class TestSpawnStreams:
    def test_count(self):
        assert len(spawn_streams(1, 5)) == 5

    def test_independent(self):
        streams = spawn_streams(1, 2)
        a = streams[0].random(100)
        b = streams[1].random(100)
        assert not np.array_equal(a, b)

    def test_reproducible(self):
        a = spawn_streams(7, 3)[2].random(10)
        b = spawn_streams(7, 3)[2].random(10)
        assert np.array_equal(a, b)

    def test_zero(self):
        assert spawn_streams(1, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_streams(1, -1)


class TestStreamFor:
    def test_same_path_same_stream(self):
        a = stream_for(1, "fig3", "stack", 4).random(10)
        b = stream_for(1, "fig3", "stack", 4).random(10)
        assert np.array_equal(a, b)

    def test_different_paths_differ(self):
        a = stream_for(1, "fig3", "stack").random(10)
        b = stream_for(1, "fig3", "queue").random(10)
        assert not np.array_equal(a, b)

    def test_hashseed_independent(self):
        # strings are folded via bytes, not hash(); nothing to assert
        # beyond determinism within-process, but the call must accept
        # mixed path types
        stream_for(None, "a", 1, "b").random(1)


class TestInterleaveChoices:
    def test_draws_from_options(self, rng):
        out = interleave_choices(rng, ["a", "b"], 50)
        assert len(out) == 50
        assert set(out) <= {"a", "b"}

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            interleave_choices(rng, [], 5)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            errors.InvalidParameterError,
            errors.RegimeError,
            errors.SimulationError,
            errors.ProtocolError,
            errors.WorkloadError,
            errors.ExperimentError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_invalid_parameter_is_value_error(self):
        assert issubclass(errors.InvalidParameterError, ValueError)

    def test_protocol_is_simulation_error(self):
        assert issubclass(errors.ProtocolError, errors.SimulationError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.WorkloadError("boom")
