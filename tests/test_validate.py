"""Tests for the policy validation diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import ConflictKind, ConflictModel
from repro.core.policy import FixedDelayPolicy
from repro.core.requestor_aborts import DiscreteSkiRentalRA, ExponentialRA
from repro.core.requestor_wins import (
    DeterministicRW,
    MeanConstrainedRW,
    PolynomialRW,
    UniformRW,
)
from repro.core.validate import validate_policy

B = 100.0
RW = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)
RA = ConflictModel(ConflictKind.REQUESTOR_ABORTS, B, 2)


class TestShippedPoliciesValidate:
    @pytest.mark.parametrize(
        "policy,model",
        [
            (UniformRW(B, 2), RW),
            (MeanConstrainedRW(B, 10.0), RW),
            (DeterministicRW(B, 2), RW),
            (ExponentialRA(B, 2), RA),
            (
                PolynomialRW(B, 4),
                ConflictModel(ConflictKind.REQUESTOR_WINS, B, 4),
            ),
        ],
        ids=["uniform", "mean_rw", "det", "exp_ra", "poly"],
    )
    def test_all_pass(self, policy, model):
        report = validate_policy(policy, model, rng=1)
        assert report.ok, report.render()

    def test_discrete_ski_rental_core_checks(self):
        # the grid adversary lives on integers for discrete policies, so
        # ratio-vs-claimed is checked through the discrete formula
        policy = DiscreteSkiRentalRA(100)
        report = validate_policy(policy, RA, rng=1)
        assert report.ok, report.render()
        assert report.claimed_ratio == pytest.approx(policy.competitive_ratio)


class TestBadPoliciesFlagged:
    def test_over_cap_support_flagged(self):
        policy = FixedDelayPolicy(10 * B)
        report = validate_policy(policy, RW, rng=1)
        assert not report.ok
        assert any("cap" in c.name for c in report.failures())

    def test_unnormalized_pdf_flagged(self):
        class Broken(UniformRW):
            def pdf_vec(self, x):
                return super().pdf_vec(x) * 2.0  # integrates to 2

        report = validate_policy(Broken(B, 2), RW, rng=1)
        assert not report.ok
        assert any("integrates" in c.name for c in report.failures())

    def test_lying_ratio_claim_flagged(self):
        class Braggart(UniformRW):
            competitive_ratio = 1.01  # actually 2

        report = validate_policy(Braggart(B, 2), RW, rng=1)
        assert not report.ok
        assert any("claimed" in c.name for c in report.failures())

    def test_bad_sampler_flagged(self):
        class SkewedSampler(UniformRW):
            def sample_many(self, n, rng=None):
                return np.full(n, self.B / 2)  # point mass vs uniform cdf

        report = validate_policy(SkewedSampler(B, 2), RW, rng=1)
        assert not report.ok
        assert any("KS" in (c.detail or "") for c in report.failures())


class TestReportRendering:
    def test_render_mentions_everything(self):
        report = validate_policy(UniformRW(B, 2), RW, rng=1)
        text = report.render()
        assert "PASS" in text
        assert "numeric competitive ratio" in text
        assert "claimed" in text

    def test_failures_listed(self):
        report = validate_policy(FixedDelayPolicy(10 * B), RW, rng=1)
        assert "FAIL" in report.render()
        assert len(report.failures()) >= 1
