"""Tests for the event-driven throughput arena."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.adversary import ThroughputArena
from repro.core.policy import ImmediateAbortPolicy, NeverAbortPolicy
from repro.core.requestor_wins import DeterministicRW, UniformRW
from repro.distributions import DeterministicLengths, UniformLengths
from repro.errors import InvalidParameterError


def make(policy, **kwargs):
    defaults = dict(B=1000.0, p_conflict=0.8)
    defaults.update(kwargs)
    return ThroughputArena(8, UniformLengths(500.0), policy, **defaults)


class TestConstruction:
    def test_validation(self):
        policy = ImmediateAbortPolicy()
        with pytest.raises(InvalidParameterError):
            ThroughputArena(1, UniformLengths(10.0), policy)
        with pytest.raises(InvalidParameterError):
            make(policy, conflict_rate=0.0)
        with pytest.raises(InvalidParameterError):
            make(policy, adversary="chaotic")
        with pytest.raises(InvalidParameterError):
            make(policy, p_conflict=1.5)
        with pytest.raises(InvalidParameterError):
            make(policy, restart_delay=-1.0)

    def test_run_validation(self):
        arena = make(ImmediateAbortPolicy())
        with pytest.raises(InvalidParameterError):
            arena.run(0.0)
        with pytest.raises(InvalidParameterError):
            arena.run(100.0, window=0.0)


class TestDynamics:
    def test_no_conflicts_full_throughput(self):
        arena = ThroughputArena(
            4,
            DeterministicLengths(100.0),
            ImmediateAbortPolicy(),
            p_conflict=0.0,
        )
        trace = arena.run(10_000.0, window=1_000.0, seed=1)
        assert trace.total_aborts == 0
        # ~ 4 threads * 10000 / (100 + restart 1)
        assert trace.total_commits == pytest.approx(396, abs=8)
        assert trace.mean_gamma == pytest.approx(100.0, abs=1.0)

    def test_never_abort_survives_all_conflicts(self):
        arena = make(NeverAbortPolicy(horizon=1e9))
        trace = arena.run(50_000.0, seed=1)
        assert trace.total_aborts == 0
        assert trace.total_commits > 0

    def test_deterministic_replay(self):
        def run():
            return make(UniformRW(1000.0)).run(50_000.0, seed=7).total_commits

        assert run() == run()

    def test_windows_cover_horizon(self):
        arena = make(ImmediateAbortPolicy())
        trace = arena.run(50_000.0, window=5_000.0, seed=1)
        assert len(trace.commits_per_window) == 10
        assert sum(trace.commits_per_window) == trace.total_commits
        assert trace.throughput().shape == (10,)

    def test_gamma_exceeds_rho_under_conflicts(self):
        arena = make(UniformRW(1000.0))
        trace = arena.run(100_000.0, seed=2)
        assert trace.mean_gamma > 500.0 * 0.9  # >= mean rho-ish


class TestModelBoundary:
    """The headline property: the paper's adversary model is where the
    delay policies win; the rate adversary erodes that."""

    def test_per_attempt_delays_beat_no_delay(self):
        base = make(ImmediateAbortPolicy()).run(200_000.0, seed=3)
        rrw = make(UniformRW(1000.0)).run(200_000.0, seed=3)
        det = make(DeterministicRW(1000.0)).run(200_000.0, seed=3)
        assert rrw.total_commits > base.total_commits
        assert det.total_commits > base.total_commits
        assert rrw.mean_gamma < base.mean_gamma

    def test_per_attempt_delays_cut_aborts(self):
        base = make(ImmediateAbortPolicy()).run(200_000.0, seed=3)
        det = make(DeterministicRW(1000.0)).run(200_000.0, seed=3)
        assert det.total_aborts < base.total_aborts / 2

    def test_rate_mode_runs_and_differs(self):
        per_attempt = make(UniformRW(1000.0)).run(100_000.0, seed=3)
        rate = make(UniformRW(1000.0), adversary="rate", conflict_rate=0.02).run(
            100_000.0, seed=3
        )
        assert rate.total_commits != per_attempt.total_commits


class TestExperimentEntry:
    def test_registry(self):
        from repro.experiments import EXPERIMENTS, run_experiment

        assert "ext_throughput" in EXPERIMENTS
        result = run_experiment("ext_throughput", quick=True, seed=2)
        per_attempt = {
            r["policy"]: r["commits"]
            for r in result.rows
            if r["adversary"] == "per_attempt"
        }
        assert per_attempt["RRW (uniform)"] > per_attempt["NO_DELAY"]
