"""Property-based tests for the extension modules."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.model import ConflictKind, ConflictModel
from repro.core.moments import MomentConstraint, moment_constrained_ratio
from repro.core.requestor_wins import UniformRW
from repro.core.verify import competitive_ratio
from repro.htm.interconnect import MeshTopology
from repro.sim.trace import Tracer
from repro.workloads.base import NodePool


class TestMeshProperties:
    @given(st.integers(1, 64), st.integers(1, 8))
    @settings(max_examples=100)
    def test_all_tiles_have_positions(self, n, per_hop):
        topo = MeshTopology(n, per_hop=per_hop)
        positions = {topo.position(t) for t in range(n)}
        assert len(positions) == n

    @given(st.integers(2, 64), st.data())
    @settings(max_examples=100)
    def test_distance_is_a_metric(self, n, data):
        topo = MeshTopology(n)
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        c = data.draw(st.integers(0, n - 1))
        # identity, symmetry, triangle inequality
        assert topo.distance(a, a) == 0
        assert topo.distance(a, b) == topo.distance(b, a)
        assert topo.distance(a, c) <= topo.distance(a, b) + topo.distance(b, c)

    @given(st.integers(1, 64), st.integers(0, 10_000))
    @settings(max_examples=100)
    def test_home_in_range_and_latency_positive(self, n, line):
        topo = MeshTopology(n)
        home = topo.home_of(line)
        assert 0 <= home < n
        for core in range(min(n, 4)):
            assert topo.core_to_dir(core, line) >= topo.per_hop
            assert topo.dir_to_core(line, core) <= topo.diameter_latency


class TestMomentsProperties:
    @given(st.floats(min_value=5.0, max_value=150.0))
    @settings(max_examples=30, deadline=None)
    def test_mean_constrained_leq_sup(self, mu):
        B = 200.0
        model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)
        policy = UniformRW(B, 2)
        sup = competitive_ratio(policy, model, grid=512).ratio
        lp = moment_constrained_ratio(
            policy, model, [MomentConstraint(1, mu)], grid=512
        )
        assert lp <= sup + 1e-6

    @given(
        st.floats(min_value=20.0, max_value=100.0),
        st.floats(min_value=1.0, max_value=400.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_variance_never_loosens(self, mu, variance):
        from repro.core.moments import mean_variance_ratio

        B = 200.0
        model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)
        policy = UniformRW(B, 2)
        mean_only = moment_constrained_ratio(
            policy, model, [MomentConstraint(1, mu)], grid=512
        )
        both = mean_variance_ratio(policy, model, mu, variance, grid=512)
        assume(not math.isnan(both))
        assert both <= mean_only + 1e-6


class TestTracerProperties:
    @given(
        st.integers(1, 50),
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.sampled_from(["a", "b", "c"]),
                st.integers(0, 7),
            ),
            max_size=200,
        ),
    )
    @settings(max_examples=100)
    def test_ring_buffer_keeps_last_capacity(self, capacity, events):
        tracer = Tracer(capacity=capacity)
        for t, kind, core in events:
            tracer.emit(t, kind, core)
        assert len(tracer) == min(capacity, len(events))
        kept = tracer.events()
        expected_tail = events[-len(kept):] if kept else []
        assert [(e.time, e.kind, e.core) for e in kept] == expected_tail

    @given(st.lists(st.sampled_from(["x", "y", "z"]), max_size=100))
    @settings(max_examples=50)
    def test_counts_sum_to_len(self, kinds):
        tracer = Tracer()
        for i, kind in enumerate(kinds):
            tracer.emit(float(i), kind, 0)
        assert sum(tracer.counts().values()) == len(tracer)


class TestNodePoolProperties:
    class _FakeMachine:
        def __init__(self):
            self.ptr = 8
            self.params = type("P", (), {"line_words": 8})()

        def alloc(self, words, line_aligned=True):
            if self.ptr % 8:
                self.ptr += 8 - self.ptr % 8
            base = self.ptr
            self.ptr += words
            return base

    @given(st.integers(1, 4), st.integers(1, 64), st.integers(1, 300))
    @settings(max_examples=100)
    def test_nodes_distinct_until_wrap(self, threads, capacity, takes):
        pool = NodePool(self._FakeMachine(), threads, capacity, 2)
        seen: dict[int, list[int]] = {}
        for i in range(takes):
            thread = i % threads
            seen.setdefault(thread, []).append(pool.take(thread))
        for thread, addrs in seen.items():
            first_cycle = addrs[:capacity]
            assert len(set(first_cycle)) == len(first_cycle)
            assert all(a != 0 for a in addrs)

    @given(st.integers(1, 4), st.integers(2, 16))
    @settings(max_examples=50)
    def test_threads_never_share_nodes(self, threads, capacity):
        pool = NodePool(self._FakeMachine(), threads, capacity, 2)
        per_thread = {
            t: {pool.take(t) for _ in range(capacity)} for t in range(threads)
        }
        all_addrs = [a for s in per_thread.values() for a in s]
        assert len(all_addrs) == len(set(all_addrs))
