"""Kernel ↔ scalar-reference equivalence suite.

Every batch evaluator in :mod:`repro.core.kernels` must agree with the
scalar reference implementation it replaced (``ratios`` /
``ski_rental`` / the policy classes / ``verify``) to **1e-12 absolute**
(plus a 1e-12 relative term for cost-valued outputs, whose magnitudes
exceed double-precision ulp resolution at 1e-12 absolute)
over randomized ``(k, B, mu, x)`` grids — including the edge cells
(``k = 2``, ``B = 1``, degenerate ``mu``) and empty / one-element
arrays.  The tolerance is the vectorization contract: consumers were
rewired from the scalar path to the kernels on the strength of it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels, ratios, ski_rental
from repro.core.model import ConflictKind, ConflictModel
from repro.core.policy import FixedDelayPolicy
from repro.core.requestor_aborts import (
    ChainRA,
    DeterministicRA,
    ExponentialRA,
    ra_chain_E,
)
from repro.core.requestor_wins import (
    DeterministicRW,
    MeanConstrainedRW,
    PolynomialRW,
    UniformRW,
    rw_chain_ratio_R,
)
from repro.core.verify import (
    competitive_ratio,
    constrained_competitive_ratio,
    expected_cost,
)

ATOL = 1e-12

# -- strategies ---------------------------------------------------------

ks = st.integers(min_value=2, max_value=32)
k_arrays = st.lists(ks, min_size=0, max_size=8).map(
    lambda v: np.asarray(v, dtype=int)
)
#: B down to exactly 1.0 — the smallest abort cost the model admits.
Bs = st.floats(min_value=1.0, max_value=1e5, allow_nan=False)
#: mu as a fraction of B: spans degenerate (≈0) through far out of the
#: mean-constrained regime (10x B).
mu_fracs = st.floats(min_value=1e-9, max_value=10.0, allow_nan=False)
xs_rel = st.floats(min_value=-0.5, max_value=5.0, allow_nan=False)


def assert_matches(batch: np.ndarray, scalar_values, *, scaled: bool = False) -> None:
    """``scaled=True`` adds a 1e-12 *relative* term for cost-valued
    outputs: expected conflict costs grow with ``B`` (up to ~1e6 here),
    where 1e-12 absolute is finer than one double-precision ulp, so the
    absolute contract is kept for O(1) quantities (ratios, thresholds,
    densities) and scale-aware for the cost magnitudes."""
    expected = np.asarray(list(scalar_values), dtype=float)
    batch = np.asarray(batch, dtype=float)
    assert batch.shape == expected.shape
    rtol = ATOL if scaled else 0.0
    np.testing.assert_allclose(batch, expected, rtol=rtol, atol=ATOL)


# -- closed-form ratio kernels ------------------------------------------


class TestRatioKernels:
    @given(k_arrays)
    def test_chain_constants(self, k):
        assert_matches(kernels.rw_chain_ratio_R(k), (rw_chain_ratio_R(int(v)) for v in k))
        assert_matches(kernels.ra_chain_E(k), (ra_chain_E(int(v)) for v in k))

    @given(k_arrays)
    def test_unconstrained_ratios(self, k):
        pairs = [
            (kernels.det_rw_ratio, ratios.det_rw_ratio),
            (kernels.det_ra_ratio, ratios.det_ra_ratio),
            (kernels.rand_rw_uniform_ratio, ratios.rand_rw_uniform_ratio),
            (kernels.rand_rw_optimal_ratio, ratios.rand_rw_optimal_ratio),
            (kernels.rand_ra_ratio, ratios.rand_ra_ratio),
            (kernels.rw_mean_regime_threshold, ratios.rw_mean_regime_threshold),
            (kernels.ra_mean_regime_threshold, ratios.ra_mean_regime_threshold),
        ]
        for batch_fn, scalar_fn in pairs:
            assert_matches(batch_fn(k), (scalar_fn(int(v)) for v in k))

    @given(st.lists(st.tuples(Bs, mu_fracs, ks), min_size=0, max_size=8))
    def test_constrained_ratios(self, cells):
        B = np.asarray([c[0] for c in cells])
        mu = np.asarray([c[0] * c[1] for c in cells])
        k = np.asarray([c[2] for c in cells], dtype=int)
        assert_matches(
            kernels.constrained_rw_ratio(B, mu, k),
            (
                ratios.constrained_rw_ratio(float(b), float(m), int(kv))
                for b, m, kv in zip(B, mu, k)
            ),
        )
        assert_matches(
            kernels.constrained_ra_ratio(B, mu, k),
            (
                ratios.constrained_ra_ratio(float(b), float(m), int(kv))
                for b, m, kv in zip(B, mu, k)
            ),
        )

    @given(st.lists(st.tuples(Bs, mu_fracs, ks), min_size=0, max_size=8))
    def test_best_ratio_regime_dispatch(self, cells):
        B = np.asarray([c[0] for c in cells])
        mu = np.asarray([max(c[0] * c[1], 1e-300) for c in cells])
        k = np.asarray([c[2] for c in cells], dtype=int)

        def scalar_rw(b, m, kv):
            if m / b < ratios.rw_mean_regime_threshold(kv):
                return ratios.constrained_rw_ratio(b, m, kv)
            return ratios.rand_rw_optimal_ratio(kv)

        def scalar_ra(b, m, kv):
            if m / b < ratios.ra_mean_regime_threshold(kv):
                return ratios.constrained_ra_ratio(b, m, kv)
            return ratios.rand_ra_ratio(kv)

        assert_matches(
            kernels.rw_best_ratio(B, mu, k),
            (scalar_rw(float(b), float(m), int(kv)) for b, m, kv in zip(B, mu, k)),
        )
        assert_matches(
            kernels.ra_best_ratio(B, mu, k),
            (scalar_ra(float(b), float(m), int(kv)) for b, m, kv in zip(B, mu, k)),
        )

    @given(st.lists(Bs, min_size=0, max_size=8))
    def test_abort_probabilities(self, B_list):
        B = np.asarray(B_list)
        assert_matches(
            kernels.abort_probability_rw(B),
            (ratios.abort_probability_rw(float(b)) for b in B),
        )
        assert_matches(
            kernels.abort_probability_ra(B),
            (ratios.abort_probability_ra(float(b)) for b in B),
        )

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=0, max_size=8))
    def test_corollary1(self, w_list):
        w = np.asarray(w_list)
        assert_matches(
            kernels.corollary1_bound(w),
            (ratios.corollary1_bound(float(v)) for v in w),
        )


# -- ski rental ----------------------------------------------------------


class TestSkiKernels:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=200),
                st.integers(min_value=0, max_value=500),
            ),
            min_size=0,
            max_size=6,
        )
    )
    def test_offline_cost(self, cells):
        B = np.asarray([c[0] for c in cells], dtype=int)
        days = np.asarray([c[1] for c in cells], dtype=int)
        assert_matches(
            kernels.ski_offline_cost(B, days),
            (ski_rental.optimal_offline_cost(int(b), int(d)) for b, d in cells),
        )

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=128),
                st.integers(min_value=1, max_value=300),
            ),
            min_size=0,
            max_size=6,
        )
    )
    def test_expected_cost_randomized(self, cells):
        B = np.asarray([c[0] for c in cells], dtype=int)
        days = np.asarray([c[1] for c in cells], dtype=int)
        assert_matches(
            kernels.ski_expected_cost_randomized(B, days),
            (
                ski_rental.expected_cost_randomized(int(b), int(d))
                for b, d in cells
            ),
        )

    @given(st.lists(st.integers(min_value=1, max_value=500), min_size=0, max_size=8))
    def test_discrete_ratio(self, B_list):
        B = np.asarray(B_list, dtype=int)
        assert_matches(
            kernels.ski_discrete_ratio(B),
            (ski_rental.discrete_competitive_ratio(int(b)) for b in B),
        )


# -- conflict cost model -------------------------------------------------


class TestConflictCostKernels:
    @given(
        st.sampled_from(list(ConflictKind)),
        st.lists(
            st.tuples(Bs, ks, st.floats(0.0, 1e6), st.floats(0.0, 1e6)),
            min_size=0,
            max_size=8,
        ),
    )
    def test_cost_and_opt(self, kind, cells):
        B = np.asarray([c[0] for c in cells])
        k = np.asarray([c[1] for c in cells], dtype=int)
        x = np.asarray([c[2] for c in cells])
        d = np.asarray([c[3] for c in cells])
        assert_matches(
            kernels.conflict_cost(kind, x, d, B, k),
            (
                ConflictModel(kind, float(b), int(kv)).cost(float(xv), float(dv))
                for b, kv, xv, dv in zip(B, k, x, d)
            ),
            scaled=True,
        )
        assert_matches(
            kernels.conflict_opt(d, B, k),
            (
                ConflictModel(kind, float(b), int(kv)).opt(float(dv))
                for b, kv, dv in zip(B, k, d)
            ),
            scaled=True,
        )


# -- mean-constrained densities vs the policy classes --------------------


def _x_grid(B: float, k: int) -> np.ndarray:
    """Points inside, outside, and at the edges of the support."""
    hi = B / (k - 1)
    return np.asarray(
        [-1.0, 0.0, 0.25 * hi, 0.5 * hi, hi, hi + 1.0, 2.0 * hi]
    )


class TestDensityKernels:
    @given(Bs, ks)
    def test_uniform_rw(self, B, k):
        x = _x_grid(B, k)
        policy = UniformRW(B, k)
        assert_matches(kernels.uniform_rw_pdf(x, B, k), policy.pdf_vec(x))
        assert_matches(kernels.uniform_rw_cdf(x, B, k), policy.cdf_vec(x))

    @given(Bs)
    def test_log_rw(self, B):
        x = _x_grid(B, 2)
        mu = 0.5 * B * ratios.rw_mean_regime_threshold(2)
        policy = MeanConstrainedRW(B, mu)
        assert_matches(kernels.log_rw_pdf(x, B), policy.pdf_vec(x))
        assert_matches(kernels.log_rw_cdf(x, B), policy.cdf_vec(x))

    @given(Bs, st.integers(min_value=3, max_value=16))
    def test_poly_rw(self, B, k):
        x = _x_grid(B, k)
        free = PolynomialRW(B, k)
        assert_matches(kernels.poly_rw_pdf(x, B, k), free.pdf_vec(x))
        assert_matches(kernels.poly_rw_cdf(x, B, k), free.cdf_vec(x))
        mu = 0.5 * B * ratios.rw_mean_regime_threshold(k)
        constrained = PolynomialRW(B, k, mu=mu)
        assert_matches(
            kernels.poly_rw_pdf(x, B, k, constrained=True),
            constrained.pdf_vec(x),
        )
        assert_matches(
            kernels.poly_rw_cdf(x, B, k, constrained=True),
            constrained.cdf_vec(x),
        )

    @given(Bs, ks)
    def test_exp_ra(self, B, k):
        x = _x_grid(B, k)
        policy = ExponentialRA(B, k)
        assert_matches(kernels.exp_ra_pdf(x, B, k), policy.pdf_vec(x))
        assert_matches(kernels.exp_ra_cdf(x, B, k), policy.cdf_vec(x))

    @given(Bs, ks)
    def test_chain_ra(self, B, k):
        x = _x_grid(B, k)
        mu = 0.5 * B * ratios.ra_mean_regime_threshold(k)
        policy = ChainRA(B, k, mu)
        assert_matches(kernels.chain_ra_pdf(x, B, k), policy.pdf_vec(x))
        assert_matches(kernels.chain_ra_cdf(x, B, k), policy.cdf_vec(x))


# -- quadrature / adversary grids vs verify ------------------------------

RW = ConflictKind.REQUESTOR_WINS
RA = ConflictKind.REQUESTOR_ABORTS


def _reference_policy(family: str, B: float, k: int):
    """(policy, kind) pair whose verify-path results the batched family
    must reproduce."""
    if family == "det":
        return DeterministicRW(B, k), RW
    if family == "uniform_rw":
        return UniformRW(B, k), RW
    if family == "log_rw":
        mu = 0.5 * B * ratios.rw_mean_regime_threshold(2)
        return MeanConstrainedRW(B, mu), RW
    if family == "poly_rw":
        return PolynomialRW(B, k), RW
    if family == "poly_rw_mu":
        mu = 0.5 * B * ratios.rw_mean_regime_threshold(k)
        return PolynomialRW(B, k, mu=mu), RW
    if family == "exp_ra":
        return ExponentialRA(B, k), RA
    if family == "chain_ra":
        mu = 0.5 * B * ratios.ra_mean_regime_threshold(k)
        return ChainRA(B, k, mu), RA
    raise AssertionError(family)


def _family_k(family: str, k: int) -> int:
    if family in ("log_rw",):
        return 2
    if family in ("poly_rw", "poly_rw_mu"):
        return max(k, 3)
    return k


@pytest.mark.parametrize("family", kernels.FAMILIES)
class TestExpectationGrids:
    @given(B=Bs, k=st.integers(min_value=2, max_value=8),
           d_rel=st.lists(st.floats(0.0, 5.0), min_size=0, max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_expected_cost_grid(self, family, B, k, d_rel):
        k = _family_k(family, k)
        policy, kind = _reference_policy(family, B, k)
        d = np.asarray(d_rel) * B
        got = kernels.expected_cost_grid(kind, family, B, k, d)
        assert got.shape == (1, len(d_rel))
        model = ConflictModel(kind, B, k)
        assert_matches(
            got[0],
            (expected_cost(policy, model, float(dv)) for dv in d),
            scaled=True,
        )

    @given(B=Bs, k=st.integers(min_value=2, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_competitive_ratio_grid(self, family, B, k):
        k = _family_k(family, k)
        policy, kind = _reference_policy(family, B, k)
        ratios_arr, worst = kernels.competitive_ratio_grid(
            kind, family, B, k, grid=256
        )
        ref = competitive_ratio(policy, ConflictModel(kind, B, k), grid=256)
        assert_matches(ratios_arr, [ref.ratio])
        assert_matches(worst, [ref.worst_remaining], scaled=True)


@pytest.mark.parametrize("family", ["log_rw", "chain_ra"])
class TestConstrainedRatioGrids:
    @given(B=Bs, frac=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=10, deadline=None)
    def test_constrained_ratio_grid(self, family, B, frac):
        k = 2
        threshold = (
            ratios.rw_mean_regime_threshold(k)
            if family == "log_rw"
            else ratios.ra_mean_regime_threshold(k)
        )
        mu = frac * B * threshold
        policy, kind = _reference_policy(family, B, k)
        got = kernels.constrained_competitive_ratio_grid(
            kind, family, B, k, mu, grid=256
        )
        ref = constrained_competitive_ratio(
            policy, ConflictModel(kind, B, k), mu, grid=256
        )
        assert_matches(got, [ref.ratio])


# -- edge shapes: empty / one-element arrays, degenerate cells -----------


class TestEdgeShapes:
    def test_empty_arrays(self):
        empty_k = np.asarray([], dtype=int)
        empty_f = np.asarray([], dtype=float)
        assert kernels.det_rw_ratio(empty_k).shape == (0,)
        assert kernels.rand_rw_optimal_ratio(empty_k).shape == (0,)
        assert kernels.constrained_rw_ratio(empty_f, empty_f, empty_k).shape == (0,)
        assert kernels.rw_best_ratio(empty_f, empty_f, empty_k).shape == (0,)
        assert kernels.ski_expected_cost_randomized(empty_k, empty_k).shape == (0,)
        assert kernels.conflict_opt(empty_f, empty_f, empty_k).shape == (0,)
        assert kernels.uniform_rw_pdf(empty_f, 10.0).shape == (0,)

    def test_empty_remaining_row(self):
        got = kernels.expected_cost_grid(RW, "uniform_rw", 100.0, 2, [])
        assert got.shape == (1, 0)

    def test_one_element_arrays(self):
        one_k = np.asarray([2])
        got = kernels.det_rw_ratio(one_k)
        assert got.shape == (1,)
        assert float(got[0]) == ratios.det_rw_ratio(2)
        got = kernels.expected_cost_grid(RW, "det", [100.0], [2], [50.0])
        model = ConflictModel(RW, 100.0, 2)
        assert_matches(
            got[0],
            [expected_cost(DeterministicRW(100.0, 2), model, 50.0)],
            scaled=True,
        )

    def test_edge_cell_k2_B1(self):
        """The smallest admissible cell: k = 2, B = 1."""
        B, k = 1.0, 2
        d = np.asarray([0.0, 0.5, 1.0, 4.0])
        for family in ("det", "uniform_rw", "log_rw", "exp_ra", "chain_ra"):
            policy, kind = _reference_policy(family, B, k)
            got = kernels.expected_cost_grid(kind, family, B, k, d)
            model = ConflictModel(kind, B, k)
            assert_matches(
                got[0],
                (expected_cost(policy, model, float(dv)) for dv in d),
                scaled=True,
            )

    def test_degenerate_mu(self):
        """mu -> 0 collapses the constrained ratios to 1."""
        tiny = np.asarray([1e-300, 1e-12])
        B = np.asarray([100.0, 100.0])
        rw = kernels.constrained_rw_ratio(B, tiny)
        ra = kernels.constrained_ra_ratio(B, tiny)
        np.testing.assert_allclose(rw, 1.0, rtol=0.0, atol=1e-12)
        np.testing.assert_allclose(ra, 1.0, rtol=0.0, atol=1e-12)
        # at exactly the regime boundary the dispatch must take the
        # unconstrained branch (strict inequality), matching the scalar
        # factories' regime_holds predicates
        kb = 2
        boundary = 100.0 * ratios.rw_mean_regime_threshold(kb)
        got = kernels.rw_best_ratio(np.asarray([100.0]), np.asarray([boundary]), kb)
        assert float(got[0]) == ratios.rand_rw_optimal_ratio(kb)

    def test_det_ra_reference(self):
        """The det family under RA kind matches DeterministicRA."""
        B, k = 50.0, 3
        d = np.asarray([1.0, 20.0, 30.0, 100.0])
        got = kernels.expected_cost_grid(RA, "det", B, k, d)
        model = ConflictModel(RA, B, k)
        assert_matches(
            got[0],
            (expected_cost(DeterministicRA(B, k), model, float(dv)) for dv in d),
            scaled=True,
        )

    def test_det_custom_x0(self):
        """Explicit x0 (immediate abort and mid-support) matches
        FixedDelayPolicy through the verify path."""
        B, k = 200.0, 2
        d = np.asarray([0.0, 50.0, 200.0, 500.0])
        for x0 in (0.0, 37.5):
            got = kernels.expected_cost_grid(RW, "det", B, k, d, x0=x0)
            model = ConflictModel(RW, B, k)
            assert_matches(
                got[0],
                (
                    expected_cost(FixedDelayPolicy(x0), model, float(dv))
                    for dv in d
                ),
                scaled=True,
            )
