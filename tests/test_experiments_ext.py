"""Tests for the chain/throughput/sensitivity experiment runners and
the CLI's JSON output."""

from __future__ import annotations

import json

import pytest

from repro.experiments import EXPERIMENTS, run_experiment


class TestExtChains:
    def test_crossover_shape(self):
        result = run_experiment("ext_chains", quick=True, seed=1)
        by = {
            (r["k"], r["strategy"]): r
            for r in result.rows
        }
        # RA wins at k=2
        assert (
            by[(2, "RA")]["mc_cost_vs_OPT"] < by[(2, "RW")]["mc_cost_vs_OPT"]
        )
        # RW wins at k=3+
        assert (
            by[(3, "RW")]["mc_cost_vs_OPT"] < by[(3, "RA")]["mc_cost_vs_OPT"]
        )

    def test_theory_numeric_mc_agree(self):
        result = run_experiment("ext_chains", quick=True, seed=1)
        for row in result.rows:
            if row["strategy"] in ("RW", "RA"):
                assert row["numeric_ratio"] == pytest.approx(
                    row["closed_ratio"], rel=5e-3
                )
                assert row["mc_cost_vs_OPT"] == pytest.approx(
                    row["closed_ratio"], rel=0.05
                )

    def test_hybrid_matches_mc_winner(self):
        result = run_experiment("ext_chains", quick=True, seed=1)
        for row in result.rows:
            if row["strategy"] == "HYBRID picks":
                assert row["pick"] == row["mc_winner"]


class TestAblSensitivity:
    def test_ordering_stable(self):
        result = run_experiment("abl_sensitivity", quick=True, seed=1)
        assert all(r["delay_wins"] for r in result.rows)


class TestRegistryCompleteness:
    def test_all_experiments_have_quick_mode(self):
        """Every registered experiment must run in quick mode (CI
        safety) — smoke only for non-HTM ones to keep this test fast."""
        fast_ids = [
            e
            for e in EXPERIMENTS
            if not e.startswith(("fig3", "ext_bank", "ext_listset", "abl_wedge",
                                 "abl_htm", "abl_sensitivity", "ext_throughput"))
        ]
        for exp_id in fast_ids:
            result = run_experiment(exp_id, quick=True, seed=3)
            assert result.rows, exp_id

    def test_experiment_count(self):
        # 11 paper artifacts + 7 ablations + 4 extensions
        assert len(EXPERIMENTS) >= 20


class TestScorecard:
    @pytest.mark.slow
    def test_all_claims_reproduce(self):
        result = run_experiment("scorecard", quick=True, seed=2018)
        total = result.rows[-1]
        assert total["artifact"] == "TOTAL"
        failures = [
            r["artifact"] for r in result.rows[:-1] if not r["reproduced"]
        ]
        assert not failures, f"claims not reproduced: {failures}"
        assert total["reproduced"] is True


class TestCliJson:
    def test_json_written(self, tmp_path):
        from repro.cli import main

        code = main(
            [
                "tab_abort_prob",
                "--quick",
                "--out",
                str(tmp_path),
                "--json",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "tab_abort_prob.json").read_text())
        assert payload["exp_id"] == "tab_abort_prob"
        assert payload["rows"]
        assert "P_abort_RW" in payload["rows"][0]

    def test_no_json_without_flag(self, tmp_path):
        from repro.cli import main

        main(["tab_abort_prob", "--quick", "--out", str(tmp_path)])
        assert not (tmp_path / "tab_abort_prob.json").exists()
