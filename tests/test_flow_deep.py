"""Acceptance pins for the deep pass: the purity analysis detects a
sim-critical entry reaching ``time.time()`` / ambient ``np.random``
through >= 2 intermediate same- and cross-module calls and prints the
full chain; the seed-provenance analysis catches ambient, laundered,
shared and captured generators while passing clean ones."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    render_baseline,
)
from repro.analysis.engine import lint_paths, lint_sources

FIXTURES = Path(__file__).parent / "fixtures" / "flow"


def deep(fixture: str, **kwargs):
    return lint_paths([FIXTURES / fixture], select=["FLOW"], deep=True,
                      **kwargs)


class TestPurityChains:
    def test_wall_clock_through_two_intermediates(self):
        result = deep("transitive")
        (f,) = [x for x in result.flow if x["rule"] == "FLOW001"]
        assert f["entry"] == "htm.engine:step"
        # >= 2 intermediates: one same-module, one cross-module
        assert f["chain"] == [
            "htm.engine:step",
            "htm.engine:_advance",
            "util.timeutil:read_clock",
            "util.timeutil:_now",
        ]
        assert f["site"]["detail"] == "time.time()"
        # the human-facing message prints the whole chain
        assert (
            "htm.engine.step -> htm.engine._advance -> "
            "util.timeutil.read_clock -> util.timeutil._now"
        ) in f["message"]

    def test_ambient_numpy_cross_module(self):
        result = deep("transitive")
        (f,) = [x for x in result.flow if x["rule"] == "FLOW002"]
        assert f["entry"] == "core.policy:draw"
        assert f["chain"] == [
            "core.policy:draw", "util.rnd:noise", "util.rnd:_jitter",
        ]
        assert "numpy.random.rand()" in f["message"]

    def test_findings_anchor_at_entry_definition(self):
        result = deep("transitive")
        (f,) = [x for x in result.findings if x.rule == "FLOW001"]
        assert f.path.endswith("transitive/htm/engine.py")
        assert f.line == 7  # def step

    def test_clean_fixture_is_clean(self):
        result = deep("clean")
        assert result.ok
        assert result.flow == []


class TestSeedProvenance:
    def test_ambient_generator_creation(self):
        result = deep("seeds")
        hits = [
            f for f in result.flow
            if f["rule"] == "FLOW006" and f["entry"] == "sim.sampler:ambient"
        ]
        assert len(hits) == 1
        assert "without a seed" in hits[0]["message"]

    def test_laundered_generator_chain(self):
        result = deep("seeds")
        (f,) = [
            x for x in result.flow
            if x["rule"] == "FLOW006" and x["entry"] == "sim.sampler:draw"
        ]
        assert f["chain"] == ["sim.sampler:draw", "util.mkrng:fresh_rng"]
        assert "sim.sampler.draw -> util.mkrng.fresh_rng" in f["message"]

    def test_module_level_generator(self):
        result = deep("seeds")
        (f,) = [
            x for x in result.flow
            if x["rule"] == "FLOW007" and "_RNG" in x["message"]
        ]
        assert f["entry"] == "sim.sampler:<module>"

    def test_generator_captured_across_pool_boundary(self):
        result = deep("seeds")
        hits = [
            f for f in result.flow
            if f["rule"] == "FLOW007" and f["entry"] == "sim.shards:fan_out"
        ]
        assert len(hits) == 1
        assert "closure" in hits[0]["message"]

    def test_parameter_seeded_paths_pass(self):
        result = deep("seeds")
        entries = {f["entry"] for f in result.flow}
        assert "sim.sampler:clean" not in entries
        assert "sim.shards:fan_out_clean" not in entries
        assert "sim.shards:_shard_task" not in entries


class TestPragmaHonoring:
    def test_site_level_suppression_stops_propagation(self):
        sources = {
            "sim/run.py": (
                "import time\n\n\n"
                "def loop(budget):\n"
                "    deadline = time.monotonic() + budget"
                "  # simlint: disable=DET001 -- watchdog\n"
                "    return deadline\n"
            ),
        }
        result = lint_sources(sources, select=["FLOW"], deep=True)
        assert result.ok
        assert result.flow == []

    def test_flow_id_suppresses_site_too(self):
        sources = {
            "sim/run.py": (
                "import time\n\n\n"
                "def loop(budget):\n"
                "    return time.monotonic() + budget"
                "  # simlint: disable=FLOW001 -- sanctioned\n"
            ),
        }
        result = lint_sources(sources, select=["FLOW"], deep=True)
        assert result.ok

    def test_unsuppressed_site_still_found(self):
        sources = {
            "sim/run.py": (
                "import time\n\n\n"
                "def loop(budget):\n"
                "    return time.monotonic() + budget\n"
            ),
        }
        result = lint_sources(sources, select=["FLOW"], deep=True)
        assert not result.ok
        assert result.findings[0].rule == "FLOW001"


class TestBaseline:
    def _sources(self):
        return {
            "sim/run.py": (
                "import time\n\n\n"
                "def loop(budget):\n"
                "    return time.monotonic() + budget\n"
            ),
        }

    def test_baselined_finding_is_accepted_and_surfaced(self):
        result = lint_sources(self._sources(), select=["FLOW"], deep=True)
        entries = [
            {
                "rule": f["rule"],
                "entry": f["entry"],
                "site": f["site"]["detail"],
                "justification": "known wall-clock in fixture",
            }
            for f in result.flow
        ]
        again = lint_sources(
            self._sources(), select=["FLOW"], deep=True,
            baseline_entries=entries,
        )
        assert again.ok
        assert len(again.baselined) == 1
        assert again.baselined[0]["justification"] == (
            "known wall-clock in fixture"
        )

    def test_fingerprint_is_line_independent(self):
        result = lint_sources(self._sources(), select=["FLOW"], deep=True)
        raw = result.flow[0]
        shifted = dict(raw, line=raw["line"] + 10)
        assert fingerprint(raw) == fingerprint(shifted)

    def test_render_and_load_roundtrip(self, tmp_path):
        result = lint_sources(self._sources(), select=["FLOW"], deep=True)
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline(result.flow), encoding="utf-8")
        entries = load_baseline(path)
        kept, baselined = apply_baseline(result.flow, entries)
        assert kept == []
        assert len(baselined) == 1

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"entries": [{"rule": "FLOW001"}]}',
                        encoding="utf-8")
        try:
            load_baseline(path)
        except ValueError as exc:
            assert "missing" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


class TestRealTree:
    def test_src_deep_pass_is_clean_under_committed_baseline(self):
        repo = Path(__file__).resolve().parent.parent
        entries = load_baseline(repo / ".simlint-baseline.json")
        result = lint_paths(
            [repo / "src"], select=["FLOW"], deep=True,
            baseline_entries=entries,
        )
        assert result.ok, [f.message for f in result.findings]
        # the chaos-harness writes stay visible as baselined items
        assert {b["entry"] for b in result.baselined} == {
            "repro.faults.chaos:tear_tail",
            "repro.faults.chaos:corrupt_bytes",
        }
