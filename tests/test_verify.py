"""Tests for the numeric verification machinery."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.model import ConflictKind, ConflictModel
from repro.core.policy import FixedDelayPolicy, ImmediateAbortPolicy
from repro.core.requestor_aborts import DiscreteSkiRentalRA, ExponentialRA
from repro.core.requestor_wins import MeanConstrainedRW, UniformRW
from repro.core.verify import (
    abort_probability,
    competitive_ratio,
    constrained_competitive_ratio,
    expected_abort_cost,
    expected_cost,
    expected_cost_curve,
    simulate_costs,
    _upper_concave_envelope,
)
from repro.errors import InvalidParameterError

B = 100.0
RW = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)
RA = ConflictModel(ConflictKind.REQUESTOR_ABORTS, B, 2)


class TestExpectedCost:
    def test_deterministic_policy_exact(self):
        policy = FixedDelayPolicy(30.0)
        assert expected_cost(policy, RW, 20.0) == pytest.approx(20.0)
        assert expected_cost(policy, RW, 50.0) == pytest.approx(2 * 30 + B)

    def test_immediate_abort(self):
        policy = ImmediateAbortPolicy()
        assert expected_cost(policy, RW, 50.0) == pytest.approx(B)
        assert expected_cost(policy, RW, 0.0) == pytest.approx(0.0)

    def test_uniform_closed_form(self):
        """Uniform on [0,B]: E[cost | D=y] = 2y exactly (Theorem 5)."""
        policy = UniformRW(B, 2)
        ys = np.asarray([1.0, 25.0, 60.0, 99.0])
        assert np.allclose(expected_cost_curve(policy, RW, ys), 2 * ys, rtol=1e-3)

    def test_beyond_support_certain_abort(self):
        policy = UniformRW(B, 2)
        # D far beyond the cap: always abort, E = E[2x + B] = 2B
        assert expected_cost(policy, RW, 10 * B) == pytest.approx(2 * B, rel=1e-3)

    def test_discrete_policy_matches_manual_sum(self):
        policy = DiscreteSkiRentalRA(10)
        d = 4.0
        manual = 0.0
        for day in range(1, 11):
            x = day - 1
            cost = d if d <= x else x + 10.0
            manual += policy.pmf(day) * cost
        assert expected_cost(policy, ConflictModel(
            ConflictKind.REQUESTOR_ABORTS, 10.0, 2
        ), d) == pytest.approx(manual)

    def test_negative_remaining_rejected(self):
        with pytest.raises(InvalidParameterError):
            expected_cost(UniformRW(B), RW, -1.0)


class TestExpectedAbortCost:
    def test_uniform(self):
        # E[2x + B] over uniform [0, B] = 2B
        assert expected_abort_cost(UniformRW(B, 2), RW) == pytest.approx(
            2 * B, rel=1e-3
        )

    def test_exponential_ra(self):
        # E[x + B] with E[x] = B/(e-1): total = B e/(e-1)
        assert expected_abort_cost(ExponentialRA(B, 2), RA) == pytest.approx(
            B * math.e / (math.e - 1), rel=1e-3
        )

    def test_deterministic(self):
        assert expected_abort_cost(FixedDelayPolicy(10.0), RW) == pytest.approx(
            2 * 10 + B
        )


class TestCompetitiveRatio:
    def test_never_positive_infinite(self):
        result = competitive_ratio(UniformRW(B, 2), RW)
        assert math.isfinite(result.ratio)
        assert result.ratio >= 1.0

    def test_immediate_abort_ratio_unbounded_ish(self):
        """NO_DELAY pays B even for D -> 0, so its grid ratio is huge."""
        result = competitive_ratio(ImmediateAbortPolicy(), RW)
        assert result.ratio > 50.0

    def test_fixed_tiny_delay_bad(self):
        result = competitive_ratio(FixedDelayPolicy(1.0), RW)
        assert result.ratio > 2.0

    def test_worst_remaining_in_grid(self):
        result = competitive_ratio(FixedDelayPolicy(B), RW)
        # Theorem 4: worst case just above the abort point (OPT = B)
        assert result.ratio == pytest.approx(3.0, rel=1e-3)
        assert result.worst_remaining >= B


class TestConcaveEnvelope:
    def test_linear_function_unchanged(self):
        xs = np.linspace(0, 10, 50)
        ys = 2 * xs + 1
        assert _upper_concave_envelope(xs, ys, 5.0) == pytest.approx(11.0)

    def test_v_shape_bridged(self):
        xs = np.asarray([0.0, 5.0, 10.0])
        ys = np.asarray([10.0, 0.0, 10.0])
        # envelope is the chord from (0,10) to (10,10)
        assert _upper_concave_envelope(xs, ys, 5.0) == pytest.approx(10.0)

    def test_outside_range_clamps(self):
        xs = np.asarray([1.0, 2.0])
        ys = np.asarray([3.0, 7.0])
        assert _upper_concave_envelope(xs, ys, 0.0) == 3.0
        assert _upper_concave_envelope(xs, ys, 5.0) == 7.0

    def test_duplicate_x_keeps_max(self):
        xs = np.asarray([1.0, 1.0, 2.0])
        ys = np.asarray([3.0, 9.0, 1.0])
        assert _upper_concave_envelope(xs, ys, 1.0) == pytest.approx(9.0)


class TestConstrainedRatio:
    def test_constrained_leq_unconstrained(self):
        policy = UniformRW(B, 2)
        uncon = competitive_ratio(policy, RW).ratio
        for mu in (5.0, 50.0, 200.0):
            con = constrained_competitive_ratio(policy, RW, mu).ratio
            assert con <= uncon + 1e-6

    def test_requires_positive_mu(self):
        with pytest.raises(InvalidParameterError):
            constrained_competitive_ratio(UniformRW(B), RW, 0.0)

    def test_matches_linear_theory(self):
        policy = MeanConstrainedRW(B, 10.0)
        result = constrained_competitive_ratio(policy, RW, 10.0)
        assert result.ratio == pytest.approx(policy.competitive_ratio, rel=2e-3)


class TestSimulateCosts:
    def test_scalar_with_n(self, rng):
        costs = simulate_costs(UniformRW(B, 2), RW, 50.0, rng, n=10_000)
        assert costs.shape == (10_000,)
        # E[cost | D=50] = 100 (Theorem 5 equalization)
        assert costs.mean() == pytest.approx(100.0, rel=0.05)

    def test_array_remaining(self, rng):
        d = rng.random(5000) * B
        costs = simulate_costs(UniformRW(B, 2), RW, d, rng)
        assert costs.shape == d.shape
        assert np.all(costs >= 0)

    def test_scalar_without_n_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            simulate_costs(UniformRW(B, 2), RW, 50.0, rng)

    def test_monte_carlo_matches_quadrature(self, rng):
        policy = MeanConstrainedRW(B, 10.0)
        d = 40.0
        mc = simulate_costs(policy, RW, d, rng, n=200_000).mean()
        assert mc == pytest.approx(expected_cost(policy, RW, d), rel=0.02)


class TestAbortProbability:
    def test_uniform(self):
        assert abort_probability(UniformRW(B, 2), RW, B / 2) == pytest.approx(0.5)

    def test_zero_remaining(self):
        assert abort_probability(UniformRW(B, 2), RW, 0.0) == pytest.approx(0.0)

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            abort_probability(UniformRW(B, 2), RW, -1.0)
