"""Bench-artifact schema and perf-regression gate logic."""

from __future__ import annotations

import json
import math

import pytest

from benchmarks import schema
from benchmarks.bench_suite import DEFAULT_THRESHOLD, compare_to_baseline


def core_payload(**overrides) -> dict:
    payload = {
        "schema_version": 1,
        "suite": "core",
        "generated_by": "benchmarks/bench_suite.py",
        "quick": True,
        "seed": 2018,
        "python": "3.11.7",
        "cpu_count": 1,
        "benches": {
            "fig2_expectation_row": {
                "median_s": 0.0004,
                "repeats": 5,
                "ops": 64,
                "baseline_s": 0.006,
                "speedup": 15.0,
            },
            "des_event_loop": {"median_s": 0.02, "repeats": 5, "ops": 20000},
        },
    }
    payload.update(overrides)
    return payload


def parallel_payload(**overrides) -> dict:
    payload = {
        "experiments": ["fig2a", "fig2b"],
        "quick": True,
        "seed": 2018,
        "trials": 1000,
        "jobs": 2,
        "cpu_count": 4,
        "serial_s": 10.0,
        "parallel_s": 5.0,
        "speedup": 2.0,
        "rows_identical": True,
        "generated_by": "benchmarks/bench_parallel.py",
    }
    payload.update(overrides)
    return payload


class TestCoreSchema:
    def test_valid_payload_passes(self):
        assert schema.validate_core_payload(core_payload()) is not None

    def test_missing_field_fails(self):
        bad = core_payload()
        del bad["seed"]
        with pytest.raises(schema.BenchSchemaError, match="seed"):
            schema.validate_core_payload(bad)

    def test_unknown_field_fails(self):
        with pytest.raises(schema.BenchSchemaError, match="extra"):
            schema.validate_core_payload(core_payload(extra=1))

    def test_wrong_suite_fails(self):
        with pytest.raises(schema.BenchSchemaError, match="suite"):
            schema.validate_core_payload(core_payload(suite="parallel"))

    def test_empty_benches_fails(self):
        with pytest.raises(schema.BenchSchemaError, match="benches"):
            schema.validate_core_payload(core_payload(benches={}))

    def test_non_finite_median_fails(self):
        bad = core_payload()
        bad["benches"]["des_event_loop"]["median_s"] = math.nan
        with pytest.raises(schema.BenchSchemaError, match="median_s"):
            schema.validate_core_payload(bad)

    def test_negative_median_fails(self):
        bad = core_payload()
        bad["benches"]["des_event_loop"]["median_s"] = -1.0
        with pytest.raises(schema.BenchSchemaError, match="median_s"):
            schema.validate_core_payload(bad)

    def test_bool_is_not_a_number(self):
        bad = core_payload()
        bad["benches"]["des_event_loop"]["median_s"] = True
        with pytest.raises(schema.BenchSchemaError, match="median_s"):
            schema.validate_core_payload(bad)

    def test_baseline_without_speedup_fails(self):
        bad = core_payload()
        del bad["benches"]["fig2_expectation_row"]["speedup"]
        with pytest.raises(schema.BenchSchemaError, match="together"):
            schema.validate_core_payload(bad)


def scaling_point(**overrides) -> dict:
    point = {
        "jobs": 2,
        "parallel_s": 5.0,
        "speedup": 2.0,
        "rows_identical": True,
    }
    point.update(overrides)
    return point


class TestParallelSchema:
    def test_valid_payload_passes(self):
        assert schema.validate_parallel_payload(parallel_payload()) is not None

    def test_missing_field_fails(self):
        bad = parallel_payload()
        del bad["rows_identical"]
        with pytest.raises(schema.BenchSchemaError, match="rows_identical"):
            schema.validate_parallel_payload(bad)

    def test_scaling_and_warning_are_optional(self):
        payload = parallel_payload(
            scaling=[scaling_point(jobs=1, speedup=1.0), scaling_point()],
            warning="cpu_count == 1: speedup measures overhead",
        )
        assert schema.validate_parallel_payload(payload) is not None

    def test_empty_scaling_fails(self):
        with pytest.raises(schema.BenchSchemaError, match="scaling"):
            schema.validate_parallel_payload(parallel_payload(scaling=[]))

    def test_scaling_point_missing_field_fails(self):
        bad = scaling_point()
        del bad["speedup"]
        with pytest.raises(schema.BenchSchemaError, match=r"scaling\[0\]"):
            schema.validate_parallel_payload(parallel_payload(scaling=[bad]))

    def test_scaling_point_unknown_field_fails(self):
        bad = scaling_point(extra=1)
        with pytest.raises(schema.BenchSchemaError, match="extra"):
            schema.validate_parallel_payload(parallel_payload(scaling=[bad]))

    def test_scaling_point_bad_jobs_fails(self):
        bad = scaling_point(jobs=0)
        with pytest.raises(schema.BenchSchemaError, match="jobs"):
            schema.validate_parallel_payload(parallel_payload(scaling=[bad]))

    def test_empty_warning_fails(self):
        with pytest.raises(schema.BenchSchemaError, match="warning"):
            schema.validate_parallel_payload(parallel_payload(warning=""))

    def test_kind_dispatch(self):
        schema.validate_payload(core_payload(), "core")
        schema.validate_payload(parallel_payload(), "parallel")
        with pytest.raises(schema.BenchSchemaError, match="kind"):
            schema.validate_payload(core_payload(), "nope")


class TestDumpPayload:
    def test_round_trip(self, tmp_path):
        out = tmp_path / "BENCH_core.json"
        schema.dump_payload(core_payload(), "core", out)
        assert json.loads(out.read_text()) == core_payload()

    def test_invalid_payload_never_written(self, tmp_path):
        out = tmp_path / "BENCH_core.json"
        with pytest.raises(schema.BenchSchemaError):
            schema.dump_payload(core_payload(suite="bad"), "core", out)
        assert not out.exists()


class TestRegressionGate:
    def test_identical_run_passes(self):
        assert compare_to_baseline(core_payload(), core_payload()) == []

    def test_slowdown_within_threshold_passes(self):
        cur = core_payload()
        cur["benches"]["des_event_loop"]["median_s"] = 0.039  # 1.95x
        assert compare_to_baseline(cur, core_payload()) == []

    def test_slowdown_beyond_threshold_fails(self):
        cur = core_payload()
        cur["benches"]["des_event_loop"]["median_s"] = 0.05  # 2.5x
        failures = compare_to_baseline(cur, core_payload())
        assert len(failures) == 1
        assert "des_event_loop" in failures[0]

    def test_custom_threshold(self):
        cur = core_payload()
        cur["benches"]["des_event_loop"]["median_s"] = 0.05
        assert compare_to_baseline(cur, core_payload(), threshold=3.0) == []
        assert compare_to_baseline(cur, core_payload(), threshold=1.5)

    def test_ops_mismatch_fails(self):
        cur = core_payload()
        cur["benches"]["des_event_loop"]["ops"] = 10_000
        failures = compare_to_baseline(cur, core_payload())
        assert any("ops" in f for f in failures)

    def test_missing_bench_fails(self):
        cur = core_payload()
        del cur["benches"]["des_event_loop"]
        failures = compare_to_baseline(cur, core_payload())
        assert any("des_event_loop" in f for f in failures)

    def test_new_bench_in_current_run_is_fine(self):
        cur = core_payload()
        cur["benches"]["new_bench"] = {"median_s": 1.0, "repeats": 3}
        assert compare_to_baseline(cur, core_payload()) == []

    def test_speedup_improvement_passes(self):
        cur = core_payload()
        cur["benches"]["des_event_loop"]["median_s"] = 0.001
        assert compare_to_baseline(cur, core_payload()) == []

    def test_default_threshold_is_two(self):
        assert DEFAULT_THRESHOLD == 2.0


class TestCommittedBaseline:
    def test_committed_artifacts_validate(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        core = root / "BENCH_core.json"
        schema.validate_core_payload(json.loads(core.read_text()))
        par = root / "BENCH_parallel.json"
        if par.exists():
            schema.validate_parallel_payload(json.loads(par.read_text()))

    def test_committed_baseline_records_vectorization_win(self):
        """The acceptance evidence: at least one grid-shaped bench in
        the committed baseline shows >= 3x over the scalar path."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        doc = json.loads((root / "BENCH_core.json").read_text())
        speedups = [
            e["speedup"] for e in doc["benches"].values() if "speedup" in e
        ]
        assert speedups and max(speedups) >= 3.0

    def test_committed_baseline_records_mc_engine_win(self):
        """PR acceptance evidence: the batched Monte-Carlo engine
        benches are in the committed baseline at >= 10x over the scalar
        reference."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        doc = json.loads((root / "BENCH_core.json").read_text())
        for name in ("mc_cor2_trials", "mc_ablation_grid"):
            assert name in doc["benches"], name
            assert doc["benches"][name]["speedup"] >= 10.0, name
