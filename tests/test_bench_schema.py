"""Bench-artifact schema and perf-regression gate logic."""

from __future__ import annotations

import json
import math

import pytest

from benchmarks import schema
from benchmarks.bench_suite import DEFAULT_THRESHOLD, compare_to_baseline


def core_payload(**overrides) -> dict:
    payload = {
        "schema_version": 1,
        "suite": "core",
        "generated_by": "benchmarks/bench_suite.py",
        "quick": True,
        "seed": 2018,
        "python": "3.11.7",
        "cpu_count": 1,
        "benches": {
            "fig2_expectation_row": {
                "median_s": 0.0004,
                "repeats": 5,
                "ops": 64,
                "baseline_s": 0.006,
                "speedup": 15.0,
            },
            "des_event_loop": {"median_s": 0.02, "repeats": 5, "ops": 20000},
        },
    }
    payload.update(overrides)
    return payload


def parallel_payload(**overrides) -> dict:
    payload = {
        "experiments": ["fig2a", "fig2b"],
        "quick": True,
        "seed": 2018,
        "trials": 1000,
        "jobs": 2,
        "cpu_count": 4,
        "serial_s": 10.0,
        "parallel_s": 5.0,
        "speedup": 2.0,
        "rows_identical": True,
        "generated_by": "benchmarks/bench_parallel.py",
    }
    payload.update(overrides)
    return payload


def serve_payload(**overrides) -> dict:
    payload = {
        "schema_version": 1,
        "suite": "serve",
        "generated_by": "repro.serve.replay",
        "quick": True,
        "seed": 2018,
        "python": "3.11.7",
        "cpu_count": 1,
        "requests": 14_007,
        "conflicts": 10_000,
        "commits": 4_007,
        "grants": 9_959,
        "aborts": 41,
        "regime_switches": 3,
        "clients": 8,
        "phases": 3,
        "wall_s": 0.5,
        "decisions_per_sec": 20_000.0,
        "p50_us": 20.0,
        "p99_us": 200.0,
        "service_p50_us": 50.0,
        "service_p99_us": 1000.0,
        "decision_log_sha256": "ab" * 32,
    }
    payload.update(overrides)
    return payload


class TestCoreSchema:
    def test_valid_payload_passes(self):
        assert schema.validate_core_payload(core_payload()) is not None

    def test_missing_field_fails(self):
        bad = core_payload()
        del bad["seed"]
        with pytest.raises(schema.BenchSchemaError, match="seed"):
            schema.validate_core_payload(bad)

    def test_unknown_field_fails(self):
        with pytest.raises(schema.BenchSchemaError, match="extra"):
            schema.validate_core_payload(core_payload(extra=1))

    def test_wrong_suite_fails(self):
        with pytest.raises(schema.BenchSchemaError, match="suite"):
            schema.validate_core_payload(core_payload(suite="parallel"))

    def test_empty_benches_fails(self):
        with pytest.raises(schema.BenchSchemaError, match="benches"):
            schema.validate_core_payload(core_payload(benches={}))

    def test_non_finite_median_fails(self):
        bad = core_payload()
        bad["benches"]["des_event_loop"]["median_s"] = math.nan
        with pytest.raises(schema.BenchSchemaError, match="median_s"):
            schema.validate_core_payload(bad)

    def test_negative_median_fails(self):
        bad = core_payload()
        bad["benches"]["des_event_loop"]["median_s"] = -1.0
        with pytest.raises(schema.BenchSchemaError, match="median_s"):
            schema.validate_core_payload(bad)

    def test_bool_is_not_a_number(self):
        bad = core_payload()
        bad["benches"]["des_event_loop"]["median_s"] = True
        with pytest.raises(schema.BenchSchemaError, match="median_s"):
            schema.validate_core_payload(bad)

    def test_baseline_without_speedup_fails(self):
        bad = core_payload()
        del bad["benches"]["fig2_expectation_row"]["speedup"]
        with pytest.raises(schema.BenchSchemaError, match="together"):
            schema.validate_core_payload(bad)


def scaling_point(**overrides) -> dict:
    point = {
        "jobs": 2,
        "parallel_s": 5.0,
        "speedup": 2.0,
        "rows_identical": True,
    }
    point.update(overrides)
    return point


class TestParallelSchema:
    def test_valid_payload_passes(self):
        assert schema.validate_parallel_payload(parallel_payload()) is not None

    def test_missing_field_fails(self):
        bad = parallel_payload()
        del bad["rows_identical"]
        with pytest.raises(schema.BenchSchemaError, match="rows_identical"):
            schema.validate_parallel_payload(bad)

    def test_scaling_and_warning_are_optional(self):
        payload = parallel_payload(
            scaling=[scaling_point(jobs=1, speedup=1.0), scaling_point()],
            warning="cpu_count == 1: speedup measures overhead",
        )
        assert schema.validate_parallel_payload(payload) is not None

    def test_empty_scaling_fails(self):
        with pytest.raises(schema.BenchSchemaError, match="scaling"):
            schema.validate_parallel_payload(parallel_payload(scaling=[]))

    def test_scaling_point_missing_field_fails(self):
        bad = scaling_point()
        del bad["speedup"]
        with pytest.raises(schema.BenchSchemaError, match=r"scaling\[0\]"):
            schema.validate_parallel_payload(parallel_payload(scaling=[bad]))

    def test_scaling_point_unknown_field_fails(self):
        bad = scaling_point(extra=1)
        with pytest.raises(schema.BenchSchemaError, match="extra"):
            schema.validate_parallel_payload(parallel_payload(scaling=[bad]))

    def test_scaling_point_bad_jobs_fails(self):
        bad = scaling_point(jobs=0)
        with pytest.raises(schema.BenchSchemaError, match="jobs"):
            schema.validate_parallel_payload(parallel_payload(scaling=[bad]))

    def test_empty_warning_fails(self):
        with pytest.raises(schema.BenchSchemaError, match="warning"):
            schema.validate_parallel_payload(parallel_payload(warning=""))

    def test_kind_dispatch(self):
        schema.validate_payload(core_payload(), "core")
        schema.validate_payload(parallel_payload(), "parallel")
        schema.validate_payload(serve_payload(), "serve")
        with pytest.raises(schema.BenchSchemaError, match="kind"):
            schema.validate_payload(core_payload(), "nope")


class TestServeSchema:
    def test_valid_payload_passes(self):
        assert schema.validate_serve_payload(serve_payload()) is not None

    def test_optional_service_latencies(self):
        payload = serve_payload()
        del payload["service_p50_us"]
        del payload["service_p99_us"]
        assert schema.validate_serve_payload(payload) is not None

    def test_missing_field_fails(self):
        bad = serve_payload()
        del bad["decision_log_sha256"]
        with pytest.raises(schema.BenchSchemaError, match="sha256"):
            schema.validate_serve_payload(bad)

    def test_unknown_field_fails(self):
        with pytest.raises(schema.BenchSchemaError, match="extra"):
            schema.validate_serve_payload(serve_payload(extra=1))

    def test_wrong_suite_fails(self):
        with pytest.raises(schema.BenchSchemaError, match="suite"):
            schema.validate_serve_payload(serve_payload(suite="core"))

    def test_counts_must_reconcile(self):
        with pytest.raises(schema.BenchSchemaError, match="requests"):
            schema.validate_serve_payload(serve_payload(commits=1))
        with pytest.raises(schema.BenchSchemaError, match="conflicts"):
            schema.validate_serve_payload(serve_payload(grants=1))

    def test_inverted_percentiles_fail(self):
        with pytest.raises(schema.BenchSchemaError, match="p99_us"):
            schema.validate_serve_payload(serve_payload(p99_us=1.0))

    def test_malformed_sha_fails(self):
        for bad in ("AB" * 32, "ab" * 31, "zz" * 32):
            with pytest.raises(schema.BenchSchemaError, match="sha256"):
                schema.validate_serve_payload(
                    serve_payload(decision_log_sha256=bad)
                )

    def test_negative_latency_fails(self):
        with pytest.raises(schema.BenchSchemaError, match="p50_us"):
            schema.validate_serve_payload(serve_payload(p50_us=-1.0))

    def test_real_replay_payload_validates(self):
        """End-to-end: a tiny real replay produces a valid payload."""
        from repro.serve.loadgen import default_config
        from repro.serve.replay import bench_payload, run_replay

        config = default_config(quick=True).scaled(120)
        report = run_replay(5, config, clients=3, quick=True)
        payload = bench_payload(report, quick=True, seed=5)
        assert schema.validate_serve_payload(payload) is not None


class TestDumpPayload:
    def test_round_trip(self, tmp_path):
        out = tmp_path / "BENCH_core.json"
        schema.dump_payload(core_payload(), "core", out)
        assert json.loads(out.read_text()) == core_payload()

    def test_invalid_payload_never_written(self, tmp_path):
        out = tmp_path / "BENCH_core.json"
        with pytest.raises(schema.BenchSchemaError):
            schema.dump_payload(core_payload(suite="bad"), "core", out)
        assert not out.exists()


class TestRegressionGate:
    def test_identical_run_passes(self):
        assert compare_to_baseline(core_payload(), core_payload()) == []

    def test_slowdown_within_threshold_passes(self):
        cur = core_payload()
        cur["benches"]["des_event_loop"]["median_s"] = 0.039  # 1.95x
        assert compare_to_baseline(cur, core_payload()) == []

    def test_slowdown_beyond_threshold_fails(self):
        cur = core_payload()
        cur["benches"]["des_event_loop"]["median_s"] = 0.05  # 2.5x
        failures = compare_to_baseline(cur, core_payload())
        assert len(failures) == 1
        assert "des_event_loop" in failures[0]

    def test_custom_threshold(self):
        cur = core_payload()
        cur["benches"]["des_event_loop"]["median_s"] = 0.05
        assert compare_to_baseline(cur, core_payload(), threshold=3.0) == []
        assert compare_to_baseline(cur, core_payload(), threshold=1.5)

    def test_ops_mismatch_fails(self):
        cur = core_payload()
        cur["benches"]["des_event_loop"]["ops"] = 10_000
        failures = compare_to_baseline(cur, core_payload())
        assert any("ops" in f for f in failures)

    def test_missing_bench_fails(self):
        cur = core_payload()
        del cur["benches"]["des_event_loop"]
        failures = compare_to_baseline(cur, core_payload())
        assert any("des_event_loop" in f for f in failures)

    def test_new_bench_in_current_run_is_fine(self):
        cur = core_payload()
        cur["benches"]["new_bench"] = {"median_s": 1.0, "repeats": 3}
        assert compare_to_baseline(cur, core_payload()) == []

    def test_speedup_improvement_passes(self):
        cur = core_payload()
        cur["benches"]["des_event_loop"]["median_s"] = 0.001
        assert compare_to_baseline(cur, core_payload()) == []

    def test_default_threshold_is_two(self):
        assert DEFAULT_THRESHOLD == 2.0


class TestCommittedBaseline:
    def test_committed_artifacts_validate(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        core = root / "BENCH_core.json"
        schema.validate_core_payload(json.loads(core.read_text()))
        par = root / "BENCH_parallel.json"
        if par.exists():
            schema.validate_parallel_payload(json.loads(par.read_text()))
        serve = root / "BENCH_serve.json"
        schema.validate_serve_payload(json.loads(serve.read_text()))

    def test_committed_serve_artifact_replays_byte_identically(self):
        """PR acceptance evidence: re-running the committed artifact's
        seed reproduces its decision-log digest exactly."""
        import pathlib

        from repro.serve.replay import run_replay

        root = pathlib.Path(__file__).resolve().parent.parent
        doc = json.loads((root / "BENCH_serve.json").read_text())
        assert doc["quick"], "committed baseline should be the quick run"
        report = run_replay(doc["seed"], clients=2, quick=True)
        assert report.decision_log_sha256() == doc["decision_log_sha256"]
        assert report.conflicts == doc["conflicts"]
        assert report.regime_switches == doc["regime_switches"]

    def test_committed_baseline_records_vectorization_win(self):
        """The acceptance evidence: at least one grid-shaped bench in
        the committed baseline shows >= 3x over the scalar path."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        doc = json.loads((root / "BENCH_core.json").read_text())
        speedups = [
            e["speedup"] for e in doc["benches"].values() if "speedup" in e
        ]
        assert speedups and max(speedups) >= 3.0

    def test_committed_baseline_records_mc_engine_win(self):
        """PR acceptance evidence: the batched Monte-Carlo engine
        benches are in the committed baseline at >= 10x over the scalar
        reference."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        doc = json.loads((root / "BENCH_core.json").read_text())
        for name in ("mc_cor2_trials", "mc_ablation_grid"):
            assert name in doc["benches"], name
            assert doc["benches"][name]["speedup"] >= 10.0, name
