"""Strategy-ablation engine: axes, cells, scoring, reports, CLI.

The load-bearing contracts:

* flip labels and cell ids round-trip and canonicalize stably (cache
  keys depend on it),
* importance scoring handles the edge matrix shapes (empty, baseline
  only, missing baseline, ties) deterministically,
* ``python -m repro ablate`` writes byte-identical artifacts at any
  ``--jobs`` and on a warm-cache rerun, and the cache invalidates when
  the source fingerprint moves.
"""

from __future__ import annotations

import json

import pytest

from benchmarks import schema as bench_schema
from repro.ablation import axes
from repro.ablation.cells import WORKLOADS, cell_id, parse_cell_id
from repro.ablation.report import CSV_COLUMNS, build_payload, render_csv, render_markdown
from repro.ablation.score import METRICS, rank_scores, score_matrix
from repro.cli import main
from repro.errors import ExperimentError, InvalidParameterError
from repro.experiments.registry import known_experiment, run_experiment
from repro.parallel import ResultCache


# ---------------------------------------------------------------- axes


def test_baseline_config_is_all_baseline_values():
    cfg = axes.baseline_config()
    for axis in axes.AXES:
        assert getattr(cfg, axis.name) == axis.baseline
    assert cfg.flip_label() == axes.BASELINE_LABEL


def test_canonical_form_is_sorted_and_stable():
    cfg = axes.config_from_flip("family=det")
    canon = cfg.canonical()
    assert list(canon) == sorted(canon)
    # same flip parsed twice -> identical canonical dict (cache keys)
    assert canon == axes.config_from_flip("family=det").canonical()
    assert canon["family"] == "det"
    assert canon["grace"] == "on"


def test_flip_label_round_trips_through_config():
    for label, cfg in axes.iter_flips():
        assert cfg.flip_label() == label
        assert axes.config_from_flip(label) == cfg


def test_matrix_is_baseline_plus_one_per_alternative():
    labels = axes.flip_labels()
    assert labels[0] == axes.BASELINE_LABEL
    n_alts = sum(len(a.alternatives) for a in axes.AXES)
    assert len(labels) == 1 + n_alts
    assert len(set(labels)) == len(labels)


@pytest.mark.parametrize(
    "label",
    ["", "=", "grace=", "=off", "grace", "nosuch=off", "grace=banana"],
)
def test_malformed_flip_labels_rejected(label):
    with pytest.raises(InvalidParameterError):
        axes.config_from_flip(label)


def test_baseline_valued_flip_rejected():
    with pytest.raises(InvalidParameterError, match="baseline"):
        axes.config_from_flip("grace=on")


def test_multi_flip_config_has_no_label():
    cfg = axes.PolicyConfig(grace="off", family="det")
    with pytest.raises(InvalidParameterError, match="one-flip"):
        cfg.flip_label()


def test_invalid_axis_value_rejected_at_construction():
    with pytest.raises(InvalidParameterError):
        axes.PolicyConfig(estimator="psychic")


# --------------------------------------------------------------- cells


def test_cell_id_round_trip():
    for label, _ in axes.iter_flips():
        for workload in WORKLOADS:
            assert parse_cell_id(cell_id(label, workload)) == (label, workload)


@pytest.mark.parametrize(
    "bad",
    [
        "ablate/",
        "ablate/baseline",
        "ablate/grace=off/nosuchworkload",
        "ablate/grace=banana/queue",
        "fig2a",
        "ablate//queue",
    ],
)
def test_malformed_cell_ids_rejected(bad):
    with pytest.raises(ExperimentError):
        parse_cell_id(bad)


def test_registry_resolves_ablation_cells():
    assert known_experiment("ablate/baseline/queue")
    assert known_experiment("ablate/grace=off/txapp")
    assert not known_experiment("ablate/grace=banana/queue")
    assert not known_experiment("ablate/baseline/nosuch")
    assert not known_experiment("nosuch")


# -------------------------------------------------------------- scoring


def _row(flip, workload="queue", rep=0, **metrics):
    axis, _, value = flip.partition("=")
    if flip == axes.BASELINE_LABEL:
        axis = value = axes.BASELINE_LABEL
    base = dict(
        ops_per_sec=1e6,
        abort_rate=0.1,
        fallback_share=0.0,
        ratio_vs_opt=1.5,
        attempts_p90=4.0,
    )
    base.update(metrics)
    return dict(flip=flip, axis=axis, value=value, workload=workload, rep=rep, **base)


def test_empty_matrix_scores_empty():
    assert score_matrix([]) == []


def test_baseline_only_matrix_scores_empty():
    rows = [_row(axes.BASELINE_LABEL, rep=r) for r in range(3)]
    assert score_matrix(rows) == []


def test_missing_baseline_raises():
    rows = [_row("grace=off", rep=r) for r in range(2)]
    with pytest.raises(InvalidParameterError, match="baseline"):
        score_matrix(rows)


def test_disjoint_pairs_raise():
    rows = [_row(axes.BASELINE_LABEL, rep=0), _row("grace=off", rep=7)]
    with pytest.raises(InvalidParameterError, match="pairs"):
        score_matrix(rows)


def test_importance_ties_rank_alphabetically():
    rows = [_row(axes.BASELINE_LABEL, rep=r) for r in range(2)]
    # two flips with *identical* movement -> identical importance
    for flip in ("grace=off", "family=det"):
        rows += [
            _row(flip, rep=r, ops_per_sec=2e6, abort_rate=0.3) for r in range(2)
        ]
    ranked = rank_scores(score_matrix(rows, seed=0))
    assert [s.flip for s in ranked] == ["family=det", "grace=off"]
    assert ranked[0].importance == ranked[1].importance


def test_scores_are_paired_and_normalized():
    rows = [_row(axes.BASELINE_LABEL, rep=r) for r in range(2)]
    rows += [_row("grace=off", rep=r, ops_per_sec=0.5e6) for r in range(2)]
    (score,) = score_matrix(rows, seed=1)
    assert score.n_pairs == 2
    ops = score.metrics["ops_per_sec"]
    assert ops["delta"] == pytest.approx(-0.5)
    assert ops["ci_lo"] <= ops["delta"] <= ops["ci_hi"]
    # identical metrics contribute zero; importance = mean over all five
    assert score.importance == pytest.approx(0.5 / len(METRICS))


def test_bootstrap_is_seed_deterministic():
    rows = [_row(axes.BASELINE_LABEL, rep=r) for r in range(3)]
    rows += [
        _row("grace=off", rep=r, ops_per_sec=1e6 * (0.4 + 0.1 * r))
        for r in range(3)
    ]
    a = score_matrix(rows, seed=5)
    b = score_matrix(rows, seed=5)
    c = score_matrix(rows, seed=6)
    assert a[0].metrics == b[0].metrics  # same seed -> identical CIs
    assert a[0].importance == c[0].importance  # point estimates seed-free


# -------------------------------------------------------- cells + cache


def test_cell_runs_and_is_seed_deterministic():
    kwargs = dict(quick=True, seed=11)
    a = run_experiment("ablate/baseline/queue", **kwargs)
    b = run_experiment("ablate/baseline/queue", **kwargs)
    assert a.rows == b.rows
    row = a.rows[0]
    assert row["flip"] == axes.BASELINE_LABEL
    assert row["workload"] == "queue"
    for spec in METRICS:
        assert spec.name in row


def test_cache_hits_same_key_and_misses_on_fingerprint_change(tmp_path):
    cache_a = ResultCache(tmp_path, fingerprint="tree-a")
    first = run_experiment(
        "ablate/grace=off/queue", quick=True, seed=2, cache=cache_a
    )
    assert not first.cached
    warm = run_experiment(
        "ablate/grace=off/queue", quick=True, seed=2, cache=cache_a
    )
    assert warm.cached
    assert warm.rows == first.rows
    # a source-tree change is a new fingerprint -> every entry misses
    cache_b = ResultCache(tmp_path, fingerprint="tree-b")
    cold = run_experiment(
        "ablate/grace=off/queue", quick=True, seed=2, cache=cache_b
    )
    assert not cold.cached
    assert cold.rows == first.rows


def test_cache_entries_for_slash_ids_stay_flat(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="t")
    run_experiment("ablate/baseline/queue", quick=True, seed=0, cache=cache)
    entries = list(tmp_path.glob("*.json"))
    assert len(entries) == 1
    assert "/" not in entries[0].name
    (report,) = cache.scan()
    assert report.status == "ok"


# ---------------------------------------------------------- report/schema


def _tiny_matrix_rows():
    rows = [_row(axes.BASELINE_LABEL, rep=r) for r in range(2)]
    rows += [_row("grace=off", rep=r, ops_per_sec=0.5e6) for r in range(2)]
    return rows


def test_payload_validates_against_bench_schema():
    rows = _tiny_matrix_rows()
    scores = score_matrix(rows, seed=0)
    payload = build_payload(
        rows, scores, workloads=["queue"], replicates=2, quick=True, seed=0
    )
    assert bench_schema.validate_payload(payload, "ablate") is payload
    # and through a JSON round trip (what CI's read-side gate sees)
    assert bench_schema.validate_payload(
        json.loads(json.dumps(payload)), "ablate"
    )


def test_schema_rejects_noncontiguous_ranks_and_unsorted_importance():
    rows = _tiny_matrix_rows()
    scores = score_matrix(rows, seed=0)
    payload = build_payload(
        rows, scores, workloads=["queue"], replicates=2, quick=True, seed=0
    )
    broken = json.loads(json.dumps(payload))
    broken["ranking"][0]["rank"] = 5
    with pytest.raises(bench_schema.BenchSchemaError, match="contiguous"):
        bench_schema.validate_payload(broken, "ablate")

    two = json.loads(json.dumps(payload))
    two["ranking"].append(dict(two["ranking"][0], rank=2, flip="family=det"))
    two["ranking"][1]["importance"] = two["ranking"][0]["importance"] + 1
    with pytest.raises(bench_schema.BenchSchemaError, match="non-increasing"):
        bench_schema.validate_payload(two, "ablate")


def test_csv_and_markdown_render_deterministically():
    rows = _tiny_matrix_rows()
    scores = score_matrix(rows, seed=0)
    payload = build_payload(
        rows, scores, workloads=["queue"], replicates=2, quick=True, seed=0
    )
    csv = render_csv(rows)
    assert csv.splitlines()[0] == ",".join(CSV_COLUMNS)
    assert len(csv.splitlines()) == 1 + len(rows)
    assert csv == render_csv(rows)
    md = render_markdown(payload)
    assert "grace=off" in md
    assert md == render_markdown(payload)


# ------------------------------------------------------------------ CLI


def _ablate(tmp_path, out, *extra):
    argv = [
        "ablate", "--quick", "--seed", "7",
        "--flips", "grace=off", "--workloads", "queue", "--replicates", "1",
        "--cache-dir", str(tmp_path / "cache"), "--out", str(out), *extra,
    ]
    return main(argv)


def test_cli_reports_identical_across_jobs_and_cache_state(tmp_path, capsys):
    cold = tmp_path / "cold"
    assert _ablate(tmp_path, cold, "--jobs", "2") == 0
    assert "cache_hits=0" in capsys.readouterr().out

    warm = tmp_path / "warm"
    assert _ablate(tmp_path, warm) == 0
    assert "cache_hits=2" in capsys.readouterr().out

    nocache = tmp_path / "nocache"
    assert _ablate(tmp_path, nocache, "--no-cache") == 0
    assert "cache_hits=0" in capsys.readouterr().out

    for name in ("BENCH_ablate.json", "BENCH_ablate.csv", "BENCH_ablate.md"):
        blob = (cold / name).read_bytes()
        assert (warm / name).read_bytes() == blob
        assert (nocache / name).read_bytes() == blob

    payload = json.loads((cold / "BENCH_ablate.json").read_text())
    assert bench_schema.validate_payload(payload, "ablate")
    assert payload["seed"] == 7
    assert [e["flip"] for e in payload["ranking"]] == ["grace=off"]


@pytest.mark.parametrize(
    "argv",
    [
        ["ablate", "--jobs", "0"],
        ["ablate", "--replicates", "0"],
        ["ablate", "--flips", "grace=banana"],
        ["ablate", "--workloads", "nosuch"],
        ["ablate", "--workloads", ""],
    ],
)
def test_cli_rejects_bad_arguments(argv, capsys):
    assert main(argv) == 2
    assert capsys.readouterr().err


def test_schema_cli_validates_committed_artifacts(tmp_path, capsys):
    rows = _tiny_matrix_rows()
    payload = build_payload(
        rows, score_matrix(rows, seed=0),
        workloads=["queue"], replicates=2, quick=True, seed=0,
    )
    good = tmp_path / "BENCH_ablate.json"
    bench_schema.dump_payload(payload, "ablate", good)
    assert bench_schema.main([str(good)]) == 0
    assert "ok" in capsys.readouterr().out

    bad = tmp_path / "BENCH_ablate_bad.json"
    bad.write_text("{}")
    assert bench_schema.main([str(bad)]) == 1
    assert "FAIL" in capsys.readouterr().err
    assert bench_schema.main([]) == 2
