"""Tests for the hybrid resolver and the clairvoyant oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hybrid import HybridResolver
from repro.core.model import ConflictKind, ConflictModel
from repro.core.oracle import ClairvoyantPolicy
from repro.core.ratios import rand_ra_ratio, rand_rw_optimal_ratio
from repro.errors import InvalidParameterError

B = 200.0


class TestHybrid:
    def test_k2_picks_requestor_aborts(self):
        assert (
            HybridResolver(B).preferred_kind(2)
            is ConflictKind.REQUESTOR_ABORTS
        )

    @pytest.mark.parametrize("k", [3, 4, 10])
    def test_k3plus_picks_requestor_wins(self, k):
        assert HybridResolver(B).preferred_kind(k) is ConflictKind.REQUESTOR_WINS

    def test_hybrid_ratio_is_min(self):
        resolver = HybridResolver(B)
        for k in (2, 3, 6):
            decision = resolver.resolve(k, rng=0)
            assert decision.expected_ratio == pytest.approx(
                min(rand_rw_optimal_ratio(k), rand_ra_ratio(k))
            )

    def test_pinned_kind(self):
        resolver = HybridResolver(
            B, allow_switching=False, pinned_kind=ConflictKind.REQUESTOR_WINS
        )
        assert resolver.preferred_kind(2) is ConflictKind.REQUESTOR_WINS

    def test_policy_cache_reuse(self):
        resolver = HybridResolver(B)
        assert resolver.policy_for(3) is resolver.policy_for(3)

    def test_resolve_delay_within_support(self):
        resolver = HybridResolver(B)
        for k in (2, 5):
            decision = resolver.resolve(k, rng=7)
            lo, hi = decision.policy.support
            assert lo <= decision.delay <= hi

    def test_mu_passed_through(self):
        resolver = HybridResolver(B, mu=10.0)
        policy = resolver.policy_for(2)
        assert "mu" in policy.name

    def test_model_for(self):
        model = HybridResolver(B).model_for(4)
        assert model.kind is ConflictKind.REQUESTOR_WINS
        assert model.k == 4


class TestOracle:
    def test_waits_when_cheap(self, rw_model):
        oracle = ClairvoyantPolicy(rw_model)
        assert oracle.decide(30.0) == 30.0

    def test_aborts_when_expensive(self, rw_model):
        oracle = ClairvoyantPolicy(rw_model)
        assert oracle.decide(150.0) == 0.0

    def test_boundary_waits(self, rw_model):
        # (k-1)*D == B: waiting costs exactly B, same as abort
        oracle = ClairvoyantPolicy(rw_model)
        assert oracle.decide(rw_model.B) == rw_model.B

    def test_chain_threshold(self):
        model = ConflictModel(ConflictKind.REQUESTOR_WINS, 100.0, 5)
        oracle = ClairvoyantPolicy(model)
        assert oracle.decide(20.0) == 20.0
        assert oracle.decide(30.0) == 0.0

    def test_vectorized(self, rw_model, rng):
        oracle = ClairvoyantPolicy(rw_model)
        d = rng.random(100) * 300
        vec = oracle.decide_vec(d)
        for i in range(0, 100, 11):
            assert vec[i] == oracle.decide(float(d[i]))

    def test_cost_is_opt(self, rw_model):
        oracle = ClairvoyantPolicy(rw_model)
        assert oracle.cost(30.0) == rw_model.opt(30.0)

    def test_achieves_opt_cost_through_model(self, rw_model, rng):
        oracle = ClairvoyantPolicy(rw_model)
        for _ in range(100):
            d = float(rng.random() * 300)
            assert rw_model.cost(oracle.decide(d), d) == pytest.approx(
                rw_model.opt(d)
            )

    def test_online_interface_guarded(self, rw_model):
        oracle = ClairvoyantPolicy(rw_model)
        with pytest.raises(NotImplementedError):
            oracle.sample()
        with pytest.raises(NotImplementedError):
            oracle.cdf(1.0)

    def test_invalid_remaining(self, rw_model):
        with pytest.raises(InvalidParameterError):
            ClairvoyantPolicy(rw_model).decide(-1.0)

    def test_needs_model(self):
        with pytest.raises(InvalidParameterError):
            ClairvoyantPolicy("nope")  # type: ignore[arg-type]
