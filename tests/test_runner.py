"""Hardened experiment runner: registration, watchdog, retries,
checkpoint/resume, and the CLI's --keep-going failure handling."""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main
from repro.errors import (
    ExperimentError,
    ExperimentTimeoutError,
    SimulationError,
)
from repro.experiments import EXPERIMENTS, register_experiment, run_experiment
from repro.experiments.registry import _SPECS
from repro.experiments.report import render_failures


@pytest.fixture
def scratch(monkeypatch):
    """Register throwaway experiments; deregister them afterwards."""
    registered: list[str] = []

    def _register(exp_id, runner, **kwargs):
        register_experiment(
            exp_id, f"test double {exp_id}", runner, **kwargs
        )
        registered.append(exp_id)
        return exp_id

    yield _register
    for exp_id in registered:
        _SPECS.pop(exp_id, None)
        EXPERIMENTS.pop(exp_id, None)


def _rows(**kw):
    return [{"x": 1}]


def _ckpt_done(path) -> dict:
    """Replay a checkpoint journal's done map (read-only)."""
    from repro.parallel import recover

    return recover(path, truncate=False).done_map()


def _hang(**kw):  # killed only by the watchdog
    while True:
        time.sleep(0.02)


class TestRegistration:
    def test_register_and_run(self, scratch):
        exp_id = scratch("zz_double", _rows)
        assert exp_id in EXPERIMENTS
        result = run_experiment(exp_id)
        assert result.rows == [{"x": 1}]

    def test_shadowing_guard(self, scratch):
        scratch("zz_double", _rows)
        with pytest.raises(ExperimentError, match="already registered"):
            register_experiment("zz_double", "again", _rows)
        register_experiment(
            "zz_double", "again", lambda **kw: [{"x": 2}], replace=True
        )
        assert run_experiment("zz_double").rows == [{"x": 2}]

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("no_such_thing")


class TestWatchdog:
    def test_kills_hanging_experiment(self, scratch):
        exp_id = scratch("zz_hang", _hang)
        start = time.monotonic()
        with pytest.raises(ExperimentTimeoutError, match="wall-clock"):
            run_experiment(exp_id, timeout=0.2)
        assert time.monotonic() - start < 5.0

    def test_timeout_never_retried(self, scratch):
        calls = []

        def hang(**kw):
            calls.append(1)
            _hang()

        exp_id = scratch("zz_hang_retry", hang)
        with pytest.raises(ExperimentTimeoutError):
            run_experiment(exp_id, timeout=0.2, retries=3)
        assert len(calls) == 1

    def test_fast_experiment_unaffected(self, scratch):
        exp_id = scratch("zz_fast", _rows)
        assert run_experiment(exp_id, timeout=30.0).rows == [{"x": 1}]

    def test_machine_level_deadline(self):
        """The engine watchdog backs the signal one up off the main
        thread: an already-expired wall budget kills the run."""
        from repro.htm import Machine, MachineParams, RandDelay
        from repro.workloads import QueueWorkload

        machine = Machine(MachineParams(n_cores=2), lambda i: RandDelay())
        machine.load(QueueWorkload(), seed=0)
        with pytest.raises(ExperimentTimeoutError):
            machine.run(50_000.0, wall_timeout=0.0)


class TestRetries:
    def test_transient_failures_retried(self, scratch):
        calls = []

        def flaky(**kw):
            calls.append(1)
            if len(calls) < 3:
                raise SimulationError("transient")
            return [{"ok": True}]

        exp_id = scratch("zz_flaky", flaky)
        result = run_experiment(exp_id, retries=3, retry_backoff=0.001)
        assert result.rows == [{"ok": True}]
        assert len(calls) == 3

    def test_retries_exhausted(self, scratch):
        calls = []

        def broken(**kw):
            calls.append(1)
            raise SimulationError("always")

        exp_id = scratch("zz_broken", broken)
        with pytest.raises(SimulationError):
            run_experiment(exp_id, retries=1, retry_backoff=0.001)
        assert len(calls) == 2

    def test_no_retries_by_default(self, scratch):
        calls = []

        def broken(**kw):
            calls.append(1)
            raise SimulationError("always")

        exp_id = scratch("zz_broken2", broken)
        with pytest.raises(SimulationError):
            run_experiment(exp_id)
        assert len(calls) == 1

    def test_negative_retries_rejected(self, scratch):
        exp_id = scratch("zz_neg", _rows)
        with pytest.raises(ExperimentError):
            run_experiment(exp_id, retries=-1)

    def test_engine_raised_timeout_never_retried(self, scratch):
        """The watchdog contract (simlint ERR rules): a timeout raised
        from *inside* the experiment — the engine deadline path, which
        does not involve SIGALRM — must propagate on the first attempt,
        never entering the retry loop."""
        calls = []

        def deadline(**kw):
            calls.append(1)
            raise ExperimentTimeoutError("engine wall-clock deadline")

        exp_id = scratch("zz_engine_to", deadline)
        with pytest.raises(ExperimentTimeoutError):
            run_experiment(exp_id, retries=5, retry_backoff=0.001)
        assert len(calls) == 1

    def test_keyboard_interrupt_propagates_unretried(self, scratch):
        """Ctrl-C is never swallowed or retried by the runner: the
        retry loop catches SimulationError only."""
        calls = []

        def interrupted(**kw):
            calls.append(1)
            raise KeyboardInterrupt

        exp_id = scratch("zz_intr", interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_experiment(exp_id, retries=5, retry_backoff=0.001)
        assert len(calls) == 1


class TestCli:
    def test_keep_going_collects_failures(self, scratch, capsys):
        def broken(**kw):
            raise SimulationError("injected failure")

        bad = scratch("zz_bad", broken)
        good = scratch("zz_good", _rows)
        rc = main([bad, good, "--keep-going"])
        out, err = capsys.readouterr()
        assert rc == 1
        assert f"[{good} completed" in out  # kept going past the failure
        assert "1 experiment(s) FAILED" in err
        assert "SimulationError: injected failure" in err

    def test_first_failure_aborts_without_keep_going(self, scratch, capsys):
        def broken(**kw):
            raise SimulationError("boom")

        bad = scratch("zz_bad2", broken)
        good = scratch("zz_good2", _rows)
        rc = main([bad, good])
        out, err = capsys.readouterr()
        assert rc == 1
        assert f"[{good} completed" not in out  # never reached
        assert "FAILED" in err

    def test_unknown_id_exit_code(self, capsys):
        assert main(["zz_nope"]) == 2

    def test_checkpoint_and_resume(self, scratch, tmp_path, capsys):
        calls = []

        def counted(**kw):
            calls.append(1)
            return [{"x": 1}]

        def broken(**kw):
            raise SimulationError("boom")

        good = scratch("zz_ck_good", counted)
        bad = scratch("zz_ck_bad", broken)
        ckpt = tmp_path / "ck.json"
        rc = main([good, bad, "--keep-going", "--checkpoint", str(ckpt)])
        assert rc == 1
        done = _ckpt_done(ckpt)
        assert done[good]["status"] == "ok"
        assert done[bad]["status"] == "failed"
        assert len(calls) == 1

        # resume: the completed experiment is skipped, the failed one
        # re-attempted (and it fails again -> still exit 1)
        rc = main(
            [good, bad, "--keep-going", "--checkpoint", str(ckpt), "--resume"]
        )
        out, _ = capsys.readouterr()
        assert rc == 1
        assert len(calls) == 1  # not re-run
        assert "skipping" in out

    def test_resume_after_fix_exits_clean(self, scratch, tmp_path):
        attempts = []

        def flaky_once(**kw):
            attempts.append(1)
            if len(attempts) == 1:
                raise SimulationError("first run dies")
            return [{"x": 1}]

        exp_id = scratch("zz_fix", flaky_once)
        ckpt = tmp_path / "ck.json"
        args = [exp_id, "--keep-going", "--checkpoint", str(ckpt), "--resume"]
        assert main(args) == 1
        assert main(args) == 0  # re-attempt succeeds, checkpoint updated
        assert _ckpt_done(ckpt)[exp_id]["status"] == "ok"
        assert main(args) == 0  # now skipped entirely
        assert len(attempts) == 2

    def test_mismatched_checkpoint_ignored(self, scratch, tmp_path, capsys):
        calls = []

        def counted(**kw):
            calls.append(1)
            return [{"x": 1}]

        exp_id = scratch("zz_mismatch", counted)
        ckpt = tmp_path / "ck.json"
        assert main([exp_id, "--checkpoint", str(ckpt), "--resume"]) == 0
        assert len(calls) == 1
        # same checkpoint, different seed: must NOT skip
        rc = main(
            [exp_id, "--checkpoint", str(ckpt), "--resume", "--seed", "9"]
        )
        _, err = capsys.readouterr()
        assert rc == 0
        assert len(calls) == 2
        assert "different run" in err

    def test_corrupt_checkpoint_ignored(self, scratch, tmp_path):
        exp_id = scratch("zz_corrupt", _rows)
        ckpt = tmp_path / "ck.json"
        ckpt.write_text("{not json")
        assert main([exp_id, "--checkpoint", str(ckpt), "--resume"]) == 0
        assert _ckpt_done(ckpt)[exp_id]["status"] == "ok"

    def test_watchdog_with_keep_going_still_reports(self, scratch, capsys):
        """PR acceptance: a hanging experiment is killed by the
        watchdog while --keep-going lets the rest of the batch (here
        the real quick-mode robustness bench) complete and render."""
        hang = scratch("zz_hang_cli", _hang)
        rc = main(
            [hang, "robustness", "--quick", "--keep-going", "--timeout", "1"]
        )
        out, err = capsys.readouterr()
        assert rc == 1
        assert "ExperimentTimeoutError" in err
        assert "[robustness completed" in out  # batch survived the hang


class TestRenderFailures:
    def test_empty(self):
        assert "all experiments completed" in render_failures([])

    def test_rows(self):
        text = render_failures(
            [
                {
                    "exp_id": "fig9z",
                    "error_type": "SimulationError",
                    "error": "boom",
                }
            ]
        )
        assert "1 experiment(s) FAILED" in text
        assert "fig9z" in text and "boom" in text
