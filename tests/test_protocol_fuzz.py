"""Protocol fuzzing: random machine configurations, every invariant on.

Each case draws a random geometry (tiny caches force capacity traffic),
a random policy, a random workload, and a random topology; the run must
finish, drain, verify, and satisfy every protocol invariant.  This is
the test that has historically caught protocol races (stale fills,
zombie requests) — breadth over depth.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.htm import (
    DetDelay,
    GreedyCM,
    HybridDelay,
    Machine,
    MachineParams,
    NoDelay,
    RandDelay,
    RequestorAbortsDelay,
    TunedDelay,
)
from repro.htm.interconnect import FixedLatency, MeshTopology
from repro.rngutil import ensure_rng
from repro.workloads import (
    BankWorkload,
    CounterWorkload,
    ListSetWorkload,
    QueueWorkload,
    StackWorkload,
    TxAppWorkload,
)

POLICIES = [
    lambda: NoDelay(),
    lambda: RandDelay(),
    lambda: DetDelay(),
    lambda: TunedDelay(80),
    lambda: RequestorAbortsDelay(),
    lambda: HybridDelay(),
    lambda: GreedyCM(),
]

WORKLOADS = [
    lambda: CounterWorkload(),
    lambda: StackWorkload(prefill=8),
    lambda: QueueWorkload(prefill=8),
    lambda: TxAppWorkload(n_objects=16, work_cycles=40),
    lambda: BankWorkload(n_accounts=8, p_audit=0.2),
    lambda: ListSetWorkload(key_range=16, prefill=4),
]


def _random_config(rng):
    n_cores = int(rng.choice([2, 3, 4, 6, 8]))
    params = MachineParams(
        n_cores=n_cores,
        l1_sets=int(rng.choice([1, 2, 8, 64])),
        l1_assoc=int(rng.choice([2, 4, 8])),
        abort_cycles=int(rng.choice([10, 60, 150])),
        abort_overhead=int(rng.choice([20, 100, 300])),
        retry_backoff_base=int(rng.choice([0, 8, 32])),
        max_retries=int(rng.choice([1, 4, 8])),
    )
    topology = (
        MeshTopology(n_cores, per_hop=int(rng.choice([1, 3])))
        if rng.random() < 0.5
        else FixedLatency(int(rng.choice([0, 4, 10])))
    )
    policy_factory = POLICIES[int(rng.integers(0, len(POLICIES)))]
    workload = WORKLOADS[int(rng.integers(0, len(WORKLOADS)))]()
    wedge = bool(rng.random() < 0.9)
    cycles = bool(rng.random() < 0.9)
    return params, topology, policy_factory, workload, wedge, cycles


def _random_plan(rng) -> FaultPlan:
    """A random active fault plan; every injector has a chance to be on
    and at least one always is (the all-off draw re-rolls spurious)."""
    plan = FaultPlan(
        spurious_abort_rate=float(rng.choice([0.0, 5e-4, 2e-3, 5e-3])),
        capacity_shrink_prob=float(rng.choice([0.0, 0.2, 0.5])),
        capacity_ways_lost=int(rng.choice([1, 2, 4])),
        link_jitter_rate=float(rng.choice([0.0, 0.1, 0.4])),
        link_jitter_cycles=int(rng.choice([1, 8, 32])),
        probe_dup_rate=float(rng.choice([0.0, 0.05, 0.2])),
        stall_rate=float(rng.choice([0.0, 0.05, 0.2])),
        stall_cycles=int(rng.choice([10, 100, 400])),
        b_noise=float(rng.choice([0.0, 0.3, 1.0])),
        k_noise=float(rng.choice([0.0, 0.3, 1.0])),
        mu_noise=float(rng.choice([0.0, 0.5])),
    )
    if plan.is_null():
        plan = FaultPlan(spurious_abort_rate=2e-3)
    return plan


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(24))
def test_random_machine_configuration(seed):
    rng = ensure_rng(10_000 + seed)
    params, topology, policy_factory, workload, wedge, cycles = _random_config(
        rng
    )
    machine = Machine(
        params,
        lambda i: policy_factory(),
        topology=topology,
        wedge_aware=wedge,
        detect_cycles=cycles,
    )
    machine.load(workload, seed=seed)
    stats = machine.run(40_000.0)
    workload.verify(machine)
    machine.check_invariants()
    assert machine._waits == {}, "waits-for edges leaked"
    assert stats.ops_completed > 0


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(24))
def test_random_machine_with_faults(seed):
    """Fault injection must never break linearizability: under random
    spurious aborts, capacity pressure, delayed/duplicated coherence
    messages, stalls, and estimator noise, the run still drains,
    ``workload.verify`` passes (no WorkloadError), and every protocol
    invariant holds.  Faults cost throughput, never correctness."""
    rng = ensure_rng(20_000 + seed)
    params, topology, policy_factory, workload, wedge, cycles = _random_config(
        rng
    )
    plan = _random_plan(rng)
    machine = Machine(
        params,
        lambda i: policy_factory(),
        topology=topology,
        wedge_aware=wedge,
        detect_cycles=cycles,
        faults=plan,
    )
    machine.load(workload, seed=seed)
    stats = machine.run(40_000.0)
    workload.verify(machine)  # raises WorkloadError on corruption
    machine.check_invariants()
    assert machine._waits == {}, "waits-for edges leaked"
    assert stats.ops_completed > 0
    assert sum(stats.fault_counts().values()) > 0, plan.describe()
