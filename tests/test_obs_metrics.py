"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    disable_metrics,
    enable_metrics,
    get_registry,
    merge_snapshots,
    use_registry,
)


class TestInstruments:
    def test_counter_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_parent_chaining(self):
        parent = Counter("x")
        child = Counter("x", parent)
        child.inc(3)
        assert child.value == 3
        assert parent.value == 3
        parent.inc()  # parent-only increments do not flow down
        assert child.value == 3

    def test_gauge_last_write_wins(self):
        parent = Gauge("depth")
        g = Gauge("depth", parent)
        g.set(7)
        g.set(2)
        assert g.value == 2
        assert parent.value == 2

    def test_histogram_bucketing(self):
        h = Histogram("lat", (0.0, 1.0, 2.0, 4.0))
        for x in (-0.5, 0.0, 0.5, 1.0, 3.9, 4.0, 100.0):
            h.observe(x)
        assert h.underflow == 1  # -0.5
        assert h.counts == [2, 1, 1]  # [0,1): 0.0, 0.5; [1,2): 1.0; [2,4): 3.9
        assert h.overflow == 2  # 4.0, 100.0 (right edge is exclusive)
        assert h.n == 7

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(InvalidParameterError):
            Histogram("h", (1.0,))
        with pytest.raises(InvalidParameterError):
            Histogram("h", (1.0, 1.0))
        with pytest.raises(InvalidParameterError):
            Histogram("h", (2.0, 1.0))

    def test_histogram_parent_chaining(self):
        parent = Histogram("h", (0.0, 1.0))
        child = Histogram("h", (0.0, 1.0), parent)
        child.observe(0.5)
        assert parent.n == child.n == 1


class TestRegistry:
    def test_handles_are_cached(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        h = reg.histogram("h", (0.0, 1.0))
        assert reg.histogram("h") is h

    def test_histogram_requires_edges_on_create(self):
        reg = MetricsRegistry()
        with pytest.raises(InvalidParameterError, match="pass its edges"):
            reg.histogram("missing")

    def test_histogram_edge_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (0.0, 1.0))
        with pytest.raises(InvalidParameterError, match="different edges"):
            reg.histogram("h", (0.0, 2.0))

    def test_parent_chaining_via_registry(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.counter("ops").inc(5)
        assert parent.counter("ops").value == 5

    def test_counter_values_prefix_sorted(self):
        reg = MetricsRegistry()
        reg.counter("fault_b").inc(2)
        reg.counter("fault_a").inc(1)
        reg.counter("other").inc(9)
        assert reg.counter_values("fault_") == {"fault_a": 1, "fault_b": 2}
        assert list(reg.counter_values()) == ["fault_a", "fault_b", "other"]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(3)
        reg.histogram("h", (0.0, 1.0)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 3}
        assert snap["histograms"]["h"]["n"] == 1

    def test_reset_zeroes_in_place(self):
        reg = MetricsRegistry()
        handle = reg.counter("c")
        hist = reg.histogram("h", (0.0, 1.0))
        handle.inc(5)
        hist.observe(0.5)
        reg.reset()
        assert handle.value == 0
        assert hist.n == 0 and hist.counts == [0]
        handle.inc()  # pre-reset handles keep counting into the registry
        assert reg.snapshot()["counters"]["c"] == 1


class TestMerge:
    def snap(self, **counters):
        reg = MetricsRegistry()
        for name, v in counters.items():
            reg.counter(name).inc(v)
        return reg.snapshot()

    def test_counters_merge_order_free(self):
        a, b = self.snap(x=1, y=2), self.snap(x=10)
        merged = merge_snapshots([a, b])
        assert merged["counters"] == {"x": 11, "y": 2}
        assert merge_snapshots([b, a])["counters"] == merged["counters"]

    def test_gauges_merge_last_write_wins_in_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(1)
        b.gauge("depth").set(9)
        assert (
            merge_snapshots([a.snapshot(), b.snapshot()])["gauges"]["depth"]
            == 9
        )
        assert (
            merge_snapshots([b.snapshot(), a.snapshot()])["gauges"]["depth"]
            == 1
        )

    def test_histograms_merge_exactly(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, xs in ((a, (0.1, 5.0)), (b, (-1.0, 0.9))):
            h = reg.histogram("h", (0.0, 1.0, 2.0))
            for x in xs:
                h.observe(x)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])["histograms"]["h"]
        assert merged == {
            "edges": [0.0, 1.0, 2.0],
            "counts": [2, 0],
            "underflow": 1,
            "overflow": 1,
            "n": 4,
        }

    def test_merge_is_associative_for_integers(self):
        snaps = [self.snap(x=i) for i in (1, 2, 3)]
        left = merge_snapshots([merge_snapshots(snaps[:2]), snaps[2]])
        right = merge_snapshots([snaps[0], merge_snapshots(snaps[1:])])
        assert left == right == merge_snapshots(snaps)


class TestModuleState:
    def test_default_is_null_registry(self):
        assert get_registry() is NULL_REGISTRY
        assert not get_registry().enabled

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("c").inc()
        NULL_REGISTRY.gauge("g").set(1)
        NULL_REGISTRY.histogram("h").observe(0.5)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_enable_disable_roundtrip(self):
        reg = enable_metrics()
        try:
            assert get_registry() is reg
            assert reg.enabled
        finally:
            disable_metrics()
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_restores_previous(self):
        inner = MetricsRegistry()
        with use_registry(inner):
            assert get_registry() is inner
            get_registry().counter("seen").inc()
        assert get_registry() is NULL_REGISTRY
        assert inner.snapshot()["counters"] == {"seen": 1}
