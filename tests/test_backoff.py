"""Tests for the Corollary 2 backoff mechanism."""

from __future__ import annotations

import math

import pytest

from repro.core.backoff import (
    BackoffPolicy,
    progress_attempt_bound,
    progress_probability_lb,
)
from repro.core.requestor_wins import UniformRW
from repro.errors import InvalidParameterError


def make(B0=50.0, **kwargs) -> BackoffPolicy:
    return BackoffPolicy(lambda b: UniformRW(b, 2), B0=B0, **kwargs)


class TestStateMachine:
    def test_initial_state(self):
        policy = make()
        assert policy.current_B == 50.0
        assert policy.aborts == 0

    def test_doubling(self):
        policy = make()
        policy.record_abort()
        assert policy.current_B == 100.0
        policy.record_abort()
        assert policy.current_B == 200.0
        assert policy.aborts == 2

    def test_commit_resets(self):
        policy = make()
        policy.record_abort()
        policy.record_commit()
        assert policy.current_B == 50.0
        assert policy.aborts == 0

    def test_additive(self):
        policy = make(factor=1.0, increment=10.0)
        policy.record_abort()
        assert policy.current_B == 60.0

    def test_mixed_growth(self):
        policy = make(factor=2.0, increment=5.0)
        policy.record_abort()
        assert policy.current_B == 105.0

    def test_cap(self):
        policy = make(max_B=120.0)
        for _ in range(10):
            policy.record_abort()
        assert policy.current_B == 120.0

    def test_inner_policy_scales(self, rng):
        policy = make()
        lo, hi = policy.support
        assert hi == pytest.approx(50.0)
        policy.record_abort()
        lo, hi = policy.support
        assert hi == pytest.approx(100.0)
        assert 0.0 <= policy.sample(rng) <= 100.0

    def test_no_growth_rejected(self):
        with pytest.raises(InvalidParameterError):
            make(factor=1.0, increment=0.0)

    def test_bad_params(self):
        with pytest.raises(InvalidParameterError):
            make(B0=-1.0)
        with pytest.raises(InvalidParameterError):
            make(factor=0.5)

    def test_delegated_distribution(self):
        policy = make()
        assert policy.cdf(25.0) == pytest.approx(0.5)
        assert policy.pdf(10.0) == pytest.approx(1 / 50.0)
        assert not policy.is_deterministic()

    def test_name_mentions_inner(self):
        assert "RRW" in make().name


class TestAttemptBound:
    def test_formula(self):
        # log2(800) + log2(2) + log2(2) - log2(100) + 2
        raw = math.log2(800) + 1 + 1 - math.log2(100) + 2
        assert progress_attempt_bound(800.0, 2, 2, 100.0) == math.ceil(raw)

    def test_minimum_one(self):
        assert progress_attempt_bound(1.0, 1, 2, 1e9) == 1

    def test_monotone_in_y(self):
        bounds = [progress_attempt_bound(y, 2, 2, 50.0) for y in (10, 100, 1e4)]
        assert bounds == sorted(bounds)

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            progress_attempt_bound(0.0, 1, 2, 10.0)
        with pytest.raises(InvalidParameterError):
            progress_attempt_bound(10.0, 0, 2, 10.0)


class TestProbabilityLowerBound:
    def test_half_at_doubled_cost(self):
        """Once B' >= 2*k*y*gamma the bound gives >= 1/2."""
        y, gamma, k = 100.0, 4, 2
        B_big = 2 * k * y * gamma
        assert progress_probability_lb(y, gamma, k, B_big) >= 0.5

    def test_zero_when_hopeless(self):
        assert progress_probability_lb(100.0, 1, 2, 50.0) == 0.0

    def test_monotone_in_B(self):
        vals = [
            progress_probability_lb(100.0, 2, 2, b) for b in (250.0, 500.0, 5000.0)
        ]
        assert vals == sorted(vals)


class TestEndToEndProgress:
    def test_corollary2_monte_carlo(self, rng):
        """A transaction meeting gamma conflicts per run commits within
        the bound with probability >= 1/2 (here it is much higher)."""
        from repro.adversary import TimedArena

        y, gamma, k, B0 = 700.0, 3, 2, 40.0
        arena = TimedArena()
        conflicts = [(y * (1 - (i + 0.5) / gamma) + 1, k) for i in range(gamma)]
        bound = progress_attempt_bound(y, gamma, k, B0)
        within = 0
        trials = 200
        for _ in range(trials):
            policy = make(B0=B0)
            record = arena.run_transaction(y, conflicts, policy, rng)
            assert record.committed
            within += record.attempts <= bound
        assert within / trials >= 0.5
