"""Unit tests for the trace bus and its serializers (repro.obs.tracebus)."""

from __future__ import annotations

import json

from repro.obs import capture, obs_active
from repro.obs.tracebus import (
    EVENT_KINDS,
    JsonlSink,
    ListSink,
    NULL_BUS,
    ObsEvent,
    TraceBus,
    chrome_trace,
    disable_tracing,
    enable_tracing,
    get_bus,
    jsonl_line,
    replay,
    use_bus,
    write_jsonl,
)


class TestEvent:
    def test_kind_vocabulary(self):
        assert "commit" in EVENT_KINDS
        assert "cache_miss" in EVENT_KINDS
        assert "worker_crashed" in EVENT_KINDS
        assert "journal_recovered" in EVENT_KINDS
        assert "decision_served" in EVENT_KINDS
        assert "regime_switch" in EVENT_KINDS
        assert "ablation_run" in EVENT_KINDS
        assert len(EVENT_KINDS) == 19

    def test_format_is_one_line(self):
        event = ObsEvent(12.5, "abort", 3, {"reason": "conflict_timeout"})
        text = event.format()
        assert "\n" not in text
        assert "abort" in text and "reason=conflict_timeout" in text

    def test_jsonl_line_is_canonical(self):
        event = ObsEvent(1.0, "conflict", 2, {"k": 2, "delay": 4.0})
        line = jsonl_line(event)
        assert line == (
            '{"core":2,"data":{"delay":4.0,"k":2},"kind":"conflict","ts":1.0}'
        )
        # canonical bytes: equal streams <=> equal lines
        assert jsonl_line(ObsEvent(1.0, "conflict", 2, {"delay": 4.0, "k": 2})) == line

    def test_write_jsonl_roundtrip(self, tmp_path):
        events = [
            ObsEvent(1.0, "txn_begin", 0),
            ObsEvent(2.0, "commit", 0, {"duration": 1.0}),
        ]
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(events, path) == 2
        lines = path.read_text().splitlines()
        assert [json.loads(l)["kind"] for l in lines] == ["txn_begin", "commit"]


class TestChromeTrace:
    def test_commit_with_duration_is_complete_slice(self):
        doc = chrome_trace([ObsEvent(10.0, "commit", 1, {"duration": 4.0})])
        (slice_,) = doc["traceEvents"]
        assert slice_["ph"] == "X"
        assert slice_["ts"] == 6.0 and slice_["dur"] == 4.0
        assert slice_["tid"] == 1

    def test_other_events_are_instants(self):
        doc = chrome_trace([ObsEvent(3.0, "abort", 2, {"reason": "x"})])
        (inst,) = doc["traceEvents"]
        assert inst["ph"] == "i" and inst["ts"] == 3.0
        assert inst["args"] == {"reason": "x"}


class TestBus:
    def test_emit_fans_out_and_counts(self):
        bus = TraceBus()
        a, b = ListSink(), ListSink()
        bus.subscribe(a)
        bus.subscribe(b)
        bus.subscribe(a)  # double-subscribe is a no-op
        event = bus.emit(1.0, "txn_begin", 0)
        assert bus.emitted == 1
        assert a.events == b.events == [event]
        bus.unsubscribe(b)
        bus.emit(2.0, "commit", 0)
        assert len(a.events) == 2 and len(b.events) == 1

    def test_jsonl_sink_dump(self, tmp_path):
        bus = TraceBus()
        sink = JsonlSink()
        bus.subscribe(sink)
        bus.emit(1.0, "cache_hit", -1, exp_id="fig2a")
        path = tmp_path / "out.jsonl"
        assert sink.dump(path) == 1
        assert json.loads(path.read_text())["data"] == {"exp_id": "fig2a"}

    def test_replay_preserves_order(self):
        events = [ObsEvent(float(i), "txn_begin", i) for i in range(3)]
        bus = TraceBus()
        sink = ListSink()
        bus.subscribe(sink)
        replay(events, bus)
        assert sink.events == events
        assert bus.emitted == 3

    def test_null_bus_is_inert(self):
        sink = ListSink()
        NULL_BUS.subscribe(sink)
        assert NULL_BUS.emit(1.0, "commit", 0) is None
        NULL_BUS.publish(ObsEvent(1.0, "commit", 0))
        assert sink.events == []
        assert NULL_BUS.emitted == 0


class TestModuleState:
    def test_default_is_null_bus(self):
        assert get_bus() is NULL_BUS
        assert not obs_active()

    def test_enable_disable_roundtrip(self):
        bus = enable_tracing()
        try:
            assert get_bus() is bus and bus.enabled
            assert obs_active()
        finally:
            disable_tracing()
        assert get_bus() is NULL_BUS

    def test_use_bus_restores_previous(self):
        inner = TraceBus()
        with use_bus(inner):
            assert get_bus() is inner
        assert get_bus() is NULL_BUS


class TestCapture:
    def test_capture_collects_both_halves(self):
        with capture() as cap:
            assert obs_active()
            from repro.obs import get_registry

            get_registry().counter("seen").inc(2)
            get_bus().emit(1.0, "commit", 0, duration=0.5)
        assert not obs_active()
        # the capture stays valid after the block
        assert cap.snapshot()["counters"] == {"seen": 2}
        assert [e.kind for e in cap.events] == ["commit"]

    def test_nested_captures_are_independent(self):
        with capture() as outer:
            get_bus().emit(1.0, "txn_begin", 0)
            with capture() as inner:
                get_bus().emit(2.0, "abort", 0, reason="x")
            get_bus().emit(3.0, "commit", 0)
        assert [e.kind for e in inner.events] == ["abort"]
        assert [e.kind for e in outer.events] == ["txn_begin", "commit"]
