"""simlint rule fixtures: for every rule family a snippet that must
trigger it, a snippet that must pass clean, and a suppression check.

Paths matter: DET rules only apply under simulation-critical
directories (sim/htm/workloads/adversary/faults/distributions), so
fixtures use ``src/repro/htm/...`` paths to opt in and ``src/repro/
core/...`` to opt out.
"""

from __future__ import annotations

import pytest

from repro.analysis import lint_sources

SIM_PATH = "src/repro/htm/fixture.py"
UNSCOPED_PATH = "src/repro/core/fixture.py"


def hits(source, path=SIM_PATH, select=None, **extra_sources):
    sources = {path: source, **extra_sources}
    return [f.rule for f in lint_sources(sources, select=select).findings]


def suppressed(source, path=SIM_PATH):
    return lint_sources({path: source}).suppressed


# ---------------------------------------------------------------------------
# DET001 — wall clock
# ---------------------------------------------------------------------------
class TestWallClock:
    def test_time_call_flagged_in_sim_code(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert hits(src) == ["DET001"]

    def test_monotonic_and_from_import_flagged(self):
        src = (
            "from time import monotonic as mono\n"
            "def f():\n"
            "    return mono()\n"
        )
        assert hits(src) == ["DET001"]

    def test_datetime_now_flagged(self):
        src = (
            "import datetime\n"
            "def f():\n"
            "    return datetime.datetime.now()\n"
        )
        assert hits(src) == ["DET001"]

    def test_unscoped_file_not_flagged(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert hits(src, path=UNSCOPED_PATH) == []

    def test_sim_clock_clean(self):
        src = "def f(sim):\n    return sim.now\n"
        assert hits(src) == []

    def test_suppression_with_justification(self):
        src = (
            "import time\n"
            "def f(budget):\n"
            "    return time.monotonic() + budget  "
            "# simlint: disable=DET001 -- watchdog deadline\n"
        )
        assert hits(src) == []
        (sup,) = suppressed(src)
        assert sup.finding.rule == "DET001"
        assert sup.reason == "watchdog deadline"


# ---------------------------------------------------------------------------
# DET002 — stdlib random
# ---------------------------------------------------------------------------
class TestStdlibRandom:
    def test_import_random_flagged(self):
        assert hits("import random\n") == ["DET002"]

    def test_from_random_flagged(self):
        assert hits("from random import choice\n") == ["DET002"]

    def test_numpy_import_clean(self):
        assert hits("import numpy as np\n") == []

    def test_rngutil_clean(self):
        assert hits("from repro.rngutil import stream_for\n") == []

    def test_suppression(self):
        assert hits("import random  # simlint: disable=DET002\n") == []


# ---------------------------------------------------------------------------
# DET003 — numpy RNG singleton
# ---------------------------------------------------------------------------
class TestNumpySingleton:
    def test_np_random_seed_flagged(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert hits(src) == ["DET003"]

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\ng = np.random.default_rng()\n"
        assert hits(src) == ["DET003"]

    def test_seeded_default_rng_clean(self):
        src = "import numpy as np\ng = np.random.default_rng(42)\n"
        assert hits(src) == []

    def test_generator_use_clean(self):
        src = "def f(rng):\n    return rng.random()\n"
        assert hits(src) == []

    def test_stdlib_random_not_mislabeled(self):
        # random.random() is DET002 territory (the import), not DET003
        src = "import random\nx = random.random()\n"
        assert hits(src) == ["DET002"]

    def test_suppression(self):
        src = (
            "import numpy as np\n"
            "np.random.seed(0)  # simlint: disable=DET003 -- legacy shim\n"
        )
        assert hits(src) == []


# ---------------------------------------------------------------------------
# DET004 — worker entry functions carry their seed
# ---------------------------------------------------------------------------
class TestWorkerSeed:
    def test_worker_without_seed_param_flagged(self):
        src = "def _cell_worker(a, b):\n    return a + b\n"
        assert hits(src, path=UNSCOPED_PATH) == ["DET004"]

    def test_applies_outside_sim_scope(self):
        # workers live in experiments/, not the DET001-003 scope dirs
        src = "def _shard_worker(x):\n    return x\n"
        assert hits(src, path="src/repro/experiments/fixture.py") == [
            "DET004"
        ]

    @pytest.mark.parametrize(
        "params", ["a, seed", "a, base_seed", "rng, n", "a, *, stream",
                   "a, seedseq"]
    )
    def test_seed_bearing_params_clean(self, params):
        src = f"def _cell_worker({params}):\n    return 0\n"
        assert hits(src, path=UNSCOPED_PATH) == []

    def test_non_worker_function_ignored(self):
        src = "def run_sweep(a, b):\n    return a + b\n"
        assert hits(src, path=UNSCOPED_PATH) == []

    def test_unseeded_rng_inside_worker_flagged(self):
        src = (
            "import numpy as np\n"
            "def _shard_worker(seed):\n"
            "    return np.random.default_rng().random()\n"
        )
        assert hits(src, path=UNSCOPED_PATH) == ["DET004"]

    def test_global_singleton_inside_worker_flagged(self):
        src = (
            "import numpy as np\n"
            "def _shard_worker(seed):\n"
            "    return np.random.uniform()\n"
        )
        assert hits(src, path=UNSCOPED_PATH) == ["DET004"]

    def test_seeded_rng_inside_worker_clean(self):
        src = (
            "import numpy as np\n"
            "def _shard_worker(seedseq):\n"
            "    return np.random.default_rng(seedseq).random()\n"
        )
        assert hits(src, path=UNSCOPED_PATH) == []

    def test_suppression_with_justification(self):
        src = (
            "def _worker_entry(conn, task):  "
            "# simlint: disable=DET004 -- seed rides in the task payload\n"
            "    return task\n"
        )
        assert hits(src, path=UNSCOPED_PATH) == []


# ---------------------------------------------------------------------------
# ORD001 / ORD002 — unordered iteration
# ---------------------------------------------------------------------------
class TestOrdering:
    def test_for_over_set_literal_flagged(self):
        src = "for x in {1, 2, 3}:\n    consume(x)\n"
        assert hits(src) == ["ORD001"]

    def test_for_over_set_local_flagged(self):
        src = "s = set([3, 1])\nfor x in s:\n    consume(x)\n"
        assert hits(src) == ["ORD001"]

    def test_comprehension_over_set_flagged(self):
        src = "s = {1, 2}\nout = [x + 1 for x in s]\n"
        assert hits(src) == ["ORD001"]

    def test_sum_over_set_flagged(self):
        src = "s = {1.5, 2.5}\ntotal = sum(s)\n"
        assert hits(src) == ["ORD001"]

    def test_annotated_return_tracked_across_call(self):
        src = (
            "def holders() -> set[int]:\n"
            "    return {1, 2}\n"
            "def f():\n"
            "    for h in holders():\n"
            "        consume(h)\n"
        )
        assert hits(src) == ["ORD001"]

    def test_sorted_iteration_clean(self):
        src = "s = {1, 2}\nfor x in sorted(s):\n    consume(x)\n"
        assert hits(src) == []

    def test_membership_and_len_clean(self):
        src = (
            "s = {1, 2}\n"
            "ok = 1 in s\n"
            "n = len(s)\n"
            "m = min(s)\n"
        )
        assert hits(src) == []

    def test_list_iteration_clean(self):
        src = "xs = [1, 2]\nfor x in xs:\n    consume(x)\n"
        assert hits(src) == []

    def test_set_pop_flagged(self):
        src = "s = {1, 2}\ns.pop()\n"
        assert hits(src) == ["ORD002"]

    def test_list_pop_clean(self):
        src = "xs = [1, 2]\nxs.pop()\n"
        assert hits(src) == []

    def test_suppression(self):
        src = (
            "s = {1, 2}\n"
            "for x in s:  # simlint: disable=ORD001 -- order-free fold\n"
            "    consume(x)\n"
        )
        assert hits(src) == []

    def test_reassignment_clears_tracking(self):
        src = "s = {1, 2}\ns = [1, 2]\nfor x in s:\n    consume(x)\n"
        assert hits(src) == []


# ---------------------------------------------------------------------------
# ERR001/002/003 — exception handling
# ---------------------------------------------------------------------------
class TestExcepts:
    def test_bare_except_flagged(self):
        src = "try:\n    f()\nexcept:\n    pass\n"
        assert hits(src) == ["ERR001"]

    def test_broad_except_flagged(self):
        src = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert hits(src) == ["ERR002"]

    def test_broad_except_with_reraise_clean(self):
        src = "try:\n    f()\nexcept Exception:\n    log()\n    raise\n"
        assert hits(src) == []

    def test_guarded_broad_except_clean(self):
        src = (
            "try:\n"
            "    f()\n"
            "except ExperimentTimeoutError:\n"
            "    raise\n"
            "except Exception as exc:\n"
            "    record(exc)\n"
        )
        assert hits(src) == []

    def test_narrow_except_clean(self):
        src = "try:\n    f()\nexcept ValueError:\n    pass\n"
        assert hits(src) == []

    def test_swallowed_timeout_flagged(self):
        src = (
            "try:\n"
            "    f()\n"
            "except ExperimentTimeoutError:\n"
            "    pass\n"
        )
        assert hits(src) == ["ERR003"]

    def test_swallowed_interrupt_in_tuple_flagged(self):
        src = (
            "try:\n"
            "    f()\n"
            "except (ValueError, KeyboardInterrupt):\n"
            "    pass\n"
        )
        assert hits(src) == ["ERR003"]

    def test_suppression(self):
        src = (
            "try:\n"
            "    f()\n"
            "except Exception:  "
            "# simlint: disable=ERR002 -- top-level report boundary\n"
            "    pass\n"
        )
        assert hits(src) == []


# ---------------------------------------------------------------------------
# ERR004 — non-atomic artifact writes
# ---------------------------------------------------------------------------
class TestAtomicArtifactWrite:
    def test_truncating_open_of_checkpoint_flagged(self):
        src = (
            "def save(checkpoint_path, text):\n"
            '    with open(checkpoint_path, "w") as fh:\n'
            "        fh.write(text)\n"
        )
        assert hits(src) == ["ERR004"]

    def test_mode_keyword_flagged(self):
        src = (
            "def save(ckpt, blob):\n"
            '    with open(ckpt, mode="wb") as fh:\n'
            "        fh.write(blob)\n"
        )
        assert hits(src) == ["ERR004"]

    def test_write_text_on_cache_entry_flagged(self):
        src = (
            "def save(cache_entry, text):\n"
            "    cache_entry.write_text(text)\n"
        )
        assert hits(src) == ["ERR004"]

    def test_append_mode_clean(self):
        src = (
            "def save(journal_path, line):\n"
            '    with open(journal_path, "a") as fh:\n'
            "        fh.write(line)\n"
        )
        assert hits(src) == []

    def test_read_mode_clean(self):
        src = (
            "def load(checkpoint_path):\n"
            "    with open(checkpoint_path) as fh:\n"
            "        return fh.read()\n"
        )
        assert hits(src) == []

    def test_non_artifact_write_clean(self):
        src = (
            "def save(report_path, text):\n"
            '    with open(report_path, "w") as fh:\n'
            "        fh.write(text)\n"
        )
        assert hits(src) == []

    def test_suppression_with_justification(self):
        src = (
            "def save(ckpt, text):\n"
            "    ckpt.write_text(text)  "
            "# simlint: disable=ERR004 -- torn-write test fixture\n"
        )
        assert hits(src) == []
        (sup,) = suppressed(src)
        assert sup.finding.rule == "ERR004"
        assert sup.reason == "torn-write test fixture"


# ---------------------------------------------------------------------------
# API001/002 — interface hygiene
# ---------------------------------------------------------------------------
class TestApi:
    def test_mutable_default_flagged(self):
        assert hits("def f(x=[]):\n    pass\n") == ["API001"]

    def test_dict_call_default_flagged(self):
        assert hits("def f(x=dict()):\n    pass\n") == ["API001"]

    def test_kwonly_mutable_default_flagged(self):
        assert hits("def f(*, x={}):\n    pass\n") == ["API001"]

    def test_none_default_clean(self):
        assert hits("def f(x=None):\n    pass\n") == []

    def test_tuple_default_clean(self):
        assert hits("def f(x=(1, 2)):\n    pass\n") == []

    def test_setattr_outside_ctor_flagged(self):
        src = (
            "class C:\n"
            "    def poke(self):\n"
            "        object.__setattr__(self, 'x', 1)\n"
        )
        assert hits(src) == ["API002"]

    def test_setattr_in_post_init_clean(self):
        src = (
            "class C:\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'x', 1)\n"
        )
        assert hits(src) == []

    def test_suppression(self):
        src = (
            "class C:\n"
            "    def poke(self):\n"
            "        object.__setattr__(self, 'x', 1)  "
            "# simlint: disable=API002 -- cache rebuild\n"
        )
        assert hits(src) == []


# ---------------------------------------------------------------------------
# POL — project contracts (cross-file)
# ---------------------------------------------------------------------------
POLICY_ROOT = "class CyclePolicy:\n    name = 'policy'\n"


class TestContracts:
    def test_policy_missing_decide_flagged(self):
        src = POLICY_ROOT + "class Bad(CyclePolicy):\n    name = 'BAD'\n"
        assert "POL001" in hits(src, select=["POL"])

    def test_policy_complete_clean(self):
        src = POLICY_ROOT + (
            "class Good(CyclePolicy):\n"
            "    name = 'GOOD'\n"
            "    def decide(self, ctx, rng):\n"
            "        return 0\n"
        )
        assert hits(src, select=["POL001", "POL002"]) == []

    def test_abstract_intermediate_exempt(self):
        src = POLICY_ROOT + (
            "import abc\n"
            "class Base(CyclePolicy):\n"
            "    @abc.abstractmethod\n"
            "    def helper(self):\n"
            "        ...\n"
        )
        assert hits(src, select=["POL"]) == []

    def test_policy_missing_name_flagged(self):
        src = POLICY_ROOT + (
            "class NoName(CyclePolicy):\n"
            "    def decide(self, ctx, rng):\n"
            "        return 0\n"
        )
        assert "POL002" in hits(src, select=["POL"])

    def test_workload_missing_protocol_flagged(self):
        src = (
            "class Workload:\n    name = 'workload'\n"
            "class Partial(Workload):\n"
            "    name = 'partial'\n"
            "    def setup(self, machine):\n"
            "        pass\n"
        )
        found = hits(src, select=["POL001"])
        assert found == ["POL001"]

    def test_unexported_workload_flagged(self):
        init_src = "__all__ = ['Registered']\n"
        wl_src = (
            "class Workload:\n    name = 'workload'\n"
            "class Hidden(Workload):\n"
            "    name = 'hidden'\n"
            "    def setup(self, m): pass\n"
            "    def next_op(self, c, rng): pass\n"
            "    def tuned_delay_cycles(self, p): pass\n"
        )
        result = lint_sources(
            {
                "src/repro/workloads/__init__.py": init_src,
                "src/repro/workloads/extra.py": wl_src,
            },
            select=["POL003"],
        )
        assert [f.rule for f in result.findings] == ["POL003"]
        assert "Hidden" in result.findings[0].message

    def test_unregistered_policy_name_flagged(self):
        src = POLICY_ROOT + (
            "class Orphan(CyclePolicy):\n"
            "    name = 'ORPHAN'\n"
            "    def decide(self, ctx, rng):\n"
            "        return 0\n"
            "def policy_from_name(name):\n"
            "    if name == 'OTHER':\n"
            "        return None\n"
        )
        assert hits(src, select=["POL003"]) == ["POL003"]

    def test_injector_typo_hook_flagged(self):
        src = (
            "class NullInjector:\n"
            "    def on_begin_tx(self, mem): pass\n"
            "    def on_end_tx(self, mem): pass\n"
            "class Typo(NullInjector):\n"
            "    def on_begin_txn(self, mem): pass\n"
        )
        assert hits(src, select=["POL004"]) == ["POL004"]

    def test_injector_valid_override_clean(self):
        src = (
            "class NullInjector:\n"
            "    def on_begin_tx(self, mem): pass\n"
            "class Fine(NullInjector):\n"
            "    def on_begin_tx(self, mem): pass\n"
            "    def _private_helper(self): pass\n"
        )
        assert hits(src, select=["POL004"]) == []

    def test_pol_suppression(self):
        src = POLICY_ROOT + (
            "class Bad(CyclePolicy):  "
            "# simlint: disable=POL001,POL002 -- wrapper built elsewhere\n"
            "    pass\n"
        )
        assert hits(src, select=["POL"]) == []


# ---------------------------------------------------------------------------
# OBS001 — print/logging in sim-critical code
# ---------------------------------------------------------------------------
class TestPrintLogging:
    def test_print_flagged_in_sim_code(self):
        src = "def f(x):\n    print(x)\n"
        assert hits(src) == ["OBS001"]

    def test_logging_import_and_call_flagged(self):
        src = (
            "import logging\n"
            "logger = logging.getLogger(__name__)\n"
            "def f():\n"
            "    logger.info('hi')\n"
        )
        assert hits(src) == ["OBS001", "OBS001", "OBS001"]

    def test_unscoped_file_not_flagged(self):
        src = "def f(x):\n    print(x)\n"
        assert hits(src, path=UNSCOPED_PATH) == []

    def test_math_log_clean(self):
        src = "import math\n\ndef f(x):\n    return math.log(x)\n"
        assert hits(src) == []

    def test_bus_emission_clean(self):
        src = (
            "def f(bus, registry, now):\n"
            "    registry.counter('commits').inc()\n"
            "    bus.emit(now, 'commit', 0)\n"
        )
        assert hits(src) == []

    def test_obs_suppression(self):
        src = (
            "def f(x):\n"
            "    print(x)  # simlint: disable=OBS001 -- debug aid\n"
        )
        assert hits(src) == []
        (sup,) = suppressed(src)
        assert sup.finding.rule == "OBS001"
        assert sup.reason == "debug aid"


# ---------------------------------------------------------------------------
# engine behaviors
# ---------------------------------------------------------------------------
class TestEngine:
    def test_skip_file_pragma(self):
        src = "# simlint: skip-file\nimport random\n"
        assert hits(src) == []

    def test_skip_file_pragma_deep_in_file_ignored(self):
        src = "import random\n" + "x = 1\n" * 12 + "# simlint: skip-file\n"
        assert hits(src) == ["DET002"]

    def test_blanket_disable(self):
        src = "import random  # simlint: disable\n"
        assert hits(src) == []

    def test_disable_other_rule_does_not_mask(self):
        src = "import random  # simlint: disable=ORD001\n"
        assert hits(src) == ["DET002"]

    def test_syntax_error_is_finding(self):
        result = lint_sources({SIM_PATH: "def f(:\n"})
        assert [f.rule for f in result.findings] == ["E999"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_sources({SIM_PATH: "x = 1\n"}, select=["NOPE999"])

    def test_family_prefix_selection(self):
        src = "import random\nfor x in {1, 2}:\n    print(x)\n"
        assert hits(src, select=["DET"]) == ["DET002"]
        assert hits(src, select=["ORD"]) == ["ORD001"]

    def test_ignore_family(self):
        src = "import random\nfor x in {1, 2}:\n    consume(x)\n"
        result = lint_sources({SIM_PATH: src}, ignore=["ORD"])
        assert [f.rule for f in result.findings] == ["DET002"]

    def test_findings_sorted_and_deduped(self):
        src = "import random\nimport secrets\n"
        result = lint_sources({SIM_PATH: src})
        lines = [f.line for f in result.findings]
        assert lines == sorted(lines)
        assert len(result.findings) == len(set(result.findings))
