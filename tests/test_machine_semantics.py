"""Machine-level semantics: drain, warmup, tracer hooks, commit
observers, and mixed-policy fleets."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.htm import (
    Machine,
    MachineParams,
    NoDelay,
    RandDelay,
    TunedDelay,
)
from repro.workloads import CounterWorkload, TxAppWorkload


class TestDrainSemantics:
    def test_drain_leaves_no_active_tx(self):
        machine = Machine(MachineParams(n_cores=4), lambda i: RandDelay())
        workload = CounterWorkload()
        machine.load(workload, seed=1)
        machine.run(40_000.0)
        assert all(not mem.tx_active for mem in machine.mems)
        assert all(core.idle for core in machine.cores)

    def test_no_drain_keeps_inflight(self):
        machine = Machine(MachineParams(n_cores=4), lambda i: RandDelay())
        workload = CounterWorkload()
        machine.load(workload, seed=1)
        machine.run(40_000.0, drain=False)
        # without drain there may be in-flight state; verification of the
        # workload could legitimately fail, so only protocol-level checks
        # are meaningful here
        machine.check_invariants()

    def test_counters_exclude_drain_ops_mostly(self):
        machine = Machine(MachineParams(n_cores=4), lambda i: NoDelay())
        workload = CounterWorkload()
        machine.load(workload, seed=1)
        stats = machine.run(40_000.0)
        # drained ops can exceed the horizon count by at most ~n_cores
        assert workload.committed <= stats.ops_completed + 2 * 4


class TestCommitObservers:
    def test_observer_sees_every_commit(self):
        durations = []
        machine = Machine(MachineParams(n_cores=4), lambda i: NoDelay())
        machine.commit_observers.append(durations.append)
        workload = CounterWorkload(ops_limit=60)
        machine.load(workload, seed=1)
        stats = machine.run(200_000.0)
        assert len(durations) == stats.tx_committed
        assert all(d >= 0 for d in durations)

    def test_multiple_observers(self):
        a, b = [], []
        machine = Machine(MachineParams(n_cores=2), lambda i: NoDelay())
        machine.commit_observers.extend([a.append, b.append])
        workload = CounterWorkload(ops_limit=10)
        machine.load(workload, seed=1)
        machine.run(100_000.0)
        assert a == b
        assert len(a) == 10


class TestMixedPolicyFleet:
    def test_per_core_policies(self):
        """The policy factory receives the core id — a heterogeneous
        fleet (half NO_DELAY, half delayed) must still be correct."""

        def factory(core_id):
            return NoDelay() if core_id % 2 == 0 else TunedDelay(100)

        machine = Machine(MachineParams(n_cores=6), factory)
        workload = TxAppWorkload(work_cycles=40)
        machine.load(workload, seed=2)
        stats = machine.run(80_000.0)
        workload.verify(machine)
        assert stats.ops_completed > 50
        # only the delayed cores should have nonzero graces
        for mem in machine.mems:
            if mem.core_id % 2 == 0 and mem.stats.grace_delay_stats.n:
                assert mem.stats.grace_delay_stats.max == 0.0


class TestRunValidation:
    def test_horizon_must_exceed_warmup(self):
        machine = Machine(MachineParams(n_cores=2), lambda i: NoDelay())
        machine.load(CounterWorkload(), seed=1)
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            machine.run(100.0, warmup_cycles=100.0)

    def test_run_before_load(self):
        machine = Machine(MachineParams(n_cores=2), lambda i: NoDelay())
        with pytest.raises(SimulationError):
            machine.run(100.0)

    def test_warmup_counters_restart(self):
        machine = Machine(MachineParams(n_cores=2), lambda i: NoDelay())
        workload = CounterWorkload()
        machine.load(workload, seed=1)
        stats = machine.run(80_000.0, warmup_cycles=40_000.0)
        # stats object was swapped at warmup: cores' stats are the new one
        assert machine.stats is stats
        for core in machine.cores:
            assert core.stats is stats.core(core.core_id)
        workload.verify(machine)
