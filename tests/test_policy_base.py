"""Tests for the DelayPolicy base machinery and trivial policies."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.model import ConflictKind, ConflictModel
from repro.core.policy import (
    FixedDelayPolicy,
    ImmediateAbortPolicy,
    NeverAbortPolicy,
    clip_to_cap,
)
from repro.errors import InvalidParameterError


class TestFixedDelay:
    def test_point_mass(self):
        policy = FixedDelayPolicy(42.0)
        assert policy.is_deterministic()
        assert policy.sample() == 42.0
        assert policy.support == (42.0, 42.0)
        assert policy.expected_delay() == 42.0

    def test_cdf_step(self):
        policy = FixedDelayPolicy(10.0)
        assert policy.cdf(9.999) == 0.0
        assert policy.cdf(10.0) == 1.0

    def test_sample_many_constant(self):
        assert set(FixedDelayPolicy(5.0).sample_many(7).tolist()) == {5.0}

    def test_default_name_mentions_delay(self):
        assert "7" in FixedDelayPolicy(7.0).name

    def test_custom_name(self):
        assert FixedDelayPolicy(7.0, name="TUNED").name == "TUNED"

    def test_no_density(self):
        with pytest.raises(NotImplementedError):
            FixedDelayPolicy(7.0).pdf(7.0)

    @pytest.mark.parametrize("bad", [-1.0, math.nan, math.inf])
    def test_invalid_delay(self, bad):
        with pytest.raises(InvalidParameterError):
            FixedDelayPolicy(bad)


class TestImmediateAbort:
    def test_zero(self):
        policy = ImmediateAbortPolicy()
        assert policy.sample() == 0.0
        assert policy.name == "NO_DELAY"

    def test_cost_is_pure_abort(self, rw_model):
        policy = ImmediateAbortPolicy()
        assert rw_model.cost(policy.sample(), 10.0) == rw_model.B


class TestNeverAbort:
    def test_infinite_delay(self):
        policy = NeverAbortPolicy()
        assert policy.sample() == math.inf
        assert policy.cdf(1e18) == 0.0

    def test_finite_horizon(self):
        policy = NeverAbortPolicy(horizon=1e6)
        assert policy.sample() == 1e6

    def test_always_commits(self, rw_model):
        policy = NeverAbortPolicy(horizon=1e9)
        for d in (1.0, 1e6):
            assert rw_model.cost(policy.sample(), d) == pytest.approx(d)


class TestClipToCap:
    def test_clips(self, rw_model):
        assert clip_to_cap(1e9, rw_model) == rw_model.delay_cap

    def test_passes_small(self, rw_model):
        assert clip_to_cap(3.0, rw_model) == 3.0

    def test_chain_cap(self):
        m = ConflictModel(ConflictKind.REQUESTOR_WINS, 90.0, 4)
        assert clip_to_cap(50.0, m) == pytest.approx(30.0)


class TestGenericExpectedDelay:
    def test_survival_integration_matches_uniform(self):
        """The base-class survival-function integral agrees with the
        closed form for a policy that only provides cdf()."""
        from repro.core.policy import DelayPolicy

        class CdfOnlyUniform(DelayPolicy):
            name = "cdf-only"

            def sample(self, rng=None):  # pragma: no cover - unused
                return 0.0

            @property
            def support(self):
                return (0.0, 10.0)

            def cdf(self, x):
                return min(max(x / 10.0, 0.0), 1.0)

        assert CdfOnlyUniform().expected_delay() == pytest.approx(5.0, rel=1e-3)
