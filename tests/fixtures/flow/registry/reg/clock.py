"""Fixture helper with a wall-clock leaf."""

import time


def stamp(seed):
    return seed + time.monotonic()
