"""Fixture: runner outside any sim-critical dir becomes an entry
point solely because it is handed to ``register_experiment``."""

from reg.clock import stamp


def runner(seed):
    return _mid(seed)


def _mid(seed):
    return stamp(seed)


def wire_up(registry):
    registry.register_experiment("fixture_exp", runner)
