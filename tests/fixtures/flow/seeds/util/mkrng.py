"""Fixture helper that *returns* an ambient-seeded generator — the
laundering case FLOW006's interprocedural pass must catch."""

import numpy as np


def fresh_rng():
    return np.random.default_rng()
