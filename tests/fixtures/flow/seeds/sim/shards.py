"""Fixture: a generator captured by a closure crossing a pool
boundary (FLOW007), next to a clean per-task derivation."""

import numpy as np


def fan_out(pool, xs, seed):
    rng = np.random.default_rng(seed)
    return pool.map(lambda x: x * rng.normal(), xs)


def fan_out_clean(pool, xs, seed):
    return pool.map(_shard_task, [(x, seed) for x in xs])


def _shard_task(x, seed):
    rng = np.random.default_rng(seed)
    return x * rng.normal()
