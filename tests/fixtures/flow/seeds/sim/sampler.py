"""Fixture: seed-provenance cases — ambient generator creation, an
ambient generator laundered through a helper, a module-level shared
generator, and a correctly parameter-seeded one."""

import numpy as np

from util.mkrng import fresh_rng

_RNG = np.random.default_rng()


def draw(seed):
    rng = fresh_rng()
    return rng.normal()


def ambient(n):
    gen = np.random.default_rng()
    return gen.normal(size=n)


def clean(seed):
    rng = np.random.default_rng(seed)
    return rng.normal()
