"""Fixture: a fully deterministic sim module — the deep pass must
report nothing here."""


def advance(state, seed):
    return _mix(state, seed)


def _mix(state, seed):
    return (state * 31 + seed) % 997
