"""Fixture higher-order helper (pure by itself)."""


def apply_all(fn, xs):
    return [fn(x) for x in xs]
