"""Fixture leaf: wall clock behind one private hop."""

import time


def stamp(x):
    return x + _now()


def _now():
    return time.time()
