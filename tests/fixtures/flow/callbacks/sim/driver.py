"""Fixture: impurity reached only through a lambda callback and a
function reference passed as an argument."""

from util.apply import apply_all
from util.wallclock import stamp


def collect(xs):
    return apply_all(lambda x: stamp(x), xs)


def collect_ref(xs):
    return apply_all(stamp, xs)
