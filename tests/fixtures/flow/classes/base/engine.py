"""Fixture base class in a non-sim module (inherited method edges)."""


class EngineBase:
    def tick(self, n):
        return self._fold(n)

    def _fold(self, n):
        return n * 2
