"""Fixture: method-resolution edges — self-calls, an attribute-typed
instance call, a cross-module base class, and a local bound method."""

import time

from base.engine import EngineBase


class Probe:
    def now(self):
        return time.perf_counter()


class Machine(EngineBase):
    def __init__(self):
        self.probe = Probe()

    def run(self, n):
        return self._spin(n)

    def _spin(self, n):
        return self.tick(n) + self.probe.now()


def drive(n):
    m = Machine()
    return m.run(n)
