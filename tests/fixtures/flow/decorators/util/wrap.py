"""Fixture decorator whose wrapper reads the wall clock."""

import time


def timed(fn):
    def wrapper(*args, **kwargs):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        return result, time.perf_counter() - start

    return wrapper
