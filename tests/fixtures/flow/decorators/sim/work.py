"""Fixture: impurity injected by a cross-module decorator."""

from util.wrap import timed


@timed
def compute(n):
    return n * 2
