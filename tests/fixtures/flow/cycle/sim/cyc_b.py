"""Fixture: other half of the import cycle, with the impure leaf."""

import time

from sim.cyc_a import ping


def pong(n):
    if n > 0:
        return ping(n - 1)
    return _leaf()


def _leaf():
    return time.time()
