"""Fixture: half of an import cycle (a -> b -> a)."""

from sim.cyc_b import pong


def ping(n):
    return pong(n)
