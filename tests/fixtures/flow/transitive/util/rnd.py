"""Fixture helper: ambient numpy randomness behind a private hop."""

import numpy as np


def noise(x):
    return x + _jitter()


def _jitter():
    return np.random.rand()
