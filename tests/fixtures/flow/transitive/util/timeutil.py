"""Fixture helper module: hides a wall-clock read one frame deeper."""

import time


def read_clock():
    return _now()


def _now():
    return time.time()
