"""Fixture: sim-critical entry reaching the wall clock through two
intermediates, one same-module and one cross-module."""

from util.timeutil import read_clock


def step(state):
    return _advance(state)


def _advance(state):
    return state + read_clock()
