"""Fixture: core entry reaching numpy's global RNG cross-module."""

from util.rnd import noise


def draw(x):
    return noise(x)
