"""Tests for conflict schedules, adversaries, and the arenas."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.adversary import (
    Conflict,
    ConflictLedgerArena,
    ConflictSchedule,
    PeriodicAdversary,
    RandomAdversary,
    TargetedAdversary,
    TimedArena,
    Transaction,
)
from repro.adversary.adversaries import make_transactions
from repro.core.backoff import BackoffPolicy
from repro.core.model import ConflictKind
from repro.core.oracle import ClairvoyantPolicy
from repro.core.policy import ImmediateAbortPolicy, NeverAbortPolicy
from repro.core.requestor_wins import UniformRW
from repro.distributions import DeterministicLengths, ExponentialLengths
from repro.errors import InvalidParameterError, SimulationError

B = 100.0


class TestSchedule:
    def test_transaction_validation(self):
        with pytest.raises(InvalidParameterError):
            Transaction(0, 0, 0.0)

    def test_conflict_validation(self):
        txn = Transaction(0, 0, 50.0)
        with pytest.raises(InvalidParameterError):
            Conflict(txn, remaining=60.0)  # > rho
        with pytest.raises(InvalidParameterError):
            Conflict(txn, remaining=0.0)
        with pytest.raises(InvalidParameterError):
            Conflict(txn, remaining=10.0, k=1)

    def test_progress(self):
        c = Conflict(Transaction(0, 0, 50.0), remaining=20.0)
        assert c.progress == pytest.approx(30.0)

    def test_total_rho(self):
        sched = ConflictSchedule(
            transactions=[Transaction(0, 0, 10.0), Transaction(1, 0, 20.0)]
        )
        assert sched.total_rho() == 30.0

    def test_validate_rejects_self_conflict(self):
        txn = Transaction(0, 0, 50.0)
        sched = ConflictSchedule(
            transactions=[txn],
            conflicts=[Conflict(txn, 10.0, requestor_thread=0)],
        )
        with pytest.raises(InvalidParameterError):
            sched.validate()

    def test_validate_rejects_duplicate_instant(self):
        txn = Transaction(0, 0, 50.0)
        sched = ConflictSchedule(
            transactions=[txn],
            conflicts=[
                Conflict(txn, 10.0, requestor_thread=1),
                Conflict(txn, 10.0, requestor_thread=2),
            ],
        )
        with pytest.raises(InvalidParameterError):
            sched.validate()

    def test_validate_rejects_unknown_transaction(self):
        sched = ConflictSchedule(
            transactions=[Transaction(0, 0, 10.0)],
            conflicts=[
                Conflict(Transaction(5, 5, 10.0), 5.0, requestor_thread=1)
            ],
        )
        with pytest.raises(InvalidParameterError):
            sched.validate()


class TestAdversaries:
    def test_make_transactions_shape(self, rng):
        txns = make_transactions(4, 10, DeterministicLengths(5.0), rng)
        assert len(txns) == 40
        assert {t.thread for t in txns} == {0, 1, 2, 3}

    def test_make_transactions_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            make_transactions(1, 10, DeterministicLengths(5.0), rng)

    def test_random_adversary_rate(self, rng):
        txns = make_transactions(4, 500, DeterministicLengths(5.0), rng)
        sched = RandomAdversary(0.5).build(txns, rng)
        sched.validate()
        assert 0.4 * len(txns) < len(sched) < 0.6 * len(txns)

    def test_random_adversary_chain_weights(self, rng):
        txns = make_transactions(4, 500, DeterministicLengths(5.0), rng)
        sched = RandomAdversary(1.0, chain_weights={2: 0.5, 4: 0.5}).build(
            txns, rng
        )
        ks = sched.chain_sizes()
        assert set(ks.tolist()) == {2, 4}

    def test_periodic_adversary(self, rng):
        txns = make_transactions(2, 10, DeterministicLengths(100.0), rng)
        sched = PeriodicAdversary(fractions=(0.25, 0.5)).build(txns, rng)
        assert len(sched) == 2 * len(txns)
        remainders = sorted(set(sched.remaining_times().tolist()))
        assert remainders == [50.0, 75.0]

    def test_targeted_adversary_overshoot(self, rng):
        txns = make_transactions(2, 10, DeterministicLengths(500.0), rng)
        sched = TargetedAdversary(threshold=100.0, k=2).build(txns, rng)
        assert np.allclose(sched.remaining_times(), 101.0)

    def test_targeted_clamps_to_rho(self, rng):
        txns = make_transactions(2, 5, DeterministicLengths(50.0), rng)
        sched = TargetedAdversary(threshold=100.0).build(txns, rng)
        assert np.allclose(sched.remaining_times(), 50.0)

    def test_adversary_requestor_differs(self, rng):
        txns = make_transactions(3, 50, DeterministicLengths(5.0), rng)
        sched = RandomAdversary(1.0).build(txns, rng)
        for c in sched.conflicts:
            assert c.requestor_thread != c.receiver.thread


class TestLedgerArena:
    def _schedule(self, rng, mu=200.0):
        txns = make_transactions(8, 100, ExponentialLengths(mu), rng)
        return RandomAdversary(0.7).build(txns, rng)

    def test_corollary1_bound_holds(self, rng):
        sched = self._schedule(rng)
        arena = ConflictLedgerArena(
            ConflictKind.REQUESTOR_WINS, B, lambda k: UniformRW(B, k)
        )
        out = arena.run(sched, rng)
        assert out.ratio <= out.corollary1_bound + 0.05

    def test_offline_never_above_online(self, rng):
        sched = self._schedule(rng)
        arena = ConflictLedgerArena(
            ConflictKind.REQUESTOR_WINS, B, lambda k: UniformRW(B, k)
        )
        out = arena.run(sched, rng)
        assert out.offline_total <= out.online_total + 1e-9

    def test_oracle_policy_matches_offline(self, rng):
        """Driving the arena with the clairvoyant decision reproduces
        the offline side exactly."""
        sched = self._schedule(rng)

        class OracleAdapter(ClairvoyantPolicy):
            def sample_many(self, n, rng=None):
                raise AssertionError("arena must not sample the oracle")

        from repro.core.model import ConflictModel

        arena = ConflictLedgerArena(
            ConflictKind.REQUESTOR_WINS, B, lambda k: UniformRW(B, k)
        )
        out = arena.run(sched, rng)
        # offline = sum of OPT costs by construction
        manual = sum(
            arena.model_for(c.k).opt(c.remaining) for c in sched.conflicts
        )
        assert out.offline_conflict_cost == pytest.approx(manual)

    def test_no_conflicts_ratio_one(self, rng):
        txns = make_transactions(2, 10, DeterministicLengths(5.0), rng)
        sched = ConflictSchedule(transactions=txns)
        arena = ConflictLedgerArena(
            ConflictKind.REQUESTOR_WINS, B, lambda k: UniformRW(B, k)
        )
        out = arena.run(sched, rng)
        assert out.ratio == 1.0
        assert out.waste == 0.0
        assert out.corollary1_bound == 1.0

    def test_never_abort_violates_nothing_but_costs(self, rng):
        """A pessimal policy still satisfies accounting identities."""
        sched = self._schedule(rng)
        arena = ConflictLedgerArena(
            ConflictKind.REQUESTOR_WINS,
            B,
            lambda k: NeverAbortPolicy(horizon=1e9),
        )
        out = arena.run(sched, rng)
        assert out.online_total >= out.offline_total

    def test_policy_cached_per_k(self, rng):
        arena = ConflictLedgerArena(
            ConflictKind.REQUESTOR_WINS, B, lambda k: UniformRW(B, k)
        )
        assert arena.policy_for(3) is arena.policy_for(3)
        assert arena.model_for(2).k == 2


class TestTimedArena:
    def test_conflict_free_commit(self, rng):
        arena = TimedArena()
        record = arena.run_transaction(100.0, [], ImmediateAbortPolicy(), rng)
        assert record.committed
        assert record.attempts == 1
        assert record.total_time == pytest.approx(100.0)

    def test_never_abort_survives_everything(self, rng):
        arena = TimedArena()
        record = arena.run_transaction(
            100.0, [(50.0, 2), (20.0, 3)], NeverAbortPolicy(horizon=1e9), rng
        )
        assert record.committed
        assert record.attempts == 1
        # waiters: 1 * 50 + 2 * 20
        assert record.waiter_delay == pytest.approx(90.0)

    def test_immediate_abort_retries_forever_capped(self, rng):
        arena = TimedArena(max_attempts=10)
        record = arena.run_transaction(
            100.0, [(50.0, 2)], ImmediateAbortPolicy(), rng
        )
        assert not record.committed
        assert record.attempts == 10

    def test_wasted_time_accumulates(self, rng):
        arena = TimedArena(max_attempts=3)
        record = arena.run_transaction(
            100.0, [(50.0, 2)], ImmediateAbortPolicy(), rng
        )
        # each attempt wastes progress (50) + delay (0)
        assert record.total_time == pytest.approx(3 * 50.0)

    def test_backoff_eventually_commits(self, rng):
        arena = TimedArena()
        policy = BackoffPolicy(lambda b: UniformRW(b, 2), B0=10.0)
        record = arena.run_transaction(200.0, [(150.0, 2)], policy, rng)
        assert record.committed
        assert record.final_B >= 10.0

    def test_conflicts_struck_chronologically(self, rng):
        """A later conflict (smaller remaining) only strikes if the
        earlier one was survived."""
        arena = TimedArena(max_attempts=1)
        record = arena.run_transaction(
            100.0, [(10.0, 2), (90.0, 2)], ImmediateAbortPolicy(), rng
        )
        # aborts at the FIRST (remaining=90) conflict: progress 10
        assert record.total_time == pytest.approx(10.0)

    def test_invalid_inputs(self, rng):
        arena = TimedArena()
        with pytest.raises(InvalidParameterError):
            arena.run_transaction(0.0, [], ImmediateAbortPolicy(), rng)
        with pytest.raises(SimulationError):
            arena.run_transaction(
                10.0, [(20.0, 2)], ImmediateAbortPolicy(), rng
            )
        with pytest.raises(SimulationError):
            arena.run_transaction(
                10.0, [(5.0, 1)], ImmediateAbortPolicy(), rng
            )

    def test_run_many(self, rng):
        arena = TimedArena()
        records = arena.run_many(
            np.asarray([50.0, 80.0]),
            lambda rho: [(rho / 2, 2)],
            lambda: BackoffPolicy(lambda b: UniformRW(b, 2), B0=20.0),
            rng,
        )
        assert len(records) == 2
        assert all(r.committed for r in records)
