"""Tests for interconnect topologies and the mesh-backed machine."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.htm import Machine, MachineParams, NoDelay, RandDelay
from repro.htm.interconnect import FixedLatency, MeshTopology
from repro.workloads import CounterWorkload, QueueWorkload


class TestFixedLatency:
    def test_uniform(self):
        topo = FixedLatency(4)
        assert topo.core_to_dir(0, 99) == 4
        assert topo.dir_to_core(99, 7) == 4

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            FixedLatency(-1)


class TestMeshTopology:
    def test_grid_shape(self):
        topo = MeshTopology(9)
        assert (topo.rows, topo.cols) == (3, 3)
        topo = MeshTopology(8)
        assert topo.rows * topo.cols >= 8

    def test_positions_distinct(self):
        topo = MeshTopology(12)
        positions = {topo.position(t) for t in range(12)}
        assert len(positions) == 12

    def test_distance_metric(self):
        topo = MeshTopology(9)  # 3x3
        assert topo.distance(0, 0) == 0
        assert topo.distance(0, 8) == 4  # (0,0) -> (2,2)
        assert topo.distance(3, 4) == 1
        # symmetry
        for a in range(9):
            for b in range(9):
                assert topo.distance(a, b) == topo.distance(b, a)

    def test_home_interleave(self):
        topo = MeshTopology(4)
        assert topo.home_of(0) == 0
        assert topo.home_of(5) == 1
        assert topo.home_of(7) == 3

    def test_latency_includes_injection(self):
        topo = MeshTopology(4, per_hop=3)
        # same tile as home: distance 0 -> still pays one quantum
        line_homed_at_0 = 0
        assert topo.core_to_dir(0, line_homed_at_0) == 3

    def test_latency_scales_with_distance(self):
        topo = MeshTopology(16, per_hop=2)
        near = topo.core_to_dir(0, 0)  # home 0 = self
        far = topo.core_to_dir(0, 15)  # home 15 = opposite corner
        assert far > near
        assert far == topo.diameter_latency

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MeshTopology(0)
        with pytest.raises(InvalidParameterError):
            MeshTopology(4, per_hop=0)
        with pytest.raises(InvalidParameterError):
            MeshTopology(4).position(4)
        with pytest.raises(InvalidParameterError):
            MeshTopology(4).home_of(-1)


class TestMeshMachine:
    def test_counter_correct_on_mesh(self):
        params = MachineParams(n_cores=9)
        workload = CounterWorkload()
        machine = Machine(
            params,
            lambda i: RandDelay(),
            topology=MeshTopology(9, per_hop=3),
        )
        machine.load(workload, seed=2)
        stats = machine.run(120_000.0)
        workload.verify(machine)
        machine.check_invariants()
        assert stats.ops_completed > 100

    def test_queue_correct_on_mesh(self):
        params = MachineParams(n_cores=8)
        workload = QueueWorkload()
        machine = Machine(
            params, lambda i: NoDelay(), topology=MeshTopology(8)
        )
        machine.load(workload, seed=3)
        machine.run(120_000.0)
        workload.verify(machine)

    def test_mesh_slower_than_fixed_zero(self):
        """A mesh with real distances must cost throughput vs an ideal
        zero-latency crossbar (sanity: latencies are actually applied)."""

        def run(topology):
            workload = CounterWorkload()
            machine = Machine(
                MachineParams(n_cores=8),
                lambda i: NoDelay(),
                topology=topology,
            )
            machine.load(workload, seed=4)
            return machine.run(100_000.0).ops_completed

        assert run(MeshTopology(8, per_hop=4)) < run(FixedLatency(0))

    def test_deterministic_on_mesh(self):
        def run():
            workload = CounterWorkload()
            machine = Machine(
                MachineParams(n_cores=6),
                lambda i: RandDelay(),
                topology=MeshTopology(6),
            )
            machine.load(workload, seed=5)
            return machine.run(80_000.0).ops_completed

        assert run() == run()
