"""Workload logical-consistency tests (linearizability surrogates)."""

from __future__ import annotations

import pytest

from repro.htm import DetDelay, Machine, MachineParams, NoDelay, RandDelay
from repro.workloads import (
    CounterWorkload,
    QueueWorkload,
    StackWorkload,
    TxAppWorkload,
)
from repro.workloads.stack import EMPTY as STACK_EMPTY

POLICIES = {
    "no_delay": lambda i: NoDelay(),
    "rand": lambda i: RandDelay(),
    "det": lambda i: DetDelay(),
}


def run(workload, policy="rand", n_cores=6, horizon=100_000.0, seed=3):
    machine = Machine(MachineParams(n_cores=n_cores), POLICIES[policy])
    machine.load(workload, seed=seed)
    stats = machine.run(horizon)
    return machine, stats


class TestStack:
    @pytest.mark.parametrize("policy", list(POLICIES))
    def test_verifies_under_contention(self, policy):
        workload = StackWorkload()
        machine, stats = run(workload, policy)
        assert stats.ops_completed > 50
        workload.verify(machine)

    def test_seeds_sweep(self):
        for seed in range(5):
            workload = StackWorkload()
            machine, _ = run(workload, "rand", seed=seed)
            workload.verify(machine)

    def test_prefill_visible(self):
        workload = StackWorkload(prefill=10)
        machine = Machine(MachineParams(n_cores=2), POLICIES["no_delay"])
        machine.load(workload, seed=1)
        # before running, chain length == prefill
        count = 0
        addr = machine.peek(workload.top_addr)
        while addr:
            count += 1
            addr = machine.peek(addr + 1)
        assert count == 10

    def test_pop_empty_returns_sentinel(self):
        workload = StackWorkload(prefill=0)
        machine, stats = run(workload, "no_delay", n_cores=2, horizon=20_000.0)
        workload.verify(machine)
        pops = [v for kind, _, v in workload.log if kind == "pop"]
        # alternating push/pop on an initially empty stack can race to
        # empty; sentinel handling must not corrupt anything
        assert all(v == STACK_EMPTY or v > 0 for v in pops)

    def test_values_unique_per_core(self):
        workload = StackWorkload()
        machine, _ = run(workload, "rand")
        pushes = [v for kind, _, v in workload.log if kind == "push"]
        assert len(pushes) == len(set(pushes))

    def test_fallback_exercised_under_heavy_contention(self):
        workload = StackWorkload()
        params = MachineParams(n_cores=8, max_retries=1)
        machine = Machine(params, POLICIES["no_delay"])
        machine.load(workload, seed=2)
        stats = machine.run(60_000.0)
        workload.verify(machine)
        assert stats.total("fallback_ops") > 0

    def test_corrupted_log_detected(self):
        """verify() actually catches violations (meta-test)."""
        from repro.errors import WorkloadError

        workload = StackWorkload()
        machine, _ = run(workload, "no_delay", n_cores=2, horizon=20_000.0)
        workload.log.append(("pop", 0, 999_999_999))  # never pushed
        with pytest.raises(WorkloadError):
            workload.verify(machine)


class TestQueue:
    @pytest.mark.parametrize("policy", list(POLICIES))
    def test_verifies_under_contention(self, policy):
        workload = QueueWorkload()
        machine, stats = run(workload, policy)
        assert stats.ops_completed > 50
        workload.verify(machine)

    def test_seeds_sweep(self):
        for seed in range(5):
            workload = QueueWorkload()
            machine, _ = run(workload, "rand", seed=seed)
            workload.verify(machine)

    def test_fifo_per_source_enforced(self):
        from repro.errors import WorkloadError

        workload = QueueWorkload()
        machine, _ = run(workload, "no_delay", n_cores=2, horizon=20_000.0)
        # falsify: swap two dequeues of the same source
        deqs = [
            (i, v)
            for i, (kind, _, v) in enumerate(workload.log)
            if kind == "deq" and v > 0 and (v >> 32) == 1
        ]
        if len(deqs) >= 2:
            (i1, v1), (i2, v2) = deqs[0], deqs[1]
            workload.log[i1] = ("deq", 0, v2)
            workload.log[i2] = ("deq", 0, v1)
            with pytest.raises(WorkloadError):
                workload.verify(machine)

    def test_mixed_fast_slow_paths(self):
        workload = QueueWorkload()
        params = MachineParams(n_cores=8, max_retries=2)
        machine = Machine(params, POLICIES["rand"])
        machine.load(workload, seed=4)
        stats = machine.run(80_000.0)
        workload.verify(machine)
        assert stats.total("fallback_ops") > 0
        assert stats.tx_committed > 0


class TestTxApp:
    @pytest.mark.parametrize("policy", list(POLICIES))
    def test_ledger_balances(self, policy):
        workload = TxAppWorkload(work_cycles=50)
        machine, stats = run(workload, policy)
        assert stats.ops_completed > 50
        workload.verify(machine)

    def test_bimodal_ledger_balances(self):
        workload = TxAppWorkload(work_cycles=50, bimodal=True)
        machine, _ = run(workload)
        workload.verify(machine)

    def test_mean_work(self):
        uni = TxAppWorkload(work_cycles=100)
        bi = TxAppWorkload(work_cycles=100, bimodal=True, long_factor=20)
        assert uni.mean_work_cycles() == 100.0
        assert bi.mean_work_cycles() == pytest.approx(1050.0)

    def test_distinct_objects_per_tx(self, rng):
        workload = TxAppWorkload()
        machine = Machine(MachineParams(n_cores=2), POLICIES["no_delay"])
        machine.load(workload, seed=1)
        for _ in range(200):
            op = workload.next_op(0, rng)
            assert op.obj_a != op.obj_b

    def test_lock_fallback_serializes_correctly(self):
        workload = TxAppWorkload(work_cycles=20)
        params = MachineParams(n_cores=8, max_retries=1)
        machine = Machine(params, POLICIES["no_delay"])
        machine.load(workload, seed=5)
        stats = machine.run(80_000.0)
        workload.verify(machine)
        assert stats.total("fallback_ops") > 0

    def test_needs_two_objects(self):
        with pytest.raises(ValueError):
            TxAppWorkload(n_objects=1)


class TestCounter:
    def test_work_cycles_lengthen_tx(self):
        short = CounterWorkload(work_cycles=0)
        long = CounterWorkload(work_cycles=500)
        m1, s1 = run(short, "no_delay", n_cores=2)
        m2, s2 = run(long, "no_delay", n_cores=2)
        short.verify(m1)
        long.verify(m2)
        assert s1.ops_completed > s2.ops_completed

    def test_tuned_delay_positive(self):
        params = MachineParams()
        for workload in (
            CounterWorkload(),
            StackWorkload(),
            QueueWorkload(),
            TxAppWorkload(),
        ):
            assert workload.tuned_delay_cycles(params) > 0
