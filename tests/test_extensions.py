"""Tests for the extension features: moment-constrained adversaries,
requestor-aborts / hybrid HTM resolution, and the online profiler."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.model import ConflictKind, ConflictModel
from repro.core.moments import (
    MomentConstraint,
    mean_variance_ratio,
    moment_constrained_ratio,
)
from repro.core.requestor_wins import MeanConstrainedRW, UniformRW
from repro.core.verify import competitive_ratio, constrained_competitive_ratio
from repro.errors import InvalidParameterError
from repro.htm import (
    HybridDelay,
    Machine,
    MachineParams,
    NoDelay,
    RandDelay,
    RequestorAbortsDelay,
)
from repro.htm.conflict_policy import ConflictContext, policy_from_name
from repro.htm.profiler import AdaptiveDelay, CommitProfiler
from repro.workloads import CounterWorkload, QueueWorkload, TxAppWorkload

B = 100.0
RW = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)


class TestMomentConstraints:
    def test_mean_only_matches_envelope(self):
        policy = MeanConstrainedRW(B, 10.0)
        lp = moment_constrained_ratio(policy, RW, [MomentConstraint(1, 10.0)])
        envelope = constrained_competitive_ratio(policy, RW, 10.0).ratio
        assert lp == pytest.approx(envelope, rel=2e-3)

    def test_variance_tightens_adversary(self):
        """Adding a (finite) variance constraint can only reduce the
        best adversary's value."""
        policy = UniformRW(B, 2)
        mu = 30.0
        mean_only = moment_constrained_ratio(
            policy, RW, [MomentConstraint(1, mu)]
        )
        with_var = mean_variance_ratio(policy, RW, mu, variance=25.0)
        assert with_var <= mean_only + 1e-6

    def test_tiny_variance_pins_near_point_mass(self):
        """Variance ~0 pins the adversary to (grid points around) D=mu.

        Exactly zero variance is infeasible on a discrete grid unless mu
        is a grid point, so we use a variance at grid-spacing scale.
        """
        policy = UniformRW(B, 2)
        mu = 40.0
        lp = mean_variance_ratio(policy, RW, mu, variance=1.0, grid=4096)
        from repro.core.verify import expected_cost

        point = expected_cost(policy, RW, mu) / RW.opt(mu)
        assert lp == pytest.approx(point, rel=0.05)

    def test_infeasible_returns_nan(self):
        policy = UniformRW(B, 2)
        # mean tiny but second moment enormous relative to grid support
        value = moment_constrained_ratio(
            policy,
            RW,
            [MomentConstraint(1, 1.0), MomentConstraint(2, 1e12)],
        )
        assert math.isnan(value)

    def test_validation(self):
        policy = UniformRW(B, 2)
        with pytest.raises(InvalidParameterError):
            moment_constrained_ratio(policy, RW, [])
        with pytest.raises(InvalidParameterError):
            moment_constrained_ratio(
                policy, RW, [MomentConstraint(1, 1.0), MomentConstraint(1, 2.0)]
            )
        with pytest.raises(InvalidParameterError):
            MomentConstraint(0, 1.0)
        with pytest.raises(InvalidParameterError):
            mean_variance_ratio(policy, RW, 10.0, -1.0)

    def test_unconstrained_policy_bounded_by_sup(self):
        policy = UniformRW(B, 2)
        sup = competitive_ratio(policy, RW).ratio
        lp = moment_constrained_ratio(policy, RW, [MomentConstraint(1, 50.0)])
        assert lp <= sup + 1e-6


def run_machine(policy_factory, workload, n_cores=8, seed=1, horizon=150_000.0,
                profiler=None):
    machine = Machine(MachineParams(n_cores=n_cores), policy_factory)
    if profiler is not None:
        machine.commit_observers.append(profiler.observe_commit)
    machine.load(workload, seed=seed)
    stats = machine.run(horizon)
    workload.verify(machine)
    machine.check_invariants()
    return machine, stats


class TestRequestorAbortsHTM:
    def test_nacks_abort_requestors(self):
        workload = QueueWorkload()
        machine, stats = run_machine(
            lambda i: RequestorAbortsDelay(), workload
        )
        reasons = stats.abort_reasons()
        assert stats.total("nacks_sent") > 0
        assert reasons.get("nacked", 0) == stats.total("nacks_sent")
        # receivers never die of timeouts in pure-RA mode
        assert reasons.get("conflict_timeout", 0) == 0

    def test_correctness_under_ra(self):
        for workload in (CounterWorkload(), TxAppWorkload(work_cycles=50)):
            run_machine(lambda i: RequestorAbortsDelay(), workload, seed=3)

    def test_ra_policy_attributes(self, rng):
        policy = RequestorAbortsDelay()
        assert policy.resolution == "requestor_aborts"
        ctx = ConflictContext(50, 2, MachineParams())
        delay = policy.decide(ctx, rng)
        assert 1 <= delay <= ctx.abort_cost * 1.3

    def test_ra_mu_validation(self):
        with pytest.raises(InvalidParameterError):
            RequestorAbortsDelay(mu_cycles=-1.0)


class TestHybridHTM:
    def test_resolution_by_chain_size(self):
        params = MachineParams()
        assert HybridDelay.resolution(ConflictContext(10, 2, params)) == (
            "requestor_aborts"
        )
        assert HybridDelay.resolution(ConflictContext(10, 3, params)) == (
            "requestor_wins"
        )

    def test_correctness_under_hybrid(self):
        for workload in (QueueWorkload(), TxAppWorkload(work_cycles=50)):
            machine, stats = run_machine(lambda i: HybridDelay(), workload)
            assert stats.ops_completed > 50

    def test_hybrid_uses_both_mechanisms(self):
        workload = QueueWorkload()
        machine, stats = run_machine(lambda i: HybridDelay(), workload)
        reasons = stats.abort_reasons()
        # k=2 conflicts -> NACKs; deeper chains -> receiver timeouts
        assert stats.total("nacks_sent") > 0

    def test_policy_from_name(self):
        params = MachineParams()
        assert isinstance(policy_from_name("DELAY_RA", params), RequestorAbortsDelay)
        assert isinstance(policy_from_name("DELAY_HYBRID", params), HybridDelay)


class TestProfiler:
    def test_mu_estimate_half_duration(self):
        profiler = CommitProfiler()
        assert math.isnan(profiler.mu_estimate())
        for d in (100.0, 200.0):
            profiler.observe_commit(d)
        assert profiler.mu_estimate() == pytest.approx(75.0)
        assert profiler.n == 2

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            CommitProfiler(remaining_fraction=0.0)
        with pytest.raises(InvalidParameterError):
            CommitProfiler().observe_commit(-1.0)
        with pytest.raises(InvalidParameterError):
            AdaptiveDelay(CommitProfiler(), warmup=0)

    def test_cold_start_is_unconstrained(self, rng):
        profiler = CommitProfiler()
        policy = AdaptiveDelay(profiler, warmup=10)
        ctx = ConflictContext(100, 2, MachineParams())
        # cold: uniform on [0, B): delays spread over the support
        delays = [policy.decide(ctx, rng) for _ in range(200)]
        assert max(delays) > 0.8 * ctx.abort_cost

    def test_adaptive_in_machine_profiles_commits(self):
        profiler = CommitProfiler()
        workload = TxAppWorkload(work_cycles=100)
        machine, stats = run_machine(
            lambda i: AdaptiveDelay(profiler), workload, profiler=profiler
        )
        assert profiler.n == stats.tx_committed
        # mean tx duration must exceed the body work
        assert profiler.durations.mean > 100.0

    def test_refresh_invalidates_cache(self, rng):
        profiler = CommitProfiler()
        policy = AdaptiveDelay(profiler, warmup=1, refresh=5)
        ctx = ConflictContext(100, 2, MachineParams())
        profiler.observe_commit(50.0)
        policy.decide(ctx, rng)
        first_cache = dict(policy._cache)
        for _ in range(10):
            profiler.observe_commit(500.0)
        policy.decide(ctx, rng)
        assert policy._cache.keys() != first_cache.keys() or (
            list(policy._cache.values())[0] is not list(first_cache.values())[0]
        )


class TestGreedyCM:
    def test_older_receiver_nacks(self):
        from repro.htm import GreedyCM

        params = MachineParams()
        assert GreedyCM.resolution(
            ConflictContext(100, 2, params, requestor_age=50)
        ) == "requestor_aborts"
        assert GreedyCM.resolution(
            ConflictContext(50, 2, params, requestor_age=100)
        ) == "requestor_wins"

    def test_irrevocable_requestor_wins(self):
        from repro.htm import GreedyCM

        params = MachineParams()
        assert GreedyCM.resolution(
            ConflictContext(100, 2, params, requestor_age=None)
        ) == "requestor_wins"

    def test_never_waits(self, rng):
        from repro.htm import GreedyCM

        ctx = ConflictContext(100, 2, MachineParams(), requestor_age=10)
        assert GreedyCM().decide(ctx, rng) == 0

    def test_correct_in_machine(self):
        from repro.htm import GreedyCM

        for workload in (CounterWorkload(), QueueWorkload()):
            machine, stats = run_machine(lambda i: GreedyCM(), workload)
            assert stats.ops_completed > 50

    def test_policy_from_name(self):
        from repro.htm import GreedyCM

        assert isinstance(
            policy_from_name("GREEDY_CM", MachineParams()), GreedyCM
        )

    def test_requestor_age_validation(self):
        with pytest.raises(InvalidParameterError):
            ConflictContext(10, 2, MachineParams(), requestor_age=-1)


class TestResolutionAblation:
    def test_registry_entry(self):
        from repro.experiments import EXPERIMENTS, run_experiment

        assert "abl_htm_resolution" in EXPERIMENTS
        result = run_experiment("abl_htm_resolution", quick=True, seed=1)
        resolutions = {r["resolution"] for r in result.rows}
        assert "RA (NACK)" in resolutions
        assert "HYBRID" in resolutions
        assert "GREEDY_CM (global)" in resolutions
        assert all(r["ops"] > 0 for r in result.rows)


class TestExtensionPanels:
    @pytest.mark.slow
    def test_ext_bank(self):
        from repro.experiments import run_experiment

        result = run_experiment("ext_bank", quick=True, seed=1)
        policies = {r["policy"] for r in result.rows}
        assert policies == {
            "NO_DELAY",
            "DELAY_RAND",
            "DELAY_RA",
            "DELAY_HYBRID",
            "GREEDY_CM",
        }
        assert all(r["ops"] > 0 for r in result.rows)

    @pytest.mark.slow
    def test_ext_listset(self):
        from repro.experiments import run_experiment

        result = run_experiment("ext_listset", quick=True, seed=1)
        assert len(result.rows) == 2 * 5  # 2 thread points x 5 policies
