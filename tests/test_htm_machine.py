"""Integration tests for the HTM machine (cores + caches + directory)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError, SimulationError
from repro.htm import (
    DetDelay,
    Machine,
    MachineParams,
    NoDelay,
    RandDelay,
    TunedDelay,
)
from repro.htm.conflict_policy import ConflictContext, RRWMeanDelay, policy_from_name
from repro.workloads import CounterWorkload, StackWorkload

HORIZON = 120_000.0


def run_machine(workload, policy_factory, n_cores=4, seed=1, **machine_kwargs):
    params = MachineParams(n_cores=n_cores)
    machine = Machine(params, policy_factory, **machine_kwargs)
    machine.load(workload, seed=seed)
    stats = machine.run(HORIZON)
    return machine, stats


class TestCounterExactness:
    """The strongest atomicity check: final counter == committed ops."""

    @pytest.mark.parametrize(
        "factory",
        [lambda i: NoDelay(), lambda i: RandDelay(), lambda i: DetDelay()],
        ids=["no_delay", "rand", "det"],
    )
    def test_no_lost_updates(self, factory):
        workload = CounterWorkload()
        machine, stats = run_machine(workload, factory)
        assert stats.ops_completed > 100
        workload.verify(machine)

    def test_single_core_no_conflicts(self):
        workload = CounterWorkload()
        machine, stats = run_machine(workload, lambda i: NoDelay(), n_cores=1)
        assert stats.total("conflicts_received") == 0
        assert stats.tx_aborted == 0
        workload.verify(machine)

    def test_ops_limit_respected(self):
        workload = CounterWorkload(ops_limit=50)
        machine, stats = run_machine(workload, lambda i: NoDelay())
        assert stats.ops_completed == 50
        workload.verify(machine)


class TestInvariants:
    def test_protocol_invariants_after_run(self):
        workload = CounterWorkload()
        machine, _ = run_machine(workload, lambda i: RandDelay())
        machine.check_invariants()

    def test_deterministic_replay(self):
        def one_run():
            workload = CounterWorkload()
            machine, stats = run_machine(workload, lambda i: RandDelay(), seed=9)
            return stats.ops_completed, stats.tx_aborted

        assert one_run() == one_run()

    def test_seeds_differ(self):
        def one_run(seed):
            workload = CounterWorkload()
            _, stats = run_machine(workload, lambda i: RandDelay(), seed=seed)
            return stats.ops_completed

        assert one_run(1) != one_run(2) or one_run(3) != one_run(4)

    def test_run_requires_load(self):
        machine = Machine(MachineParams(n_cores=2), lambda i: NoDelay())
        with pytest.raises(SimulationError):
            machine.run(1000.0)

    def test_warmup_resets_counters(self):
        workload = CounterWorkload()
        params = MachineParams(n_cores=2)
        machine = Machine(params, lambda i: NoDelay())
        machine.load(workload, seed=1)
        stats = machine.run(60_000.0, warmup_cycles=30_000.0)
        assert stats.cycles == 30_000.0
        # committed counter includes warmup ops; stats exclude them
        assert workload.committed >= stats.ops_completed


class TestWaitsForGraph:
    def test_edges_balance(self):
        workload = CounterWorkload()
        machine, _ = run_machine(workload, lambda i: RandDelay())
        # after drain every wait edge must have been cleared
        assert machine._waits == {}

    def test_chain_size_floor(self):
        machine = Machine(MachineParams(n_cores=4), lambda i: NoDelay())
        assert machine.chain_size(0) == 1  # holder alone

    def test_transitive_waiters(self):
        machine = Machine(MachineParams(n_cores=4), lambda i: NoDelay())
        machine.note_wait(1, 0)
        machine.note_wait(2, 1)
        machine.note_wait(3, 1)
        assert machine.transitive_waiters(0) == {1, 2, 3}
        assert machine.chain_size(0) == 4
        machine.clear_wait(2, 1)
        assert machine.transitive_waiters(0) == {1, 3}

    def test_wait_multiset(self):
        machine = Machine(MachineParams(n_cores=4), lambda i: NoDelay())
        machine.note_wait(1, 0)
        machine.note_wait(1, 0)
        machine.clear_wait(1, 0)
        assert machine.transitive_waiters(0) == {1}
        machine.clear_wait(1, 0)
        assert machine.transitive_waiters(0) == set()

    def test_cycle_detection_path(self):
        machine = Machine(MachineParams(n_cores=4), lambda i: NoDelay())
        machine.note_wait(1, 0)
        machine.note_wait(0, 1)
        assert machine._find_cycle_path(1) is not None
        assert machine._find_cycle_path(3) is None


class TestMemoryAllocation:
    def test_line_zero_reserved(self):
        machine = Machine(MachineParams(n_cores=2), lambda i: NoDelay())
        addr = machine.alloc(1)
        assert addr >= machine.params.line_words  # never address 0

    def test_line_alignment(self):
        machine = Machine(MachineParams(n_cores=2), lambda i: NoDelay())
        a = machine.alloc(3)
        b = machine.alloc(3)
        assert machine.params.line_of(a) != machine.params.line_of(b)

    def test_unaligned_packing(self):
        machine = Machine(MachineParams(n_cores=2), lambda i: NoDelay())
        a = machine.alloc(1, line_aligned=False)
        b = machine.alloc(1, line_aligned=False)
        assert b == a + 1

    def test_invalid_alloc(self):
        machine = Machine(MachineParams(n_cores=2), lambda i: NoDelay())
        with pytest.raises(InvalidParameterError):
            machine.alloc(0)

    def test_poke_peek(self):
        machine = Machine(MachineParams(n_cores=2), lambda i: NoDelay())
        machine.poke(64, 42)
        assert machine.peek(64) == 42
        assert machine.peek(65) == 0


class TestParams:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MachineParams(n_cores=0)
        with pytest.raises(InvalidParameterError):
            MachineParams(hop=-1)
        with pytest.raises(InvalidParameterError):
            MachineParams(clock_ghz=0.0)

    def test_line_of(self):
        params = MachineParams(line_words=8)
        assert params.line_of(0) == 0
        assert params.line_of(7) == 0
        assert params.line_of(8) == 1
        with pytest.raises(InvalidParameterError):
            params.line_of(-1)

    def test_with_cores(self):
        params = MachineParams(n_cores=4)
        assert params.with_cores(9).n_cores == 9
        assert params.n_cores == 4

    def test_l1_lines(self):
        assert MachineParams(l1_sets=64, l1_assoc=8).l1_lines == 512


class TestConflictPolicies:
    def ctx(self, age=100, k=2):
        return ConflictContext(age, k, MachineParams(n_cores=2))

    def test_abort_cost_estimate(self):
        ctx = self.ctx(age=40)
        assert ctx.abort_cost == 40 + MachineParams().abort_overhead

    def test_no_delay(self, rng):
        assert NoDelay().decide(self.ctx(), rng) == 0

    def test_tuned(self, rng):
        assert TunedDelay(77).decide(self.ctx(), rng) == 77
        assert TunedDelay(100, fraction=0.5).decide(self.ctx(), rng) == 50

    def test_det_matches_theorem4(self, rng):
        ctx = self.ctx(age=100, k=3)
        assert DetDelay().decide(ctx, rng) == ctx.abort_cost // 2

    def test_rand_bounded(self, rng):
        ctx = self.ctx(age=100, k=2)
        for _ in range(100):
            delay = RandDelay().decide(ctx, rng)
            assert 0 <= delay < ctx.abort_cost

    def test_rrw_mean_bounded(self, rng):
        policy = RRWMeanDelay(mu_cycles=30.0)
        ctx = self.ctx(age=100, k=2)
        for _ in range(50):
            delay = policy.decide(ctx, rng)
            assert 0 <= delay <= ctx.abort_cost * 1.3  # bucket slack

    def test_rrw_mean_cache(self, rng):
        policy = RRWMeanDelay(mu_cycles=30.0)
        ctx = self.ctx(age=100, k=2)
        policy.decide(ctx, rng)
        policy.decide(ctx, rng)
        assert len(policy._cache) == 1

    def test_policy_from_name(self):
        params = MachineParams()
        assert isinstance(policy_from_name("NO_DELAY", params), NoDelay)
        assert isinstance(
            policy_from_name("delay_tuned", params, tuned_cycles=5), TunedDelay
        )
        assert isinstance(policy_from_name("DELAY_DET", params), DetDelay)
        assert isinstance(policy_from_name("DELAY_RAND", params), RandDelay)
        assert isinstance(
            policy_from_name("DELAY_RRW_MU", params, mu_cycles=10.0),
            RRWMeanDelay,
        )
        with pytest.raises(InvalidParameterError):
            policy_from_name("nope", params)
        with pytest.raises(InvalidParameterError):
            policy_from_name("DELAY_TUNED", params)

    def test_context_validation(self):
        with pytest.raises(InvalidParameterError):
            ConflictContext(-1, 2, MachineParams())
        with pytest.raises(InvalidParameterError):
            ConflictContext(0, 1, MachineParams())


class TestAbortReasonsAccounting:
    def test_reasons_sum_to_aborts(self):
        workload = StackWorkload()
        machine, stats = run_machine(workload, lambda i: RandDelay(), n_cores=8)
        reasons = stats.abort_reasons()
        # 'wedged' double-counts with conflict_immediate (it is a cause
        # tag); exclude it from the sum
        total = sum(v for k, v in reasons.items() if k != "wedged")
        assert total == stats.tx_aborted

    def test_cycle_aborts_counted(self):
        workload = StackWorkload()
        machine, stats = run_machine(workload, lambda i: DetDelay(), n_cores=8)
        assert machine.stats.cycle_aborts >= 0  # smoke: counter exists
