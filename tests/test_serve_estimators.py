"""Property suite pinning online estimation to its offline reference.

The decision service trusts :class:`repro.core.estimators.WindowedMean`
to track a drifting stream in O(1) per update; these tests are the
contract that the streaming value never leaves the batch recomputation
(:func:`offline_window_mean` / :func:`offline_estimate`) by more than
1e-9 relative — including the edge cases the service actually hits:
empty window, a single sample, and a hard regime shift that replaces
the window's whole contents.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import (
    EstimateSnapshot,
    OnlineEstimator,
    WindowedMean,
    offline_estimate,
    offline_window_mean,
)
from repro.errors import InvalidParameterError

#: Relative tolerance the ISSUE pins: online == offline to 1e-9.
RTOL = 1e-9

finite_values = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(finite_values, max_size=200)
windows = st.integers(min_value=1, max_value=64)


def assert_close(online: float, offline: float) -> None:
    if math.isnan(offline):
        assert math.isnan(online)
        return
    assert online == pytest.approx(offline, rel=RTOL, abs=1e-9)


class TestWindowedMean:
    @given(value_lists, windows)
    @settings(max_examples=300)
    def test_matches_offline_at_every_step(self, values, window):
        wm = WindowedMean(window)
        for i, x in enumerate(values):
            wm.observe(x)
            assert_close(wm.mean, offline_window_mean(values[: i + 1], window))
            assert wm.n == min(i + 1, window)

    @given(windows)
    def test_empty_window_is_nan(self, window):
        wm = WindowedMean(window)
        assert math.isnan(wm.mean)
        assert wm.n == 0
        assert math.isnan(offline_window_mean([], window))

    @given(finite_values, windows)
    def test_single_sample_is_exact(self, x, window):
        wm = WindowedMean(window)
        wm.observe(x)
        assert wm.mean == x
        assert offline_window_mean([x], window) == x

    @given(windows, st.integers(min_value=1, max_value=400))
    @settings(max_examples=100)
    def test_regime_shift_forgets_old_regime(self, window, shift_len):
        """After >= window post-shift samples the old regime is gone."""
        wm = WindowedMean(window)
        for _ in range(3 * window):
            wm.observe(1e9)
        post = [float(i % 7) for i in range(max(window, shift_len))]
        for x in post:
            wm.observe(x)
        assert_close(wm.mean, math.fsum(post[-window:]) / window)

    def test_mixed_magnitudes_stay_compensated(self):
        """The adversarial case plain summation loses: tiny samples
        riding on a huge transient must survive the transient leaving
        the window."""
        wm = WindowedMean(4)
        stream = [1e-9, 1e15, 1e-9, 1e-9, 1e-9, 1e-9, 1e-9]
        for i, x in enumerate(stream):
            wm.observe(x)
            assert_close(wm.mean, offline_window_mean(stream[: i + 1], 4))
        assert wm.mean == pytest.approx(1e-9, rel=RTOL)

    def test_reset_empties_the_window(self):
        wm = WindowedMean(8)
        for x in (1.0, 2.0, 3.0):
            wm.observe(x)
        wm.reset()
        assert wm.n == 0
        assert math.isnan(wm.mean)
        wm.observe(5.0)
        assert wm.mean == 5.0

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "8"])
    def test_bad_window_rejected(self, bad):
        with pytest.raises(InvalidParameterError, match="window"):
            WindowedMean(bad)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_observation_rejected(self, bad):
        wm = WindowedMean(4)
        with pytest.raises(InvalidParameterError, match="finite"):
            wm.observe(bad)


conflict_streams = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        st.integers(min_value=2, max_value=64),
    ),
    max_size=150,
)
duration_streams = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False), max_size=150
)


class TestOnlineEstimator:
    @given(conflict_streams, duration_streams, windows)
    @settings(max_examples=200)
    def test_snapshot_matches_offline(self, conflicts, durations, window):
        est = OnlineEstimator(window)
        for b, k in conflicts:
            est.observe_conflict(b, k)
        for d in durations:
            est.observe_commit(d)
        snap = est.snapshot()
        ref = offline_estimate(conflicts, durations, window)
        assert_close(snap.b_hat, ref.b_hat)
        assert_close(snap.k_hat, ref.k_hat)
        assert_close(snap.mu_hat, ref.mu_hat)
        assert snap.n_conflicts == ref.n_conflicts
        assert snap.n_commits == ref.n_commits

    def test_snapshot_is_side_effect_free(self):
        est = OnlineEstimator(16)
        est.observe_conflict(100.0, 3)
        first = est.snapshot()
        for _ in range(5):
            assert est.snapshot() == first

    def test_feeds_are_independent(self):
        est = OnlineEstimator(8)
        est.observe_commit(42.0)
        snap = est.snapshot()
        assert snap.n_conflicts == 0
        assert math.isnan(snap.b_hat)
        assert snap.n_commits == 1
        assert snap.mu_hat == 42.0

    def test_reset(self):
        est = OnlineEstimator(8)
        est.observe_conflict(10.0, 2)
        est.observe_commit(1.0)
        est.reset()
        snap = est.snapshot()
        assert snap.n_conflicts == 0 and snap.n_commits == 0

    def test_window_property(self):
        assert OnlineEstimator(7).window == 7

    def test_invalid_feeds_rejected(self):
        est = OnlineEstimator(8)
        with pytest.raises(InvalidParameterError, match="abort cost"):
            est.observe_conflict(-1.0, 2)
        with pytest.raises(InvalidParameterError, match="chain size"):
            est.observe_conflict(1.0, 1)
        with pytest.raises(InvalidParameterError, match="duration"):
            est.observe_commit(-0.5)


class TestEstimateSnapshot:
    def test_k_round_nan_defaults_to_two(self):
        snap = EstimateSnapshot(math.nan, math.nan, math.nan, 0, 0)
        assert snap.k_round() == 2

    @pytest.mark.parametrize(
        ("k_hat", "expected"),
        [(1.2, 2), (2.0, 2), (2.49, 2), (2.51, 3), (7.6, 8)],
    )
    def test_k_round_clamps_into_model_domain(self, k_hat, expected):
        snap = EstimateSnapshot(1.0, k_hat, 1.0, 10, 10)
        assert snap.k_round() == expected
