"""Batched Monte-Carlo engine vs the scalar golden reference.

The contract (docs/PERFORMANCE.md): for any :class:`TrialProgram`, any
batch size, any shard count, and any ``--jobs``, the SoA lockstep
engine produces rows *bit-identical* to per-trial
``TimedArena.run_transaction`` + ``BackoffPolicy`` executions fed from
the same round-major draw layout — the same kernels-vs-reference
pattern as ``tests/test_kernels_equiv.py``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.arena import TimedArena
from repro.errors import InvalidParameterError, SimulationError
from repro.experiments.ablations import run_abl_backoff
from repro.experiments.corollary import run_cor1, run_cor2
from repro.parallel.pool import SerialPool, make_pool
from repro.sim.mc import (
    DEFAULT_SHARDS,
    TrialProgram,
    TrialResults,
    run_trials,
    split_trials,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

finite = dict(allow_nan=False, allow_infinity=False)


@st.composite
def trial_programs(draw) -> TrialProgram:
    """Random but well-formed programs, bounded so the scalar reference
    stays fast (max_attempts caps runaway exhaustion cases)."""
    rho = draw(st.floats(min_value=10.0, max_value=5000.0, **finite))
    gamma = draw(st.integers(min_value=0, max_value=4))
    conflicts = tuple(
        (
            rho * draw(st.floats(min_value=0.01, max_value=1.0, **finite)),
            draw(st.integers(min_value=2, max_value=6)),
        )
        for _ in range(gamma)
    )
    style = draw(st.sampled_from(["mult", "add", "both"]))
    factor = (
        1.0
        if style == "add"
        else draw(st.floats(min_value=1.25, max_value=3.0, **finite))
    )
    increment = (
        0.0
        if style == "mult"
        else draw(st.floats(min_value=1.0, max_value=128.0, **finite))
    )
    return TrialProgram(
        rho=rho,
        conflicts=conflicts,
        k=draw(st.integers(min_value=2, max_value=5)),
        B0=draw(st.floats(min_value=1.0, max_value=512.0, **finite)),
        factor=factor,
        increment=increment,
        max_B=draw(st.sampled_from([math.inf, 1e6, 4096.0])),
        max_attempts=draw(st.integers(min_value=1, max_value=50)),
    )


def cor2_program(y: float = 4000.0, gamma: int = 6, **kwargs) -> TrialProgram:
    conflicts = tuple(
        (y * (1.0 - (i + 0.5) / gamma) + 1.0, 2) for i in range(gamma)
    )
    return TrialProgram(rho=y, conflicts=conflicts, k=2, B0=64.0, **kwargs)


# ---------------------------------------------------------------------------
# the equivalence suite: batch == scalar, bit for bit
# ---------------------------------------------------------------------------


class TestBatchScalarEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        program=trial_programs(),
        n=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_batch_matches_scalar_reference(self, program, n, seed):
        batch = run_trials(program, n, seed=seed, engine="batch")
        scalar = run_trials(program, n, seed=seed, engine="scalar")
        assert len(batch) == len(scalar) == n
        assert batch.equals(scalar)

    @settings(max_examples=15, deadline=None)
    @given(
        program=trial_programs(),
        n=st.integers(min_value=1, max_value=40),
        n_shards=st.integers(min_value=1, max_value=11),
    )
    def test_equivalence_at_any_shard_count(self, program, n, n_shards):
        batch = run_trials(program, n, seed=7, engine="batch", n_shards=n_shards)
        scalar = run_trials(
            program, n, seed=7, engine="scalar", n_shards=n_shards
        )
        assert batch.equals(scalar)

    @pytest.mark.parametrize("n", [1, 7, 4096])
    def test_cor2_shape_at_batch_sizes(self, n):
        """The experiment-shaped program at the satellite's batch sizes."""
        program = cor2_program()
        batch = run_trials(program, n, seed=11, engine="batch")
        scalar = run_trials(program, n, seed=11, engine="scalar")
        assert batch.equals(scalar)
        assert bool(batch.committed.all())

    def test_exhaustion_path(self):
        """max_attempts reached: attempts pegged, committed False, B kept
        at its post-final-abort value (identical in both engines)."""
        program = cor2_program(max_attempts=2)
        batch = run_trials(program, 64, seed=5, engine="batch")
        scalar = run_trials(program, 64, seed=5, engine="scalar")
        assert batch.equals(scalar)
        exhausted = ~batch.committed
        assert exhausted.any()
        assert (batch.attempts[exhausted] == 2).all()
        assert (batch.final_B[exhausted] > program.B0).all()

    def test_empty_conflict_plan_commits_first_attempt(self):
        program = TrialProgram(rho=100.0, conflicts=())
        res = run_trials(program, 16, seed=3)
        assert (res.attempts == 1).all()
        assert res.committed.all()
        assert np.array_equal(res.total_time, np.full(16, 100.0))
        assert res.equals(run_trials(program, 16, seed=3, engine="scalar"))

    def test_max_B_cap_and_additive_growth(self):
        program = cor2_program(
            y=300.0, gamma=2, factor=1.0, increment=64.0, max_B=512.0
        )
        batch = run_trials(program, 256, seed=9, engine="batch")
        scalar = run_trials(program, 256, seed=9, engine="scalar")
        assert batch.equals(scalar)
        assert batch.final_B.max() <= 512.0


# ---------------------------------------------------------------------------
# determinism: seeds, shards, pools
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_same_seed_same_rows(self):
        program = cor2_program()
        assert run_trials(program, 64, seed=1).equals(
            run_trials(program, 64, seed=1)
        )

    def test_different_seed_different_rows(self):
        program = cor2_program()
        a = run_trials(program, 256, seed=1)
        b = run_trials(program, 256, seed=2)
        assert not a.equals(b)

    def test_seedseq_input_is_not_mutated(self):
        """run_trials must be pure in its SeedSequence argument: calling
        it twice with the same sequence yields the same rows (plain
        ``spawn`` would advance the child counter)."""
        program = cor2_program()
        root = np.random.SeedSequence([1, 2, 3])
        first = run_trials(program, 32, seed=root)
        second = run_trials(program, 32, seed=root)
        assert first.equals(second)

    def test_path_selects_the_stream(self):
        program = cor2_program()
        a = run_trials(program, 64, seed=1, path=("cor2", 500))
        b = run_trials(program, 64, seed=1, path=("cor2", 4000))
        assert not a.equals(b)

    def test_pool_rows_identical_to_serial(self):
        """jobs 1 vs 4: shard placement never changes a row."""
        program = cor2_program()
        serial = run_trials(program, 128, seed=4)
        with_serial_pool = run_trials(program, 128, seed=4, pool=SerialPool())
        pool = make_pool(4)
        try:
            with_process_pool = run_trials(program, 128, seed=4, pool=pool)
        finally:
            pool.close()
        assert serial.equals(with_serial_pool)
        assert serial.equals(with_process_pool)

    def test_live_generator_rejected(self):
        with pytest.raises(InvalidParameterError, match="Generator"):
            run_trials(cor2_program(), 8, seed=np.random.default_rng(0))


# ---------------------------------------------------------------------------
# experiment-level seed stability: scalar vs batch, jobs 1 vs 4
# ---------------------------------------------------------------------------


class TestExperimentSeedStability:
    def test_cor1_rows_scalar_vs_batch(self):
        kwargs = dict(n_threads=4, per_thread=25, seed=13)
        assert run_cor1(engine="batch", **kwargs) == run_cor1(
            engine="scalar", **kwargs
        )

    @pytest.mark.parametrize("trials", [1, 7, 4096])
    def test_cor2_rows_scalar_vs_batch(self, trials):
        kwargs = dict(trials=trials, seed=13)
        assert run_cor2(engine="batch", **kwargs) == run_cor2(
            engine="scalar", **kwargs
        )

    @pytest.mark.parametrize("trials", [1, 7, 4096])
    def test_abl_backoff_rows_scalar_vs_batch(self, trials):
        kwargs = dict(trials=trials, seed=13)
        assert run_abl_backoff(engine="batch", **kwargs) == run_abl_backoff(
            engine="scalar", **kwargs
        )

    def test_cor2_rows_jobs_1_vs_4(self):
        serial = run_cor2(trials=96, seed=13)
        pool = make_pool(4)
        try:
            parallel = run_cor2(trials=96, seed=13, pool=pool)
        finally:
            pool.close()
        assert serial == parallel

    def test_abl_backoff_rows_jobs_1_vs_4(self):
        serial = run_abl_backoff(trials=96, seed=13)
        pool = make_pool(4)
        try:
            parallel = run_abl_backoff(trials=96, seed=13, pool=pool)
        finally:
            pool.close()
        assert serial == parallel


# ---------------------------------------------------------------------------
# program / engine validation and plumbing
# ---------------------------------------------------------------------------


class TestValidation:
    def test_bad_rho(self):
        with pytest.raises(InvalidParameterError, match="rho"):
            TrialProgram(rho=0.0, conflicts=())

    def test_conflict_outside_rho(self):
        with pytest.raises(SimulationError, match="remaining"):
            TrialProgram(rho=10.0, conflicts=((11.0, 2),))

    def test_bad_chain_size(self):
        with pytest.raises(SimulationError, match="chain size"):
            TrialProgram(rho=10.0, conflicts=((5.0, 1),))

    def test_bad_policy_k(self):
        with pytest.raises(InvalidParameterError, match="policy k"):
            TrialProgram(rho=10.0, conflicts=(), k=1)

    def test_bad_B0(self):
        with pytest.raises(InvalidParameterError, match="B0"):
            TrialProgram(rho=10.0, conflicts=(), B0=0.0)

    def test_degenerate_growth(self):
        with pytest.raises(InvalidParameterError, match="backoff"):
            TrialProgram(rho=10.0, conflicts=(), factor=1.0, increment=0.0)

    def test_bad_max_attempts(self):
        with pytest.raises(InvalidParameterError, match="max_attempts"):
            TrialProgram(rho=10.0, conflicts=(), max_attempts=0)

    def test_conflicts_normalized_chronological(self):
        program = TrialProgram(
            rho=100.0, conflicts=((10.0, 2), (90.0, 3), (50.0, 2))
        )
        assert program.conflicts == ((90.0, 3), (50.0, 2), (10.0, 2))

    def test_bad_engine(self):
        with pytest.raises(InvalidParameterError, match="engine"):
            run_trials(cor2_program(), 8, engine="vectorized")

    def test_negative_trials(self):
        with pytest.raises(InvalidParameterError, match="n_trials"):
            run_trials(cor2_program(), -1)

    def test_bad_shards(self):
        with pytest.raises(InvalidParameterError, match="n_shards"):
            run_trials(cor2_program(), 8, n_shards=0)

    def test_cor1_bad_engine(self):
        with pytest.raises(InvalidParameterError, match="engine"):
            run_cor1(n_threads=2, per_thread=5, engine="nope")


class TestPlumbing:
    def test_split_trials_is_contiguous_even(self):
        assert split_trials(10, 4) == [3, 3, 2, 2]
        assert split_trials(3, 8) == [1, 1, 1, 0, 0, 0, 0, 0]
        assert split_trials(0, 2) == [0, 0]
        assert sum(split_trials(4096, DEFAULT_SHARDS)) == 4096

    def test_zero_trials(self):
        res = run_trials(cor2_program(), 0, seed=1)
        assert len(res) == 0
        assert res.attempts.dtype == np.int64

    def test_records_match_run_transaction_fields(self):
        res = run_trials(cor2_program(), 5, seed=2)
        records = res.records()
        assert len(records) == 5
        for j, rec in enumerate(records):
            assert rec.attempts == int(res.attempts[j])
            assert rec.committed == bool(res.committed[j])
            assert rec.total_time == float(res.total_time[j])

    def test_concat_preserves_order(self):
        a = run_trials(cor2_program(), 6, seed=3)
        parts = TrialResults.concat(
            [
                TrialResults(
                    attempts=a.attempts[:2],
                    total_time=a.total_time[:2],
                    committed=a.committed[:2],
                    waiter_delay=a.waiter_delay[:2],
                    final_B=a.final_B[:2],
                ),
                TrialResults(
                    attempts=a.attempts[2:],
                    total_time=a.total_time[2:],
                    committed=a.committed[2:],
                    waiter_delay=a.waiter_delay[2:],
                    final_B=a.final_B[2:],
                ),
            ]
        )
        assert parts.equals(a)

    def test_timed_arena_run_batch_honors_attempt_cap(self):
        arena = TimedArena(max_attempts=2)
        res = arena.run_batch(cor2_program(), 32, seed=5)
        assert res.attempts.max() <= 2

    def test_arena_run_batch_matches_run_trials(self):
        program = cor2_program()
        direct = run_trials(program, 32, seed=6)
        via_arena = TimedArena().run_batch(program, 32, seed=6)
        assert direct.equals(via_arena)
