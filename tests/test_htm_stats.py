"""Unit tests for the HTM statistics containers."""

from __future__ import annotations

import pytest

from repro.htm.stats import CoreStats, MachineStats


class TestCoreStats:
    def test_abort_rate(self):
        stats = CoreStats(core_id=0)
        assert stats.abort_rate == 0.0
        stats.tx_committed = 6
        stats.tx_aborted = 2
        assert stats.abort_rate == pytest.approx(0.25)

    def test_reason_dict_independent(self):
        a, b = CoreStats(0), CoreStats(1)
        a.abort_reasons["x"] = 1
        assert b.abort_reasons == {}


class TestMachineStats:
    def build(self):
        stats = MachineStats(3)
        for i, core in enumerate(stats.cores):
            core.tx_committed = 10 * (i + 1)
            core.tx_aborted = i
            core.ops_completed = 5 * (i + 1)
            core.abort_reasons["conflict_timeout"] = i
        return stats

    def test_totals(self):
        stats = self.build()
        assert stats.tx_committed == 60
        assert stats.tx_aborted == 3
        assert stats.ops_completed == 30
        assert stats.total("tx_committed") == 60

    def test_abort_rate_aggregate(self):
        stats = self.build()
        assert stats.abort_rate == pytest.approx(3 / 63)

    def test_abort_reasons_merged(self):
        stats = self.build()
        assert stats.abort_reasons() == {"conflict_timeout": 3}

    def test_throughput_zero_cycles(self):
        stats = MachineStats(1)
        assert stats.throughput_ops_per_sec(1.0) == 0.0

    def test_throughput_conversion(self):
        stats = MachineStats(1)
        stats.core(0).ops_completed = 1000
        stats.cycles = 1e6
        # 1000 ops / 1e6 cycles at 1 GHz = 1e6 ops/s
        assert stats.throughput_ops_per_sec(1.0) == pytest.approx(1e6)
        # doubling the clock doubles ops/s
        assert stats.throughput_ops_per_sec(2.0) == pytest.approx(2e6)

    def test_summary_keys(self):
        stats = self.build()
        stats.cycles = 100.0
        summary = stats.summary()
        for key in ("cycles", "ops", "commits", "aborts", "abort_rate"):
            assert key in summary

    def test_core_accessor(self):
        stats = MachineStats(2)
        assert stats.core(1).core_id == 1
        with pytest.raises(IndexError):
            stats.core(5)


class TestFaultCounterShim:
    """The registry migration of fault counters (docs/OBSERVABILITY.md)."""

    def test_fault_counts_reads_registry(self):
        stats = MachineStats(1)
        stats.registry.counter("fault_spurious_aborts").inc(3)
        stats.registry.counter("unrelated").inc()
        assert stats.fault_counts() == {"spurious_aborts": 3}

    def test_deprecated_property_warns_and_matches(self):
        stats = MachineStats(1)
        stats.registry.counter("fault_core_stalls").inc(7)
        with pytest.warns(DeprecationWarning, match="fault_counts"):
            legacy = stats.fault_counters
        assert legacy == stats.fault_counts() == {"core_stalls": 7}

    def test_digest_covers_fault_counters(self):
        a, b = MachineStats(1), MachineStats(1)
        assert a.digest() == b.digest()
        b.registry.counter("fault_spurious_aborts").inc()
        assert a.digest() != b.digest()


class TestKAwareAblation:
    def test_registry(self):
        from repro.experiments import EXPERIMENTS, run_experiment

        assert "abl_k_aware" in EXPERIMENTS
        result = run_experiment("abl_k_aware", quick=True, seed=2018)
        assert all(r["k_aware_ops"] > 0 for r in result.rows)
