"""Tests for the Section 8.1 synthetic testbed."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.model import ConflictKind, ConflictModel
from repro.core.ratios import E_OVER_EM1
from repro.distributions import (
    DeterministicLengths,
    ExponentialLengths,
    PointMassRemaining,
    UniformLengths,
    WorstCaseForDeterministic,
)
from repro.errors import InvalidParameterError
from repro.synthetic import SyntheticHarness, default_policy_suite
from repro.synthetic.harness import PolicyEntry

B = 200.0
MU = 500.0


class TestSuite:
    def test_six_policies(self):
        suite = default_policy_suite(B, MU)
        assert [e.label for e in suite] == [
            "RRW(mu)",
            "RRA(mu)",
            "RRW",
            "RRA",
            "DET",
            "OPT",
        ]

    def test_models_match_kinds(self):
        suite = default_policy_suite(B, MU)
        kinds = {e.label: e.model.kind for e in suite}
        assert kinds["RRW"] is ConflictKind.REQUESTOR_WINS
        assert kinds["RRA"] is ConflictKind.REQUESTOR_ABORTS


class TestHarness:
    def test_rejects_bad_params(self):
        with pytest.raises(InvalidParameterError):
            SyntheticHarness(0.0, MU)
        with pytest.raises(InvalidParameterError):
            SyntheticHarness(B, MU, mu_source="median")
        with pytest.raises(InvalidParameterError):
            SyntheticHarness(B, MU, interrupt="never")

    def test_uniform_interrupt_halves_mean(self, rng):
        harness = SyntheticHarness(B, MU)
        remaining = harness.draw_remaining(DeterministicLengths(100.0), 50_000, rng)
        assert remaining.mean() == pytest.approx(50.0, rel=0.02)
        assert remaining.max() <= 100.0
        assert remaining.min() > 0.0

    def test_direct_interrupt_passthrough(self, rng):
        harness = SyntheticHarness(B, MU, interrupt="direct")
        remaining = harness.draw_remaining(DeterministicLengths(100.0), 100, rng)
        assert np.allclose(remaining, 100.0)

    def test_opt_is_cheapest(self):
        harness = SyntheticHarness(B, MU)
        result = harness.run(ExponentialLengths(MU), 30_000, 7)
        opt = result.mean_cost("OPT")
        for label in ("RRW", "RRA", "DET", "RRW(mu)", "RRA(mu)"):
            assert result.mean_cost(label) >= opt * 0.999

    def test_reproducible(self):
        harness = SyntheticHarness(B, MU)
        a = harness.run(ExponentialLengths(MU), 5000, 3).mean_cost("RRW")
        b = harness.run(ExponentialLengths(MU), 5000, 3).mean_cost("RRW")
        assert a == b

    def test_trials_counted(self):
        harness = SyntheticHarness(B, MU)
        result = harness.run(UniformLengths(MU), 1234, 1)
        assert result.trials == 1234
        assert result.stats["OPT"].n == 1234

    def test_batching_statistical_equivalence(self):
        # batch size changes RNG consumption order, so only the
        # statistics (not the exact draws) must agree
        harness = SyntheticHarness(B, MU)
        a = harness.run(UniformLengths(MU), 40_000, 11, batch=4000).mean_cost("DET")
        b = harness.run(UniformLengths(MU), 40_000, 11, batch=40_000).mean_cost("DET")
        assert a == pytest.approx(b, rel=0.05)

    def test_invalid_trials(self):
        with pytest.raises(InvalidParameterError):
            SyntheticHarness(B, MU).run(UniformLengths(MU), 0, 1)


class TestPaperShapes:
    """The qualitative Figure 2 claims, in expectation."""

    def test_rrw_two_ish_on_point_mass(self):
        """Point mass remaining at B: RRW pays ~2 OPT (Theorem 5)."""
        harness = SyntheticHarness(B, B, interrupt="direct")
        result = harness.run(PointMassRemaining(B), 100_000, 5)
        assert result.mean_cost("RRW") / result.mean_cost("OPT") == pytest.approx(
            2.0, rel=0.03
        )

    def test_rra_e_over_em1_on_point_mass(self):
        harness = SyntheticHarness(B, B, interrupt="direct")
        result = harness.run(PointMassRemaining(B), 100_000, 5)
        assert result.mean_cost("RRA") / result.mean_cost("OPT") == pytest.approx(
            E_OVER_EM1, rel=0.03
        )

    def test_det_worst_case_three(self):
        dist = WorstCaseForDeterministic(B, k=2, width=0.01)
        harness = SyntheticHarness(B, dist.mean, interrupt="direct")
        result = harness.run(dist, 50_000, 5)
        assert result.mean_cost("DET") / result.mean_cost("OPT") == pytest.approx(
            3.0, rel=0.01
        )

    def test_constrained_beat_unconstrained_high_B(self):
        """Figure 2a regime: B >> mu -> RRW(mu)/RRA(mu) win clearly."""
        harness = SyntheticHarness(2000.0, MU)
        result = harness.run(ExponentialLengths(MU), 60_000, 5)
        assert result.mean_cost("RRW(mu)") < result.mean_cost("RRW")
        assert result.mean_cost("RRA(mu)") < result.mean_cost("RRA")

    def test_ra_beats_rw_low_B(self):
        """Figure 2b regime: B < mu -> RA policies beat RW policies."""
        harness = SyntheticHarness(B, MU)
        result = harness.run(ExponentialLengths(MU), 60_000, 5)
        assert result.mean_cost("RRA") < result.mean_cost("RRW")
        assert result.mean_cost("RRA(mu)") < result.mean_cost("RRW(mu)")

    def test_det_near_opt_when_B_huge(self):
        """Figure 2a: with B=2000 >> lengths, DET (almost) never aborts
        and tracks OPT."""
        harness = SyntheticHarness(2000.0, MU)
        result = harness.run(UniformLengths(MU), 60_000, 5)
        assert result.mean_cost("DET") / result.mean_cost("OPT") < 1.05


class TestResultHelpers:
    def test_normalized(self):
        harness = SyntheticHarness(B, MU)
        result = harness.run(UniformLengths(MU), 10_000, 1)
        norm = result.normalized()
        assert norm["OPT"] == pytest.approx(1.0)
        assert all(v >= 0.999 for v in norm.values())

    def test_rows_sorted(self):
        harness = SyntheticHarness(B, MU)
        result = harness.run(UniformLengths(MU), 10_000, 1)
        rows = result.as_rows()
        means = [m for _, m, _ in rows]
        assert means == sorted(means)

    def test_sweep(self):
        harness = SyntheticHarness(B, MU)
        results = harness.sweep(
            [UniformLengths(MU), ExponentialLengths(MU)], 2000, 1
        )
        assert [r.distribution for r in results] == ["uniform", "exponential"]

    def test_custom_policy_entry(self, rng):
        from repro.core.policy import FixedDelayPolicy

        model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)
        harness = SyntheticHarness(
            B,
            MU,
            policies=[PolicyEntry("CUSTOM", FixedDelayPolicy(10.0), model)],
        )
        result = harness.run(UniformLengths(MU), 1000, 1)
        assert set(result.stats) == {"CUSTOM"}
