"""Decision service semantics + the adaptive policy's regime dispatch.

The service half pins the seq-ordered protocol: out-of-order arrivals
wait in the reorder buffer, duplicates and stale seqs are rejected,
drain-on-stop fails stuck futures instead of hanging, and commit
reports are acked but never logged.  The policy half pins
:class:`repro.htm.conflict_policy.RegimeAdaptiveDelay`'s classification
(bootstrap / mean / rand as the estimates move) and its switch
accounting, which the serve layer surfaces as ``regime_switch`` trace
events and the bench artifact records.
"""

from __future__ import annotations

import asyncio
import json
import math

import numpy as np
import pytest

from repro.core.estimators import EstimateSnapshot
from repro.core.ratios import rw_mean_regime_threshold
from repro.errors import InvalidParameterError, SimulationError
from repro.htm.conflict_policy import (
    RegimeAdaptiveDelay,
    ConflictContext,
    policy_from_name,
)
from repro.htm.params import MachineParams
from repro.serve.service import (
    CommitReport,
    ConflictRequest,
    Decision,
    DecisionService,
    decision_line,
)


def conflict(seq, *, age=500, k=2, client=1, key=7) -> ConflictRequest:
    return ConflictRequest(
        seq=seq, client_id=client, key=key, tx_age=age, chain_k=k
    )


def run(coro):
    return asyncio.run(coro)


class TestServiceProtocol:
    def test_out_of_order_submission_serves_in_seq_order(self):
        async def scenario():
            service = DecisionService(seed=1)
            await service.start()
            # submit 2 and 1 first; they must wait for 0
            later = [
                asyncio.create_task(service.submit(conflict(2))),
                asyncio.create_task(service.submit(conflict(1))),
            ]
            await asyncio.sleep(0)
            assert all(not t.done() for t in later)
            d0 = await service.submit(conflict(0))
            decisions = [d0] + [await t for t in later]
            await service.stop()
            return service, decisions

        service, decisions = run(scenario())
        assert [d.seq for d in decisions] == [0, 2, 1]
        assert [json.loads(line)["seq"] for line in service.decision_log] == [
            0,
            1,
            2,
        ]

    def test_log_invariant_to_interleaving(self):
        async def serially():
            service = DecisionService(seed=9)
            await service.start()
            for i in range(40):
                await service.submit(conflict(i, age=100 + i, k=2 + i % 3))
            await service.stop()
            return service.decision_log

        async def shuffled():
            service = DecisionService(seed=9)
            await service.start()
            order = [i for i in range(40) if i % 2] + [
                i for i in range(40) if not i % 2
            ]
            tasks = {}
            for i in order:
                tasks[i] = asyncio.create_task(
                    service.submit(conflict(i, age=100 + i, k=2 + i % 3))
                )
                await asyncio.sleep(0)
            await asyncio.gather(*tasks.values())
            await service.stop()
            return service.decision_log

        assert run(serially()) == run(shuffled())

    def test_duplicate_and_stale_seq_rejected(self):
        async def scenario():
            service = DecisionService(seed=1)
            await service.start()
            await service.submit(conflict(0))
            with pytest.raises(InvalidParameterError, match="seq 0"):
                await service.submit(conflict(0))
            pending = asyncio.create_task(service.submit(conflict(5)))
            await asyncio.sleep(0)
            with pytest.raises(InvalidParameterError, match="seq 5"):
                await service.submit(conflict(5))
            for i in (1, 2, 3, 4):
                await service.submit(conflict(i))
            await pending
            await service.stop()

        run(scenario())

    def test_submit_before_start_fails(self):
        async def scenario():
            with pytest.raises(SimulationError, match="not started"):
                await DecisionService().submit(conflict(0))

        run(scenario())

    def test_double_start_fails(self):
        async def scenario():
            service = DecisionService()
            await service.start()
            with pytest.raises(SimulationError, match="already started"):
                await service.start()
            await service.stop()

        run(scenario())

    def test_stop_with_gap_fails_stuck_futures(self):
        async def scenario():
            service = DecisionService(seed=1)
            await service.start()
            stuck = asyncio.create_task(service.submit(conflict(3)))
            await asyncio.sleep(0)
            await service.stop()
            with pytest.raises(SimulationError, match="sequence gap"):
                await stuck

        run(scenario())

    def test_commit_reports_acked_not_logged(self):
        async def scenario():
            service = DecisionService(seed=1)
            await service.start()
            await service.submit(conflict(0))
            ack = await service.submit(
                CommitReport(seq=1, client_id=1, key=7, duration=50.0)
            )
            await service.stop()
            return service, ack

        service, ack = run(scenario())
        assert ack.action == "ack" and ack.grace == 0
        assert service.commits == 1 and service.conflicts == 1
        assert len(service.decision_log) == 1

    def test_latency_histograms_populated(self):
        async def scenario():
            service = DecisionService(seed=1)
            await service.start()
            for i in range(10):
                await service.submit(conflict(i))
            await service.stop()
            return service

        service = run(scenario())
        assert service.decide_latency.n == 10
        assert service.service_latency.n == 10
        assert not math.isnan(service.decide_latency.quantile(0.5))

    def test_same_seed_same_decisions(self):
        async def scenario():
            service = DecisionService(seed=5)
            await service.start()
            for i in range(50):
                await service.submit(conflict(i, age=50 + 7 * i))
            await service.stop()
            return service.decision_log

        assert run(scenario()) == run(scenario())


class TestDecisionLine:
    def test_canonical_and_stable(self):
        line = decision_line(Decision(4, "grant", 120, "mean", "X"))
        assert line == (
            '{"action":"grant","grace":120,"policy":"X",'
            '"regime":"mean","seq":4}'
        )


def snap(b=1000.0, k=2.0, mu=100.0, n_conflicts=100, n_commits=100):
    return EstimateSnapshot(b, k, mu, n_conflicts, n_commits)


class TestRegimeAdaptiveDelay:
    def test_registered_by_name(self):
        policy = policy_from_name(
            "DELAY_REGIME", MachineParams(), tuned_cycles=0, mu_cycles=0.0
        )
        assert isinstance(policy, RegimeAdaptiveDelay)

    def test_classify_bootstrap_on_thin_evidence(self):
        policy = RegimeAdaptiveDelay(min_samples=32)
        assert policy.classify(snap(n_conflicts=31)) == "bootstrap"

    def test_classify_rand_without_commits(self):
        policy = RegimeAdaptiveDelay()
        assert policy.classify(snap(n_commits=0, mu=math.nan)) == "rand"

    def test_classify_mean_inside_threshold(self):
        policy = RegimeAdaptiveDelay()
        threshold = rw_mean_regime_threshold(2)
        inside = snap(b=1000.0, mu=0.5 * threshold * 1000.0)
        outside = snap(b=1000.0, mu=2.0 * threshold * 1000.0)
        assert policy.classify(inside) == "mean"
        assert policy.classify(outside) == "rand"

    def test_bootstrap_plays_deterministic_rule(self):
        policy = RegimeAdaptiveDelay(min_samples=1000)
        params = MachineParams()
        ctx = ConflictContext(tx_age=600, chain_k=3, params=params)
        rng = np.random.default_rng(0)
        assert policy.decide(ctx, rng) == ctx.abort_cost // 2
        assert policy.regime == "bootstrap"

    def test_regime_shift_switches_and_counts(self):
        policy = RegimeAdaptiveDelay(
            window=64, min_samples=8, refresh_every=1
        )
        params = MachineParams()
        rng = np.random.default_rng(0)
        ctx = ConflictContext(tx_age=1000, chain_k=2, params=params)
        # short commits: µ̂/B̂ tiny -> mean regime
        for _ in range(64):
            policy.observe_commit(5.0)
        for _ in range(16):
            policy.decide(ctx, rng)
        assert policy.regime == "mean"
        switches_after_mean = policy.regime_switches
        # long commits flood the window: µ̂/B̂ huge -> rand regime
        for _ in range(64):
            policy.observe_commit(1e6)
        policy.decide(ctx, rng)
        assert policy.regime == "rand"
        assert policy.regime_switches == switches_after_mean + 1

    def test_decide_grace_is_bounded_by_abort_cost_scale(self):
        """Sampled graces stay within the optimal density's support
        (a loose sanity bound: < 4x the bucketed abort cost)."""
        policy = RegimeAdaptiveDelay(min_samples=1, refresh_every=1)
        params = MachineParams()
        rng = np.random.default_rng(7)
        ctx = ConflictContext(tx_age=500, chain_k=2, params=params)
        for _ in range(50):
            grace = policy.decide(ctx, rng)
            assert 0 <= grace <= 4 * ctx.abort_cost

    def test_validation(self):
        with pytest.raises(InvalidParameterError, match="min_samples"):
            RegimeAdaptiveDelay(min_samples=0)
        with pytest.raises(InvalidParameterError, match="refresh_every"):
            RegimeAdaptiveDelay(refresh_every=0)
