"""Parallel execution layer: shard pools, the content-addressed result
cache, the process-level executor, and the CLI's --jobs/--cache wiring.

The load-bearing contract everywhere: rows are a function of
(experiment, quick, seed, fixed shard count) — never of --jobs, the
pool, or the cache.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time

import pytest

from repro.cli import main
from repro.errors import InvalidParameterError, SimulationError
from repro.experiments import EXPERIMENTS, register_experiment, run_experiment
from repro.experiments.registry import _SPECS
from repro.parallel import (
    ParallelExecutor,
    ProcessPool,
    ResultCache,
    SerialPool,
    cache_key,
    make_pool,
)


@pytest.fixture
def scratch(monkeypatch):
    """Register throwaway experiments; deregister them afterwards.

    Workers inherit these via fork, so executor tests can use
    registrations made in the test process.
    """
    registered: list[str] = []

    def _register(exp_id, runner, **kwargs):
        register_experiment(exp_id, f"test double {exp_id}", runner, **kwargs)
        registered.append(exp_id)
        return exp_id

    yield _register
    for exp_id in registered:
        _SPECS.pop(exp_id, None)
        EXPERIMENTS.pop(exp_id, None)


def _square(x):
    return x * x


def _rows(**kw):
    return [{"x": 1}]


def _fail(**kw):
    raise SimulationError("injected failure")


def _die(**kw):  # worker vanishes without sending a result
    os._exit(3)


def _slow_rows(**kw):
    time.sleep(0.6)
    return [{"x": "slow"}]


def _hang(**kw):  # killable by the in-worker SIGALRM watchdog
    while True:
        time.sleep(0.02)


def _stubborn_hang(**kw):
    """A SIGALRM-proof hang: swallows the watchdog's exception.

    Only the parent's process-level kill can stop this — the regression
    case for the old silently-unenforced timeout.
    """
    while True:
        try:
            time.sleep(0.02)
        except BaseException:
            pass


class _MarkingRunner:
    """Picklable runner that appends a line to a file per invocation,
    so call counts survive the process boundary."""

    def __init__(self, path):
        self.path = str(path)

    def __call__(self, **kw):
        with open(self.path, "a") as fh:
            fh.write("run\n")
        return [{"x": 1}]


def _runs(path) -> int:
    try:
        return path.read_text().count("run")
    except FileNotFoundError:
        return 0


def _ckpt_done(path) -> dict:
    """Replay a checkpoint journal's done map (read-only)."""
    from repro.parallel import recover

    return recover(path, truncate=False).done_map()


# ---------------------------------------------------------------------------
class TestPools:
    def test_make_pool_serial(self):
        pool = make_pool(1)
        assert isinstance(pool, SerialPool)
        assert pool.starmap(_square, [(i,) for i in range(5)]) == [
            0, 1, 4, 9, 16,
        ]
        pool.close()

    def test_process_pool_preserves_order(self):
        with make_pool(2) as pool:
            assert isinstance(pool, ProcessPool)
            out = pool.starmap(_square, [(i,) for i in range(20)])
        assert out == [i * i for i in range(20)]

    def test_jobs_validation(self):
        with pytest.raises(InvalidParameterError):
            make_pool(0)
        with pytest.raises(InvalidParameterError):
            ParallelExecutor(0)


# ---------------------------------------------------------------------------
class TestResultCache:
    def test_roundtrip_is_exact(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f" * 64)
        rows = [
            {"ratio": 0.1 + 0.2, "n": 3, "label": "DET", "tiny": 5e-324},
            {"ratio": 2.0 / 3.0, "n": 4, "label": "OPT", "tiny": 1e308},
        ]
        assert cache.get_rows("zz", {"a": 1}, quick=True, seed=3) is None
        cache.put_rows("zz", rows, {"a": 1}, quick=True, seed=3)
        hit = cache.get_rows("zz", {"a": 1}, quick=True, seed=3)
        assert hit == rows  # bit-exact floats: JSON shortest-repr round-trip

    def test_key_sensitivity(self):
        base = dict(quick=True, seed=3, fingerprint="a" * 64)
        k = cache_key("zz", {"a": 1}, **base)
        assert cache_key("zz", {"a": 2}, **base) != k
        assert cache_key("zz2", {"a": 1}, **base) != k
        assert cache_key("zz", {"a": 1}, **{**base, "seed": 4}) != k
        assert cache_key("zz", {"a": 1}, **{**base, "quick": False}) != k
        assert (
            cache_key("zz", {"a": 1}, **{**base, "fingerprint": "b" * 64})
            != k
        )
        # kwarg ordering must NOT matter
        assert cache_key("zz", {"b": 2, "a": 1}, **base) == cache_key(
            "zz", {"a": 1, "b": 2}, **base
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f" * 64)
        cache.put_rows("zz", [{"x": 1}], {}, quick=False, seed=None)
        (entry,) = list(tmp_path.glob("zz-*.json"))
        entry.write_text("{ not json")
        assert cache.get_rows("zz", {}, quick=False, seed=None) is None

    def test_unserializable_rows_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f" * 64)
        assert (
            cache.put_rows("zz", [{"x": object()}], {}, quick=False, seed=None)
            is None
        )
        assert list(tmp_path.glob("*.json")) == []

    def test_run_experiment_cache_hit(self, scratch, tmp_path):
        calls = []

        def runner(**kw):
            calls.append(1)
            return [{"v": 0.1 + 0.2, "n": 7}]

        exp_id = scratch("zz_cached", runner)
        cache = ResultCache(tmp_path)
        first = run_experiment(exp_id, cache=cache)
        second = run_experiment(exp_id, cache=cache)
        assert len(calls) == 1
        assert not first.cached and second.cached
        assert second.rows == first.rows
        assert second.params == first.params
        assert second.title == first.title

    def test_failures_never_cached(self, scratch, tmp_path):
        exp_id = scratch("zz_fail", _fail)
        cache = ResultCache(tmp_path)
        with pytest.raises(SimulationError):
            run_experiment(exp_id, cache=cache)
        assert list(tmp_path.glob(f"{exp_id}-*.json")) == []


# ---------------------------------------------------------------------------
class TestExecutor:
    def test_submission_order_out_completion_order_hook(self, scratch):
        scratch("zz_slow", _slow_rows)
        scratch("zz_fast", _rows)
        completion: list[str] = []
        outcomes = ParallelExecutor(2).run(
            ["zz_slow", "zz_fast"],
            on_complete=lambda o: completion.append(o.exp_id),
        )
        assert [o.exp_id for o in outcomes] == ["zz_slow", "zz_fast"]
        assert completion == ["zz_fast", "zz_slow"]
        assert all(o.ok for o in outcomes)
        assert outcomes[1].result.rows == [{"x": 1}]

    def test_worker_crash_reported_not_hung(self, scratch):
        exp_id = scratch("zz_die", _die)
        (outcome,) = ParallelExecutor(1).run([exp_id])
        assert outcome.status == "failed"
        assert "exited without a result" in outcome.error
        assert "exit code 3" in outcome.error

    def test_in_worker_watchdog_fires(self, scratch):
        """Workers run on their own main thread, so SIGALRM is armed."""
        exp_id = scratch("zz_hang", _hang)
        (outcome,) = ParallelExecutor(1, timeout=0.2, kill_grace=5.0).run(
            [exp_id]
        )
        assert outcome.error_type == "ExperimentTimeoutError"
        assert "killed by the parent" not in outcome.error

    def test_parent_kills_sigalrm_proof_hang(self, scratch):
        """Regression: a runner that swallows the watchdog exception used
        to hang forever; the parent must kill the worker process."""
        exp_id = scratch("zz_stubborn", _stubborn_hang)
        start = time.monotonic()
        (outcome,) = ParallelExecutor(1, timeout=0.3, kill_grace=0.3).run(
            [exp_id]
        )
        assert time.monotonic() - start < 10.0
        assert outcome.status == "failed"
        assert outcome.error_type == "ExperimentTimeoutError"
        assert "killed by the parent" in outcome.error

    def test_stop_on_failure_skips_unstarted(self, scratch):
        scratch("zz_f1", _fail)
        scratch("zz_ok1", _rows)
        outcomes = ParallelExecutor(1).run(
            ["zz_f1", "zz_ok1"], stop_on_failure=True
        )
        assert [o.status for o in outcomes] == ["failed", "skipped"]


# ---------------------------------------------------------------------------
class TestWatchdogOffMainThread:
    def test_warns_and_still_runs(self, scratch, caplog):
        """Satellite 1: off the main thread the SIGALRM watchdog cannot
        arm — that must be a logged warning, never a silent no-op."""
        exp_id = scratch("zz_threaded", _rows)
        results: list = []
        with caplog.at_level(
            logging.WARNING, logger="repro.experiments.registry"
        ):
            t = threading.Thread(
                target=lambda: results.append(
                    run_experiment(exp_id, timeout=5.0)
                )
            )
            t.start()
            t.join()
        assert results and results[0].rows == [{"x": 1}]
        assert any(
            "SIGALRM watchdog cannot arm" in rec.message
            for rec in caplog.records
        )


# ---------------------------------------------------------------------------
class TestCLIParallel:
    def test_jobs_validation(self, capsys):
        assert main(["fig2a", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_jobs_invariance_of_json_rows(self, tmp_path):
        """The acceptance check: --jobs changes wall clock, never rows."""
        out1, out4 = tmp_path / "j1", tmp_path / "j4"
        args = ["fig2a", "tab_ratios", "--quick", "--seed", "3", "--json"]
        assert main([*args, "--jobs", "4", "--out", str(out4)]) == 0
        assert main([*args, "--jobs", "1", "--out", str(out1)]) == 0
        for exp_id in ("fig2a", "tab_ratios"):
            a = (out1 / f"{exp_id}.json").read_text()
            b = (out4 / f"{exp_id}.json").read_text()
            assert a == b, f"{exp_id} rows differ between --jobs 1 and 4"

    def test_parallel_keep_going_checkpoint_and_resume(
        self, scratch, tmp_path
    ):
        mark_a, mark_c = tmp_path / "a.log", tmp_path / "c.log"
        scratch("zz_pa", _MarkingRunner(mark_a))
        scratch("zz_pb", _fail)
        scratch("zz_pc", _MarkingRunner(mark_c))
        ckpt = tmp_path / "ckpt.json"
        batch = ["zz_pa", "zz_pb", "zz_pc", "--jobs", "2", "--keep-going",
                 "--checkpoint", str(ckpt)]
        assert main(batch) == 1  # zz_pb failed, others completed
        done = _ckpt_done(ckpt)
        assert done["zz_pa"]["status"] == "ok"
        assert done["zz_pb"]["status"] == "failed"
        assert done["zz_pb"]["error_type"] == "SimulationError"
        assert done["zz_pc"]["status"] == "ok"
        assert _runs(mark_a) == 1 and _runs(mark_c) == 1
        # resume: completed experiments are skipped, the failure re-runs
        assert main([*batch, "--resume"]) == 1
        assert _runs(mark_a) == 1 and _runs(mark_c) == 1

    def test_killed_batch_resumes_where_it_stopped(self, scratch, tmp_path):
        """A batch interrupted mid-run (checkpoint holds its completed
        prefix) must skip exactly the finished experiments on --resume."""
        mark_a, mark_b = tmp_path / "a.log", tmp_path / "b.log"
        scratch("zz_ra", _MarkingRunner(mark_a))
        scratch("zz_rb", _MarkingRunner(mark_b))
        ckpt = tmp_path / "ckpt.json"
        # first invocation "dies" after completing only zz_ra
        assert main(["zz_ra", "--checkpoint", str(ckpt)]) == 0
        assert main(
            ["zz_ra", "zz_rb", "--jobs", "2", "--checkpoint", str(ckpt),
             "--resume"]
        ) == 0
        assert _runs(mark_a) == 1  # not re-run
        assert _runs(mark_b) == 1
        done = _ckpt_done(ckpt)
        assert set(done) == {"zz_ra", "zz_rb"}

    def test_sigkill_mid_checkpoint_write_resumes_byte_identical(
        self, scratch, tmp_path, capsys
    ):
        """SIGKILL during a journal append leaves a torn final record.
        Recovery must truncate to the last durable record, and the
        resumed run's rows must be byte-identical to an uninterrupted
        run (the crash-consistency headline, docs/ROBUSTNESS.md §3)."""
        from repro.faults import tear_tail

        marks = [tmp_path / f"{n}.log" for n in "abc"]
        ids = [
            scratch(f"zz_tk{n}", _MarkingRunner(m))
            for n, m in zip("abc", marks)
        ]
        clean_out = tmp_path / "clean"
        assert main([*ids, "--json", "--out", str(clean_out)]) == 0
        # interrupted run: two experiments done, then the journal's
        # tail is torn exactly as a kill mid-append would leave it
        ckpt = tmp_path / "ckpt.json"
        assert main([ids[0], ids[1], "--checkpoint", str(ckpt)]) == 0
        assert tear_tail(ckpt) > 0
        done = _ckpt_done(ckpt)
        assert set(done) == {ids[0]}  # recovered to last durable record
        # resume: the torn record's experiment re-runs, the durable one
        # is skipped, and every row matches the uninterrupted run
        resumed_out = tmp_path / "resumed"
        capsys.readouterr()
        assert main(
            [*ids, "--jobs", "2", "--checkpoint", str(ckpt), "--resume",
             "--json", "--out", str(resumed_out)]
        ) == 0
        assert "recovered a torn tail" in capsys.readouterr().err
        assert _runs(marks[0]) == 2  # clean run + interrupted run only
        assert _runs(marks[1]) == 3  # re-run after the torn record
        for exp_id in ids[1:]:
            assert (resumed_out / f"{exp_id}.json").read_bytes() == (
                clean_out / f"{exp_id}.json"
            ).read_bytes()

    def test_cache_flag_roundtrip(self, scratch, tmp_path, monkeypatch,
                                  capsys):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        mark = tmp_path / "m.log"
        scratch("zz_cc", _MarkingRunner(mark))
        args = ["zz_cc", "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        assert main(args) == 0
        assert _runs(mark) == 1
        assert "(cache hit)" in capsys.readouterr().out
        # --no-cache forces a re-run
        assert main([*args, "--no-cache"]) == 0
        assert _runs(mark) == 2


# ---------------------------------------------------------------------------
class TestShardedHarness:
    def test_pool_invariance_and_identity(self):
        from repro.distributions import ExponentialLengths
        from repro.rngutil import seedseq_for
        from repro.synthetic import SyntheticHarness

        dist = ExponentialLengths(500.0)
        harness = SyntheticHarness(2000.0, 500.0)
        serial = harness.run(dist, 4000, seedseq_for(3, "t"), n_shards=4)
        with make_pool(2) as pool:
            pooled = harness.run(
                dist, 4000, seedseq_for(3, "t"), n_shards=4, pool=pool
            )
        for label, acc in serial.stats.items():
            assert pooled.stats[label].mean == acc.mean  # bit-equal
            assert pooled.stats[label].sem == acc.sem

    def test_live_generator_rejected_for_sharding(self, rng):
        from repro.distributions import ExponentialLengths
        from repro.synthetic import SyntheticHarness

        harness = SyntheticHarness(2000.0, 500.0)
        with pytest.raises(InvalidParameterError, match="SeedSequence"):
            harness.run(
                ExponentialLengths(500.0), 1000, rng, n_shards=4
            )
