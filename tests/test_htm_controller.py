"""Focused unit tests for the HTM controller's protocol paths.

These drive a tiny machine directly through the controller API (no
workload layer) to pin down behaviours the integration tests only
exercise statistically.
"""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.htm import Machine, MachineParams, NoDelay, TunedDelay
from repro.htm.cache import LineState
from repro.htm.controller import AbortReason


def make_machine(n_cores=2, policy=None, **params_kwargs):
    params = MachineParams(n_cores=n_cores, **params_kwargs)
    machine = Machine(
        params, (lambda i: policy) if policy else (lambda i: NoDelay())
    )
    # minimal load without a workload: build mem systems only
    from repro.htm.controller import CoreMemSystem
    from repro.rngutil import spawn_streams

    streams = spawn_streams(1, n_cores)
    machine.mems = [
        CoreMemSystem(i, machine, machine._policy_factory(i), streams[i])
        for i in range(n_cores)
    ]
    return machine


def complete(machine, horizon=100_000.0):
    machine.sim.run(until=horizon)


class Collector:
    def __init__(self):
        self.results = []

    def __call__(self, value=None):
        self.results.append(value)


class TestAccessPaths:
    def test_read_miss_then_hit(self):
        machine = make_machine()
        mem = machine.mems[0]
        machine.poke(64, 42)
        out = Collector()
        mem.access(64, write=False, tx=False, done=out)
        complete(machine)
        assert out.results == [42]
        # second access is a hit: completes much faster
        t0 = machine.sim.now
        mem.access(64, write=False, tx=False, done=out)
        complete(machine)
        assert out.results == [42, 42]

    def test_non_tx_write_immediate(self):
        machine = make_machine()
        mem = machine.mems[0]
        out = Collector()
        mem.access(64, write=True, tx=False, value=7, done=out)
        complete(machine)
        assert machine.peek(64) == 7

    def test_cas_success_and_failure(self):
        machine = make_machine()
        mem = machine.mems[0]
        machine.poke(64, 5)
        out = Collector()
        mem.access(64, write=False, tx=False, cas=(5, 9), done=out)
        complete(machine)
        assert out.results[-1] == (True, 5)
        assert machine.peek(64) == 9
        mem.access(64, write=False, tx=False, cas=(5, 11), done=out)
        complete(machine)
        assert out.results[-1] == (False, 9)
        assert machine.peek(64) == 9

    def test_tx_write_buffered_until_commit(self):
        machine = make_machine()
        mem = machine.mems[0]
        machine.poke(64, 1)
        mem.begin_tx(lambda reason: None)
        out = Collector()
        mem.access(64, write=True, tx=True, value=99, done=out)
        complete(machine)
        assert machine.peek(64) == 1  # still buffered
        # read-own-write
        mem.access(64, write=False, tx=True, done=out)
        complete(machine)
        assert out.results[-1] == 99
        # commit: acquire + finalize
        addr = mem.next_commit_addr()
        assert addr == 64
        done = Collector()
        mem.access(addr, write=False, tx=True, acquire=True, done=done)
        complete(machine)
        assert mem.next_commit_addr() is None
        mem.finalize_commit(lambda: done("committed"))
        complete(machine)
        assert machine.peek(64) == 99
        assert "committed" in done.results

    def test_abort_discards_buffer(self):
        machine = make_machine()
        mem = machine.mems[0]
        machine.poke(64, 1)
        reasons = Collector()
        mem.begin_tx(reasons)
        out = Collector()
        mem.access(64, write=True, tx=True, value=99, done=out)
        complete(machine)
        mem.abort_tx(AbortReason.EXPLICIT)
        assert machine.peek(64) == 1
        assert reasons.results == [AbortReason.EXPLICIT]
        assert not mem.tx_active
        assert mem.cache.transactional_lines() == []

    def test_tx_access_outside_tx_rejected(self):
        machine = make_machine()
        with pytest.raises(ProtocolError):
            machine.mems[0].access(64, write=False, tx=True, done=lambda v: None)

    def test_nested_begin_rejected(self):
        machine = make_machine()
        mem = machine.mems[0]
        mem.begin_tx(lambda r: None)
        with pytest.raises(ProtocolError):
            mem.begin_tx(lambda r: None)

    def test_finalize_without_ownership_rejected(self):
        machine = make_machine()
        mem = machine.mems[0]
        mem.begin_tx(lambda r: None)
        out = Collector()
        mem.access(64, write=True, tx=True, value=5, done=out)
        complete(machine)
        # line is S (lazy) — finalize must refuse
        with pytest.raises(ProtocolError):
            mem.finalize_commit(lambda: None)


class TestConflictPaths:
    def _setup_conflict(self, policy):
        """Core 0 holds a tx-read line; core 1 requests it exclusively."""
        machine = make_machine(policy=policy)
        m0, m1 = machine.mems
        machine.poke(64, 3)
        m0.begin_tx(lambda r: None)
        out = Collector()
        m0.access(64, write=False, tx=True, done=out)
        complete(machine)
        return machine, m0, m1

    def test_no_delay_kills_receiver(self):
        machine, m0, m1 = self._setup_conflict(NoDelay())
        got = Collector()
        m1.access(64, write=True, tx=False, value=9, done=got)
        complete(machine)
        assert not m0.tx_active
        assert m0.stats.abort_reasons.get("conflict_immediate") == 1
        assert machine.peek(64) == 9

    def test_grace_expires_then_receiver_dies(self):
        machine, m0, m1 = self._setup_conflict(TunedDelay(500))
        got = Collector()
        start = machine.sim.now
        m1.access(64, write=True, tx=False, value=9, done=got)
        complete(machine)
        assert not m0.tx_active
        assert m0.stats.abort_reasons.get("conflict_timeout") == 1
        # the requestor's completion waited for the grace period
        assert machine.sim.now - start >= 500

    def test_commit_during_grace_saves_receiver(self):
        machine, m0, m1 = self._setup_conflict(TunedDelay(5_000))
        got = Collector()
        m1.access(64, write=True, tx=False, value=9, done=got)
        machine.sim.run(until=machine.sim.now + 100)  # probe delayed
        assert m0.tx_active
        # read set only -> the receiver can finalize immediately
        m0.finalize_commit(lambda: got("committed"))
        complete(machine)
        assert got.results  # requestor unblocked after the commit
        assert m0.stats.tx_committed == 1
        assert m0.stats.tx_aborted == 0

    def test_static_wedge_aborts_immediately(self):
        """A buffered write to the probed (un-owned) line dooms the
        receiver instantly despite a long grace policy."""
        machine = make_machine(policy=TunedDelay(100_000))
        m0, m1 = machine.mems
        m0.begin_tx(lambda r: None)
        out = Collector()
        m0.access(64, write=True, tx=True, value=5, done=out)  # S + tx_write
        complete(machine)
        got = Collector()
        t0 = machine.sim.now
        m1.access(64, write=True, tx=False, value=9, done=got)
        complete(machine)
        assert not m0.tx_active
        assert m0.stats.abort_reasons.get("wedged", 0) == 1
        assert machine.sim.now - t0 < 1_000  # no grace burned

    def test_dynamic_wedge_on_access(self):
        """Granting grace first, then writing the probed line: the
        access self-aborts (the self-deadlock fix)."""
        machine = make_machine(policy=TunedDelay(100_000))
        m0, m1 = machine.mems
        machine.poke(64, 3)
        m0.begin_tx(lambda r: None)
        out = Collector()
        m0.access(64, write=False, tx=True, done=out)  # tx_read only
        complete(machine)
        got = Collector()
        m1.access(64, write=True, tx=False, value=9, done=got)
        machine.sim.run(until=machine.sim.now + 50)
        assert m0.tx_active  # in grace
        issued = m0.access(64, write=True, tx=True, value=7, done=out)
        assert issued is False
        assert not m0.tx_active
        assert m0.stats.abort_reasons.get("wedged", 0) == 1
        complete(machine)
        assert machine.peek(64) == 9  # requestor won

    def test_gets_probe_on_tx_read_no_conflict(self):
        """A reader probing another reader's tx line is not a conflict
        (only writes clash with reads)."""
        machine = make_machine(policy=NoDelay())
        m0, m1 = machine.mems
        machine.poke(64, 3)
        m0.begin_tx(lambda r: None)
        out = Collector()
        m0.access(64, write=False, tx=True, done=out)
        complete(machine)
        got = Collector()
        m1.access(64, write=False, tx=False, done=got)
        complete(machine)
        assert m0.tx_active  # untouched
        assert got.results == [3]

    def test_second_probe_joins_pending(self):
        machine = make_machine(n_cores=3, policy=TunedDelay(5_000))
        m0, m1, m2 = machine.mems
        machine.poke(64, 3)
        m0.begin_tx(lambda r: None)
        out = Collector()
        m0.access(64, write=False, tx=True, done=out)
        complete(machine)
        got1, got2 = Collector(), Collector()
        m1.access(64, write=True, tx=False, value=9, done=got1)
        machine.sim.run(until=machine.sim.now + 50)
        m2.access(64, write=False, tx=False, done=got2)
        machine.sim.run(until=machine.sim.now + 50)
        # only one grace decision (the second request queues at the
        # directory behind the first — pending list has one probe)
        assert m0.stats.grace_delay_stats.n == 1


class TestEvictionPaths:
    def test_capacity_abort_on_full_tx_set(self):
        # one set, two ways: third distinct line in set 0 wedges
        machine = make_machine(l1_sets=1, l1_assoc=2)
        mem = machine.mems[0]
        reasons = Collector()
        mem.begin_tx(reasons)
        out = Collector()
        line_words = machine.params.line_words
        mem.access(1 * line_words, write=False, tx=True, done=out)
        complete(machine)
        mem.access(2 * line_words, write=False, tx=True, done=out)
        complete(machine)
        issued = mem.access(3 * line_words, write=False, tx=True, done=out)
        assert issued is False
        assert reasons.results == [AbortReason.CAPACITY]
        assert mem.stats.abort_reasons.get("capacity") == 1

    def test_non_tx_victim_preferred(self):
        machine = make_machine(l1_sets=1, l1_assoc=2)
        mem = machine.mems[0]
        out = Collector()
        lw = machine.params.line_words
        mem.access(1 * lw, write=False, tx=False, done=out)  # non-tx line
        complete(machine)
        mem.begin_tx(lambda r: None)
        mem.access(2 * lw, write=False, tx=True, done=out)  # tx line
        complete(machine)
        issued = mem.access(3 * lw, write=False, tx=True, done=out)
        complete(machine)
        assert issued is True  # evicted the non-tx way, tx survived
        assert mem.tx_active
        assert mem.cache.lookup(1) is None

    def test_m_eviction_writes_back(self):
        machine = make_machine(l1_sets=1, l1_assoc=2)
        mem = machine.mems[0]
        out = Collector()
        lw = machine.params.line_words
        mem.access(1 * lw, write=True, tx=False, value=5, done=out)
        complete(machine)
        assert machine.directory.entry(1).owner == 0
        mem.access(2 * lw, write=False, tx=False, done=out)
        complete(machine)
        mem.access(3 * lw, write=False, tx=False, done=out)
        complete(machine)
        assert machine.directory.entry(1).owner is None
        assert mem.stats.writebacks == 1


class TestNackBackstop:
    def test_ra_receiver_gets_backstop_timer(self):
        from repro.htm import RequestorAbortsDelay

        machine = make_machine(policy=RequestorAbortsDelay())
        m0, m1 = machine.mems
        machine.poke(64, 3)
        m0.begin_tx(lambda r: None)
        out = Collector()
        m0.access(64, write=False, tx=True, done=out)
        complete(machine)
        # non-tx requestor cannot be NACKed; backstop must still fire
        got = Collector()
        m1.access(64, write=True, tx=False, value=9, done=got)
        complete(machine)
        # eventually the receiver yielded (requestor-wins backstop)
        assert not m0.tx_active
        assert got.results is not None
        assert machine.peek(64) == 9
