"""Tests for the L1 cache model."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.htm.cache import CacheLine, L1Cache, LineState
from repro.htm.params import MachineParams


@pytest.fixture
def cache() -> L1Cache:
    return L1Cache(MachineParams(n_cores=2, l1_sets=4, l1_assoc=2))


class TestFillLookup:
    def test_miss_then_hit(self, cache):
        assert cache.lookup(5) is None
        cache.fill(5, LineState.SHARED)
        entry = cache.lookup(5)
        assert entry is not None
        assert entry.state is LineState.SHARED

    def test_upgrade_in_place(self, cache):
        cache.fill(5, LineState.SHARED)
        cache.fill(5, LineState.MODIFIED)
        assert cache.lookup(5).state is LineState.MODIFIED
        assert len(cache) == 1

    def test_has_state(self, cache):
        cache.fill(5, LineState.SHARED)
        assert cache.has_state(5, exclusive=False)
        assert not cache.has_state(5, exclusive=True)
        cache.fill(5, LineState.MODIFIED)
        assert cache.has_state(5, exclusive=True)

    def test_set_isolation(self, cache):
        # lines 0 and 4 share set 0 (4 sets); 1 goes to set 1
        cache.fill(0, LineState.SHARED)
        cache.fill(4, LineState.SHARED)
        cache.fill(1, LineState.SHARED)
        assert len(cache) == 3

    def test_fill_full_set_raises(self, cache):
        cache.fill(0, LineState.SHARED)
        cache.fill(4, LineState.SHARED)
        with pytest.raises(ProtocolError):
            cache.fill(8, LineState.SHARED)  # set 0 full, not evicted


class TestVictimSelection:
    def test_no_victim_when_free(self, cache):
        cache.fill(0, LineState.SHARED)
        assert cache.victim_for(4) is None

    def test_no_victim_when_resident(self, cache):
        cache.fill(0, LineState.SHARED)
        cache.fill(4, LineState.SHARED)
        assert cache.victim_for(0) is None

    def test_lru_victim(self, cache):
        cache.fill(0, LineState.SHARED)
        cache.fill(4, LineState.SHARED)
        cache.touch(cache.lookup(0))  # 0 now MRU
        victim = cache.victim_for(8)
        assert victim.line == 4

    def test_eviction(self, cache):
        cache.fill(0, LineState.MODIFIED)
        entry = cache.evict(0)
        assert entry.state is LineState.MODIFIED
        assert cache.lookup(0) is None

    def test_evict_missing_raises(self, cache):
        with pytest.raises(ProtocolError):
            cache.evict(3)


class TestProbeActions:
    def test_downgrade(self, cache):
        cache.fill(2, LineState.MODIFIED)
        cache.downgrade(2)
        assert cache.lookup(2).state is LineState.SHARED

    def test_downgrade_requires_m(self, cache):
        cache.fill(2, LineState.SHARED)
        with pytest.raises(ProtocolError):
            cache.downgrade(2)

    def test_invalidate(self, cache):
        cache.fill(2, LineState.SHARED)
        cache.invalidate(2)
        assert cache.lookup(2) is None


class TestTransactionalBits:
    def test_mark_read(self, cache):
        cache.fill(3, LineState.SHARED)
        cache.mark_tx(3, write=False)
        assert cache.lookup(3).tx_read
        assert not cache.lookup(3).tx_write

    def test_mark_write_on_shared_lazy(self, cache):
        """Lazy validation: tx-write bit on an S line is legal."""
        cache.fill(3, LineState.SHARED)
        cache.mark_tx(3, write=True)
        assert cache.lookup(3).tx_write

    def test_mark_missing_raises(self, cache):
        with pytest.raises(ProtocolError):
            cache.mark_tx(3, write=False)

    def test_clear_tx_bits(self, cache):
        cache.fill(1, LineState.SHARED)
        cache.fill(2, LineState.MODIFIED)
        cache.mark_tx(1, write=False)
        cache.mark_tx(2, write=True)
        cleared = cache.clear_tx_bits()
        assert sorted(cleared) == [1, 2]
        assert cache.lookup(1) is not None  # lines stay resident
        assert not cache.lookup(1).tx_read

    def test_invalidate_tx_lines(self, cache):
        cache.fill(1, LineState.SHARED)
        cache.fill(2, LineState.MODIFIED)
        cache.fill(3, LineState.SHARED)
        cache.mark_tx(1, write=False)
        cache.mark_tx(2, write=True)
        dropped = cache.invalidate_tx_lines()
        assert sorted(dropped) == [1, 2]
        assert cache.lookup(3) is not None
        assert cache.lookup(1) is None

    def test_transactional_lines_listing(self, cache):
        cache.fill(1, LineState.SHARED)
        cache.mark_tx(1, write=False)
        assert cache.transactional_lines() == [1]

    def test_resident_lines(self, cache):
        cache.fill(1, LineState.SHARED)
        cache.fill(2, LineState.SHARED)
        assert sorted(cache.resident_lines()) == [1, 2]
