"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.model import ConflictKind, ConflictModel
from repro.core.policy import FixedDelayPolicy
from repro.core.requestor_aborts import ChainRA, DiscreteSkiRentalRA, ExponentialRA
from repro.core.requestor_wins import (
    MeanConstrainedRW,
    PolynomialRW,
    UniformRW,
    optimal_requestor_wins,
)
from repro.core import ski_rental as sr
from repro.sim.engine import Simulator
from repro.sim.stats import Welford

# -- strategies ---------------------------------------------------------

kinds = st.sampled_from(list(ConflictKind))
abort_costs = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)
chains = st.integers(min_value=2, max_value=64)
delays = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
remainings = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


class TestCostModelProperties:
    @given(kinds, abort_costs, chains, delays, remainings)
    @settings(max_examples=300)
    def test_opt_lower_bounds_cost(self, kind, B, k, x, d):
        model = ConflictModel(kind, B, k)
        assert model.opt(d) <= model.cost(x, d) + 1e-6 * max(1.0, model.cost(x, d))

    @given(kinds, abort_costs, chains, delays, remainings)
    @settings(max_examples=200)
    def test_cost_nonnegative(self, kind, B, k, x, d):
        assert ConflictModel(kind, B, k).cost(x, d) >= 0.0

    @given(kinds, abort_costs, chains, remainings)
    @settings(max_examples=200)
    def test_commit_cost_independent_of_delay(self, kind, B, k, d):
        """Once D <= x, the cost is (k-1) D regardless of x."""
        model = ConflictModel(kind, B, k)
        assume(d < 1e5)
        c1 = model.cost(d, d)
        c2 = model.cost(d * 2 + 1, d)
        assert c1 == pytest.approx(c2)

    @given(kinds, abort_costs, chains, delays)
    @settings(max_examples=200)
    def test_abort_cost_independent_of_remaining(self, kind, B, k, x):
        model = ConflictModel(kind, B, k)
        c1 = model.cost(x, x + 1.0)
        c2 = model.cost(x, x + 1e5)
        assert c1 == pytest.approx(c2)

    @given(kinds, abort_costs, chains, st.lists(
        st.tuples(delays, remainings), min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_vectorized_matches_scalar(self, kind, B, k, pairs):
        model = ConflictModel(kind, B, k)
        xs = np.asarray([p[0] for p in pairs])
        ds = np.asarray([p[1] for p in pairs])
        vec = model.cost_vec(xs, ds)
        for i, (x, d) in enumerate(pairs):
            assert vec[i] == pytest.approx(model.cost(x, d))


class TestPolicyDistributionProperties:
    @staticmethod
    def _policies(B: float, k: int):
        out = [UniformRW(B, k), ExponentialRA(B, k)]
        if k == 2:
            out.append(MeanConstrainedRW(B, 0.1 * B))
            out.append(ChainRA(B, 2, 0.1 * B))
        else:
            out.append(PolynomialRW(B, k))
        return out

    @given(st.floats(min_value=1.0, max_value=1e5), st.integers(2, 16))
    @settings(max_examples=60, deadline=None)
    def test_pdf_normalizes(self, B, k):
        for policy in self._policies(B, k):
            xs = np.linspace(*policy.support, 4001)
            integral = float(np.trapezoid(policy.pdf_vec(xs), xs))
            assert integral == pytest.approx(1.0, abs=5e-3)

    @given(st.floats(min_value=1.0, max_value=1e5), st.integers(2, 16))
    @settings(max_examples=60, deadline=None)
    def test_cdf_monotone_and_bounded(self, B, k):
        for policy in self._policies(B, k):
            xs = np.linspace(*policy.support, 500)
            cdf = policy.cdf_vec(xs)
            assert np.all(np.diff(cdf) >= -1e-12)
            assert cdf[0] == pytest.approx(0.0, abs=1e-9)
            assert cdf[-1] == pytest.approx(1.0, abs=1e-9)

    @given(st.floats(min_value=1.0, max_value=1e5), st.integers(2, 16))
    @settings(max_examples=40, deadline=None)
    def test_pdf_nonnegative(self, B, k):
        for policy in self._policies(B, k):
            xs = np.linspace(*policy.support, 500)
            assert np.all(policy.pdf_vec(xs) >= -1e-12)

    @given(
        st.floats(min_value=1.0, max_value=1e4),
        st.integers(2, 8),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_samples_within_support_and_cap(self, B, k, seed):
        model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, k)
        for policy in self._policies(B, k):
            samples = policy.sample_many(64, seed)
            lo, hi = policy.support
            assert np.all(samples >= lo - 1e-9)
            assert np.all(samples <= hi + 1e-9)
            assert np.all(samples <= model.delay_cap + 1e-9)

    @given(
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_ppf_cdf_roundtrip_uniform(self, B, q):
        policy = UniformRW(B, 2)
        x = float(policy.ppf(q))
        assert policy.cdf(x) == pytest.approx(q, abs=1e-9)

    @given(st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=50, deadline=None)
    def test_factory_always_valid(self, B):
        for mu in (None, 0.05 * B, 0.5 * B, 2.0 * B):
            for k in (2, 3, 7):
                policy = optimal_requestor_wins(B, k, mu)
                lo, hi = policy.support
                assert 0.0 <= lo <= hi <= B / (k - 1) + 1e-9


class TestSkiRentalProperties:
    @given(st.integers(1, 300), st.integers(1, 900), st.integers(0, 900))
    @settings(max_examples=200)
    def test_cost_geq_offline(self, B, buy_day, days):
        inst = sr.SkiRental(B)
        assert inst.cost(buy_day, days) >= inst.offline_cost(days)

    @given(st.integers(2, 300))
    @settings(max_examples=50)
    def test_randomized_bound_everywhere(self, B):
        ratio = sr.discrete_competitive_ratio(B)
        for days in (1, B // 2 or 1, B, 2 * B):
            assert sr.expected_cost_randomized(B, days) <= (
                ratio * sr.optimal_offline_cost(B, days) + 1e-6
            )

    @given(st.integers(1, 500))
    @settings(max_examples=100)
    def test_ratio_bounds(self, B):
        r = sr.discrete_competitive_ratio(B)
        # (1 - 1/B)^B increases to 1/e, so the ratio increases *up*
        # toward e/(e-1) ~ 1.582 from below
        assert 1.0 <= r <= math.e / (math.e - 1) + 1e-9


class TestEngineProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100)
    def test_events_fire_in_time_order(self, times):
        sim = Simulator()
        fired: list[float] = []
        for t in times:
            sim.at(t, lambda tt=t: fired.append(tt))
        sim.run()
        assert fired == sorted(times)
        assert len(fired) == len(times)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=30),
        st.data(),
    )
    @settings(max_examples=80)
    def test_cancellation_removes_exactly_those(self, times, data):
        sim = Simulator()
        fired = []
        events = [sim.at(t, lambda i=i: fired.append(i)) for i, t in enumerate(times)]
        doomed = data.draw(
            st.sets(st.integers(0, len(times) - 1), max_size=len(times))
        )
        for i in doomed:
            sim.cancel(events[i])
        sim.run()
        assert set(fired) == set(range(len(times))) - doomed


class TestWelfordProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e8, max_value=1e8, allow_nan=False),
            min_size=2,
            max_size=200,
        )
    )
    @settings(max_examples=150)
    def test_matches_numpy(self, data):
        arr = np.asarray(data)
        acc = Welford()
        acc.add_many(arr)
        assert acc.mean == pytest.approx(float(arr.mean()), rel=1e-9, abs=1e-6)
        assert acc.variance == pytest.approx(
            float(arr.var(ddof=1)), rel=1e-6, abs=1e-6
        )

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100),
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100),
    )
    @settings(max_examples=100)
    def test_merge_associative_with_concat(self, a, b):
        wa, wb = Welford(), Welford()
        wa.add_many(np.asarray(a))
        wb.add_many(np.asarray(b))
        merged = wa.merge(wb)
        direct = Welford()
        direct.add_many(np.asarray(a + b))
        assert merged.mean == pytest.approx(direct.mean, rel=1e-9, abs=1e-6)
        assert merged.n == direct.n


class TestDiscreteSkiPolicy:
    @given(st.integers(1, 400), st.integers(0, 2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_samples_are_valid_days(self, B, seed):
        policy = DiscreteSkiRentalRA(B)
        samples = policy.sample_many(32, seed)
        assert np.all(samples >= 0)
        assert np.all(samples <= B - 1)
        assert np.allclose(samples, np.round(samples))

    @given(st.integers(2, 400))
    @settings(max_examples=60)
    def test_cdf_consistent_with_pmf(self, B):
        policy = DiscreteSkiRentalRA(B)
        total = 0.0
        for day in range(1, B + 1):
            total += policy.pmf(day)
            assert policy.cdf(float(day - 1)) == pytest.approx(total, abs=1e-9)
