"""Tests for the extension workloads: bank transfers and the list set."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.htm import (
    HybridDelay,
    Machine,
    MachineParams,
    NoDelay,
    RandDelay,
    RequestorAbortsDelay,
)
from repro.workloads import BankWorkload, ListSetWorkload

POLICIES = {
    "no_delay": lambda i: NoDelay(),
    "rand": lambda i: RandDelay(),
    "ra": lambda i: RequestorAbortsDelay(),
    "hybrid": lambda i: HybridDelay(),
}


def run(workload, policy="rand", n_cores=8, horizon=100_000.0, seed=3):
    machine = Machine(MachineParams(n_cores=n_cores), POLICIES[policy])
    machine.load(workload, seed=seed)
    stats = machine.run(horizon)
    return machine, stats


class TestBank:
    @pytest.mark.parametrize("policy", list(POLICIES))
    def test_money_conserved(self, policy):
        workload = BankWorkload()
        machine, stats = run(workload, policy)
        assert stats.ops_completed > 20
        workload.verify(machine)

    def test_audits_snapshot_consistent(self):
        workload = BankWorkload(p_audit=0.3)
        machine, _ = run(workload, "rand")
        workload.verify(machine)
        assert len(workload.audit_sums) > 0

    def test_audit_reads_whole_bank(self):
        workload = BankWorkload(n_accounts=8, p_audit=1.0)
        machine, stats = run(workload, "no_delay", n_cores=2, horizon=40_000.0)
        workload.verify(machine)
        assert all(s == workload.expected_total for s in workload.audit_sums)

    def test_seeds_sweep(self):
        for seed in range(4):
            workload = BankWorkload(p_audit=0.1)
            machine, _ = run(workload, "hybrid", seed=seed)
            workload.verify(machine)

    def test_verify_catches_torn_total(self):
        workload = BankWorkload()
        machine, _ = run(workload, "no_delay", n_cores=2, horizon=20_000.0)
        machine.poke(workload.account_addr[0], 10**9)  # corrupt
        with pytest.raises(WorkloadError):
            workload.verify(machine)

    def test_verify_catches_torn_audit(self):
        workload = BankWorkload()
        machine, _ = run(workload, "no_delay", n_cores=2, horizon=20_000.0)
        workload.audit_sums.append(123)  # impossible observation
        with pytest.raises(WorkloadError):
            workload.verify(machine)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BankWorkload(n_accounts=1)
        with pytest.raises(ValueError):
            BankWorkload(p_audit=1.5)

    def test_tuned_delay_positive(self):
        assert BankWorkload().tuned_delay_cycles(MachineParams()) > 0


class TestListSet:
    @pytest.mark.parametrize("policy", list(POLICIES))
    def test_membership_consistent(self, policy):
        workload = ListSetWorkload()
        machine, stats = run(workload, policy)
        assert stats.ops_completed > 20
        workload.verify(machine)

    def test_seeds_sweep(self):
        for seed in range(4):
            workload = ListSetWorkload(key_range=16)  # hot list
            machine, _ = run(workload, "rand", seed=seed)
            workload.verify(machine)

    def test_prefill_sorted(self):
        workload = ListSetWorkload(prefill=8)
        machine = Machine(MachineParams(n_cores=2), POLICIES["no_delay"])
        machine.load(workload, seed=1)
        chain = []
        addr = machine.peek(workload.head_addr + 1)
        while addr:
            chain.append(machine.peek(addr))
            addr = machine.peek(addr + 1)
        assert chain == sorted(chain)
        assert len(chain) == 8

    def test_log_alternation_per_key(self):
        workload = ListSetWorkload(key_range=8)
        machine, _ = run(workload, "rand", horizon=60_000.0)
        workload.verify(machine)
        # manual alternation spot-check
        for key in range(8):
            events = [k for k, kk, ok in workload.log if kk == key and ok]
            for a, b in zip(events, events[1:]):
                assert a != b, f"key {key}: consecutive {a}"

    def test_verify_catches_broken_chain(self):
        workload = ListSetWorkload()
        machine, _ = run(workload, "no_delay", n_cores=2, horizon=20_000.0)
        workload.log.append(("insert", 10**6, True))  # phantom insert
        with pytest.raises(WorkloadError):
            workload.verify(machine)

    def test_contains_counts(self):
        workload = ListSetWorkload(p_insert=0.0, p_remove=0.0)
        machine, stats = run(workload, "no_delay", n_cores=2, horizon=20_000.0)
        workload.verify(machine)
        assert workload.lookups == stats.ops_completed

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ListSetWorkload(key_range=1)
        with pytest.raises(ValueError):
            ListSetWorkload(p_insert=0.7, p_remove=0.7)

    def test_chains_beyond_two_form(self):
        """The hot list should produce chain sizes > 2 (what Theorem 6
        policies consume)."""
        seen_k = set()
        workload = ListSetWorkload(key_range=8)
        machine = Machine(MachineParams(n_cores=8), POLICIES["rand"])
        orig = machine.chain_size

        def spy(holder):
            k = orig(holder)
            seen_k.add(k)
            return k

        machine.chain_size = spy
        machine.load(workload, seed=5)
        machine.run(120_000.0)
        workload.verify(machine)
        assert any(k > 2 for k in seen_k)
