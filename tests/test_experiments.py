"""Tests for the experiment registry, runners, and report rendering."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    EXPERIMENTS,
    render_result,
    render_series,
    render_table,
    run_experiment,
)
from repro.experiments.report import ascii_bars


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        required = {
            "fig2a",
            "fig2b",
            "fig2c",
            "fig3_stack",
            "fig3_queue",
            "fig3_txapp",
            "fig3_bimodal",
            "tab_ratios",
            "tab_abort_prob",
            "cor1",
            "cor2",
        }
        assert required <= set(EXPERIMENTS)

    def test_ablations_present(self):
        assert {
            "abl_delay_cap",
            "abl_hybrid",
            "abl_mean_error",
            "abl_wedge",
            "abl_backoff",
        } <= set(EXPERIMENTS)

    def test_unknown_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")


class TestQuickRuns:
    def test_fig2a_quick(self):
        result = run_experiment("fig2a", quick=True, seed=1)
        assert len(result.rows) == 5 * 6  # 5 distributions x 6 policies
        dists = {r["distribution"] for r in result.rows}
        assert dists == {"geometric", "normal", "uniform", "exponential", "poisson"}

    def test_fig2b_shape_ra_beats_rw(self):
        result = run_experiment("fig2b", quick=True, seed=1)
        by = {(r["distribution"], r["policy"]): r["mean_cost"] for r in result.rows}
        assert by[("exponential", "RRA")] < by[("exponential", "RRW")]

    def test_fig2c_det_three_x(self):
        result = run_experiment("fig2c", quick=True, seed=1)
        det = next(r for r in result.rows if r["policy"] == "DET")
        assert det["vs_OPT"] == pytest.approx(3.0, rel=0.02)

    def test_tab_ratios_agreement(self):
        result = run_experiment("tab_ratios", quick=True)
        for row in result.rows:
            assert row["rel_err"] < 5e-3, row

    def test_tab_abort_prob(self):
        result = run_experiment("tab_abort_prob", quick=True)
        assert all(r["RA_less_likely"] for r in result.rows)

    def test_cor1_bound(self):
        result = run_experiment("cor1", quick=True, seed=2)
        assert all(r["within"] for r in result.rows)

    def test_cor2_progress(self):
        result = run_experiment("cor2", quick=True, seed=2)
        assert all(r["holds_half"] for r in result.rows)

    def test_abl_delay_cap_optimum_at_one(self):
        result = run_experiment("abl_delay_cap", quick=True)
        for k in {r["k"] for r in result.rows}:
            rows = [r for r in result.rows if r["k"] == k]
            best = min(rows, key=lambda r: r["ratio"])
            assert best["cap_factor"] == 1.0

    def test_abl_hybrid_crossover(self):
        result = run_experiment("abl_hybrid", quick=True)
        picks = {r["k"]: r["hybrid_picks"] for r in result.rows}
        assert picks[2] == "requestor_aborts"
        assert picks[3] == "requestor_wins"

    def test_abl_mean_error_exact_best(self):
        result = run_experiment("abl_mean_error", quick=True)
        exact = next(r for r in result.rows if r["mu_hat/mu"] == 1.0)
        assert exact["achieved_ratio_at_true_mu"] <= 2.0

    def test_seed_reproducibility(self):
        a = run_experiment("fig2c", quick=True, seed=5)
        b = run_experiment("fig2c", quick=True, seed=5)
        assert a.rows == b.rows


@pytest.mark.slow
class TestHTMQuickRuns:
    def test_fig3_stack_quick(self):
        result = run_experiment("fig3_stack", quick=True, seed=1)
        threads = sorted({r["threads"] for r in result.rows})
        assert threads == [1, 4, 8]
        assert {r["policy"] for r in result.rows} == {
            "NO_DELAY",
            "DELAY_TUNED",
            "DELAY_DET",
            "DELAY_RAND",
        }
        for row in result.rows:
            assert row["ops_per_sec"] > 0

    def test_abl_wedge_quick(self):
        result = run_experiment("abl_wedge", quick=True, seed=1)
        assert len(result.rows) == 2

    def test_abl_backoff_quick(self):
        result = run_experiment("abl_backoff", quick=True, seed=1)
        assert all(r["median_attempts"] >= 1 for r in result.rows)


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(
            [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_table_ragged_rows(self):
        text = render_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([])

    def test_render_series(self):
        text = render_series(
            "n", [1, 2], {"x": [10.0, 20.0], "y": [1.0, 2.0]}
        )
        assert "n" in text and "x" in text and "y" in text

    def test_ascii_bars(self):
        text = ascii_bars(["a", "bb"], [1.0, 2.0])
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")

    def test_render_result(self):
        result = run_experiment("tab_abort_prob", quick=True)
        text = render_result(result)
        assert "tab_abort_prob" in text
        assert "notes:" in text


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["nope"]) == 2

    def test_run_and_write(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["tab_abort_prob", "--quick", "--out", str(tmp_path), "--seed", "1"]
        )
        assert code == 0
        assert (tmp_path / "tab_abort_prob.txt").exists()
        assert "P_abort_RW" in capsys.readouterr().out
