"""Tests for the classic ski-rental module (Section 3.3)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import ski_rental as sr
from repro.errors import InvalidParameterError


class TestInstance:
    def test_cost_pure_rent(self):
        inst = sr.SkiRental(10)
        assert inst.cost(buy_day=11, days=5) == 5

    def test_cost_buy_day_one(self):
        inst = sr.SkiRental(10)
        assert inst.cost(buy_day=1, days=100) == 10

    def test_cost_buy_midway(self):
        inst = sr.SkiRental(10)
        assert inst.cost(buy_day=4, days=100) == 3 + 10

    def test_cost_never_ski(self):
        inst = sr.SkiRental(10)
        assert inst.cost(buy_day=1, days=0) == 0

    def test_offline(self):
        inst = sr.SkiRental(10)
        assert inst.offline_cost(3) == 3
        assert inst.offline_cost(10) == 10
        assert inst.offline_cost(1000) == 10

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            sr.SkiRental(0)
        with pytest.raises(InvalidParameterError):
            sr.SkiRental(10).cost(0, 5)


class TestDeterministic:
    def test_buy_day_is_B(self):
        assert sr.deterministic_buy_day(25) == 25

    def test_two_competitive(self):
        B = 25
        inst = sr.SkiRental(B)
        buy = sr.deterministic_buy_day(B)
        worst = max(
            inst.cost(buy, d) / inst.offline_cost(d) for d in range(1, 4 * B)
        )
        assert worst <= 2.0 - 1.0 / B + 1e-12  # cost 2B-1 at D >= B


class TestKarlinRandomized:
    def test_pmf_normalizes(self):
        for B in (1, 2, 17, 400):
            assert sr.karlin_pmf(B).sum() == pytest.approx(1.0)

    def test_expected_cost_bound(self):
        """Theorem 1: E[cost] <= ratio(B) * min(D, B) for every D."""
        B = 60
        ratio = sr.discrete_competitive_ratio(B)
        for days in range(1, 3 * B):
            expected = sr.expected_cost_randomized(B, days)
            assert expected <= ratio * sr.optimal_offline_cost(B, days) + 1e-9

    def test_ratio_tight_at_large_days(self):
        B = 60
        ratio = sr.discrete_competitive_ratio(B)
        expected = sr.expected_cost_randomized(B, 10 * B)
        assert expected / B == pytest.approx(ratio, rel=1e-9)

    def test_ratio_limit(self):
        assert sr.discrete_competitive_ratio(100_000) == pytest.approx(
            sr.continuous_ratio_limit(), rel=1e-4
        )

    def test_beats_deterministic(self):
        assert sr.discrete_competitive_ratio(100) < 2.0

    def test_sample_buy_day_range(self, rng):
        days = [sr.sample_buy_day(12, rng) for _ in range(2000)]
        assert min(days) >= 1
        assert max(days) <= 12
        # later days are more likely
        assert days.count(12) > days.count(1)

    def test_expected_cost_zero_days(self):
        assert sr.expected_cost_randomized(10, 0) == pytest.approx(0.0)


class TestReductionToConflict:
    """Section 4.2's mapping: RA conflict == ski rental."""

    def test_costs_align(self):
        from repro.core.model import ConflictKind, ConflictModel

        B = 40
        inst = sr.SkiRental(B)
        model = ConflictModel(ConflictKind.REQUESTOR_ABORTS, float(B), 2)
        for buy_day in (1, 10, 40):
            for days in (3, 39, 40, 200):
                ski = inst.cost(buy_day, days)
                # delay x = buy_day - 1; the model's tie (D <= x commits)
                # matches ski rental's "buy_day > days => pure rent"
                conflict = model.cost(float(buy_day - 1), float(days))
                assert conflict == pytest.approx(float(ski))

    def test_offline_align(self):
        from repro.core.model import ConflictKind, ConflictModel

        B = 40
        model = ConflictModel(ConflictKind.REQUESTOR_ABORTS, float(B), 2)
        for days in (1, 39, 40, 400):
            assert model.opt(float(days)) == pytest.approx(
                float(sr.optimal_offline_cost(B, days))
            )
