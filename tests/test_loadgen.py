"""Load-generator determinism: same seed, same bytes, any concurrency.

Three layers of the serving determinism contract (docs/SERVING.md):

* the generated request stream is a pure function of ``(seed,
  config)`` — pinned by byte-comparing canonical traces and by golden
  first-20-request fixtures for the Zipfian and bursty generators
  (regenerate with ``--update-golden``, review like source);
* the decision log is byte-identical at any ``clients``/``window``
  combination — the reorder buffer makes concurrency invisible;
* structural invariants: contiguous ascending seqs, monotone arrival
  times, commits trailing their own conflict.
"""

from __future__ import annotations

import difflib
import json
import pathlib

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.serve.loadgen import (
    LoadGenConfig,
    PhaseSpec,
    _burst_rates,
    default_config,
    generate,
    request_trace_line,
    zipf_cdf,
)
from repro.serve.replay import run_replay
from repro.serve.service import CommitReport

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

#: Small three-phase schedule (same shape as the default) that keeps
#: these tests fast while still crossing a phase boundary.
SMALL = default_config(quick=True).scaled(300)


def trace(seed, config) -> str:
    return "".join(
        request_trace_line(e) + "\n" for e in generate(seed, config)
    )


class TestStreamDeterminism:
    def test_same_seed_same_bytes(self):
        assert trace(3, SMALL) == trace(3, SMALL)

    def test_different_seed_different_bytes(self):
        assert trace(3, SMALL) != trace(4, SMALL)

    def test_none_seed_is_deterministic_too(self):
        assert trace(None, SMALL) == trace(None, SMALL)

    def test_seqs_are_contiguous_and_arrivals_monotone(self):
        last_arrival = 0.0
        for i, event in enumerate(generate(3, SMALL)):
            assert event.seq == i
            assert event.arrival_us >= last_arrival
            last_arrival = event.arrival_us

    def test_commit_trails_its_own_conflict(self):
        prev = None
        for event in generate(3, SMALL):
            if isinstance(event, CommitReport):
                assert prev is not None
                assert event.client_id == prev.client_id
                assert event.key == prev.key
                assert event.arrival_us == prev.arrival_us
            prev = event

    def test_phase_boundaries_in_order(self):
        phases = [e.phase for e in generate(3, SMALL)]
        assert phases == sorted(phases)
        assert set(phases) == {0, 1, 2}


GOLDEN_CASES = {
    # the default Zipf-skewed schedule: pins key skew + client draws
    "loadgen_zipf_first20": lambda: default_config(quick=True),
    # burst-dominated single phase: pins the on/off modulated arrivals
    "loadgen_burst_first20": lambda: LoadGenConfig(
        phases=(
            PhaseSpec(
                conflicts=64,
                mu_cycles=100.0,
                k_p=1.0,
                age_mean=200.0,
                rate=0.01,
                burst_rate=2.0,
                burst_len=4,
                burst_every=8,
            ),
        ),
        n_keys=16,
        zipf_s=1.5,
    ),
}


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_first20_matches_golden(name, request):
    """First 20 generated requests, byte for byte."""
    events = []
    for event in generate(3, GOLDEN_CASES[name]()):
        events.append(event)
        if len(events) == 20:
            break
    text = "".join(request_trace_line(e) + "\n" for e in events)
    golden = GOLDEN_DIR / f"{name}.jsonl"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden.write_text(text)
        pytest.skip(f"golden updated: {golden}")
    assert golden.exists(), (
        f"missing {golden}; generate it with --update-golden"
    )
    expected = golden.read_text()
    if text != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                text.splitlines(),
                fromfile=str(golden),
                tofile="current",
                lineterm="",
                n=1,
            )
        )
        pytest.fail(
            f"request stream drifted from golden (intentional? rerun "
            f"with --update-golden and review):\n{diff[:4000]}"
        )


class TestDecisionLogConcurrencyInvariance:
    def test_log_identical_at_any_concurrency(self):
        """The tentpole property: clients/window never leak into the
        decision sequence."""
        logs = [
            run_replay(3, SMALL, clients=c, window=w).decision_log
            for c, w in ((1, 1), (3, 2), (16, 64))
        ]
        assert logs[0] == logs[1] == logs[2]
        assert len(logs[0]) == SMALL.total_conflicts

    def test_log_depends_on_seed(self):
        a = run_replay(3, SMALL, clients=4).decision_log
        b = run_replay(4, SMALL, clients=4).decision_log
        assert a != b

    def test_log_lines_are_canonical_json(self):
        for line in run_replay(3, SMALL, clients=2).decision_log:
            doc = json.loads(line)
            assert (
                json.dumps(doc, sort_keys=True, separators=(",", ":"))
                == line
            )
            assert doc["action"] in ("grant", "abort")


class TestGenerators:
    def test_zipf_cdf_is_a_skewed_cdf(self):
        cdf = zipf_cdf(100, 1.2)
        assert cdf.shape == (100,)
        assert np.all(np.diff(cdf) > 0)
        assert cdf[-1] == pytest.approx(1.0)
        assert cdf[0] > 1.0 / 100  # rank 1 carries more than uniform

    def test_burst_windows(self):
        phase = PhaseSpec(
            conflicts=20,
            mu_cycles=1.0,
            k_p=1.0,
            age_mean=1.0,
            rate=0.5,
            burst_rate=4.0,
            burst_len=2,
            burst_every=5,
        )
        rates = _burst_rates(phase)
        assert list(rates[:7]) == [4.0, 4.0, 0.5, 0.5, 0.5, 4.0, 4.0]

    def test_scaled_preserves_shape(self):
        config = default_config(quick=True)
        small = config.scaled(300)
        assert small.total_conflicts == 300
        assert len(small.phases) == len(config.phases)
        assert [p.mu_cycles for p in small.phases] == [
            p.mu_cycles for p in config.phases
        ]

    def test_default_config_sizes(self):
        assert default_config(quick=True).total_conflicts == 10_000
        assert default_config(quick=False).total_conflicts == 1_000_000


class TestValidation:
    def test_scaled_too_small(self):
        with pytest.raises(InvalidParameterError, match="conflicts"):
            default_config(quick=True).scaled(2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"conflicts": 0},
            {"k_p": 0.0},
            {"k_p": 1.5},
            {"commit_ratio": 1.1},
            {"mu_cycles": 0.0},
            {"rate": -1.0},
            {"burst_every": 0},
        ],
    )
    def test_bad_phase_rejected(self, kwargs):
        base = dict(conflicts=10, mu_cycles=1.0, k_p=1.0, age_mean=1.0)
        base.update(kwargs)
        with pytest.raises(InvalidParameterError):
            PhaseSpec(**base)

    def test_bad_config_rejected(self):
        phase = PhaseSpec(conflicts=10, mu_cycles=1.0, k_p=1.0, age_mean=1.0)
        with pytest.raises(InvalidParameterError, match="phase"):
            LoadGenConfig(phases=())
        with pytest.raises(InvalidParameterError, match="zipf_s"):
            LoadGenConfig(phases=(phase,), zipf_s=0.0)
        with pytest.raises(InvalidParameterError, match="n_keys"):
            LoadGenConfig(phases=(phase,), n_keys=0)

    def test_replay_rejects_bad_concurrency(self):
        with pytest.raises(InvalidParameterError, match="clients"):
            run_replay(3, SMALL, clients=0)
        with pytest.raises(InvalidParameterError, match="window"):
            run_replay(3, SMALL, window=0)


class TestCli:
    def test_loadgen_writes_validated_artifact_and_logs(self, tmp_path):
        from benchmarks import schema
        from repro.serve.cli import loadgen_main

        out = tmp_path / "BENCH_serve.json"
        log = tmp_path / "decisions.jsonl"
        trace = tmp_path / "requests.jsonl"
        rc = loadgen_main(
            [
                "--quick",
                "--seed",
                "3",
                "--requests",
                "300",
                "--out",
                str(out),
                "--decision-log",
                str(log),
                "--request-trace",
                str(trace),
            ]
        )
        assert rc == 0
        payload = schema.validate_serve_payload(json.loads(out.read_text()))
        assert payload["conflicts"] == 300
        assert len(log.read_text().splitlines()) == 300
        assert trace.read_text().splitlines()[0].startswith('{"age"')

    def test_loadgen_rerun_is_byte_identical(self, tmp_path):
        from repro.serve.cli import loadgen_main

        logs = []
        for clients, name in ((2, "a"), (9, "b")):
            log = tmp_path / f"{name}.jsonl"
            loadgen_main(
                [
                    "--quick",
                    "--seed",
                    "3",
                    "--requests",
                    "200",
                    "--clients",
                    str(clients),
                    "--out",
                    str(tmp_path / f"bench_{name}.json"),
                    "--decision-log",
                    str(log),
                ]
            )
            logs.append(log.read_bytes())
        assert logs[0] == logs[1]

    def test_serve_smoke_summarizes_regimes(self, capsys):
        from repro.serve.cli import serve_main

        rc = serve_main(["--seed", "7", "--requests", "150"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "conflicts" in out and "regime" in out

    def test_serve_rejects_unknown_policy(self, capsys):
        from repro.serve.cli import serve_main

        assert serve_main(["--requests", "50", "--policy", "NOPE"]) == 1
        assert "unknown" in capsys.readouterr().err

    def test_repro_dispatch(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["loadgen", "--quick", "--seed", "3",
                     "--requests", "120"]) == 0
        assert (tmp_path / "BENCH_serve.json").exists()
