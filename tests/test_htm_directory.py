"""Tests for the MSI directory controller (with a scripted probe fabric)."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.htm.directory import Directory
from repro.htm.params import MachineParams
from repro.sim.engine import Simulator


class Fabric:
    """Scripted probe endpoint: acks immediately (optionally delayed)."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.probes: list[tuple[int, int, bool, int]] = []
        self.delay_acks: dict[int, float] = {}  # target -> delay

    def probe(self, target, line, exclusive, requestor, ack):
        self.probes.append((target, line, exclusive, requestor))
        self.sim.after(self.delay_acks.get(target, 1.0), ack)


@pytest.fixture
def setup():
    sim = Simulator()
    params = MachineParams(n_cores=4)
    fabric = Fabric(sim)
    directory = Directory(sim, params, fabric.probe)
    return sim, directory, fabric


def grant_collector():
    grants = []

    def cb_factory(tag):
        return lambda first_touch, latency: grants.append(
            (tag, first_touch, latency)
        )

    return grants, cb_factory


class TestBasicRequests:
    def test_gets_unowned(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        directory.request(0, 7, False, cb("a"))
        sim.run()
        assert len(grants) == 1
        assert grants[0][1] is True  # first touch
        assert directory.entry(7).sharers == {0}
        assert fabric.probes == []

    def test_second_touch_cheaper(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        directory.request(0, 7, False, cb("a"))
        sim.run()
        directory.request(1, 7, False, cb("b"))
        sim.run()
        assert grants[0][2] > grants[1][2]  # first fill paid DRAM
        assert directory.entry(7).sharers == {0, 1}

    def test_getx_invalidates_sharers(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        for core in (0, 1, 2):
            directory.request(core, 7, False, cb(core))
        sim.run()
        directory.request(3, 7, True, cb("x"))
        sim.run()
        probed = {t for t, line, excl, r in fabric.probes}
        assert probed == {0, 1, 2}
        entry = directory.entry(7)
        assert entry.owner == 3
        assert entry.sharers == set()

    def test_upgrade_skips_self(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        directory.request(0, 7, False, cb("s"))
        directory.request(1, 7, False, cb("s2"))
        sim.run()
        directory.request(0, 7, True, cb("up"))
        sim.run()
        probed = {t for t, *_ in fabric.probes}
        assert probed == {1}
        assert directory.entry(7).owner == 0

    def test_gets_downgrades_owner(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        directory.request(0, 7, True, cb("x"))
        sim.run()
        directory.request(1, 7, False, cb("s"))
        sim.run()
        entry = directory.entry(7)
        assert entry.owner is None
        assert entry.sharers == {0, 1}

    def test_owner_gets_rejected(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        directory.request(0, 7, True, cb("x"))
        sim.run()
        directory.request(0, 7, False, cb("bad"))
        with pytest.raises(ProtocolError):
            sim.run()

    def test_owner_getx_rejected(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        directory.request(0, 7, True, cb("x"))
        sim.run()
        directory.request(0, 7, True, cb("bad"))
        with pytest.raises(ProtocolError):
            sim.run()


class TestSerialization:
    def test_fifo_per_line(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        directory.request(0, 7, True, cb(0))
        directory.request(1, 7, True, cb(1))
        directory.request(2, 7, True, cb(2))
        sim.run()
        assert [g[0] for g in grants] == [0, 1, 2]
        assert directory.entry(7).owner == 2

    def test_delayed_ack_blocks_line(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        directory.request(0, 7, True, cb("first"))
        sim.run()
        fabric.delay_acks[0] = 500.0  # core 0 stalls its probe answer
        directory.request(1, 7, True, cb("second"))
        sim.run(until=100.0)
        assert len(grants) == 1  # second still waiting on the probe
        sim.run()
        assert len(grants) == 2

    def test_independent_lines_parallel(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        fabric.delay_acks[0] = 500.0
        directory.request(0, 7, True, cb("blockee"))
        sim.run()
        directory.request(1, 7, True, cb("blocked"))  # probes core 0
        directory.request(1, 9, False, cb("free")) if False else None
        directory.request(2, 9, False, cb("free"))
        sim.run(until=100.0)
        tags = [g[0] for g in grants]
        assert "free" in tags
        assert "blocked" not in tags


class TestEvictionsAndInvariants:
    def test_writeback_clears_owner(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        directory.request(0, 7, True, cb("x"))
        sim.run()
        directory.writeback(0, 7)
        assert directory.entry(7).owner is None

    def test_writeback_wrong_owner_raises(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        directory.request(0, 7, True, cb("x"))
        sim.run()
        with pytest.raises(ProtocolError):
            directory.writeback(1, 7)

    def test_drop_sharer(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        directory.request(0, 7, False, cb("s"))
        sim.run()
        directory.drop_sharer(0, 7)
        assert directory.entry(7).sharers == set()

    def test_counters(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        directory.request(0, 7, False, cb("a"))
        directory.request(1, 7, True, cb("b"))
        sim.run()
        assert directory.requests == 2
        assert directory.grants == 2
        assert directory.probes_sent == 1

    def test_check_invariants_passes_consistent(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        directory.request(0, 7, True, cb("x"))
        sim.run()
        directory.check_invariants({0: {7}, 1: set()})

    def test_check_invariants_rejects_two_holders(self, setup):
        sim, directory, fabric = setup
        grants, cb = grant_collector()
        directory.request(0, 7, True, cb("x"))
        sim.run()
        with pytest.raises(ProtocolError):
            directory.check_invariants({0: {7}, 1: {7}})

    def test_check_invariants_rejects_untracked_resident(self, setup):
        sim, directory, fabric = setup
        directory.entry(3)  # untouched line
        with pytest.raises(ProtocolError):
            directory.check_invariants({0: {3}})
