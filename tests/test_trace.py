"""Tests for the event tracer and its HTM integration."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.htm import Machine, MachineParams, RandDelay
from repro.sim.trace import NullTracer, TraceEvent, Tracer
from repro.workloads import CounterWorkload


class TestTracer:
    def test_emit_and_query(self):
        tracer = Tracer()
        tracer.emit(10.0, "abort", 1, reason="capacity")
        tracer.emit(20.0, "commit", 2, duration=50)
        assert len(tracer) == 2
        assert tracer.counts() == {"abort": 1, "commit": 1}
        assert [e.kind for e in tracer.events(kinds={"abort"})] == ["abort"]

    def test_filter_by_core_and_time(self):
        tracer = Tracer()
        for t in range(10):
            tracer.emit(float(t), "tick", t % 2)
        assert len(tracer.events(core=0)) == 5
        assert len(tracer.events(since=5.0)) == 5
        assert len(tracer.events(core=1, since=5.0)) == 3

    def test_ring_buffer_bound(self):
        tracer = Tracer(capacity=5)
        for t in range(20):
            tracer.emit(float(t), "tick", 0)
        assert len(tracer) == 5
        assert tracer.emitted == 20
        assert tracer.events()[0].time == 15.0

    def test_kind_filter_at_emit(self):
        tracer = Tracer(kinds={"abort"})
        tracer.emit(1.0, "abort", 0)
        tracer.emit(2.0, "commit", 0)
        assert len(tracer) == 1
        assert tracer.dropped_by_filter == 1

    def test_render(self):
        tracer = Tracer()
        tracer.emit(1.5, "conflict", 3, line=7, k=2)
        text = tracer.render()
        assert "core3" in text
        assert "conflict" in text
        assert "line=7" in text

    def test_render_empty(self):
        assert "(no matching events)" in Tracer().render()

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "x", 0)
        tracer.clear()
        assert len(tracer) == 0

    def test_invalid_capacity(self):
        with pytest.raises(InvalidParameterError):
            Tracer(capacity=0)

    def test_event_format(self):
        event = TraceEvent(12.0, "abort", 4, {"reason": "cycle"})
        assert "reason=cycle" in event.format()


class TestNullTracer:
    def test_noop(self):
        tracer = NullTracer()
        tracer.emit(1.0, "x", 0)
        assert len(tracer) == 0
        assert tracer.events() == []
        assert tracer.counts() == {}
        assert not tracer.enabled


class TestMachineIntegration:
    def test_timeline_recorded(self):
        tracer = Tracer()
        machine = Machine(MachineParams(n_cores=4), lambda i: RandDelay())
        machine.tracer = tracer
        workload = CounterWorkload()
        machine.load(workload, seed=1)
        stats = machine.run(60_000.0)
        workload.verify(machine)
        counts = tracer.counts()
        assert counts.get("commit", 0) > 0
        assert counts.get("conflict", 0) > 0
        assert counts.get("abort", 0) > 0

    def test_commit_count_matches_stats(self):
        tracer = Tracer(capacity=1_000_000)
        machine = Machine(MachineParams(n_cores=2), lambda i: RandDelay())
        machine.tracer = tracer
        workload = CounterWorkload(ops_limit=100)
        machine.load(workload, seed=1)
        stats = machine.run(200_000.0)
        assert tracer.counts().get("commit", 0) == stats.tx_committed

    def test_conflict_events_carry_decision(self):
        tracer = Tracer(kinds={"conflict"})
        machine = Machine(MachineParams(n_cores=4), lambda i: RandDelay())
        machine.tracer = tracer
        workload = CounterWorkload()
        machine.load(workload, seed=2)
        machine.run(60_000.0)
        for event in tracer.events():
            assert event.detail["k"] >= 2
            assert event.detail["delay"] >= 0
            assert event.detail["mode"] in (
                "requestor_wins",
                "requestor_aborts",
            )

    def test_default_is_null_tracer(self):
        machine = Machine(MachineParams(n_cores=2), lambda i: RandDelay())
        assert isinstance(machine.tracer, NullTracer)
