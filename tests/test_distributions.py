"""Tests for the transaction-length distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import (
    BimodalLengths,
    DeterministicLengths,
    ExponentialLengths,
    GeometricLengths,
    MixtureLengths,
    NormalLengths,
    PointMassRemaining,
    PoissonLengths,
    UniformLengths,
    WorstCaseForDeterministic,
    get_distribution,
)
from repro.distributions.base import DISTRIBUTION_REGISTRY
from repro.errors import InvalidParameterError

MU = 500.0
ALL_STANDARD = [
    GeometricLengths,
    NormalLengths,
    UniformLengths,
    ExponentialLengths,
    PoissonLengths,
    DeterministicLengths,
    BimodalLengths,
]


class TestCommonContract:
    @pytest.mark.parametrize("cls", ALL_STANDARD)
    def test_positive_samples(self, cls, rng):
        dist = cls(MU)
        samples = dist.sample(5000, rng)
        assert samples.shape == (5000,)
        assert np.all(samples > 0)

    @pytest.mark.parametrize("cls", ALL_STANDARD)
    def test_empirical_mean_matches(self, cls, rng):
        dist = cls(MU)
        samples = dist.sample(100_000, rng)
        assert samples.mean() == pytest.approx(dist.mean, rel=0.03)

    @pytest.mark.parametrize("cls", ALL_STANDARD)
    def test_seed_determinism(self, cls):
        dist = cls(MU)
        a = dist.sample(100, 7)
        b = dist.sample(100, 7)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("cls", ALL_STANDARD)
    def test_invalid_mean(self, cls):
        with pytest.raises(InvalidParameterError):
            cls(-1.0)

    @pytest.mark.parametrize("cls", ALL_STANDARD)
    def test_sample_one(self, cls, rng):
        value = cls(MU).sample_one(rng)
        assert isinstance(value, float)
        assert value > 0


class TestSpecifics:
    def test_geometric_integer_valued(self, rng):
        samples = GeometricLengths(MU).sample(1000, rng)
        assert np.allclose(samples, np.round(samples))
        assert samples.min() >= 1.0

    def test_geometric_needs_mean_ge_one(self):
        with pytest.raises(InvalidParameterError):
            GeometricLengths(0.5)

    def test_normal_truncation(self, rng):
        samples = NormalLengths(5.0, rel_std=0.9).sample(20_000, rng)
        assert samples.min() >= 1.0

    def test_normal_spread(self, rng):
        dist = NormalLengths(MU)
        samples = dist.sample(50_000, rng)
        assert samples.std() == pytest.approx(MU * 0.25, rel=0.05)

    def test_uniform_range(self, rng):
        samples = UniformLengths(MU).sample(50_000, rng)
        assert samples.min() > 0.0
        assert samples.max() <= 2 * MU

    def test_poisson_conditioned_positive(self, rng):
        samples = PoissonLengths(2.0).sample(20_000, rng)
        assert samples.min() >= 1.0

    def test_deterministic_constant(self, rng):
        assert set(DeterministicLengths(7.0).sample(50, rng).tolist()) == {7.0}

    def test_bimodal_two_modes(self, rng):
        dist = BimodalLengths(MU)
        samples = dist.sample(10_000, rng)
        modes = set(np.round(samples, 6).tolist())
        assert len(modes) == 2
        assert dist.long == pytest.approx(dist.short * 20)

    def test_bimodal_mean_construction(self):
        dist = BimodalLengths(MU, long_factor=10.0, p_long=0.25)
        assert 0.75 * dist.short + 0.25 * dist.long == pytest.approx(MU)

    def test_bimodal_invalid(self):
        with pytest.raises(InvalidParameterError):
            BimodalLengths(MU, long_factor=0.5)
        with pytest.raises(InvalidParameterError):
            BimodalLengths(MU, p_long=0.0)


class TestAdversarial:
    def test_point_mass(self, rng):
        dist = PointMassRemaining(42.0)
        assert set(dist.sample(10, rng).tolist()) == {42.0}
        assert dist.mean == 42.0

    def test_worst_case_band(self, rng):
        B = 100.0
        dist = WorstCaseForDeterministic(B, k=2, width=0.05)
        samples = dist.sample(10_000, rng)
        assert np.all(samples >= B)
        assert np.all(samples <= B * 1.05)

    def test_worst_case_forces_det_to_three(self, rng):
        """DET aborts at B; remaining just above B -> cost 3B, OPT B."""
        from repro.core.model import ConflictKind, ConflictModel
        from repro.core.requestor_wins import DeterministicRW

        B = 100.0
        model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)
        dist = WorstCaseForDeterministic(B, width=0.01)
        policy = DeterministicRW(B, 2)
        d = dist.sample(1000, rng)
        costs = model.cost_vec(policy.sample_many(1000, rng), d)
        opts = model.opt_vec(d)
        assert (costs / opts).mean() == pytest.approx(3.0, rel=1e-6)

    def test_worst_case_mixture_mode(self, rng):
        dist = WorstCaseForDeterministic(100.0, p_evil=0.5)
        samples = dist.sample(50_000, rng)
        evil = samples >= 100.0
        assert 0.45 < evil.mean() < 0.55

    def test_mixture(self, rng):
        mix = MixtureLengths(
            [DeterministicLengths(10.0), DeterministicLengths(30.0)],
            [1.0, 3.0],
        )
        samples = mix.sample(40_000, rng)
        assert mix.mean == pytest.approx(25.0)
        assert samples.mean() == pytest.approx(25.0, rel=0.02)

    def test_mixture_invalid(self):
        with pytest.raises(InvalidParameterError):
            MixtureLengths([], [])
        with pytest.raises(InvalidParameterError):
            MixtureLengths([DeterministicLengths(1.0)], [-1.0])


class TestRegistry:
    def test_paper_distributions_registered(self):
        for name in ("geometric", "normal", "uniform", "exponential", "poisson"):
            assert name in DISTRIBUTION_REGISTRY
            dist = get_distribution(name, MU)
            assert dist.name == name

    def test_unknown_raises(self):
        with pytest.raises(InvalidParameterError):
            get_distribution("cauchy", MU)
