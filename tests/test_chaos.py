"""Crash-tolerance layer: checkpoint journal recovery, seeded chaos,
supervised worker pool, and the chaos determinism gate.

The headline contract under test: with any seeded chaos schedule that
lets the run complete, result rows are byte-identical to the fault-free
run — supervision decides only where and how often a task body
executes, never what it computes.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.cli import main
from repro.errors import FaultInjectionError
from repro.experiments import EXPERIMENTS, register_experiment
from repro.experiments.registry import _SPECS
from repro.faults import ChaosPlan, corrupt_bytes, tear_tail
from repro.obs import capture
from repro.parallel import (
    CheckpointJournal,
    ParallelExecutor,
    ResultCache,
    RetryPolicy,
    atomic_write_text,
    recover,
    scan_cache_dir,
)
from repro.parallel.cache_cli import cache_main
from repro.parallel.supervisor import classify_exit


@pytest.fixture
def scratch(monkeypatch):
    """Register throwaway experiments; workers inherit them via fork."""
    registered: list[str] = []

    def _register(exp_id, runner, **kwargs):
        register_experiment(exp_id, f"test double {exp_id}", runner, **kwargs)
        registered.append(exp_id)
        return exp_id

    yield _register
    for exp_id in registered:
        _SPECS.pop(exp_id, None)
        EXPERIMENTS.pop(exp_id, None)


def _rows(**kw):
    return [{"x": 1}]


def _die(**kw):
    os._exit(3)


class _SeededRows:
    """Picklable runner whose rows depend only on the seed."""

    def __call__(self, seed=None, **kw):
        return [{"seed": seed, "v": (seed or 0) * 3 + 1}]


# ---------------------------------------------------------------------------
class TestAtomicWrite:
    def test_roundtrip_and_replace(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "one\n")
        atomic_write_text(path, "two\n")
        assert path.read_text() == "two\n"
        # no temp litter left behind on success
        assert list(tmp_path.iterdir()) == [path]


# ---------------------------------------------------------------------------
class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path, quick=True, seed=7) as journal:
            journal.mark_done("fig2a", {"status": "ok", "elapsed_s": 1.5})
            journal.mark_done("fig2b", {"status": "failed", "error": "x"})
            journal.mark_done("fig2a", {"status": "ok", "elapsed_s": 9.0})
        rec = recover(path, truncate=False)
        assert rec.header == {"version": 1, "quick": True, "seed": 7}
        done = rec.done_map()
        assert done["fig2a"] == {"status": "ok", "elapsed_s": 9.0}  # latest
        assert done["fig2b"]["status"] == "failed"
        assert not rec.truncated

    def test_torn_tail_truncated_to_last_durable_record(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path, quick=False, seed=None) as journal:
            journal.mark_done("a", {"status": "ok"})
            journal.mark_done("b", {"status": "ok"})
        clean = path.read_bytes()
        cut = tear_tail(path)  # crash mid-append of the final record
        assert cut > 0
        rec = recover(path)
        assert rec.truncated and rec.dropped_records == 1
        assert set(rec.done_map()) == {"a"}  # b's record was torn
        # the file itself is now the durable prefix of the clean journal
        assert clean.startswith(path.read_bytes())
        # reopening continues from the recovered history
        with CheckpointJournal(path, quick=False, seed=None) as journal:
            assert set(journal.done_map()) == {"a"}
            journal.mark_done("b", {"status": "ok"})
        assert set(recover(path, truncate=False).done_map()) == {"a", "b"}

    def test_bitflip_drops_from_damage_onward(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path, quick=False, seed=1) as journal:
            for i in range(6):
                journal.mark_done(f"e{i}", {"status": "ok"})
        lines = path.read_bytes().splitlines(keepends=True)
        lines[3] = lines[3].replace(b'"status"', b'"statXs"', 1)  # bad crc
        path.write_bytes(b"".join(lines))
        rec = recover(path)
        assert rec.truncated
        assert set(rec.done_map()) == {"e0", "e1"}  # seq 1..2; 3 is damaged

    def test_incompatible_config_rotated_aside(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path, quick=True, seed=1) as journal:
            journal.mark_done("a", {"status": "ok"})
        journal = CheckpointJournal(path, quick=True, seed=2).open()
        try:
            assert journal.rotated is not None
            assert journal.rotated.header["seed"] == 1
            assert journal.done_map() == {}
        finally:
            journal.close()
        assert path.with_name(path.name + ".old").exists()

    def test_legacy_blob_imported_for_same_config(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(
            json.dumps(
                {
                    "quick": False,
                    "seed": 5,
                    "done": {"fig2a": {"status": "ok", "elapsed_s": 2.0}},
                }
            )
        )
        journal = CheckpointJournal(path, quick=False, seed=5).open()
        try:
            assert journal.done_map()["fig2a"]["status"] == "ok"
        finally:
            journal.close()
        # and the history is now in journal format, durably
        assert recover(path, truncate=False).done_map()["fig2a"][
            "status"
        ] == "ok"

    def test_recovery_emits_event_and_counter(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path, quick=False, seed=None) as journal:
            journal.mark_done("a", {"status": "ok"})
        tear_tail(path)
        with capture() as cap:
            recover(path)
        assert cap.snapshot()["counters"]["journal_recoveries"] == 1
        assert any(e.kind == "journal_recovered" for e in cap.events)


# ---------------------------------------------------------------------------
class TestChaosPlan:
    def test_deterministic_and_seed_sensitive(self):
        plan = ChaosPlan(seed=42, kill_rate=0.5)
        draws = [plan.should_kill(f"e{i}", 0) for i in range(64)]
        assert draws == [
            ChaosPlan(seed=42, kill_rate=0.5).should_kill(f"e{i}", 0)
            for i in range(64)
        ]
        assert any(draws) and not all(draws)
        other = [
            ChaosPlan(seed=43, kill_rate=0.5).should_kill(f"e{i}", 0)
            for i in range(64)
        ]
        assert draws != other

    def test_safe_attempt_guarantees_termination(self):
        plan = ChaosPlan(seed=1, kill_rate=1.0, safe_attempt=2)
        assert plan.should_kill("e", 0) and plan.should_kill("e", 1)
        assert not plan.should_kill("e", 2)
        assert not plan.should_stop("e", 2)

    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            ChaosPlan(seed=1, kill_rate=1.5)
        with pytest.raises(FaultInjectionError):
            ChaosPlan(seed=1, safe_attempt=0)
        with pytest.raises(FaultInjectionError):
            ChaosPlan.from_dict({"seed": 1, "bogus": 2})

    def test_roundtrip(self):
        plan = ChaosPlan(seed=9, kill_rate=0.3, stop_rate=0.1)
        assert ChaosPlan.from_dict(plan.to_dict()) == plan


# ---------------------------------------------------------------------------
class TestSupervisedPool:
    def test_classify_exit(self):
        assert classify_exit(-signal.SIGKILL) == "signal:SIGKILL"
        assert classify_exit(0) == "clean"
        assert classify_exit(3) == "exit:3"
        assert classify_exit(None) == "unknown"

    def test_crash_reexecution_budget_and_exit_cause(self, scratch):
        """A worker that always dies exhausts the re-execution budget and
        the outcome reports the classified cause."""
        exp_id = scratch("zz_chaos_die", _die)
        executor = ParallelExecutor(
            1, retry=RetryPolicy(max_task_reexecutions=1, restart_backoff=0.0)
        )
        (outcome,) = executor.run([exp_id])
        assert outcome.status == "failed"
        assert outcome.exit_cause == "exit:3"
        assert outcome.attempts == 2  # original + 1 re-execution
        assert executor.stats.worker_crashes == 2
        assert executor.stats.task_reexecutions == 1

    def test_chaos_kills_are_survived(self, scratch):
        """Seeded SIGKILLs: every task completes and rows match the
        fault-free run; crash/restart counters are populated."""
        runner = _SeededRows()
        ids = [scratch(f"zz_cs{i}", runner) for i in range(6)]
        plan = ChaosPlan(seed=7, kill_rate=0.6, safe_attempt=2)
        assert any(plan.should_kill(i, 0) for i in ids)  # chaos actually bites
        executor = ParallelExecutor(
            2,
            seed=11,
            retry=RetryPolicy(max_task_reexecutions=2, restart_backoff=0.0),
            chaos=plan,
        )
        outcomes = executor.run(ids)
        assert [o.status for o in outcomes] == ["ok"] * 6
        baseline = ParallelExecutor(2, seed=11).run(ids)
        assert [o.result.rows for o in outcomes] == [
            o.result.rows for o in baseline
        ]
        assert executor.stats.worker_crashes > 0
        assert executor.stats.worker_restarts > 0

    def test_restart_budget_degrades_to_serial(self, scratch):
        """With no restart budget the pool empties and the remaining
        tasks still complete — serially, in the parent."""
        runner = _SeededRows()
        ids = [scratch(f"zz_dg{i}", runner) for i in range(4)]
        plan = ChaosPlan(seed=3, kill_rate=1.0, safe_attempt=1)
        executor = ParallelExecutor(
            1,
            seed=5,
            retry=RetryPolicy(
                max_task_reexecutions=1,
                max_worker_restarts=0,
                restart_backoff=0.0,
            ),
            chaos=plan,
        )
        with capture() as cap:
            outcomes = executor.run(ids)
        assert [o.status for o in outcomes] == ["ok"] * 4
        assert executor.stats.degraded_to_serial == 1
        assert any(e.kind == "degraded_to_serial" for e in cap.events)
        baseline = ParallelExecutor(1, seed=5).run(ids)
        assert [o.result.rows for o in outcomes] == [
            o.result.rows for o in baseline
        ]

    def test_sigstop_hang_detected_by_heartbeat(self, scratch):
        """A SIGSTOPped worker stops heartbeating; the supervisor kills
        it and re-executes its task on a replacement."""
        runner = _SeededRows()
        exp_id = scratch("zz_stop", runner)
        plan = ChaosPlan(seed=2, kill_rate=0.0, stop_rate=1.0, safe_attempt=1)
        executor = ParallelExecutor(
            1,
            seed=1,
            retry=RetryPolicy(max_task_reexecutions=1, restart_backoff=0.0),
            chaos=plan,
            heartbeat_timeout=1.0,
        )
        start = time.monotonic()
        (outcome,) = executor.run([exp_id])
        assert time.monotonic() - start < 30.0
        assert outcome.status == "ok"
        assert executor.stats.heartbeat_timeouts >= 1


# ---------------------------------------------------------------------------
class TestKillMidCheckpointWrite:
    def test_sigkill_mid_write_resumes_byte_identical(self, scratch, tmp_path):
        """Satellite 3: a batch SIGKILLed mid-checkpoint-append (modeled
        by the seeded torn tail a kill leaves) recovers to the last
        durable record, and the resumed run's artifacts are
        byte-identical to an uninterrupted run."""
        runner = _SeededRows()
        ids = [scratch(f"zz_kr{i}", runner) for i in range(4)]
        out_clean, out_resumed = tmp_path / "clean", tmp_path / "resumed"
        ck_clean = tmp_path / "ck_clean.json"
        ck_torn = tmp_path / "ck_torn.json"
        base = [*ids, "--seed", "13", "--json", "--no-cache"]
        assert main(
            [*base, "--out", str(out_clean), "--checkpoint", str(ck_clean)]
        ) == 0
        # an interrupted run: completed prefix, then killed mid-append
        assert main(
            [ids[0], ids[1], "--seed", "13", "--no-cache",
             "--checkpoint", str(ck_torn)]
        ) == 0
        assert tear_tail(ck_torn) > 0  # the kill tears ids[1]'s record
        assert set(recover(ck_torn, truncate=False).done_map()) == {ids[0]}
        assert main(
            [*base, "--out", str(out_resumed), "--checkpoint", str(ck_torn),
             "--resume"]
        ) == 0
        # ids[0] was skipped, everything else re-ran; rows byte-identical
        for exp_id in ids[1:]:
            assert (out_resumed / f"{exp_id}.json").read_bytes() == (
                out_clean / f"{exp_id}.json"
            ).read_bytes()
        assert set(recover(ck_torn, truncate=False).done_map()) == set(ids)


# ---------------------------------------------------------------------------
class TestChaosCLI:
    def test_chaos_run_matches_fault_free_serial(self, scratch, tmp_path,
                                                 capsys):
        """The acceptance gate in miniature: --jobs 4 --chaos with a
        mid-run journal truncation completes with rows byte-identical
        to the fault-free --jobs 1 run, and restart/recovery counts
        appear in the metrics snapshot and trace JSONL."""
        runner = _SeededRows()
        ids = [scratch(f"zz_cg{i}", runner) for i in range(5)]
        out_serial, out_chaos = tmp_path / "serial", tmp_path / "chaos"
        ckpt = tmp_path / "ckpt.json"
        base = [*ids, "--seed", "3", "--json", "--no-cache"]
        assert main([*base, "--jobs", "1", "--out", str(out_serial)]) == 0

        # interrupted prefix + torn journal, then the chaos resume run
        assert main(
            [ids[0], "--seed", "3", "--no-cache", "--checkpoint", str(ckpt)]
        ) == 0
        tear_tail(ckpt)
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.jsonl"
        capsys.readouterr()
        assert main(
            [*base, "--jobs", "4", "--chaos", "1234", "--resume",
             "--checkpoint", str(ckpt), "--out", str(out_chaos),
             "--metrics-out", str(metrics), "--trace-out", str(trace)]
        ) == 0
        err = capsys.readouterr().err
        assert "recovered a torn tail" in err
        for exp_id in ids:
            if (out_chaos / f"{exp_id}.json").exists():
                assert (out_chaos / f"{exp_id}.json").read_bytes() == (
                    out_serial / f"{exp_id}.json"
                ).read_bytes()
        # chaos at kill_rate 0.25 over 5 tasks with this seed must bite
        counters = json.loads(metrics.read_text())["counters"]
        assert counters.get("worker_crashes", 0) > 0
        kinds = {
            json.loads(line)["kind"] for line in trace.read_text().splitlines()
        }
        assert "worker_crashed" in kinds

    def test_chaos_requires_jobs(self, scratch, capsys):
        exp_id = scratch("zz_cj", _rows)
        assert main([exp_id, "--chaos", "1"]) == 0
        assert "needs --jobs > 1" in capsys.readouterr().err


# ---------------------------------------------------------------------------
class TestCacheVerifyPrune:
    def _seed_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir, fingerprint="f" * 64)
        cache.put_rows("aa", [{"x": 1}], {}, quick=False, seed=None)
        cache.put_rows("bb", [{"x": 2}], {}, quick=False, seed=None)
        return cache_dir, cache

    def test_corrupt_entry_detected_and_pruned(self, tmp_path, capsys):
        cache_dir, cache = self._seed_cache(tmp_path)
        (entry,) = sorted(cache_dir.glob("bb-*.json"))
        corrupt_bytes(entry, seed=5)  # deliberate bit rot
        reports = scan_cache_dir(cache_dir)
        assert [r.status for r in reports] == ["ok", "corrupt"]
        assert cache.get_rows("bb", {}, quick=False, seed=None) is None

        assert cache_main(["verify", "--cache-dir", str(cache_dir)]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out and str(entry) in out

        assert cache_main(["prune", "--cache-dir", str(cache_dir)]) == 0
        assert not entry.exists()
        assert len(list(cache_dir.glob("*.json"))) == 1
        assert cache_main(["verify", "--cache-dir", str(cache_dir)]) == 0

    def test_crc_mismatch_counts_as_corrupt_metric(self, tmp_path):
        cache_dir, cache = self._seed_cache(tmp_path)
        (entry,) = sorted(cache_dir.glob("aa-*.json"))
        payload = json.loads(entry.read_text())
        payload["rows"] = [{"x": 999}]  # rows swapped, crc now stale
        entry.write_text(json.dumps(payload))
        with capture() as cap:
            assert cache.get_rows("aa", {}, quick=False, seed=None) is None
        assert cap.snapshot()["counters"]["cache_corrupt"] == 1

    def test_verify_json_output(self, tmp_path, capsys):
        cache_dir, _ = self._seed_cache(tmp_path)
        assert cache_main(
            ["verify", "--cache-dir", str(cache_dir), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 2 and payload["corrupt"] == 0

    def test_prune_sweeps_tmp_litter(self, tmp_path):
        cache_dir, _ = self._seed_cache(tmp_path)
        litter = cache_dir / "aa-deadbeef.json.tmp.12345"
        litter.write_text("partial")
        assert cache_main(["prune", "--cache-dir", str(cache_dir)]) == 0
        assert not litter.exists()

    def test_cache_subcommand_dispatch(self, tmp_path, capsys):
        assert main(
            ["cache", "verify", "--cache-dir", str(tmp_path / "empty")]
        ) == 0
        assert "0 entries" in capsys.readouterr().out
