"""Tests for the requestor-wins policies (Theorems 4-6)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.model import ConflictKind, ConflictModel
from repro.core.requestor_wins import (
    DeterministicRW,
    MeanConstrainedRW,
    PolynomialRW,
    UniformRW,
    optimal_requestor_wins,
    rw_chain_ratio_R,
)
from repro.core.verify import (
    competitive_ratio,
    constrained_competitive_ratio,
    expected_cost_curve,
)
from repro.errors import InvalidParameterError, RegimeError

B = 100.0


def _norm(policy) -> float:
    xs = np.linspace(*policy.support, 30001)
    return float(np.trapezoid(policy.pdf_vec(xs), xs))


class TestChainRatioR:
    def test_k2(self):
        assert rw_chain_ratio_R(2) == pytest.approx(2.0)

    def test_monotone_to_e(self):
        values = [rw_chain_ratio_R(k) for k in (2, 3, 5, 10, 100, 10_000)]
        assert all(a < b for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(math.e, rel=1e-3)

    def test_large_k_no_overflow(self):
        assert math.isfinite(rw_chain_ratio_R(10_000_000))

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            rw_chain_ratio_R(1)


class TestDeterministicRW:
    def test_delay_is_cap(self):
        assert DeterministicRW(B, 2).delay == pytest.approx(B)
        assert DeterministicRW(B, 5).delay == pytest.approx(B / 4)

    @pytest.mark.parametrize("k,expected", [(2, 3.0), (3, 2.5), (5, 2.25)])
    def test_closed_form_ratio(self, k, expected):
        assert DeterministicRW(B, k).competitive_ratio == pytest.approx(expected)

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_numeric_matches_theorem4(self, k):
        policy = DeterministicRW(B, k)
        model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, k)
        result = competitive_ratio(policy, model)
        assert result.ratio == pytest.approx(policy.competitive_ratio, rel=1e-4)

    def test_sampling_is_constant(self, rng):
        policy = DeterministicRW(B, 3)
        assert set(policy.sample_many(10, rng).tolist()) == {B / 2}

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            DeterministicRW(-1.0, 2)
        with pytest.raises(InvalidParameterError):
            DeterministicRW(B, 1)


class TestUniformRW:
    def test_normalization(self):
        for k in (2, 3, 8):
            assert _norm(UniformRW(B, k)) == pytest.approx(1.0, abs=1e-4)

    def test_support(self):
        assert UniformRW(B, 2).support == (0.0, B)
        assert UniformRW(B, 5).support == (0.0, B / 4)

    def test_pdf_value(self):
        policy = UniformRW(B, 4)
        assert policy.pdf(10.0) == pytest.approx(3 / B)
        assert policy.pdf(B) == 0.0  # outside [0, B/3]

    def test_cdf_linear(self):
        policy = UniformRW(B, 2)
        assert policy.cdf(25.0) == pytest.approx(0.25)
        assert policy.cdf(-5.0) == 0.0
        assert policy.cdf(B + 5) == 1.0

    def test_ppf_closed_form(self):
        policy = UniformRW(B, 2)
        assert float(policy.ppf(0.5)) == pytest.approx(B / 2)

    def test_ppf_rejects_bad_quantiles(self):
        with pytest.raises(InvalidParameterError):
            UniformRW(B, 2).ppf(1.5)

    def test_expected_delay(self):
        assert UniformRW(B, 2).expected_delay() == pytest.approx(B / 2)

    def test_sampling_uniformity(self, rng):
        samples = UniformRW(B, 2).sample_many(50_000, rng)
        assert samples.min() >= 0.0
        assert samples.max() <= B
        assert samples.mean() == pytest.approx(B / 2, rel=0.02)
        # quartiles
        assert np.quantile(samples, 0.25) == pytest.approx(B / 4, rel=0.05)

    def test_theorem5_ratio_exactly_two_k2(self):
        """The paper's headline: uniform on [0,B) is 2-competitive, with
        the ratio *equalized* (cost = 2y for every adversary choice)."""
        policy = UniformRW(B, 2)
        model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)
        ys = np.linspace(0.5, B, 64)
        costs = expected_cost_curve(policy, model, ys)
        assert np.allclose(costs, 2.0 * ys, rtol=1e-3)

    def test_ratio_at_most_two_any_k(self):
        for k in (2, 3, 6):
            policy = UniformRW(B, k)
            model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, k)
            assert competitive_ratio(policy, model).ratio <= 2.0 + 1e-3


class TestMeanConstrainedRW:
    def test_normalization(self):
        assert _norm(MeanConstrainedRW(B, 10.0)) == pytest.approx(1.0, abs=1e-4)

    def test_pdf_vanishes_at_zero(self):
        assert MeanConstrainedRW(B, 10.0).pdf(0.0) == pytest.approx(0.0)

    def test_pdf_increasing(self):
        policy = MeanConstrainedRW(B, 10.0)
        xs = np.linspace(0, B, 100)
        pdf = policy.pdf_vec(xs)
        assert np.all(np.diff(pdf) > 0)

    def test_regime_threshold(self):
        limit = 2.0 * (math.log(4) - 1.0)
        assert MeanConstrainedRW.regime_holds(B, (limit - 1e-6) * B)
        assert not MeanConstrainedRW.regime_holds(B, (limit + 1e-6) * B)

    def test_out_of_regime_raises(self):
        with pytest.raises(RegimeError):
            MeanConstrainedRW(B, 90.0)

    def test_out_of_regime_escape_hatch(self):
        policy = MeanConstrainedRW(B, 90.0, strict_regime=False)
        assert _norm(policy) == pytest.approx(1.0, abs=1e-4)

    def test_closed_form_ratio(self):
        mu = 20.0
        expected = 1.0 + mu / (2 * B * (math.log(4) - 1))
        assert MeanConstrainedRW(B, mu).competitive_ratio == pytest.approx(expected)

    def test_equalization_identity(self):
        """Cost(p, y) / y == 1 + lambda2 * y on the whole support — the
        Lagrangian equalization that makes the policy optimal."""
        policy = MeanConstrainedRW(B, 10.0)
        model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)
        ys = np.linspace(1.0, B * 0.999, 50)
        lhs = expected_cost_curve(policy, model, ys) / ys
        rhs = 1.0 + policy.lagrange_lambda2 * ys
        assert np.allclose(lhs, rhs, rtol=1e-4)

    def test_constrained_ratio_numeric(self):
        policy = MeanConstrainedRW(B, 10.0)
        model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)
        result = constrained_competitive_ratio(policy, model, 10.0)
        assert result.ratio == pytest.approx(policy.competitive_ratio, rel=1e-3)

    def test_beats_uniform_in_regime(self):
        """The constrained policy's guarantee must beat 2 inside the
        regime against mean-constrained adversaries."""
        policy = MeanConstrainedRW(B, 10.0)
        assert policy.competitive_ratio < 2.0

    def test_sampling_matches_cdf(self, rng):
        policy = MeanConstrainedRW(B, 10.0)
        samples = policy.sample_many(40_000, rng)
        for q in (0.1, 0.5, 0.9):
            empirical = float(np.quantile(samples, q))
            assert policy.cdf(empirical) == pytest.approx(q, abs=0.02)


class TestPolynomialRW:
    @pytest.mark.parametrize("k", [3, 4, 8, 40])
    def test_normalization_unconstrained(self, k):
        assert _norm(PolynomialRW(B, k)) == pytest.approx(1.0, abs=1e-4)

    @pytest.mark.parametrize("k", [3, 4, 8])
    def test_normalization_constrained(self, k):
        mu = 0.5 * B * PolynomialRW.regime_threshold(k)
        assert _norm(PolynomialRW(B, k, mu)) == pytest.approx(1.0, abs=1e-4)

    def test_k2_rejected(self):
        with pytest.raises(InvalidParameterError):
            PolynomialRW(B, 2)

    def test_unconstrained_ratio_formula(self):
        for k in (3, 4, 10):
            R = rw_chain_ratio_R(k)
            assert PolynomialRW(B, k).competitive_ratio == pytest.approx(
                R / (R - 1)
            )

    @pytest.mark.parametrize("k", [3, 4, 8])
    def test_unconstrained_numeric_matches(self, k):
        policy = PolynomialRW(B, k)
        model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, k)
        result = competitive_ratio(policy, model)
        assert result.ratio == pytest.approx(policy.competitive_ratio, rel=2e-3)

    def test_ratio_beats_uniform_for_k3(self):
        assert PolynomialRW(B, 3).competitive_ratio < 2.0

    def test_ratio_decreases_toward_e_ratio(self):
        rats = [PolynomialRW(B, k).competitive_ratio for k in (3, 5, 20, 200)]
        assert all(a > b for a, b in zip(rats, rats[1:]))
        assert rats[-1] == pytest.approx(math.e / (math.e - 1), rel=1e-2)

    def test_constrained_pdf_vanishes_at_zero(self):
        k = 4
        mu = 0.5 * B * PolynomialRW.regime_threshold(k)
        assert PolynomialRW(B, k, mu).pdf(0.0) == pytest.approx(0.0)

    def test_constrained_equalization_identity(self):
        """The corrected Theorem 6 form satisfies
        Cost(p, y) = (k-1) y (1 + lambda2 y) on the support — the
        paper's printed coefficients do not (they are negative at 0)."""
        k = 4
        mu = 0.5 * B * PolynomialRW.regime_threshold(k)
        policy = PolynomialRW(B, k, mu)
        model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, k)
        ys = np.linspace(0.5, model.delay_cap * 0.999, 40)
        lhs = expected_cost_curve(policy, model, ys) / (model.waiters * ys)
        rhs = 1.0 + policy.lagrange_lambda2 * ys
        assert np.allclose(lhs, rhs, rtol=1e-4)

    def test_constrained_numeric_ratio(self):
        k = 5
        mu = 0.5 * B * PolynomialRW.regime_threshold(k)
        policy = PolynomialRW(B, k, mu)
        model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, k)
        result = constrained_competitive_ratio(policy, model, mu)
        assert result.ratio == pytest.approx(policy.competitive_ratio, rel=2e-3)

    def test_constrained_converges_to_log_form_as_k_to_2(self):
        """k -> 2 limit of the corrected Theorem 6 is Theorem 5's
        log-density (consistency of the correction)."""
        mu = 5.0
        log_policy = MeanConstrainedRW(B, mu)
        # use strict_regime=False: thresholds converge but not equal
        poly = PolynomialRW(B, 3, mu, strict_regime=False)
        # compare competitive ratios along k: 3 is still close-ish; the
        # real check is the limit of the formula
        from repro.core.ratios import constrained_rw_ratio

        r2 = constrained_rw_ratio(B, mu, 2)
        # evaluate the k>2 formula at k close to 2 via its R expression
        for k, tol in ((3, 0.25), (4, 0.4)):
            rk = constrained_rw_ratio(B, mu, k)
            assert abs(rk - r2) / r2 < tol

    def test_regime_out_raises(self):
        k = 4
        mu = 2.0 * B * PolynomialRW.regime_threshold(k)
        with pytest.raises(RegimeError):
            PolynomialRW(B, k, mu)

    def test_closed_form_ppf_roundtrip(self):
        policy = PolynomialRW(B, 6)
        qs = np.linspace(0.01, 0.99, 21)
        xs = policy.ppf(qs)
        assert np.allclose(policy.cdf_vec(xs), qs, atol=1e-9)

    def test_large_k_stable(self):
        policy = PolynomialRW(B, 100_000)
        assert math.isfinite(policy.competitive_ratio)
        assert _norm(policy) == pytest.approx(1.0, abs=1e-3)


class TestFactory:
    def test_deterministic(self):
        assert isinstance(
            optimal_requestor_wins(B, deterministic=True), DeterministicRW
        )

    def test_k2_unconstrained(self):
        assert isinstance(optimal_requestor_wins(B), UniformRW)

    def test_k2_constrained_in_regime(self):
        assert isinstance(optimal_requestor_wins(B, mu=10.0), MeanConstrainedRW)

    def test_k2_constrained_out_of_regime_falls_back(self):
        assert isinstance(optimal_requestor_wins(B, mu=95.0), UniformRW)

    def test_k3_unconstrained(self):
        policy = optimal_requestor_wins(B, 3)
        assert isinstance(policy, PolynomialRW)
        assert not policy.constrained

    def test_k3_constrained(self):
        mu = 0.5 * B * PolynomialRW.regime_threshold(3)
        policy = optimal_requestor_wins(B, 3, mu)
        assert isinstance(policy, PolynomialRW)
        assert policy.constrained

    def test_k3_out_of_regime_falls_back(self):
        mu = 3.0 * B * PolynomialRW.regime_threshold(3)
        policy = optimal_requestor_wins(B, 3, mu)
        assert isinstance(policy, PolynomialRW)
        assert not policy.constrained
