"""Unit tests for the figure/experiment helper modules and report
internals that the registry-level tests don't reach."""

from __future__ import annotations

import math

import pytest

from repro.experiments import fig2, fig3
from repro.experiments.report import _fmt, ascii_bars, render_series, render_table
from repro.htm import MachineParams, NoDelay, TunedDelay
from repro.workloads import StackWorkload


class TestFig3Helpers:
    def test_policy_factory_known(self):
        params = MachineParams()
        workload = StackWorkload()
        for name in fig3.FIG3_POLICIES:
            factory = fig3._policy_factory(name, workload, params)
            policy = factory(0)
            assert policy is not None

    def test_policy_factory_extensions(self):
        params = MachineParams()
        workload = StackWorkload()
        for name in ("DELAY_RA", "DELAY_HYBRID", "GREEDY_CM"):
            factory = fig3._policy_factory(name, workload, params)
            assert factory(0) is not None

    def test_policy_factory_unknown(self):
        with pytest.raises(ValueError):
            fig3._policy_factory("DELAY_MAGIC", StackWorkload(), MachineParams())

    def test_tuned_factory_uses_workload(self):
        params = MachineParams()
        workload = StackWorkload()
        factory = fig3._policy_factory("DELAY_TUNED", workload, params)
        policy = factory(0)
        assert isinstance(policy, TunedDelay)
        assert policy.tuned_cycles == workload.tuned_delay_cycles(params)

    def test_run_fig3_minimal(self):
        rows = fig3.run_fig3(
            lambda: StackWorkload(),
            threads=(2,),
            policies=("NO_DELAY",),
            horizon=20_000.0,
            seed=1,
        )
        assert len(rows) == 1
        assert rows[0]["threads"] == 2
        assert rows[0]["ops"] > 0

    def test_fig3_thread_axis(self):
        assert fig3.FIG3_THREADS[0] == 1
        assert fig3.FIG3_THREADS[-1] == 18


class TestFig2Helpers:
    def test_distribution_order(self):
        assert fig2.FIG2_DISTRIBUTIONS == (
            "geometric",
            "normal",
            "uniform",
            "exponential",
            "poisson",
        )

    def test_fig2c_custom_B(self):
        rows = fig2.run_fig2c(trials=2_000, seed=1, B=100.0)
        det = next(r for r in rows if r["policy"] == "DET")
        assert det["vs_OPT"] == pytest.approx(3.0, rel=0.05)


class TestReportInternals:
    def test_fmt_branches(self):
        assert _fmt(True) == "yes"
        assert _fmt(False) == "no"
        assert _fmt(0.0) == "0"
        assert _fmt(1234567.0) == "1.235e+06"
        assert _fmt(0.0001234) == "1.234e-04"
        assert _fmt(3.14159) == "3.142"
        assert _fmt("text") == "text"
        assert _fmt(42) == "42"

    def test_render_table_missing_cells_blank(self):
        text = render_table([{"a": 1}, {"b": 2}])
        lines = text.splitlines()
        # first data row has an empty b column
        assert lines[2].rstrip().endswith("1") or "1" in lines[2]

    def test_ascii_bars_zero_values(self):
        text = ascii_bars(["x", "y"], [0.0, 0.0])
        assert "x" in text

    def test_ascii_bars_mismatched_inputs(self):
        assert ascii_bars(["x"], [1.0, 2.0]) == ""

    def test_render_series_titles(self):
        text = render_series("n", [1], {"s": [2.0]}, title="T")
        assert text.startswith("T")


class TestRegimesExperiment:
    def test_shape(self):
        from repro.experiments import run_experiment

        result = run_experiment("ext_regimes", quick=True, seed=4)
        assert [r["B/mu"] for r in result.rows] == [0.5, 2.0, 8.0]
        # low B/mu: RA family wins; high B/mu: DET wins
        assert result.rows[0]["best"].startswith("RRA")
        assert result.rows[-1]["best"] == "DET"
        # DET cost improves monotonically with B/mu
        dets = [r["DET"] for r in result.rows]
        assert dets == sorted(dets, reverse=True)

    def test_constrained_detach_in_regime(self):
        from repro.experiments import run_experiment

        result = run_experiment("ext_regimes", quick=True, seed=4)
        high = result.rows[-1]  # B/mu = 8: well inside the mean regime
        assert high["RRW(mu)"] < high["RRW"]
        assert high["RRA(mu)"] < high["RRA"]
