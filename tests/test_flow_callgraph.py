"""Call-graph construction edge cases for the deep (FLOW) pass:
decorated functions, bound methods (self / attribute-typed /
local-instance / inherited / super), lambdas as callbacks,
registry-mediated dispatch, and import cycles.

Fixture mini-packages live under ``tests/fixtures/flow/``; each is
analyzed on its own so its internal imports resolve.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import lint_paths
from repro.analysis.flow import ProjectGraph, analyze_sources, module_names
from repro.analysis.flow.extract import extract_module

FIXTURES = Path(__file__).parent / "fixtures" / "flow"


def flow_findings(fixture: str) -> list[dict]:
    result = lint_paths(
        [FIXTURES / fixture], select=["FLOW"], deep=True
    )
    return result.flow


def chains(findings: list[dict]) -> dict[str, str]:
    """entry -> rendered chain, for one finding per entry."""
    return {
        f["entry"]: " -> ".join(f["chain"]) for f in findings
    }


class TestDecorators:
    def test_decorator_edge_reaches_wrapper_impurity(self):
        findings = flow_findings("decorators")
        (finding,) = [f for f in findings if f["rule"] == "FLOW001"]
        assert finding["entry"] == "sim.work:compute"
        assert finding["chain"] == [
            "sim.work:compute",
            "util.wrap:timed",
            "util.wrap:timed.wrapper",
        ]
        assert "time.perf_counter()" in finding["message"]


class TestBoundMethods:
    def test_self_and_attribute_typed_calls(self):
        by_entry = chains(flow_findings("classes"))
        assert by_entry["sim.machine:Machine.run"] == (
            "sim.machine:Machine.run -> sim.machine:Machine._spin "
            "-> sim.machine:Probe.now"
        )

    def test_local_instance_bound_method(self):
        by_entry = chains(flow_findings("classes"))
        assert by_entry["sim.machine:drive"].startswith(
            "sim.machine:drive -> sim.machine:Machine.run"
        )

    def test_inherited_method_cross_module(self):
        sources = {
            "pkg/sim/__init__.py": "",
            "pkg/sim/child.py": (
                "from lib.parent import Parent\n\n\n"
                "class Child(Parent):\n"
                "    def run(self):\n"
                "        return self.tick()\n"
            ),
            "pkg/lib/__init__.py": "",
            "pkg/lib/parent.py": (
                "import time\n\n\n"
                "class Parent:\n"
                "    def tick(self):\n"
                "        return time.time()\n"
            ),
        }
        findings, _stats = analyze_sources(sources)
        by_entry = chains([f for f in findings if f["rule"] == "FLOW001"])
        assert by_entry["sim.child:Child.run"] == (
            "sim.child:Child.run -> lib.parent:Parent.tick"
        )

    def test_super_call_resolves_to_base(self):
        sources = {
            "pkg/sim/__init__.py": "",
            "pkg/sim/machines.py": (
                "import time\n\n\n"
                "class Base:\n"
                "    def setup(self):\n"
                "        return time.monotonic()\n\n\n"
                "class Derived(Base):\n"
                "    def setup(self):\n"
                "        return super().setup() + 1\n"
            ),
        }
        findings, _stats = analyze_sources(sources)
        by_entry = chains([f for f in findings if f["rule"] == "FLOW001"])
        assert by_entry["sim.machines:Derived.setup"] == (
            "sim.machines:Derived.setup -> sim.machines:Base.setup"
        )


class TestCallbacks:
    def test_lambda_callback_folded_into_caller(self):
        by_entry = chains(flow_findings("callbacks"))
        assert by_entry["sim.driver:collect"] == (
            "sim.driver:collect -> util.wallclock:stamp "
            "-> util.wallclock:_now"
        )

    def test_function_reference_argument(self):
        by_entry = chains(flow_findings("callbacks"))
        assert by_entry["sim.driver:collect_ref"] == (
            "sim.driver:collect_ref -> util.wallclock:stamp "
            "-> util.wallclock:_now"
        )


class TestRegistryDispatch:
    def test_registered_runner_is_entry_despite_unscoped_dir(self):
        findings = flow_findings("registry")
        (finding,) = [f for f in findings if f["rule"] == "FLOW001"]
        assert finding["entry"] == "reg.exp:runner"
        assert finding["chain"] == [
            "reg.exp:runner", "reg.exp:_mid", "reg.clock:stamp",
        ]
        # private helpers never become entries on their own
        assert not any(f["entry"] == "reg.exp:_mid" for f in findings)


class TestImportCycles:
    def test_cycle_terminates_and_both_entries_flagged(self):
        findings = flow_findings("cycle")
        by_entry = chains(findings)
        assert by_entry["sim.cyc_a:ping"] == (
            "sim.cyc_a:ping -> sim.cyc_b:pong -> sim.cyc_b:_leaf"
        )
        assert by_entry["sim.cyc_b:pong"] == (
            "sim.cyc_b:pong -> sim.cyc_b:_leaf"
        )


class TestModuleNames:
    def test_src_layout(self):
        paths = [
            "src/repro/__init__.py",
            "src/repro/htm/__init__.py",
            "src/repro/htm/machine.py",
        ]
        names = module_names(paths)
        assert names["src/repro/htm/machine.py"] == "repro.htm.machine"
        assert names["src/repro/htm/__init__.py"] == "repro.htm"

    def test_single_directory_package(self):
        paths = [
            "tests/fixtures/flow/registry/reg/__init__.py",
            "tests/fixtures/flow/registry/reg/exp.py",
        ]
        names = module_names(paths)
        assert names["tests/fixtures/flow/registry/reg/exp.py"] == "reg.exp"

    def test_loose_script_uses_stem(self):
        assert module_names(["benchmarks/bench_suite.py"]) == {
            "benchmarks/bench_suite.py": "bench_suite"
        }


class TestGraphDeterminism:
    def test_findings_stable_across_summary_order(self):
        paths = sorted(
            str(p) for p in (FIXTURES / "transitive").rglob("*.py")
        )
        sources = {p: Path(p).read_text(encoding="utf-8") for p in paths}
        names = module_names(paths)
        summaries = [
            extract_module(p, sources[p], names[p]) for p in paths
        ]
        forward = ProjectGraph(summaries).findings()
        backward = ProjectGraph(list(reversed(summaries))).findings()
        assert forward == backward
        assert forward  # the fixture is not accidentally clean
