"""CLI surface of the deep pass: --deep, the analyze alias, SARIF
output, --jobs invariance, the baseline workflow, and the cache-hit
counter on stderr."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main as lint_main
from repro.cli import main as repro_main

FIXTURES = Path(__file__).parent / "fixtures" / "flow"
TRANSITIVE = str(FIXTURES / "transitive")


def run(capsys, argv):
    code = lint_main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestDeepCli:
    def test_deep_prints_full_chain(self, capsys, tmp_path):
        code, out, _err = run(
            capsys,
            [TRANSITIVE, "--deep", "--select", "FLOW",
             "--cache-dir", str(tmp_path)],
        )
        assert code == 1
        assert (
            "htm.engine.step -> htm.engine._advance -> "
            "util.timeutil.read_clock -> util.timeutil._now"
        ) in out

    def test_shallow_run_has_no_flow_findings(self, capsys):
        code, out, _err = run(
            capsys, [TRANSITIVE, "--select", "FLOW", "--no-cache"]
        )
        assert code == 0
        assert "FLOW" not in out.partition("simlint:")[2]

    def test_analyze_alias(self, capsys, tmp_path):
        code = repro_main(
            ["analyze", TRANSITIVE, "--select", "FLOW",
             "--cache-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FLOW001" in out

    def test_cache_counter_on_stderr(self, capsys, tmp_path):
        argv = [TRANSITIVE, "--deep", "--select", "FLOW",
                "--cache-dir", str(tmp_path)]
        _code, _out, err1 = run(capsys, argv)
        assert "run miss" in err1
        _code, out2, err2 = run(capsys, argv)
        assert "run hit" in err2
        assert "file hit" in err2
        # the counter never contaminates stdout (byte-identity)
        assert "hit" not in out2

    def test_jobs_invariance(self, capsys, tmp_path):
        base = [TRANSITIVE, "--deep", "--select", "FLOW",
                "--format", "json"]
        _c, out1, _e = run(
            capsys, base + ["--jobs", "1",
                            "--cache-dir", str(tmp_path / "a")]
        )
        _c, out2, _e = run(
            capsys, base + ["--jobs", "2",
                            "--cache-dir", str(tmp_path / "b")]
        )
        assert out1 == out2


class TestSarif:
    def test_sarif_structure(self, capsys, tmp_path):
        _code, out, _err = run(
            capsys,
            [TRANSITIVE, "--deep", "--select", "FLOW",
             "--format", "sarif", "--cache-dir", str(tmp_path)],
        )
        doc = json.loads(out)
        assert doc["version"] == "2.1.0"
        (sarif_run,) = doc["runs"]
        assert sarif_run["tool"]["driver"]["name"] == "simlint"
        rule_ids = {r["id"] for r in sarif_run["tool"]["driver"]["rules"]}
        assert {"FLOW001", "FLOW006", "PRG001", "DET001"} <= rule_ids
        levels = {r["ruleId"]: r["level"] for r in sarif_run["results"]}
        assert levels["FLOW001"] == "error"
        locs = sarif_run["results"][0]["locations"]
        assert locs[0]["physicalLocation"]["region"]["startLine"] >= 1

    def test_sarif_carries_baselined_as_suppressed(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        argv = [TRANSITIVE, "--deep", "--select", "FLOW",
                "--baseline", str(baseline),
                "--cache-dir", str(tmp_path / "cache")]
        code, _out, _err = run(capsys, argv + ["--write-baseline"])
        assert code == 0
        code, out, _err = run(capsys, argv + ["--format", "sarif"])
        assert code == 0  # everything baselined
        doc = json.loads(out)
        results = doc["runs"][0]["results"]
        assert results, "baselined findings must stay visible"
        assert all(r["level"] == "note" for r in results)
        assert all("suppressions" in r for r in results)


class TestBaselineWorkflow:
    def test_write_then_accept(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        argv = [TRANSITIVE, "--deep", "--select", "FLOW",
                "--baseline", str(baseline),
                "--cache-dir", str(tmp_path / "cache")]
        code, _out, err = run(capsys, argv + ["--write-baseline"])
        assert code == 0
        assert "wrote 2 deep finding(s)" in err
        entries = json.loads(baseline.read_text(encoding="utf-8"))
        assert len(entries["entries"]) == 2
        code, out, _err = run(capsys, argv)
        assert code == 0
        assert "2 baselined" in out

    def test_malformed_baseline_is_usage_error(self, capsys, tmp_path):
        baseline = tmp_path / "bad.json"
        baseline.write_text("[]", encoding="utf-8")
        code, _out, err = run(
            capsys,
            [TRANSITIVE, "--deep", "--no-cache",
             "--baseline", str(baseline)],
        )
        assert code == 2
        assert "simlint: error" in err
