"""The ``python -m repro lint`` CLI: exit codes, formats, selection,
and the acceptance gate — the repaired tree lints clean while a seeded
violation exits non-zero with file:line:rule output."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis.cli import main as lint_main
from repro.cli import main as repro_main

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"


@pytest.fixture
def violation_tree(tmp_path):
    """A fake package tree with one DET002 + one ORD001 violation in a
    simulation-critical directory."""
    pkg = tmp_path / "htm"
    pkg.mkdir()
    (pkg / "bad.py").write_text(
        "import random\n"
        "for x in {1, 2}:\n"
        "    consume(x)\n"
    )
    return tmp_path


class TestLintCli:
    def test_repaired_tree_is_clean(self, capsys):
        assert lint_main([str(REPO_SRC)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "0 findings" in out

    def test_dispatch_through_repro_cli(self, capsys):
        assert repro_main(["lint", str(REPO_SRC)]) == 0
        assert "simlint" in capsys.readouterr().out

    def test_seeded_violation_exits_nonzero(self, violation_tree, capsys):
        rc = lint_main([str(violation_tree)])
        assert rc == 1
        out = capsys.readouterr().out
        # file:line:col: RULE message
        assert "bad.py:1:1: DET002" in out
        assert "bad.py:2:10: ORD001" in out

    def test_select_limits_rules(self, violation_tree, capsys):
        assert lint_main([str(violation_tree), "--select", "ORD"]) == 1
        out = capsys.readouterr().out
        assert "ORD001" in out and "DET002" not in out

    def test_ignore_all_relevant_rules_passes(self, violation_tree):
        rc = lint_main(
            [str(violation_tree), "--ignore", "DET002,ORD001"]
        )
        assert rc == 0

    def test_json_format(self, violation_tree, capsys):
        assert lint_main([str(violation_tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts"]["DET002"] == 1
        assert payload["findings"][0]["path"].endswith("bad.py")
        assert {"path", "line", "col", "rule", "message"} <= set(
            payload["findings"][0]
        )

    def test_json_reports_suppressions(self, tmp_path, capsys):
        pkg = tmp_path / "sim"
        pkg.mkdir()
        (pkg / "ok.py").write_text(
            "import random  # simlint: disable=DET002 -- fixture\n"
        )
        assert lint_main([str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["suppressed"][0]["rule"] == "DET002"
        assert payload["suppressed"][0]["reason"] == "fixture"

    def test_unknown_rule_is_usage_error(self, violation_tree, capsys):
        assert lint_main([str(violation_tree), "--select", "XYZ9"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err

    def test_list_rules_catalog(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in ("DET001", "ORD001", "ERR001", "API001", "POL001"):
            assert family in out

    def test_show_suppressed_lists_justifications(self, capsys):
        assert lint_main([str(REPO_SRC), "--show-suppressed"]) == 0
        out = capsys.readouterr().out
        # the two sanctioned watchdog wall-clock reads
        assert "watchdog" in out
