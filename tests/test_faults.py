"""Fault-injection layer: plan validation, determinism, injector effects.

The determinism class holds the PR's headline regression: a machine
built with an all-zero :class:`FaultPlan` must be *byte-identical*
(stats digest) to one built with no fault layer at all, and any active
plan must replay exactly under the same seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimators import NoisyEstimator
from repro.errors import FaultInjectionError
from repro.faults import NULL_INJECTOR, FaultInjector, FaultPlan, injector_for
from repro.htm import Machine, MachineParams, RandDelay
from repro.htm.controller import AbortReason
from repro.workloads import QueueWorkload

#: every injector enabled, rates high enough that a short run trips all
#: of them
FULL_PLAN = FaultPlan(
    spurious_abort_rate=2e-3,
    capacity_shrink_prob=0.3,
    capacity_ways_lost=2,
    link_jitter_rate=0.25,
    link_jitter_cycles=12,
    probe_dup_rate=0.1,
    stall_rate=0.1,
    stall_cycles=80,
    b_noise=0.3,
    k_noise=0.3,
    mu_noise=0.3,
)


def _run(faults=None, *, seed=7, horizon=30_000.0, n_cores=4):
    params = MachineParams(n_cores=n_cores)
    workload = QueueWorkload()
    machine = Machine(params, lambda i: RandDelay(), faults=faults)
    machine.load(workload, seed=seed)
    stats = machine.run(horizon)
    workload.verify(machine)
    machine.check_invariants()
    return machine, stats


class TestFaultPlan:
    def test_defaults_are_null(self):
        plan = FaultPlan()
        assert plan.is_null()
        assert plan.active_faults() == []
        assert plan.describe() == "no faults"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(spurious_abort_rate=-1e-3),
            dict(spurious_abort_rate=1.5),
            dict(capacity_shrink_prob=2.0),
            dict(link_jitter_rate=-0.1),
            dict(probe_dup_rate=1.01),
            dict(stall_cycles=-5),
            dict(b_noise=-0.2),
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(FaultInjectionError):
            FaultPlan(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(link_jitter_rate=0.1, link_jitter_cycles=0),
            dict(stall_rate=0.1, stall_cycles=0),
            dict(capacity_shrink_prob=0.1, capacity_ways_lost=0),
        ],
    )
    def test_cross_field_validation(self, kwargs):
        with pytest.raises(FaultInjectionError):
            FaultPlan(**kwargs)

    def test_active_faults_names(self):
        assert FULL_PLAN.active_faults() == [
            "spurious_abort",
            "capacity_shrink",
            "link_jitter",
            "probe_dup",
            "core_stall",
            "estimator_noise",
        ]

    def test_dict_roundtrip(self):
        assert FaultPlan.from_dict(FULL_PLAN.to_dict()) == FULL_PLAN

    def test_from_dict_unknown_key(self):
        with pytest.raises(FaultInjectionError, match="unknown"):
            FaultPlan.from_dict({"spurious_rate": 1e-3})

    def test_scaled(self):
        doubled = FULL_PLAN.scaled(2.0)
        assert doubled.spurious_abort_rate == 2 * FULL_PLAN.spurious_abort_rate
        assert doubled.probe_dup_rate == pytest.approx(0.2)
        assert doubled.b_noise == FULL_PLAN.b_noise  # sigmas untouched
        assert FULL_PLAN.scaled(100.0).stall_rate == 1.0  # capped
        assert FULL_PLAN.scaled(0.0).is_null() is False  # noise remains
        with pytest.raises(FaultInjectionError):
            FULL_PLAN.scaled(-1.0)

    def test_injector_selection(self):
        assert injector_for(None) is NULL_INJECTOR
        assert injector_for(FaultPlan()) is NULL_INJECTOR
        assert isinstance(injector_for(FULL_PLAN), FaultInjector)

    def test_machine_accepts_dict_plan(self):
        machine = Machine(
            MachineParams(n_cores=2),
            lambda i: RandDelay(),
            faults={"spurious_abort_rate": 1e-3},
        )
        assert machine.fault_plan == FaultPlan(spurious_abort_rate=1e-3)
        assert isinstance(machine.faults, FaultInjector)


class TestDeterminism:
    def test_null_plan_byte_identical_to_no_plan(self):
        """An all-zero plan must not perturb anything: same digest as a
        machine built without the fault layer (PR acceptance)."""
        _, clean = _run(None)
        _, nulled = _run(FaultPlan())
        assert clean.digest() == nulled.digest()

    def test_active_plan_replays_exactly(self):
        _, a = _run(FULL_PLAN)
        _, b = _run(FULL_PLAN)
        assert a.digest() == b.digest()
        assert a.fault_counts() == b.fault_counts()

    def test_active_plan_changes_execution(self):
        _, clean = _run(None)
        _, faulty = _run(FULL_PLAN)
        assert clean.digest() != faulty.digest()

    def test_different_seeds_differ(self):
        _, a = _run(FULL_PLAN, seed=7)
        _, b = _run(FULL_PLAN, seed=8)
        assert a.digest() != b.digest()


class TestInjectorEffects:
    def test_every_injector_fires(self):
        _, stats = _run(FULL_PLAN)
        for key in (
            "spurious_aborts",
            "capacity_shrinks",
            "link_jitter_events",
            "probe_dups_dropped",
            "core_stalls",
            "noisy_estimates",
        ):
            assert stats.fault_counts().get(key, 0) > 0, key

    def test_spurious_reason_recorded(self):
        _, stats = _run(FaultPlan(spurious_abort_rate=2e-3))
        reasons = stats.abort_reasons()
        assert reasons.get(AbortReason.SPURIOUS.value, 0) > 0
        assert (
            reasons[AbortReason.SPURIOUS.value]
            == stats.fault_counts()["spurious_aborts"]
        )

    def test_clean_run_has_no_fault_counters(self):
        _, stats = _run(None)
        assert stats.fault_counts() == {}

    def test_reserved_ways_restored_after_drain(self):
        machine, stats = _run(
            FaultPlan(capacity_shrink_prob=0.5, capacity_ways_lost=3)
        )
        assert stats.fault_counts()["capacity_shrinks"] > 0
        # the drain quiesced every transaction, so all pressure is gone
        assert all(m.cache.reserved_ways == 0 for m in machine.mems)

    def test_faults_slow_but_never_corrupt(self):
        """Throughput drops under faults; verification (in _run) and
        invariants still hold — faults cost time, not correctness."""
        _, clean = _run(None)
        _, faulty = _run(FULL_PLAN)
        assert 0 < faulty.ops_completed < clean.ops_completed


class TestNoisyEstimator:
    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            NoisyEstimator(sigma_b=-0.1)

    def test_exact_consumes_no_randomness(self):
        est = NoisyEstimator()
        assert est.exact
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        assert est.age_hat(100, rng) == 100
        assert est.k_hat(5, rng) == 5
        assert est.mu_hat(250.0, rng) == 250.0
        assert rng.bit_generator.state == before

    def test_noise_respects_floors(self):
        est = NoisyEstimator(sigma_b=2.0, sigma_k=2.0, sigma_mu=2.0)
        rng = np.random.default_rng(1)
        for _ in range(200):
            assert est.age_hat(10, rng) >= 0
            assert est.k_hat(2, rng) >= 2
            assert est.mu_hat(1.0, rng) > 0
