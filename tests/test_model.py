"""Unit tests for the Section 4 conflict cost model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.model import ConflictKind, ConflictModel
from repro.errors import InvalidParameterError


class TestConstruction:
    def test_valid(self):
        m = ConflictModel(ConflictKind.REQUESTOR_WINS, 100.0, 3)
        assert m.B == 100.0
        assert m.k == 3
        assert m.waiters == 2

    def test_default_chain_is_two(self):
        m = ConflictModel(ConflictKind.REQUESTOR_ABORTS, 1.0)
        assert m.k == 2

    @pytest.mark.parametrize("bad_B", [0.0, -1.0, math.nan, math.inf])
    def test_bad_B(self, bad_B):
        with pytest.raises(InvalidParameterError):
            ConflictModel(ConflictKind.REQUESTOR_WINS, bad_B, 2)

    @pytest.mark.parametrize("bad_k", [1, 0, -2, 2.5, True])
    def test_bad_k(self, bad_k):
        with pytest.raises(InvalidParameterError):
            ConflictModel(ConflictKind.REQUESTOR_WINS, 10.0, bad_k)

    def test_bad_kind(self):
        with pytest.raises(InvalidParameterError):
            ConflictModel("requestor_wins", 10.0, 2)  # type: ignore[arg-type]

    def test_frozen(self, rw_model):
        with pytest.raises(Exception):
            rw_model.B = 5.0  # type: ignore[misc]

    def test_delay_cap(self):
        m = ConflictModel(ConflictKind.REQUESTOR_WINS, 120.0, 4)
        assert m.delay_cap == pytest.approx(40.0)


class TestRequestorWinsCost:
    """Section 4.1: commit pays (k-1)D, abort pays kx + B."""

    def test_commit_side(self, rw_model):
        assert rw_model.cost(delay=50.0, remaining=30.0) == pytest.approx(30.0)

    def test_abort_side(self, rw_model):
        assert rw_model.cost(delay=30.0, remaining=50.0) == pytest.approx(
            2 * 30.0 + 100.0
        )

    def test_tie_commits(self, rw_model):
        # D <= x commits (Section 4.1's convention)
        assert rw_model.cost(delay=40.0, remaining=40.0) == pytest.approx(40.0)

    def test_zero_delay_always_aborts_positive_remaining(self, rw_model):
        assert rw_model.cost(0.0, 1e-9) == pytest.approx(100.0, abs=1e-6)

    def test_zero_remaining_commits_free(self, rw_model):
        assert rw_model.cost(0.0, 0.0) == 0.0

    def test_chain_commit_scales_with_waiters(self):
        m = ConflictModel(ConflictKind.REQUESTOR_WINS, 100.0, 5)
        assert m.cost(delay=10.0, remaining=7.0) == pytest.approx(4 * 7.0)

    def test_chain_abort(self):
        m = ConflictModel(ConflictKind.REQUESTOR_WINS, 100.0, 5)
        assert m.cost(delay=10.0, remaining=70.0) == pytest.approx(
            5 * 10.0 + 100.0
        )


class TestRequestorAbortsCost:
    """Section 4.2: commit pays (k-1)D, abort pays (k-1)(x + B)."""

    def test_commit_side(self, ra_model):
        assert ra_model.cost(50.0, 30.0) == pytest.approx(30.0)

    def test_abort_side(self, ra_model):
        assert ra_model.cost(30.0, 50.0) == pytest.approx(30.0 + 100.0)

    def test_chain_abort(self):
        m = ConflictModel(ConflictKind.REQUESTOR_ABORTS, 100.0, 4)
        assert m.cost(10.0, 200.0) == pytest.approx(3 * (10.0 + 100.0))

    def test_k2_matches_classic_ski_rental(self, ra_model):
        # renting x days then buying: x + B
        for x, d in [(0, 5), (3, 10), (99, 100)]:
            if d > x:
                assert ra_model.cost(x, d) == pytest.approx(x + 100.0)
            else:
                assert ra_model.cost(x, d) == pytest.approx(d)


class TestOpt:
    def test_small_remaining(self, rw_model):
        assert rw_model.opt(30.0) == pytest.approx(30.0)

    def test_large_remaining_capped_at_B(self, rw_model):
        assert rw_model.opt(1e9) == pytest.approx(100.0)

    def test_chain_opt(self):
        m = ConflictModel(ConflictKind.REQUESTOR_WINS, 100.0, 5)
        assert m.opt(10.0) == pytest.approx(40.0)
        assert m.opt(100.0) == pytest.approx(100.0)

    def test_opt_below_any_cost(self, rw_model, rng):
        for _ in range(200):
            delay = float(rng.random() * 200)
            d = float(rng.random() * 400)
            assert rw_model.opt(d) <= rw_model.cost(delay, d) + 1e-9

    def test_opt_negative_rejected(self, rw_model):
        with pytest.raises(InvalidParameterError):
            rw_model.opt(-1.0)


class TestVectorized:
    def test_cost_vec_matches_scalar(self, rw_model, rng):
        delays = rng.random(500) * 150
        remains = rng.random(500) * 300
        vec = rw_model.cost_vec(delays, remains)
        for i in range(0, 500, 37):
            assert vec[i] == pytest.approx(
                rw_model.cost(float(delays[i]), float(remains[i]))
            )

    def test_cost_vec_ra(self, ra_model, rng):
        delays = rng.random(300) * 150
        remains = rng.random(300) * 300
        vec = ra_model.cost_vec(delays, remains)
        for i in range(0, 300, 41):
            assert vec[i] == pytest.approx(
                ra_model.cost(float(delays[i]), float(remains[i]))
            )

    def test_opt_vec_matches_scalar(self, rw_model, rng):
        remains = rng.random(200) * 400
        vec = rw_model.opt_vec(remains)
        for i in range(0, 200, 23):
            assert vec[i] == pytest.approx(rw_model.opt(float(remains[i])))

    def test_cost_vec_broadcasting(self, rw_model):
        out = rw_model.cost_vec(10.0, np.asarray([5.0, 50.0]))
        assert out[0] == pytest.approx(5.0)
        assert out[1] == pytest.approx(120.0)

    def test_cost_vec_rejects_negative(self, rw_model):
        with pytest.raises(InvalidParameterError):
            rw_model.cost_vec(np.asarray([-1.0]), np.asarray([1.0]))


class TestRatioAndHelpers:
    def test_ratio_at_zero_remaining(self, rw_model):
        # D = 0 commits instantly under any delay -> 0/0 corner = 1
        assert rw_model.ratio(0.0, 0.0) == 1.0
        assert rw_model.ratio(1.0, 0.0) == 1.0

    def test_ratio_regular(self, rw_model):
        # delay 100 (=B), D just above: cost 2*100+100=300, opt=100
        assert rw_model.ratio(100.0, 101.0) == pytest.approx(3.0, rel=1e-2)

    def test_with_abort_cost(self, rw_model):
        m2 = rw_model.with_abort_cost(500.0)
        assert m2.B == 500.0
        assert m2.k == rw_model.k
        assert rw_model.B == 100.0  # original untouched

    def test_with_chain(self, rw_model):
        m2 = rw_model.with_chain(7)
        assert m2.k == 7
        assert m2.kind is rw_model.kind

    def test_describe_mentions_parameters(self, rw_model):
        text = rw_model.describe()
        assert "requestor_wins" in text
        assert "100" in text
