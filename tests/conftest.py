"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import ConflictKind, ConflictModel


@pytest.fixture(autouse=True)
def _no_result_cache(monkeypatch):
    """Keep the CLI's result cache off by default in tests.

    Call-count assertions (retries, resume, keep-going) count actual
    runner invocations; a warm cache would satisfy them without
    running anything.  Cache-specific tests opt back in by deleting
    the variable or passing --cache explicitly.
    """
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def rw_model() -> ConflictModel:
    return ConflictModel(ConflictKind.REQUESTOR_WINS, 100.0, 2)


@pytest.fixture
def ra_model() -> ConflictModel:
    return ConflictModel(ConflictKind.REQUESTOR_ABORTS, 100.0, 2)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.jsonl from the current code "
        "(review the diff like any source change)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running integration test"
    )
