"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import ConflictKind, ConflictModel


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def rw_model() -> ConflictModel:
    return ConflictModel(ConflictKind.REQUESTOR_WINS, 100.0, 2)


@pytest.fixture
def ra_model() -> ConflictModel:
    return ConflictModel(ConflictKind.REQUESTOR_ABORTS, 100.0, 2)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running integration test"
    )
