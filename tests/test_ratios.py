"""Tests for the closed-form ratio/threshold module."""

from __future__ import annotations

import math

import pytest

from repro.core import ratios
from repro.errors import InvalidParameterError


class TestUnconstrained:
    def test_det_rw(self):
        assert ratios.det_rw_ratio(2) == 3.0
        assert ratios.det_rw_ratio(3) == 2.5
        assert ratios.det_rw_ratio(11) == 2.1

    def test_det_ra(self):
        assert ratios.det_ra_ratio(2) == 2.0
        assert ratios.det_ra_ratio(7) == 7.0

    def test_rand_rw_uniform_always_two(self):
        for k in (2, 3, 50):
            assert ratios.rand_rw_uniform_ratio(k) == 2.0

    def test_rand_rw_optimal(self):
        assert ratios.rand_rw_optimal_ratio(2) == 2.0
        assert ratios.rand_rw_optimal_ratio(3) == pytest.approx(9 / 5)

    def test_rand_ra_k2(self):
        assert ratios.rand_ra_ratio(2) == pytest.approx(ratios.E_OVER_EM1)

    def test_rand_ra_grows_linearly_for_large_k(self):
        # E - 1 ~ 1/(k-1) so ratio ~ k
        assert ratios.rand_ra_ratio(100) == pytest.approx(100.5, rel=1e-2)

    def test_randomized_beats_deterministic(self):
        for k in (2, 3, 8):
            assert ratios.rand_rw_optimal_ratio(k) < ratios.det_rw_ratio(k)
            assert ratios.rand_ra_ratio(k) <= ratios.det_ra_ratio(k)

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            ratios.det_rw_ratio(1)


class TestConstrained:
    def test_rw_k2_formula(self):
        B, mu = 100.0, 10.0
        assert ratios.constrained_rw_ratio(B, mu) == pytest.approx(
            1 + mu / (2 * B * ratios.LN4_MINUS_1)
        )

    def test_ra_k2_formula(self):
        B, mu = 100.0, 10.0
        assert ratios.constrained_ra_ratio(B, mu) == pytest.approx(
            1 + mu / (2 * B * (math.e - 2))
        )

    def test_ratio_to_one_as_mu_to_zero(self):
        assert ratios.constrained_rw_ratio(100.0, 1e-9) == pytest.approx(1.0)
        assert ratios.constrained_ra_ratio(100.0, 1e-9) == pytest.approx(1.0)

    def test_thresholds_consistency(self):
        """At the regime threshold the constrained ratio equals the
        unconstrained one — the two regimes meet continuously."""
        B = 100.0
        for k in (2, 3, 5, 9):
            mu_star = B * ratios.rw_mean_regime_threshold(k)
            assert ratios.constrained_rw_ratio(B, mu_star, k) == pytest.approx(
                ratios.rand_rw_optimal_ratio(k), rel=1e-9
            )
            mu_star = B * ratios.ra_mean_regime_threshold(k)
            assert ratios.constrained_ra_ratio(B, mu_star, k) == pytest.approx(
                ratios.rand_ra_ratio(k), rel=1e-9
            )

    def test_rw_threshold_k2(self):
        assert ratios.rw_mean_regime_threshold(2) == pytest.approx(
            2 * (math.log(4) - 1)
        )

    def test_ra_threshold_k2(self):
        assert ratios.ra_mean_regime_threshold(2) == pytest.approx(
            2 * (math.e - 2) / (math.e - 1)
        )


class TestAbortProbability:
    def test_rw_approximation(self):
        for B in (100.0, 1000.0):
            assert ratios.abort_probability_rw(B) == pytest.approx(
                1 - 1.8 / B, abs=0.2 / B
            )

    def test_ra_approximation(self):
        for B in (100.0, 1000.0):
            assert ratios.abort_probability_ra(B) == pytest.approx(
                1 - 2.4 / B, abs=0.2 / B
            )

    def test_ra_less_likely_to_abort(self):
        for B in (10.0, 100.0, 1e5):
            assert ratios.abort_probability_ra(B) < ratios.abort_probability_rw(B)

    def test_k_not_2_rejected(self):
        with pytest.raises(InvalidParameterError):
            ratios.abort_probability_rw(100.0, k=3)


class TestCorollary1Bound:
    def test_zero_waste(self):
        assert ratios.corollary1_bound(0.0) == 1.0

    def test_monotone_below_two(self):
        values = [ratios.corollary1_bound(w) for w in (0.0, 0.5, 1.0, 10.0, 1e6)]
        assert all(a < b for a, b in zip(values, values[1:]))
        assert all(v < 2.0 for v in values)

    def test_limit(self):
        assert ratios.corollary1_bound(1e12) == pytest.approx(2.0)

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            ratios.corollary1_bound(-0.1)
        with pytest.raises(InvalidParameterError):
            ratios.corollary1_bound(math.inf)
