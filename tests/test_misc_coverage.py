"""Coverage of smaller behaviours: workload mixes, multi-seed fig3,
describe/repr surfaces, and continuous-policy grid internals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core._continuous import GRID_POINTS
from repro.core.requestor_wins import MeanConstrainedRW, UniformRW
from repro.distributions import ExponentialLengths, GeometricLengths
from repro.htm import Machine, MachineParams, NoDelay, RandDelay
from repro.workloads import QueueWorkload, StackWorkload


class TestWorkloadMixes:
    def test_push_heavy_grows_stack(self):
        workload = StackWorkload(prefill=0, p_push=0.9)
        machine = Machine(MachineParams(n_cores=4), lambda i: RandDelay())
        machine.load(workload, seed=1)
        machine.run(60_000.0)
        workload.verify(machine)
        pushes = sum(1 for k, _, _ in workload.log if k == "push")
        pops = sum(1 for k, _, v in workload.log if k == "pop" and v > 0)
        assert pushes > pops

    def test_pop_heavy_drains_to_empty(self):
        from repro.workloads.stack import EMPTY

        workload = StackWorkload(prefill=4, p_push=0.05)
        machine = Machine(MachineParams(n_cores=4), lambda i: NoDelay())
        machine.load(workload, seed=2)
        machine.run(60_000.0)
        workload.verify(machine)
        empties = sum(
            1 for k, _, v in workload.log if k == "pop" and v == EMPTY
        )
        assert empties > 0

    def test_enqueue_mix(self):
        workload = QueueWorkload(p_enqueue=0.8)
        machine = Machine(MachineParams(n_cores=4), lambda i: RandDelay())
        machine.load(workload, seed=3)
        machine.run(60_000.0)
        workload.verify(machine)
        enqs = sum(1 for k, _, _ in workload.log if k == "enq")
        deqs = sum(1 for k, _, v in workload.log if k == "deq" and v > 0)
        assert enqs > deqs

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            StackWorkload(p_push=1.5)
        with pytest.raises(ValueError):
            QueueWorkload(p_enqueue=-0.1)

    def test_alternation_is_default(self):
        workload = StackWorkload()
        assert workload.p_push is None


class TestFig3Repeats:
    def test_repeats_add_sem(self):
        from repro.experiments.fig3 import run_fig3
        from repro.workloads import TxAppWorkload

        rows = run_fig3(
            lambda: TxAppWorkload(work_cycles=50),
            threads=(2,),
            policies=("NO_DELAY",),
            horizon=20_000.0,
            seed=1,
            repeats=3,
        )
        assert "sem" in rows[0]
        assert rows[0]["sem"] >= 0.0

    def test_single_repeat_no_sem(self):
        from repro.experiments.fig3 import run_fig3

        rows = run_fig3(
            lambda: StackWorkload(),
            threads=(2,),
            policies=("NO_DELAY",),
            horizon=20_000.0,
            seed=1,
        )
        assert "sem" not in rows[0]

    def test_repeats_validation(self):
        from repro.experiments.fig3 import run_fig3

        with pytest.raises(ValueError):
            run_fig3(lambda: StackWorkload(), repeats=0)


class TestDescribeSurfaces:
    def test_policy_describe(self):
        text = UniformRW(100.0, 2).describe()
        assert "RRW" in text and "100" in text

    def test_distribution_describe(self):
        text = ExponentialLengths(42.0).describe()
        assert "exponential" in text
        assert "42" in text

    def test_distribution_repr(self):
        assert "geometric" in repr(GeometricLengths(10.0))

    def test_model_repr_roundtrip(self, rw_model):
        assert "REQUESTOR_WINS" in repr(rw_model)


class TestContinuousInternals:
    def test_grid_cache_reused(self):
        policy = MeanConstrainedRW(100.0, 10.0)
        a = policy._cdf_grid()
        b = policy._cdf_grid()
        assert a is b
        assert a[0].shape == (GRID_POINTS,)

    def test_grid_endpoints_pinned(self):
        policy = MeanConstrainedRW(100.0, 10.0)
        xs, fs = policy._cdf_grid()
        assert fs[0] == 0.0
        assert fs[-1] == 1.0
        assert np.all(np.diff(fs) >= 0)

    def test_ppf_extremes(self):
        policy = MeanConstrainedRW(100.0, 10.0)
        assert float(policy.ppf(0.0)) == pytest.approx(0.0, abs=1e-6)
        assert float(policy.ppf(1.0)) == pytest.approx(100.0, rel=1e-3)
