"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import math
import time

import pytest

from repro.errors import ExperimentTimeoutError, SimulationError
from repro.sim.engine import Event, EventQueue, Simulator


class TestEventQueue:
    def test_fifo_at_equal_time(self):
        q = EventQueue()
        order = []
        for tag in "abc":
            q.push(Event(5.0, order.append, (tag,)))
        while q:
            evt = q.pop()
            evt.fire()
        assert order == ["a", "b", "c"]

    def test_time_ordering(self):
        q = EventQueue()
        order = []
        for t in (3.0, 1.0, 2.0):
            q.push(Event(t, order.append, (t,)))
        while q:
            q.pop().fire()
        assert order == [1.0, 2.0, 3.0]

    def test_cancel_skipped(self):
        q = EventQueue()
        fired = []
        evt = q.push(Event(1.0, fired.append, (1,)))
        q.push(Event(2.0, fired.append, (2,)))
        q.cancel(evt)
        assert len(q) == 1
        while q:
            q.pop().fire()
        assert fired == [2]

    def test_double_cancel_safe(self):
        q = EventQueue()
        evt = q.push(Event(1.0, lambda: None))
        q.cancel(evt)
        q.cancel(evt)
        assert len(q) == 0

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        evt = q.push(Event(1.0, lambda: None))
        q.push(Event(2.0, lambda: None))
        q.cancel(evt)
        assert q.peek_time() == 2.0

    def test_empty_pop(self):
        assert EventQueue().pop() is None
        assert EventQueue().peek_time() is None

    def test_infinite_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(Event(math.inf, lambda: None))


class TestCompaction:
    """Lazy-deletion bookkeeping: cancelled events must not accumulate
    in the physical heap once they outnumber the live ones."""

    def test_heavy_cancellation_compacts(self):
        q = EventQueue()
        events = [q.push(Event(float(t), lambda: None)) for t in range(500)]
        keep = events[::10]
        for evt in events:
            if evt not in keep:
                q.cancel(evt)
        assert len(q) == len(keep)
        # rebuilds happened along the way; at most one compaction
        # window of corpses (COMPACT_MIN_DEAD) may remain
        assert q.heap_size() <= len(keep) + EventQueue.COMPACT_MIN_DEAD

    def test_small_queues_never_compact(self):
        q = EventQueue()
        events = [q.push(Event(float(t), lambda: None)) for t in range(40)]
        for evt in events:
            q.cancel(evt)
        # below COMPACT_MIN_DEAD: lazy deletion only, no rebuild
        assert len(q) == 0
        assert q.heap_size() == 40
        assert q.pop() is None
        assert q.heap_size() == 0  # popping drains the corpses

    def test_firing_order_survives_compaction(self):
        """Equal-time events must still fire in insertion order after a
        rebuild (the (time, seq) key is preserved by heapify)."""

        def run(compact: bool) -> list[int]:
            q = EventQueue()
            order: list[int] = []
            live = [
                q.push(Event(5.0, order.append, (tag,)))
                for tag in range(200)
            ]
            dead = [q.push(Event(4.0, order.append, (-1,))) for _ in range(300)]
            if compact:
                for evt in dead:
                    q.cancel(evt)  # triggers compaction
                assert (
                    q.heap_size()
                    <= len(live) + EventQueue.COMPACT_MIN_DEAD
                )
            else:
                for evt in dead:
                    evt.cancel()  # mark dead without queue bookkeeping
            while True:
                evt = q.pop()
                if evt is None:
                    return order
                evt.fire()

        assert run(compact=True) == run(compact=False) == list(range(200))

    def test_cancellation_storm_keeps_heap_bounded(self):
        """The grace-timer pattern: schedule + cancel in a loop must not
        grow the physical heap without bound."""
        q = EventQueue()
        anchor = q.push(Event(1e9, lambda: None))
        for t in range(10_000):
            q.cancel(q.push(Event(float(t), lambda: None)))
        assert len(q) == 1
        assert q.heap_size() <= 2 * EventQueue.COMPACT_MIN_DEAD + 2
        assert q.pop() is anchor

    def test_simulator_cancel_compacts(self):
        sim = Simulator()
        keeper = []
        sim.at(50.0, lambda: keeper.append(sim.now))
        for t in range(300):
            sim.cancel(sim.at(float(t), lambda: None))
        assert sim.queue.heap_size() <= EventQueue.COMPACT_MIN_DEAD + 2
        sim.run()
        assert keeper == [50.0]


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.at(5.0, lambda: times.append(sim.now))
        sim.at(2.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.0, 5.0]
        assert sim.now == 5.0

    def test_after_relative(self):
        sim = Simulator()
        seen = []

        def chain():
            seen.append(sim.now)
            if len(seen) < 3:
                sim.after(10.0, chain)

        sim.after(10.0, chain)
        sim.run()
        assert seen == [10.0, 20.0, 30.0]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().after(-1.0, lambda: None)

    def test_until_exclusive(self):
        sim = Simulator()
        fired = []
        sim.at(10.0, lambda: fired.append(1))
        sim.run(until=10.0)
        assert fired == []
        sim.run()  # resume
        assert fired == [1]

    def test_until_advances_clock(self):
        sim = Simulator()
        sim.at(100.0, lambda: None)
        sim.run(until=50.0)
        assert sim.now == 50.0

    def test_max_events(self):
        sim = Simulator()
        count = []

        def tick():
            count.append(1)
            sim.after(1.0, tick)

        sim.after(1.0, tick)
        sim.run(max_events=5)
        assert len(count) == 5

    def test_stop_when(self):
        sim = Simulator()
        count = []

        def tick():
            count.append(1)
            sim.after(1.0, tick)

        sim.after(1.0, tick)
        sim.run(stop_when=lambda: len(count) >= 3)
        assert len(count) == 3

    def test_cancel_via_simulator(self):
        sim = Simulator()
        fired = []
        evt = sim.at(1.0, lambda: fired.append(1))
        sim.cancel(evt)
        sim.run()
        assert fired == []

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.at(float(t), lambda: None)
        sim.run()
        assert sim.events_fired == 5

    def test_not_reentrant(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.at(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_handler_args(self):
        sim = Simulator()
        seen = []
        sim.at(1.0, lambda a, b: seen.append(a + b), 2, 3)
        sim.run()
        assert seen == [5]

    def test_event_profile_disabled_by_default(self):
        sim = Simulator()
        sim.at(1.0, lambda: None, label="x")
        sim.run()
        assert sim.event_profile() == {}

    def test_event_profile_counts_labels(self):
        sim = Simulator(profile=True)
        for t in range(3):
            sim.at(float(t), lambda: None, label="tick")
        sim.at(5.0, lambda: None)  # unlabeled
        sim.run()
        profile = sim.event_profile()
        assert profile["tick"] == 3
        assert profile["<unlabeled>"] == 1

    def test_wall_deadline_expired_raises(self):
        sim = Simulator()
        sim.at(1.0, lambda: None)
        with pytest.raises(ExperimentTimeoutError):
            sim.run(wall_deadline=time.monotonic() - 1.0)

    def test_wall_deadline_far_future_completes(self):
        sim = Simulator()
        fired = []
        for t in range(10):
            sim.at(float(t), lambda: fired.append(1))
        sim.run(wall_deadline=time.monotonic() + 3600.0)
        assert len(fired) == 10

    def test_deterministic_replay(self):
        def build_and_run():
            sim = Simulator()
            log = []
            for t in (3.0, 1.0, 1.0, 2.0):
                sim.at(t, lambda tt=t: log.append((sim.now, tt)))
            sim.run()
            return log

        assert build_and_run() == build_and_run()
