"""Golden-trace regression tests: canonical event streams, byte for byte.

Each case replays a small, fully seeded scenario under an observability
capture and compares the canonical JSONL rendering of its event stream
against a checked-in golden file in ``tests/golden/``.  Because the
serialization is canonical (sorted keys, compact separators), *any*
drift — event ordering, schema fields, simulator timing, policy
decisions — shows up as a byte diff.

When a change is intentional, regenerate the goldens and review the
diff like any other source change::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-golden
"""

from __future__ import annotations

import difflib
import pathlib

import pytest

from repro.distributions import GeometricLengths
from repro.htm import Machine, MachineParams, RandDelay
from repro.obs import capture
from repro.obs.tracebus import jsonl_line
from repro.synthetic import SyntheticHarness
from repro.workloads import CounterWorkload

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"


def render(events) -> str:
    return "".join(jsonl_line(event) + "\n" for event in events)


def fig2_cell_events():
    """One Figure-2 synthetic cell: geometric lengths, B=2000, mu=500."""
    with capture() as cap:
        SyntheticHarness(2000.0, 500.0).run(GeometricLengths(500.0), 4000, 3)
    return cap.events


def fig3_cell_events():
    """One Figure-3 machine cell: 2 cores, randomized policy, counter."""
    with capture() as cap:
        machine = Machine(MachineParams(n_cores=2), lambda i: RandDelay())
        machine.load(CounterWorkload(), seed=3)
        machine.run(12_000.0)
    return cap.events


CASES = {
    "fig2_geometric_cell": fig2_cell_events,
    "fig3_counter_cell": fig3_cell_events,
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_trace_matches_golden(name, request):
    golden = GOLDEN_DIR / f"{name}.jsonl"
    text = render(CASES[name]())
    assert text, f"scenario {name} produced no events"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden.write_text(text)
        pytest.skip(f"golden updated: {golden}")
    assert golden.exists(), (
        f"missing {golden}; generate it with --update-golden"
    )
    expected = golden.read_text()
    if text != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                text.splitlines(),
                fromfile=str(golden),
                tofile="current",
                lineterm="",
                n=1,
            )
        )
        pytest.fail(
            f"trace drifted from golden (intentional? rerun with "
            f"--update-golden and review):\n{diff[:4000]}"
        )


@pytest.mark.parametrize("name", sorted(CASES))
def test_scenarios_are_reproducible(name):
    """The golden scenarios themselves are deterministic run-to-run."""
    assert render(CASES[name]()) == render(CASES[name]())
