"""Pragma-parsing contract: multi-rule disables, whitespace
tolerance, PRG001 hygiene findings for unknown/malformed pragmas, and
parallel lint determinism."""

from __future__ import annotations

from repro.analysis.engine import lint_sources
from repro.parallel.pool import make_pool

SIM = "src/repro/sim/fixture.py"


def hits(result, rule):
    return [f for f in result.findings if f.rule == rule]


class TestMultiRuleDisable:
    def test_two_rules_one_pragma(self):
        src = (
            "import time\nimport numpy as np\n\n\n"
            "def f():\n"
            "    return time.time() + np.random.rand()"
            "  # simlint: disable=DET001,DET003 -- both sanctioned\n"
        )
        result = lint_sources({SIM: src})
        assert hits(result, "DET001") == []
        assert hits(result, "DET003") == []
        assert len(result.suppressed) == 2
        assert all(
            s.reason == "both sanctioned" for s in result.suppressed
        )

    def test_spaces_around_equals_and_commas(self):
        src = (
            "import time\nimport numpy as np\n\n\n"
            "def f():\n"
            "    return time.time() + np.random.rand()"
            "  # simlint: disable = DET001 , DET003 -- spaced\n"
        )
        result = lint_sources({SIM: src})
        assert hits(result, "DET001") == []
        assert hits(result, "DET003") == []
        assert hits(result, "PRG001") == []

    def test_partial_disable_leaves_other_rule(self):
        src = (
            "import time\nimport numpy as np\n\n\n"
            "def f():\n"
            "    return time.time() + np.random.rand()"
            "  # simlint: disable=DET001 -- clock only\n"
        )
        result = lint_sources({SIM: src})
        assert hits(result, "DET001") == []
        (det3,) = hits(result, "DET003")
        assert det3.line == 6


class TestPragmaHygiene:
    def test_unknown_rule_id_warns(self):
        src = (
            "import time\n\n\n"
            "def f():\n"
            "    return time.time()  # simlint: disable=NOPE999 -- typo\n"
        )
        result = lint_sources({SIM: src})
        (finding,) = hits(result, "PRG001")
        assert "NOPE999" in finding.message
        # and the typo'd pragma suppressed nothing
        assert len(hits(result, "DET001")) == 1

    def test_family_prefix_is_not_a_rule_id(self):
        src = (
            "import time\n\n\n"
            "def f():\n"
            "    return time.time()  # simlint: disable=DET -- family\n"
        )
        result = lint_sources({SIM: src})
        (finding,) = hits(result, "PRG001")
        assert "'DET'" in finding.message
        assert len(hits(result, "DET001")) == 1

    def test_malformed_pragma_no_longer_blanket_suppresses(self):
        """``disable DET001`` (no ``=``) used to parse as a blanket
        disable and silently suppress everything on the line."""
        src = (
            "import time\n\n\n"
            "def f():\n"
            "    return time.time()  # simlint: disable DET001 -- oops\n"
        )
        result = lint_sources({SIM: src})
        assert len(hits(result, "PRG001")) == 1
        assert len(hits(result, "DET001")) == 1
        assert result.suppressed == []

    def test_blanket_disable_still_works(self):
        src = (
            "import time\n\n\n"
            "def f():\n"
            "    return time.time()  # simlint: disable -- audited\n"
        )
        result = lint_sources({SIM: src})
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_docstring_mention_is_not_a_pragma(self):
        src = (
            '"""Docs: write ``# simlint: disable=DET001 -- why`` '
            'or even # simlint: disable junk here."""\n\n\n'
            "def f(n):\n"
            "    return n\n"
        )
        result = lint_sources({SIM: src})
        assert result.findings == []

    def test_prg_is_selectable(self):
        src = (
            "import time\n\n\n"
            "def f():\n"
            "    return time.time()  # simlint: disable=NOPE999\n"
        )
        result = lint_sources({SIM: src}, select=["PRG"])
        assert [f.rule for f in result.findings] == ["PRG001"]


class TestParallelLint:
    def _sources(self):
        out = {}
        for i in range(6):
            out[f"src/repro/sim/mod_{i}.py"] = (
                "import time\nimport random\n\n\n"
                f"def f_{i}():\n"
                "    return time.time() + random.random()\n"
            )
        out[SIM] = (
            "import time\n\n\n"
            "def g():\n"
            "    return time.time()  # simlint: disable=DET001 -- ok\n"
        )
        return out

    def test_pool_matches_serial(self):
        serial = lint_sources(self._sources())
        pool = make_pool(2)
        try:
            parallel = lint_sources(self._sources(), pool=pool)
        finally:
            pool.close()
        assert parallel.findings == serial.findings
        assert parallel.suppressed == serial.suppressed
        assert serial.findings  # the fixture actually finds things

    def test_serial_pool_path(self):
        pool = make_pool(1)
        try:
            result = lint_sources(self._sources(), pool=pool)
        finally:
            pool.close()
        assert result.findings == lint_sources(self._sources()).findings
