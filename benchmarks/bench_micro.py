"""Micro-benchmarks: the hot paths, timed properly (multiple rounds).

Unlike the experiment benches (one-shot artifact regeneration), these
use pytest-benchmark's statistics to track the performance of the
library's inner loops — the quantities a profiling pass would optimize:

* policy sampling throughput (vectorized vs per-call),
* the quadrature/expected-cost kernel,
* the DES engine's event dispatch rate,
* HTM machine simulation rate (cycles simulated per second).
"""

from __future__ import annotations

import numpy as np

from repro.core.model import ConflictKind, ConflictModel
from repro.core.requestor_wins import MeanConstrainedRW, UniformRW
from repro.core.verify import expected_cost_curve
from repro.htm import Machine, MachineParams, RandDelay
from repro.sim.engine import Simulator
from repro.workloads import CounterWorkload

B = 1000.0
RW = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)


def test_sample_many_vectorized(benchmark):
    """100k uniform delay draws (closed-form ppf path)."""
    policy = UniformRW(B, 2)
    rng = np.random.default_rng(1)
    out = benchmark(policy.sample_many, 100_000, rng)
    assert out.shape == (100_000,)


def test_sample_many_grid_inversion(benchmark):
    """100k draws through the numeric inverse-CDF grid (log density)."""
    policy = MeanConstrainedRW(B, 100.0)
    rng = np.random.default_rng(1)
    out = benchmark(policy.sample_many, 100_000, rng)
    assert out.shape == (100_000,)


def test_expected_cost_curve_kernel(benchmark):
    """Quadrature of E[cost] over a 512-point adversary grid."""
    policy = MeanConstrainedRW(B, 100.0)
    grid = np.linspace(1.0, B, 512)
    out = benchmark(expected_cost_curve, policy, RW, grid)
    assert out.shape == grid.shape


def test_cost_vec_kernel(benchmark):
    """1M vectorized cost-model evaluations."""
    rng = np.random.default_rng(2)
    delays = rng.random(1_000_000) * B
    remaining = rng.random(1_000_000) * 2 * B
    out = benchmark(RW.cost_vec, delays, remaining)
    assert out.shape == delays.shape


def test_event_dispatch_rate(benchmark):
    """DES kernel: schedule-and-fire 20k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.after(1.0, tick, label="tick")

        sim.after(1.0, tick, label="tick")
        sim.run()
        return count[0]

    assert benchmark(run) == 20_000


def test_htm_simulation_rate(benchmark):
    """Cycles-per-second of the full machine (4 cores, counter)."""

    def run():
        workload = CounterWorkload()
        machine = Machine(MachineParams(n_cores=4), lambda i: RandDelay())
        machine.load(workload, seed=1)
        stats = machine.run(50_000.0)
        workload.verify(machine)
        return stats.ops_completed

    ops = benchmark.pedantic(run, rounds=3, iterations=1)
    assert ops > 100
