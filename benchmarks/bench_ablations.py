"""Ablation benchmarks for the design choices DESIGN.md calls out."""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_abl_delay_cap(benchmark):
    """The B/(k-1) support cap is load-bearing: deviating in either
    direction worsens the competitive ratio."""
    result = run_and_report(benchmark, "abl_delay_cap", quick=False)
    for k in sorted({r["k"] for r in result.rows}):
        rows = [r for r in result.rows if r["k"] == k]
        best = min(rows, key=lambda r: r["ratio"])
        assert best["cap_factor"] == 1.0


def test_abl_hybrid(benchmark):
    """The hybrid resolver picks RA at k=2 and RW for k>=3 and achieves
    the min of the two ratio curves."""
    result = run_and_report(benchmark, "abl_hybrid", quick=False)
    for row in result.rows:
        expected = (
            "requestor_aborts" if row["k"] == 2 else "requestor_wins"
        )
        assert row["hybrid_picks"] == expected
        assert row["hybrid_ratio"] <= min(row["ratio_RW"], row["ratio_RA"]) + 1e-9


def test_abl_mean_error(benchmark):
    """The constrained policy with the exact mean achieves its promised
    ratio; biased estimates degrade gracefully."""
    result = run_and_report(benchmark, "abl_mean_error", quick=False)
    exact = next(r for r in result.rows if r["mu_hat/mu"] == 1.0)
    assert exact["achieved_ratio_at_true_mu"] == min(
        r["achieved_ratio_at_true_mu"] for r in result.rows
    )


def test_abl_wedge(benchmark):
    """Wedge-aware immediate aborts (structurally doomed receivers)
    must not reduce throughput."""
    result = run_and_report(benchmark, "abl_wedge")
    by = {(r["threads"], r["wedge_aware"]): r["ops"] for r in result.rows}
    for threads in sorted({r["threads"] for r in result.rows}):
        assert by[(threads, True)] >= 0.8 * by[(threads, False)]


def test_abl_k_aware(benchmark):
    """Theorem 5/6's B/(k-1) chain scaling, live: the k-aware uniform
    policy must win (or tie) once chains actually form (>= 8 cores)."""
    result = run_and_report(benchmark, "abl_k_aware", quick=False)
    contended = [r for r in result.rows if r["cores"] >= 8]
    assert contended and all(r["k_aware_wins"] for r in contended)


def test_abl_backoff(benchmark):
    """Multiplicative growth needs (logarithmically) fewer attempts than
    additive growth for long transactions."""
    result = run_and_report(benchmark, "abl_backoff", quick=False)
    by = {r["growth"]: r["median_attempts"] for r in result.rows}
    assert by["x2.0 (paper)"] <= by["+B0 additive"]
