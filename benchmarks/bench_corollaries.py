"""Benchmarks for the global guarantees (Corollaries 1 and 2)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_cor1_throughput_competitiveness(benchmark):
    """Sum of running times vs offline optimum under four adversaries x
    two length distributions: every measured ratio within the
    (2w+1)/(w+1) bound."""
    result = run_and_report(benchmark, "cor1")
    assert all(r["within"] for r in result.rows)
    # the bound itself never reaches 2
    assert all(r["bound"] < 2.0 for r in result.rows)


def test_cor2_progress_guarantee(benchmark):
    """Doubling the abort cost after every abort: commit within
    log y + log gamma + log k - log B + 2 attempts w.p. >= 1/2."""
    result = run_and_report(benchmark, "cor2")
    assert all(r["holds_half"] for r in result.rows)
    assert all(r["p_within_bound"] >= 0.5 for r in result.rows)
