"""Shared schema for committed bench artifacts.

Every bench harness (``bench_parallel.py`` → ``BENCH_parallel.json``,
``bench_suite.py`` → ``BENCH_core.json``, ``bench_serve.py`` /
``python -m repro loadgen`` → ``BENCH_serve.json``) validates its
payload against this module **at write time**, so a malformed artifact
fails the producing run loudly instead of silently skewing the perf
trajectory or the CI regression gate.

No external dependency: a field spec is ``(types, required,
predicate)`` and validation is a plain recursive walk.  The same specs
double as the *read*-side check in the CI bench gate and the tests.
"""

from __future__ import annotations

import json
import math
import pathlib

__all__ = [
    "BenchSchemaError",
    "validate_bench_entry",
    "validate_core_payload",
    "validate_parallel_payload",
    "validate_serve_payload",
    "validate_ablate_payload",
    "validate_payload",
    "validate_file",
    "dump_payload",
    "main",
]


class BenchSchemaError(ValueError):
    """A bench payload does not match its declared schema."""


def _fail(path: str, message: str) -> None:
    raise BenchSchemaError(f"{path}: {message}")


def _is_finite_number(value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def _check_fields(obj: dict, spec: dict, path: str) -> None:
    """``spec`` maps field name -> (types, required, predicate|None)."""
    if not isinstance(obj, dict):
        _fail(path, f"expected an object, got {type(obj).__name__}")
    for name, (types, required, predicate) in spec.items():
        if name not in obj:
            if required:
                _fail(path, f"missing required field {name!r}")
            continue
        value = obj[name]
        if not isinstance(value, types) or isinstance(value, bool) != (
            types is bool or (isinstance(types, tuple) and bool in types)
        ):
            _fail(
                path,
                f"field {name!r} has type {type(value).__name__}, "
                f"expected {types}",
            )
        if predicate is not None and not predicate(value):
            _fail(path, f"field {name!r} value {value!r} fails its constraint")
    unknown = set(obj) - set(spec)
    if unknown:
        _fail(path, f"unknown fields {sorted(unknown)}")


#: One named bench inside ``BENCH_core.json``.  ``median_s`` is the
#: median-of-repeats wall clock of the kernel path; ``ops`` is a
#: machine-independent work count (grid cells, events fired);
#: ``baseline_s``/``speedup`` are present when a scalar reference path
#: was timed alongside.
_ENTRY_SPEC = {
    "median_s": ((int, float), True, lambda v: _is_finite_number(v) and v >= 0),
    "repeats": (int, True, lambda v: v >= 1),
    "ops": (int, False, lambda v: v >= 0),
    "baseline_s": (
        (int, float),
        False,
        lambda v: _is_finite_number(v) and v >= 0,
    ),
    "speedup": ((int, float), False, _is_finite_number),
}

_CORE_SPEC = {
    "schema_version": (int, True, lambda v: v == 1),
    "suite": (str, True, lambda v: v == "core"),
    "generated_by": (str, True, None),
    "quick": (bool, True, None),
    "seed": (int, True, None),
    "python": (str, True, None),
    "cpu_count": (int, True, lambda v: v >= 1),
    "benches": (dict, True, lambda v: len(v) > 0),
}

_PARALLEL_SPEC = {
    "experiments": (list, True, lambda v: all(isinstance(e, str) for e in v)),
    "quick": (bool, True, None),
    "seed": (int, True, None),
    "trials": (int, True, lambda v: v >= 1),
    "jobs": (int, True, lambda v: v >= 1),
    "cpu_count": (int, True, lambda v: v >= 1),
    "serial_s": ((int, float), True, _is_finite_number),
    "parallel_s": ((int, float), True, _is_finite_number),
    "speedup": ((int, float), True, _is_finite_number),
    "rows_identical": (bool, True, None),
    "generated_by": (str, True, None),
    # jobs-sweep scaling curve (one entry per worker count, ascending);
    # element shape checked against _SCALING_SPEC
    "scaling": (list, False, lambda v: len(v) > 0),
    # set when the measurement regime is unactionable (e.g. a
    # single-core runner, where "speedup" only measures process
    # overhead)
    "warning": (str, False, lambda v: len(v) > 0),
}

#: One point of the ``scaling`` jobs-sweep inside ``BENCH_parallel.json``.
_SCALING_SPEC = {
    "jobs": (int, True, lambda v: v >= 1),
    "parallel_s": ((int, float), True, _is_finite_number),
    "speedup": ((int, float), True, _is_finite_number),
    "rows_identical": (bool, True, None),
}


def _is_latency_us(value) -> bool:
    return _is_finite_number(value) and value >= 0


def _is_sha256(value) -> bool:
    return len(value) == 64 and all(c in "0123456789abcdef" for c in value)


#: ``BENCH_serve.json`` — the decision-service replay artifact
#: (``python -m repro loadgen`` / ``benchmarks/bench_serve.py``).
#: ``decision_log_sha256`` fingerprints the canonical decision log so
#: the committed artifact itself witnesses the determinism contract:
#: re-running with the payload's seed must reproduce the digest.
#: ``seed`` is -1 when the run used the default seed.
_SERVE_SPEC = {
    "schema_version": (int, True, lambda v: v == 1),
    "suite": (str, True, lambda v: v == "serve"),
    "generated_by": (str, True, None),
    "quick": (bool, True, None),
    "seed": (int, True, None),
    "python": (str, True, None),
    "cpu_count": (int, True, lambda v: v >= 1),
    "requests": (int, True, lambda v: v >= 1),
    "conflicts": (int, True, lambda v: v >= 1),
    "commits": (int, True, lambda v: v >= 0),
    "grants": (int, True, lambda v: v >= 0),
    "aborts": (int, True, lambda v: v >= 0),
    "regime_switches": (int, True, lambda v: v >= 0),
    "clients": (int, True, lambda v: v >= 1),
    "phases": (int, True, lambda v: v >= 1),
    "wall_s": ((int, float), True, lambda v: _is_finite_number(v) and v >= 0),
    "decisions_per_sec": (
        (int, float),
        True,
        lambda v: _is_finite_number(v) and v >= 0,
    ),
    "p50_us": ((int, float), True, _is_latency_us),
    "p99_us": ((int, float), True, _is_latency_us),
    "service_p50_us": ((int, float), False, _is_latency_us),
    "service_p99_us": ((int, float), False, _is_latency_us),
    "decision_log_sha256": (str, True, _is_sha256),
}


#: ``BENCH_ablate.json`` — the strategy-ablation importance ranking
#: (``python -m repro ablate``).  ``seed`` is -1 when the run used the
#: default seed.  ``ranking`` entries are checked against
#: ``_ABLATE_RANK_SPEC`` plus two cross-checks: ranks must be the
#: contiguous sequence 1..N and importance must be non-increasing —
#: a report violating either was assembled wrong, not just measured
#: differently.
_ABLATE_SPEC = {
    "schema_version": (int, True, lambda v: v == 1),
    "suite": (str, True, lambda v: v == "ablate"),
    "generated_by": (str, True, None),
    "quick": (bool, True, None),
    "seed": (int, True, None),
    "workloads": (
        list,
        True,
        lambda v: len(v) > 0 and all(isinstance(w, str) and w for w in v),
    ),
    "replicates": (int, True, lambda v: v >= 1),
    "n_rows": (int, True, lambda v: v >= 0),
    "baseline_config": (
        dict,
        True,
        lambda v: len(v) > 0
        and all(isinstance(x, str) for kv in v.items() for x in kv),
    ),
    "baseline": (dict, True, None),
    "ranking": (list, True, None),
}

#: One flip inside the ``ranking`` list of ``BENCH_ablate.json``.
_ABLATE_RANK_SPEC = {
    "rank": (int, True, lambda v: v >= 1),
    "flip": (str, True, lambda v: len(v) > 0),
    "axis": (str, True, lambda v: len(v) > 0),
    "value": (str, True, lambda v: len(v) > 0),
    "importance": (
        (int, float),
        True,
        lambda v: _is_finite_number(v) and v >= 0,
    ),
    "n_pairs": (int, True, lambda v: v >= 1),
    "metrics": (dict, True, lambda v: len(v) > 0),
}

#: One metric block inside a ranking entry (paired-delta summary).
_ABLATE_METRIC_SPEC = {
    "baseline_mean": ((int, float), True, _is_finite_number),
    "flipped_mean": ((int, float), True, _is_finite_number),
    "delta": ((int, float), True, _is_finite_number),
    "ci_lo": ((int, float), True, _is_finite_number),
    "ci_hi": ((int, float), True, _is_finite_number),
}


def validate_bench_entry(name: str, entry: dict) -> None:
    if not name or not isinstance(name, str):
        _fail("benches", f"bench name must be a non-empty string, got {name!r}")
    _check_fields(entry, _ENTRY_SPEC, f"benches[{name!r}]")
    baseline = entry.get("baseline_s")
    speedup = entry.get("speedup")
    if (baseline is None) != (speedup is None):
        _fail(
            f"benches[{name!r}]",
            "baseline_s and speedup must be present together",
        )


def validate_core_payload(payload: dict) -> dict:
    """Validate a ``BENCH_core.json`` payload; returns it unchanged."""
    _check_fields(payload, _CORE_SPEC, "payload")
    for name, entry in payload["benches"].items():
        validate_bench_entry(name, entry)
    return payload


def validate_parallel_payload(payload: dict) -> dict:
    """Validate a ``BENCH_parallel.json`` payload; returns it unchanged."""
    _check_fields(payload, _PARALLEL_SPEC, "payload")
    for i, entry in enumerate(payload.get("scaling", [])):
        _check_fields(entry, _SCALING_SPEC, f"scaling[{i}]")
    return payload


def validate_serve_payload(payload: dict) -> dict:
    """Validate a ``BENCH_serve.json`` payload; returns it unchanged."""
    _check_fields(payload, _SERVE_SPEC, "payload")
    if payload["conflicts"] + payload["commits"] != payload["requests"]:
        _fail(
            "payload",
            f"conflicts + commits must equal requests "
            f"({payload['conflicts']} + {payload['commits']} != "
            f"{payload['requests']})",
        )
    if payload["grants"] + payload["aborts"] != payload["conflicts"]:
        _fail(
            "payload",
            f"grants + aborts must equal conflicts "
            f"({payload['grants']} + {payload['aborts']} != "
            f"{payload['conflicts']})",
        )
    if payload["p99_us"] < payload["p50_us"]:
        _fail(
            "payload",
            f"p99_us {payload['p99_us']!r} below p50_us "
            f"{payload['p50_us']!r}",
        )
    return payload


def validate_ablate_payload(payload: dict) -> dict:
    """Validate a ``BENCH_ablate.json`` payload; returns it unchanged."""
    _check_fields(payload, _ABLATE_SPEC, "payload")
    for workload, metrics in payload["baseline"].items():
        path = f"baseline[{workload!r}]"
        if not isinstance(metrics, dict) or not metrics:
            _fail(path, "expected a non-empty metric object")
        for name, value in metrics.items():
            if not _is_finite_number(value):
                _fail(path, f"metric {name!r} value {value!r} is not finite")
    previous = None
    for i, entry in enumerate(payload["ranking"]):
        path = f"ranking[{i}]"
        _check_fields(entry, _ABLATE_RANK_SPEC, path)
        if entry["rank"] != i + 1:
            _fail(
                path,
                f"ranks must be contiguous from 1: got {entry['rank']}, "
                f"expected {i + 1}",
            )
        if previous is not None and entry["importance"] > previous:
            _fail(
                path,
                f"importance must be non-increasing: {entry['importance']!r} "
                f"after {previous!r}",
            )
        previous = entry["importance"]
        for name, block in entry["metrics"].items():
            mpath = f"{path}.metrics[{name!r}]"
            _check_fields(block, _ABLATE_METRIC_SPEC, mpath)
            if block["ci_hi"] < block["ci_lo"]:
                _fail(
                    mpath,
                    f"ci_hi {block['ci_hi']!r} below ci_lo {block['ci_lo']!r}",
                )
    return payload


def validate_payload(payload: dict, kind: str) -> dict:
    """Validate by artifact kind: ``"core"``, ``"parallel"``,
    ``"serve"`` or ``"ablate"``."""
    if kind == "core":
        return validate_core_payload(payload)
    if kind == "parallel":
        return validate_parallel_payload(payload)
    if kind == "serve":
        return validate_serve_payload(payload)
    if kind == "ablate":
        return validate_ablate_payload(payload)
    raise BenchSchemaError(f"unknown bench artifact kind {kind!r}")


def dump_payload(payload: dict, kind: str, out: pathlib.Path) -> None:
    """Validate then write the canonical JSON rendering (the only way
    the harnesses persist an artifact)."""
    validate_payload(payload, kind)
    out.write_text(json.dumps(payload, indent=2) + "\n")


def _infer_kind(path: pathlib.Path, payload: dict) -> str:
    """Artifact kind from the ``BENCH_<kind>.json`` name, falling back
    to the in-payload ``suite`` (``BENCH_parallel.json`` has none)."""
    stem = path.stem
    if stem.startswith("BENCH_"):
        return stem[len("BENCH_"):]
    suite = payload.get("suite")
    if isinstance(suite, str):
        return suite
    raise BenchSchemaError(
        f"{path}: cannot infer artifact kind (name is not BENCH_<kind>.json "
        f"and payload has no 'suite' field)"
    )


def validate_file(path: pathlib.Path | str) -> str:
    """Validate one committed artifact file; returns its kind."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise BenchSchemaError(f"{path}: unreadable: {exc}") from exc
    except ValueError as exc:
        raise BenchSchemaError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise BenchSchemaError(f"{path}: top level is not an object")
    kind = _infer_kind(path, payload)
    try:
        validate_payload(payload, kind)
    except BenchSchemaError as exc:
        raise BenchSchemaError(f"{path}: {exc}") from exc
    return kind


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m benchmarks.schema BENCH_*.json`` — the single
    read-side gate CI runs over every committed artifact."""
    import sys

    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: python -m benchmarks.schema BENCH_*.json", file=sys.stderr)
        return 2
    failures = 0
    for raw in paths:
        try:
            kind = validate_file(raw)
        except BenchSchemaError as exc:
            print(f"FAIL {raw}: {exc}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {raw} ({kind})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
