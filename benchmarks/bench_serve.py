"""Decision-service replay throughput, wall clock on the record.

Standalone harness (``python benchmarks/bench_serve.py``): replay the
standard three-regime load-generator schedule through the asyncio
decision service twice with the same seed, check the two canonical
decision logs came out byte-identical (the determinism contract the
serving layer guarantees), and write decisions/sec plus p50/p99
decision latency to ``BENCH_serve.json`` at the repo root — serving
throughput claims belong in version control next to the code that
produced them.

``python -m repro loadgen`` produces the same artifact from the CLI;
this harness exists so the bench suite has a one-command, no-flags
entry point with the repeat-and-diff check built in.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.serve.replay import bench_payload, run_replay

try:  # package import (tests) or sibling import (standalone script)
    from benchmarks import schema as bench_schema
except ImportError:  # pragma: no cover - script-mode fallback
    import schema as bench_schema  # type: ignore[no-redef]

#: Seed used by every benchmark so tables are identical run-to-run.
BENCH_SEED = 2018

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def run_bench(
    *, seed: int = BENCH_SEED, quick: bool = True, clients: int = 8
) -> dict[str, object]:
    """Replay twice with the same seed; return the first run's payload
    after checking the second produced a byte-identical decision log."""
    report = run_replay(seed, clients=clients, quick=quick)
    rerun = run_replay(seed, clients=max(1, clients // 2), quick=quick)
    if report.decision_log != rerun.decision_log:
        raise RuntimeError(
            "decision logs differ between same-seed replays "
            f"({report.decision_log_sha256()} vs "
            f"{rerun.decision_log_sha256()})"
        )
    return bench_payload(report, quick=quick, seed=seed)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seed", type=int, default=BENCH_SEED, help="root RNG seed"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="1M-conflict schedule instead of the quick 10k one",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=8,
        help="concurrent submitter coroutines (default 8)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=_REPO_ROOT / "BENCH_serve.json",
        help="where to write the measurement (default: repo root)",
    )
    args = parser.parse_args(argv)
    payload = run_bench(
        seed=args.seed, quick=not args.full, clients=args.clients
    )
    bench_schema.dump_payload(payload, "serve", args.out)
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
