"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures via
the experiment registry and attaches the rendered table to the
benchmark record (``extra_info``), so ``pytest benchmarks/
--benchmark-only`` both times the regeneration and reports the data the
paper reports.  Each experiment runs once per benchmark (``pedantic``
with one round): the quantity of interest is the artifact, not
microsecond timing stability.
"""

from __future__ import annotations

import pytest

from repro.experiments import render_result, run_experiment

#: Seed used by every benchmark so tables are identical run-to-run.
BENCH_SEED = 2018


def run_and_report(benchmark, exp_id: str, *, quick: bool = True, **overrides):
    """Benchmark one experiment and attach its rendered report."""
    result = benchmark.pedantic(
        lambda: run_experiment(exp_id, quick=quick, seed=BENCH_SEED, **overrides),
        rounds=1,
        iterations=1,
    )
    text = render_result(result)
    benchmark.extra_info["experiment"] = exp_id
    benchmark.extra_info["rows"] = len(result.rows)
    print()
    print(text)
    return result


@pytest.fixture
def seed() -> int:
    return BENCH_SEED
