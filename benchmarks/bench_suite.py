"""Unified core benchmark suite — one entry point, one artifact.

``python benchmarks/bench_suite.py`` (with ``PYTHONPATH=src``) runs the
named core benches — the vectorized policy kernels against their scalar
reference paths, the theorem-verification table, and the DES event
loop — and writes a schema-validated ``BENCH_core.json`` to the repo
root.  Grid-shaped benches time both the batched kernel and the
per-cell scalar path it replaced, so the recorded ``speedup`` field is
the living evidence for the vectorization claims in
``docs/PERFORMANCE.md``.

CI modes::

    bench_suite.py --quick --update-baseline   # refresh BENCH_core.json
    bench_suite.py --quick --check-against BENCH_core.json

The check mode re-runs the suite and fails (exit 1) only when a bench's
wall clock regressed by more than ``--threshold`` (default 2.0x) versus
the committed baseline — wide enough to absorb runner jitter, tight
enough to catch a vectorized path silently falling back to scalar work.
``ops`` counts (grid cells evaluated, events fired) are
machine-independent and must match the baseline exactly.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pathlib
import platform
import statistics
import sys
import time

import numpy as np

try:  # package import (tests) or sibling import (standalone script)
    from benchmarks import schema as bench_schema
except ImportError:  # pragma: no cover - script-mode fallback
    import schema as bench_schema  # type: ignore[no-redef]

from repro.core import kernels, ratios, ski_rental
from repro.core.model import ConflictKind, ConflictModel
from repro.core.requestor_wins import UniformRW
from repro.core.verify import expected_cost
from repro.experiments.tables import run_tab_ratios
from repro.rngutil import seedseq_for
from repro.sim.engine import Simulator
from repro.sim.mc import TrialProgram, run_trials

#: Seed recorded in the payload; the suite itself is deterministic.
BENCH_SEED = 2018

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Wall-clock regression gate: fail only past this slowdown factor.
DEFAULT_THRESHOLD = 2.0


def _median_time(fn, repeats: int) -> float:
    """Median-of-``repeats`` wall clock of ``fn()`` in seconds."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


# ---------------------------------------------------------------------------
# named benches: each returns a schema-shaped entry dict
# ---------------------------------------------------------------------------


def bench_regimes_theory_grid(quick: bool, repeats: int) -> dict:
    """Regime-boundary theory bounds over a (B, µ) grid.

    Kernel path: two batched :func:`kernels.rw_best_ratio` /
    :func:`kernels.ra_best_ratio` calls.  Scalar path: the per-cell
    regime dispatch through :mod:`repro.core.ratios` that the regimes
    experiment used before vectorization.
    """
    n = 512 if quick else 4096
    mu = 500.0
    Bs = mu * np.linspace(0.25, 8.0, n)
    ks = np.full(n, 2, dtype=int)

    def kernel_path():
        kernels.rw_best_ratio(Bs, mu, ks)
        kernels.ra_best_ratio(Bs, mu, ks)

    def scalar_path():
        for B in Bs:
            b = float(B)
            if mu / b < ratios.rw_mean_regime_threshold(2):
                ratios.constrained_rw_ratio(b, mu, 2)
            else:
                ratios.rand_rw_optimal_ratio(2)
            if mu / b < ratios.ra_mean_regime_threshold(2):
                ratios.constrained_ra_ratio(b, mu, 2)
            else:
                ratios.rand_ra_ratio(2)

    median_s = _median_time(kernel_path, repeats)
    baseline_s = _median_time(scalar_path, max(1, repeats // 3))
    return {
        "median_s": round(median_s, 6),
        "repeats": repeats,
        "ops": 2 * n,
        "baseline_s": round(baseline_s, 6),
        "speedup": round(baseline_s / max(median_s, 1e-12), 2),
    }


def bench_fig2_expectation_row(quick: bool, repeats: int) -> dict:
    """Expected-cost curve of the uniform RW policy over a D row.

    Kernel path: one :func:`kernels.expected_cost_grid` call (one
    quadrature shared by the whole row).  Scalar path: per-point
    :func:`repro.core.verify.expected_cost`, which rebuilds the full
    8193-point quadrature for every D — the shape of work the fig2 /
    verify consumers issued before the batched engine existed.
    """
    n = 64 if quick else 512
    B, k = 2000.0, 2
    d = np.linspace(10.0, 4.0 * B, n)

    def kernel_path():
        kernels.expected_cost_grid(
            ConflictKind.REQUESTOR_WINS, "uniform_rw", B, k, d
        )

    policy = UniformRW(B)
    model = ConflictModel(ConflictKind.REQUESTOR_WINS, B=B, k=k)

    def scalar_path():
        for di in d:
            expected_cost(policy, model, float(di))

    median_s = _median_time(kernel_path, repeats)
    baseline_s = _median_time(scalar_path, max(1, repeats // 3))
    return {
        "median_s": round(median_s, 6),
        "repeats": repeats,
        "ops": n,
        "baseline_s": round(baseline_s, 6),
        "speedup": round(baseline_s / max(median_s, 1e-12), 2),
    }


def bench_ski_rental_grid(quick: bool, repeats: int) -> dict:
    """Randomized ski-rental expectation over a (B, days) grid.

    Kernel path hoists the Karlin pmf per unique B; scalar path calls
    :func:`repro.core.ski_rental.expected_cost_randomized` per cell.
    """
    n_days = 64 if quick else 256
    B_vals = (8, 32, 128)
    Bs = np.repeat(B_vals, n_days)
    days = np.tile(np.arange(1, n_days + 1), len(B_vals))

    def kernel_path():
        kernels.ski_expected_cost_randomized(Bs, days)

    def scalar_path():
        for b, d in zip(Bs, days):
            ski_rental.expected_cost_randomized(int(b), int(d))

    median_s = _median_time(kernel_path, repeats)
    baseline_s = _median_time(scalar_path, max(1, repeats // 3))
    return {
        "median_s": round(median_s, 6),
        "repeats": repeats,
        "ops": int(Bs.size),
        "baseline_s": round(baseline_s, 6),
        "speedup": round(baseline_s / max(median_s, 1e-12), 2),
    }


def bench_tab_ratios(quick: bool, repeats: int) -> dict:
    """End-to-end theorem-verification table (kernel-backed path only:
    the sup-ratio adversary search over the whole (B, k) grid)."""
    kwargs = (
        dict(B_values=(200.0,), k_values=(2, 4), grid=512)
        if quick
        else dict(B_values=(50.0, 200.0), k_values=(2, 4), grid=2048)
    )
    n_rows = len(run_tab_ratios(**kwargs))
    median_s = _median_time(lambda: run_tab_ratios(**kwargs), repeats)
    return {
        "median_s": round(median_s, 6),
        "repeats": repeats,
        "ops": n_rows,
    }


def bench_des_event_loop(quick: bool, repeats: int) -> dict:
    """DES hot path: a self-rescheduling handler chain through the
    slotted event records and the hoisted run loop.  ``ops`` is the
    exact number of events fired — machine-independent by contract."""
    n_events = 20_000 if quick else 200_000

    def run_chain():
        sim = Simulator()

        def tick():
            if sim.events_fired < n_events:
                sim.after(1.0, tick, label="tick")

        sim.after(0.0, tick, label="tick")
        sim.run()
        if sim.events_fired != n_events:
            raise RuntimeError(
                f"DES bench fired {sim.events_fired}, expected {n_events}"
            )

    median_s = _median_time(run_chain, repeats)
    return {
        "median_s": round(median_s, 6),
        "repeats": repeats,
        "ops": n_events,
    }


def _progress_program(y: float, gamma: int, **kwargs) -> TrialProgram:
    """The Corollary 2 experiment shape: gamma conflicts per execution,
    evenly spread over a transaction of running time y."""
    conflicts = tuple(
        (y * (1.0 - (i + 0.5) / gamma) + 1.0, 2) for i in range(gamma)
    )
    return TrialProgram(rho=y, conflicts=conflicts, k=2, B0=64.0, **kwargs)


def bench_mc_cor2_trials(quick: bool, repeats: int) -> dict:
    """Corollary 2 trials through the batched SoA Monte-Carlo engine.

    Batched path: ``repro.sim.mc`` lockstep rounds (one array op per
    conflict slot per attempt).  Scalar path: the golden reference —
    per-trial ``TimedArena.run_transaction`` + ``BackoffPolicy`` over
    the identical draw layout (bit-identical rows by contract).
    """
    n = 2000 if quick else 20000
    program = _progress_program(4000.0, 6, factor=2.0)
    root = seedseq_for(BENCH_SEED, "bench", "mc_cor2")

    def batched_path():
        run_trials(program, n, seed=root, engine="batch")

    def scalar_path():
        run_trials(program, n, seed=root, engine="scalar")

    median_s = _median_time(batched_path, repeats)
    baseline_s = _median_time(scalar_path, max(1, repeats // 3))
    return {
        "median_s": round(median_s, 6),
        "repeats": repeats,
        "ops": n,
        "baseline_s": round(baseline_s, 6),
        "speedup": round(baseline_s / max(median_s, 1e-12), 2),
    }


def bench_mc_ablation_grid(quick: bool, repeats: int) -> dict:
    """The backoff-ablation grid (4 growth variants) through the batched
    engine vs the scalar golden reference — the ``run_abl_backoff``
    shape at bench size."""
    n = 800 if quick else 8000
    variants = (
        dict(factor=2.0),
        dict(factor=1.5),
        dict(factor=1.0, increment=64.0),
        dict(factor=1.0, increment=256.0),
    )
    programs = [_progress_program(2000.0, 3, **kw) for kw in variants]
    roots = [
        seedseq_for(BENCH_SEED, "bench", "mc_abl", i)
        for i in range(len(programs))
    ]

    def grid(engine: str):
        for program, root in zip(programs, roots):
            run_trials(program, n, seed=root, engine=engine)

    median_s = _median_time(lambda: grid("batch"), repeats)
    baseline_s = _median_time(lambda: grid("scalar"), max(1, repeats // 3))
    return {
        "median_s": round(median_s, 6),
        "repeats": repeats,
        "ops": n * len(programs),
        "baseline_s": round(baseline_s, 6),
        "speedup": round(baseline_s / max(median_s, 1e-12), 2),
    }


#: Registry: name -> callable(quick, repeats) -> entry dict.
BENCHES = {
    "regimes_theory_grid": bench_regimes_theory_grid,
    "fig2_expectation_row": bench_fig2_expectation_row,
    "ski_rental_grid": bench_ski_rental_grid,
    "tab_ratios": bench_tab_ratios,
    "des_event_loop": bench_des_event_loop,
    "mc_cor2_trials": bench_mc_cor2_trials,
    "mc_ablation_grid": bench_mc_ablation_grid,
}


def run_suite(*, quick: bool, repeats: int = 5) -> dict:
    """Run every named bench; return the schema-shaped payload."""
    benches = {}
    for name, fn in BENCHES.items():
        benches[name] = fn(quick, repeats)
        print(f"  {name}: {json.dumps(benches[name])}", file=sys.stderr)
    payload = {
        "schema_version": 1,
        "suite": "core",
        "generated_by": "benchmarks/bench_suite.py",
        "quick": quick,
        "seed": BENCH_SEED,
        "python": platform.python_version(),
        "cpu_count": multiprocessing.cpu_count(),
        "benches": benches,
    }
    return bench_schema.validate_core_payload(payload)


def compare_to_baseline(
    current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Regression check; returns a list of failure messages (empty = pass).

    Wall clock fails only past ``threshold``x the committed baseline
    (absorbs runner variance); ``ops`` counts must match exactly; a
    bench missing from the current run fails (a silently dropped bench
    is how a regression hides).
    """
    bench_schema.validate_core_payload(baseline)
    bench_schema.validate_core_payload(current)
    failures = []
    for name, base in baseline["benches"].items():
        cur = current["benches"].get(name)
        if cur is None:
            failures.append(f"{name}: present in baseline but not in this run")
            continue
        if "ops" in base and cur.get("ops") != base["ops"]:
            failures.append(
                f"{name}: ops changed {base['ops']} -> {cur.get('ops')} "
                f"(work count must be updated with --update-baseline)"
            )
        base_s = base["median_s"]
        if base_s > 0 and cur["median_s"] > threshold * base_s:
            failures.append(
                f"{name}: median {cur['median_s']:.6f}s is "
                f"{cur['median_s'] / base_s:.2f}x the baseline "
                f"{base_s:.6f}s (threshold {threshold:.1f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized grids (the committed baseline is quick-mode)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timing repeats per bench; the median is recorded",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="write the payload to this path (schema-validated)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the payload to the committed BENCH_core.json",
    )
    parser.add_argument(
        "--check-against",
        type=pathlib.Path,
        default=None,
        metavar="BASELINE",
        help="compare against a committed BENCH_core.json; exit 1 on "
        "a wall-clock regression beyond --threshold or an ops mismatch",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="slowdown factor that fails the check (default: 2.0)",
    )
    args = parser.parse_args(argv)

    payload = run_suite(quick=args.quick, repeats=args.repeats)
    print(json.dumps(payload, indent=2))

    out = args.out
    if args.update_baseline:
        out = _REPO_ROOT / "BENCH_core.json"
    if out is not None:
        bench_schema.dump_payload(payload, "core", out)
        print(f"wrote {out}", file=sys.stderr)

    if args.check_against is not None:
        baseline = json.loads(args.check_against.read_text())
        failures = compare_to_baseline(payload, baseline, args.threshold)
        if failures:
            for line in failures:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 1
        print(
            f"bench gate passed: no bench beyond {args.threshold:.1f}x "
            f"of {args.check_against}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
