"""Benchmarks regenerating the analysis tables (Theorems 1-6 ratios and
the Section 5.3 abort probabilities)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_tab_ratios(benchmark):
    """Every closed-form competitive ratio must match the numeric
    (quadrature + adversary-grid) evaluation."""
    result = run_and_report(benchmark, "tab_ratios")
    worst = max(r["rel_err"] for r in result.rows)
    assert worst < 5e-3, f"worst closed-form/numeric mismatch {worst:.2e}"


def test_tab_ratios_full_grid(benchmark):
    """Full B x k grid (the 'table' as published)."""
    result = run_and_report(benchmark, "tab_ratios", quick=False)
    worst = max(r["rel_err"] for r in result.rows)
    assert worst < 5e-3


def test_tab_abort_prob(benchmark):
    result = run_and_report(benchmark, "tab_abort_prob", quick=False)
    for row in result.rows:
        assert row["RA_less_likely"]
        assert abs(row["P_abort_RW"] - row["paper_RW"]) < 0.5 / row["B"]
        assert abs(row["P_abort_RA"] - row["paper_RA"]) < 0.5 / row["B"]
