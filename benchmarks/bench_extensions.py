"""Benchmarks for the extension experiments (beyond the paper's
artifacts): resolution strategies in the HTM, extension workloads, and
the moment-constrained adversary machinery."""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_abl_htm_resolution(benchmark):
    """RW vs RA vs hybrid vs adaptive vs the global-knowledge Greedy CM
    — the local optimal policies must be competitive with (here: beat)
    the global-knowledge baseline, the paper's closing 'surprising'
    observation."""
    result = run_and_report(benchmark, "abl_htm_resolution", quick=False)
    for workload in {r["workload"] for r in result.rows}:
        for threads in {r["threads"] for r in result.rows}:
            rows = {
                r["resolution"]: r["ops"]
                for r in result.rows
                if r["workload"] == workload and r["threads"] == threads
            }
            best_local = max(
                rows["RW (DELAY_RAND)"], rows["RA (NACK)"], rows["HYBRID"]
            )
            assert best_local >= 0.9 * rows["GREEDY_CM (global)"]


def test_ext_bank(benchmark):
    """Bank workload sweep (conservation + audit isolation verified
    inside the runner)."""
    result = run_and_report(benchmark, "ext_bank")
    assert all(r["ops"] > 0 for r in result.rows)


def test_ext_listset(benchmark):
    """List-set sweep; delay policies must beat NO_DELAY at 8 threads
    (traversal read sets make graces profitable)."""
    result = run_and_report(benchmark, "ext_listset")
    at8 = {r["policy"]: r["ops"] for r in result.rows if r["threads"] == 8}
    best_delay = max(at8["DELAY_RAND"], at8["DELAY_RA"], at8["DELAY_HYBRID"])
    assert best_delay >= at8["NO_DELAY"] * 0.95


def test_ext_chains(benchmark):
    """Theory vs Monte-Carlo across chain sizes: the hybrid must always
    sit on the winner's curve."""
    result = run_and_report(benchmark, "ext_chains", quick=False)
    for row in result.rows:
        if row["strategy"] == "HYBRID picks":
            assert row["pick"] == row["mc_winner"]
        elif row["strategy"] in ("RW", "RA"):
            assert abs(row["numeric_ratio"] - row["closed_ratio"]) < 5e-3
            assert abs(row["mc_cost_vs_OPT"] - row["closed_ratio"]) < 0.05


def test_ext_throughput(benchmark):
    """Time-resolved arena: under the paper's per-attempt adversary the
    delay policies beat immediate abort on commits and on mean Gamma."""
    result = run_and_report(benchmark, "ext_throughput", quick=False)
    per_attempt = {
        r["policy"]: r
        for r in result.rows
        if r["adversary"] == "per_attempt"
    }
    assert (
        per_attempt["RRW (uniform)"]["commits"]
        > per_attempt["NO_DELAY"]["commits"]
    )
    assert (
        per_attempt["RRW (uniform)"]["mean_gamma"]
        < per_attempt["NO_DELAY"]["mean_gamma"]
    )


def test_abl_sensitivity(benchmark):
    """The delay-vs-NO_DELAY ordering must hold over the whole
    calibration grid (DESIGN.md §5b.5)."""
    result = run_and_report(benchmark, "abl_sensitivity")
    assert all(r["delay_wins"] for r in result.rows)


def test_ext_regimes(benchmark):
    """The continuous B/mu curve behind Figures 2a/2b: DET's plateau at
    high B/mu, the RA family's win at low B/mu."""
    result = run_and_report(benchmark, "ext_regimes", quick=False)
    by_ratio = {r["B/mu"]: r for r in result.rows}
    assert by_ratio[8.0]["best"] == "DET"
    assert by_ratio[0.25]["best"].startswith("RRA")
    # DET monotone improvement with B/mu
    dets = [by_ratio[k]["DET"] for k in sorted(by_ratio)]
    assert dets == sorted(dets, reverse=True)


def test_moment_constrained_lp(benchmark):
    """Mean+variance constrained adversary LP: timing + consistency with
    the mean-only concave envelope."""
    import numpy as np

    from repro.core.model import ConflictKind, ConflictModel
    from repro.core.moments import MomentConstraint, moment_constrained_ratio
    from repro.core.requestor_wins import MeanConstrainedRW
    from repro.core.verify import constrained_competitive_ratio

    B = 500.0
    model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)
    policy = MeanConstrainedRW(B, 50.0)

    def run():
        return moment_constrained_ratio(
            policy, model, [MomentConstraint(1, 50.0)], grid=1024
        )

    lp_value = benchmark.pedantic(run, rounds=1, iterations=1)
    envelope = constrained_competitive_ratio(policy, model, 50.0).ratio
    assert np.isclose(lp_value, envelope, rtol=5e-3)
    print(f"\nLP={lp_value:.5f} envelope={envelope:.5f}")
