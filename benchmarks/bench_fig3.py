"""Benchmarks regenerating Figure 3 (HTM throughput vs threads).

Quick mode sweeps threads (1, 4, 8); pass ``--full`` behaviour by
editing the registry call if you want the paper's full 1..18 axis (the
CLI ``python -m repro fig3_stack`` runs it full-size).

Shape assertions follow Section 8.2's prose:

* stack/queue: the hand-tuned delay does predictably well and the
  online policies follow it; NO_DELAY trails under contention;
* transactional app: delay policies improve on NO_DELAY;
* bimodal app: hand-tuning loses its edge (unpredictable lengths) —
  NO_DELAY and DELAY_RAND are the top performers.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def _tput(rows, threads, policy):
    return next(
        r["ops_per_sec"]
        for r in rows
        if r["threads"] == threads and r["policy"] == policy
    )


def test_fig3_stack(benchmark):
    result = run_and_report(benchmark, "fig3_stack")
    # under contention (8 threads) hand-tuning >= NO_DELAY
    assert _tput(result.rows, 8, "DELAY_TUNED") >= 0.9 * _tput(
        result.rows, 8, "NO_DELAY"
    )
    # uncontended (1 thread): all policies within noise of each other
    singles = [
        _tput(result.rows, 1, p)
        for p in ("NO_DELAY", "DELAY_TUNED", "DELAY_DET", "DELAY_RAND")
    ]
    assert max(singles) / min(singles) < 1.05


def test_fig3_queue(benchmark):
    result = run_and_report(benchmark, "fig3_queue")
    assert _tput(result.rows, 8, "DELAY_TUNED") > _tput(
        result.rows, 8, "NO_DELAY"
    )
    assert _tput(result.rows, 8, "DELAY_RAND") > _tput(
        result.rows, 8, "NO_DELAY"
    )


def test_fig3_txapp(benchmark):
    result = run_and_report(benchmark, "fig3_txapp")
    assert _tput(result.rows, 8, "DELAY_RAND") > 0.9 * _tput(
        result.rows, 8, "NO_DELAY"
    )


def test_fig3_bimodal(benchmark):
    result = run_and_report(benchmark, "fig3_bimodal")
    # hand-tuning must NOT dominate here (lengths unpredictable)
    tuned = _tput(result.rows, 8, "DELAY_TUNED")
    best_other = max(
        _tput(result.rows, 8, p)
        for p in ("NO_DELAY", "DELAY_RAND", "DELAY_DET")
    )
    assert best_other >= 0.9 * tuned
