"""Benchmarks regenerating Figure 2 (synthetic average costs).

Each bench prints the per-(distribution, policy) mean-cost table and
asserts the published qualitative shape.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_and_report


def _by(rows):
    return {(r["distribution"], r["policy"]): r["mean_cost"] for r in rows}


def test_fig2a_high_fixed_cost(benchmark):
    """B=2000, mu=500: DET near OPT; constrained beats unconstrained;
    RRW ~ 2x OPT and RRA ~ e/(e-1) x OPT on every distribution."""
    result = run_and_report(benchmark, "fig2a")
    costs = _by(result.rows)
    for dist in ("geometric", "normal", "uniform", "exponential", "poisson"):
        assert costs[(dist, "RRW(mu)")] <= costs[(dist, "RRW")]
        assert costs[(dist, "RRA(mu)")] <= costs[(dist, "RRA")]
        assert costs[(dist, "OPT")] <= costs[(dist, "DET")]
    # the unconstrained ratios materialize on the near-worst-case dists
    ratio_rrw = costs[("uniform", "RRW")] / costs[("uniform", "OPT")]
    assert 1.5 < ratio_rrw <= 2.05


def test_fig2b_low_fixed_cost(benchmark):
    """B=200 < mu=500: DET notably worse; RA beats RW throughout."""
    result = run_and_report(benchmark, "fig2b")
    costs = _by(result.rows)
    for dist in ("uniform", "exponential"):
        assert costs[(dist, "RRA")] < costs[(dist, "RRW")]
        assert costs[(dist, "DET")] > costs[(dist, "OPT")] * 1.2


def test_fig2c_worst_case_for_det(benchmark):
    """Adversarial remaining times: DET pays 3x OPT (Theorem 4's lower
    bound), the randomized policies keep their ratios."""
    result = run_and_report(benchmark, "fig2c")
    ratios = {r["policy"]: r["vs_OPT"] for r in result.rows}
    assert ratios["DET"] == math.inf or abs(ratios["DET"] - 3.0) < 0.05
    assert abs(ratios["RRW"] - 2.0) < 0.1
    assert abs(ratios["RRA"] - math.e / (math.e - 1)) < 0.1
