"""Serial vs parallel experiment execution, wall clock on the record.

Unlike the pytest-benchmark files next to it, this is a standalone
harness (``python benchmarks/bench_parallel.py``): it runs the same
experiment batch through the serial path and through
:class:`repro.parallel.ParallelExecutor`, checks the rows came out
identical (the determinism contract the parallel layer guarantees),
and writes the measurement to ``BENCH_parallel.json`` at the repo
root — machine speedup claims belong in version control next to the
code that produced them.

Speedup scales with physical cores; the payload records a full
``scaling`` jobs-sweep (jobs in {1, 2, 4} by default) next to the
headline ``--jobs`` point.  On a single-core runner the numbers
honestly come out ~1x (process startup is pure overhead there), and
the payload carries an explicit ``warning`` field in that regime so
the artifact cannot be misread as a scaling measurement.  The cache is
left off on both sides so both paths do the full computation.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pathlib
import sys
import time

from repro.experiments import run_experiment
from repro.parallel import ParallelExecutor

try:  # package import (tests) or sibling import (standalone script)
    from benchmarks import schema as bench_schema
except ImportError:  # pragma: no cover - script-mode fallback
    import schema as bench_schema  # type: ignore[no-redef]

#: Seed used by every benchmark so tables are identical run-to-run.
BENCH_SEED = 2018

#: The batch: Monte-Carlo heavy experiments that shard well.
DEFAULT_EXPERIMENTS = ("fig2a", "fig2b", "fig2c", "ext_regimes")

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _rows_of(results) -> list:
    return [r.rows for r in results]


#: Worker counts swept for the ``scaling`` curve (the headline
#: ``--jobs`` point is added to the sweep if it is not already in it).
SCALING_JOBS = (1, 2, 4)


def run_bench(
    *,
    jobs: int,
    trials: int,
    experiments: tuple[str, ...] = DEFAULT_EXPERIMENTS,
    scaling_jobs: tuple[int, ...] = SCALING_JOBS,
) -> dict[str, object]:
    """Time the batch serially and over the ``scaling_jobs`` sweep;
    return the payload (headline ``parallel_s``/``speedup`` are the
    ``--jobs`` point of the sweep)."""
    overrides = {"trials": trials}

    start = time.perf_counter()
    serial = [
        run_experiment(exp_id, quick=True, seed=BENCH_SEED, **overrides)
        for exp_id in experiments
    ]
    serial_s = time.perf_counter() - start
    serial_rows = _rows_of(serial)

    scaling: list[dict[str, object]] = []
    headline: dict[str, object] | None = None
    for n_jobs in sorted(set(scaling_jobs) | {jobs}):
        executor = ParallelExecutor(
            n_jobs, quick=True, seed=BENCH_SEED, overrides=overrides
        )
        start = time.perf_counter()
        outcomes = executor.run(list(experiments))
        parallel_s = time.perf_counter() - start
        failed = [o.exp_id for o in outcomes if not o.ok]
        if failed:
            raise RuntimeError(
                f"parallel run (jobs={n_jobs}) failed for: {', '.join(failed)}"
            )
        point = {
            "jobs": n_jobs,
            "parallel_s": round(parallel_s, 3),
            "speedup": round(serial_s / parallel_s, 3),
            "rows_identical": serial_rows
            == _rows_of([o.result for o in outcomes]),
        }
        scaling.append(point)
        if n_jobs == jobs:
            headline = point

    assert headline is not None  # jobs is always in the sweep
    payload: dict[str, object] = {
        "experiments": list(experiments),
        "quick": True,
        "seed": BENCH_SEED,
        "trials": trials,
        "jobs": jobs,
        "cpu_count": multiprocessing.cpu_count(),
        "serial_s": round(serial_s, 3),
        "parallel_s": headline["parallel_s"],
        "speedup": headline["speedup"],
        "rows_identical": all(p["rows_identical"] for p in scaling),
        "scaling": scaling,
    }
    if multiprocessing.cpu_count() == 1:
        payload["warning"] = (
            "cpu_count == 1: parallel 'speedup' on this runner measures "
            "process overhead, not scaling; read the scaling curve on a "
            "multi-core machine before drawing conclusions"
        )
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=min(4, multiprocessing.cpu_count()),
        help="worker processes for the parallel side (default: min(4, cores))",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=2_000_000,
        help="Monte-Carlo trials per experiment (quick-mode override)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=_REPO_ROOT / "BENCH_parallel.json",
        help="where to write the measurement (default: repo root)",
    )
    args = parser.parse_args(argv)
    payload = run_bench(jobs=args.jobs, trials=args.trials)
    payload["generated_by"] = "benchmarks/bench_parallel.py"
    bench_schema.dump_payload(payload, "parallel", args.out)
    print(json.dumps(payload, indent=2))
    if not payload["rows_identical"]:
        print("ERROR: serial and parallel rows differ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
