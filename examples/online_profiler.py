"""Closing the profiler loop: adaptive mean-constrained grace periods.

Section 5.2 motivates the mean-constrained policies with a profiler
that records the empirical mean of successful executions.  Here the
profiler runs *inside* the machine: `AdaptiveDelay` starts out as the
unconstrained uniform optimum and, as commits accumulate, switches to
the Theorem 5/6 mean-constrained densities built from the live estimate.

The example traces the estimate's convergence and compares end-to-end
throughput against the static policies.

Run:  python examples/online_profiler.py
"""

from __future__ import annotations

from repro import Machine, MachineParams
from repro.experiments.report import render_table
from repro.htm import NoDelay, RandDelay, TunedDelay
from repro.htm.profiler import AdaptiveDelay, CommitProfiler
from repro.workloads import TxAppWorkload


def run_adaptive(n_cores: int = 8, horizon: float = 300_000.0):
    profiler = CommitProfiler()
    machine = Machine(
        MachineParams(n_cores=n_cores), lambda i: AdaptiveDelay(profiler)
    )
    machine.commit_observers.append(profiler.observe_commit)
    workload = TxAppWorkload(work_cycles=100)
    machine.load(workload, seed=11)

    # sample the estimate as the run progresses
    checkpoints = []

    def snapshot(at):
        checkpoints.append(
            {
                "cycles": int(at),
                "commits": profiler.n,
                "mu_hat": round(profiler.mu_estimate(), 1)
                if profiler.n
                else float("nan"),
            }
        )

    for at in (5_000.0, 25_000.0, 100_000.0, horizon - 1):
        machine.sim.at(at, snapshot, at)
    stats = machine.run(horizon)
    workload.verify(machine)
    return stats, checkpoints


def run_static(factory, n_cores: int = 8, horizon: float = 300_000.0):
    machine = Machine(MachineParams(n_cores=n_cores), factory)
    workload = TxAppWorkload(work_cycles=100)
    machine.load(workload, seed=11)
    stats = machine.run(horizon)
    workload.verify(machine)
    return stats


def main() -> None:
    stats_adaptive, checkpoints = run_adaptive()
    print("profiler convergence:")
    print(render_table(checkpoints))
    print()

    params = MachineParams(n_cores=8)
    tuned = TxAppWorkload(work_cycles=100).tuned_delay_cycles(params)
    rows = [
        {
            "policy": "ADAPTIVE (online mu)",
            "ops": stats_adaptive.ops_completed,
            "abort_rate": round(stats_adaptive.abort_rate, 3),
        }
    ]
    for name, factory in [
        ("NO_DELAY", lambda i: NoDelay()),
        ("DELAY_RAND (no mu)", lambda i: RandDelay()),
        (f"DELAY_TUNED ({tuned} cyc, offline)", lambda i: TunedDelay(tuned)),
    ]:
        stats = run_static(factory)
        rows.append(
            {
                "policy": name,
                "ops": stats.ops_completed,
                "abort_rate": round(stats.abort_rate, 3),
            }
        )
    print(render_table(rows, title="transactional app, 8 cores, 300k cycles"))
    print(
        "\nthe adaptive policy needs no offline tuning pass and lands in "
        "the same band\nas the hand-tuned delay once its estimate converges."
    )


if __name__ == "__main__":
    main()
