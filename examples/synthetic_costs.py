"""Figure 2-style synthetic cost comparison on custom parameters.

Sweeps the six Figure 2 strategies over the five paper distributions at
a B/µ point of your choosing, printing mean conflict costs and an ASCII
sketch of the bars.

Run:  python examples/synthetic_costs.py [B] [mu]
"""

from __future__ import annotations

import sys

from repro import SyntheticHarness, get_distribution
from repro.experiments.report import ascii_bars, render_table


def main(B: float = 800.0, mu: float = 500.0, trials: int = 100_000) -> None:
    print(f"synthetic testbed: B={B:g}, mu={mu:g}, {trials:,} trials/dist\n")
    harness = SyntheticHarness(B, mu)
    rows = []
    for name in ("geometric", "normal", "uniform", "exponential", "poisson"):
        dist = get_distribution(name, mu)
        result = harness.run(dist, trials, rng=42)
        for label, acc in result.stats.items():
            rows.append(
                {
                    "distribution": name,
                    "policy": label,
                    "mean_cost": round(acc.mean, 1),
                    "vs_OPT": round(acc.mean / result.mean_cost("OPT"), 3),
                }
            )
        if name == "exponential":
            print("exponential lengths, cost bars:")
            ordered = result.as_rows()
            print(
                ascii_bars(
                    [label for label, *_ in ordered],
                    [mean for _, mean, _ in ordered],
                )
            )
            print()
    print(render_table(rows, title="mean conflict cost per policy"))
    print(
        "\nreading guide: with B >> mu the deterministic policy almost "
        "never aborts\nand tracks OPT; with B < mu the requestor-aborts "
        "policies win (Fig 2a vs 2b)."
    )


if __name__ == "__main__":
    args = [float(a) for a in sys.argv[1:3]]
    main(*args)
