"""The Implications-section hybrid, live in the HTM simulator.

The paper closes with two observations: (1) requestor-aborts is the
better strategy for two-transaction conflicts while requestor-wins wins
for chains, suggesting a hybrid; (2) its purely local policies are —
surprisingly — competitive with contention managers that have global
knowledge.  This example demonstrates both on the sorted linked-list
set workload (whose traversals naturally build chains), comparing:

* NO_DELAY         — stock requestor-wins HTM
* DELAY_RAND       — Theorem 5's local uniform grace periods
* DELAY_RA         — requestor-aborts with NACK semantics
* DELAY_HYBRID     — per-conflict strategy choice by chain size
* GREEDY_CM        — older-transaction-wins with global knowledge

Run:  python examples/hybrid_htm.py [n_cores]
"""

from __future__ import annotations

import sys

from repro import Machine, MachineParams
from repro.experiments.report import ascii_bars, render_table
from repro.htm import GreedyCM, HybridDelay, NoDelay, RandDelay, RequestorAbortsDelay
from repro.workloads import ListSetWorkload


def main(n_cores: int = 8) -> None:
    policies = [
        ("NO_DELAY", lambda i: NoDelay()),
        ("DELAY_RAND", lambda i: RandDelay()),
        ("DELAY_RA", lambda i: RequestorAbortsDelay()),
        ("DELAY_HYBRID", lambda i: HybridDelay()),
        ("GREEDY_CM", lambda i: GreedyCM()),
    ]
    rows = []
    for name, factory in policies:
        totals = {"ops": 0, "aborts": 0, "nacks": 0}
        for seed in (0, 1, 2):
            workload = ListSetWorkload()
            machine = Machine(MachineParams(n_cores=n_cores), factory)
            machine.load(workload, seed=seed)
            stats = machine.run(250_000.0)
            workload.verify(machine)
            totals["ops"] += stats.ops_completed
            totals["aborts"] += stats.tx_aborted
            totals["nacks"] += stats.total("nacks_sent")
        rows.append(
            {
                "policy": name,
                "ops (3 seeds)": totals["ops"],
                "aborts": totals["aborts"],
                "nacks": totals["nacks"],
            }
        )
    print(f"sorted linked-list set, {n_cores} cores, 250k cycles x 3 seeds\n")
    print(render_table(rows))
    print()
    print(ascii_bars([r["policy"] for r in rows], [r["ops (3 seeds)"] for r in rows]))
    print(
        "\nthe hybrid chooses requestor-aborts for pair conflicts and "
        "requestor-wins for\nchains; the global-knowledge Greedy manager "
        "trails the local online policies."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
