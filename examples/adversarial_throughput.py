"""Corollary 1 live: adversarial scheduling vs the offline optimum.

Builds a population of transactions, lets three adversaries inflict
conflict schedules on them, and compares the online (uniform
requestor-wins) sum of running times against the clairvoyant offline
optimum — every measured ratio must sit under the paper's
``(2w+1)/(w+1)`` bound.

Run:  python examples/adversarial_throughput.py
"""

from __future__ import annotations

from repro import (
    ConflictKind,
    ConflictLedgerArena,
    ExponentialLengths,
    PeriodicAdversary,
    RandomAdversary,
    TargetedAdversary,
    UniformRW,
)
from repro.adversary.adversaries import make_transactions
from repro.experiments.report import render_table
from repro.rngutil import stream_for


def main() -> None:
    B = 250.0
    n_threads, per_thread = 16, 300
    lengths = ExponentialLengths(400.0)
    arena = ConflictLedgerArena(
        ConflictKind.REQUESTOR_WINS, B, lambda k: UniformRW(B, k)
    )
    adversaries = [
        ("light random", RandomAdversary(0.2)),
        ("heavy random + chains", RandomAdversary(
            0.9, max_hits=3, chain_weights={2: 0.5, 3: 0.3, 6: 0.2}
        )),
        ("periodic mid-transaction", PeriodicAdversary(fractions=(0.5,))),
        ("targeted at B", TargetedAdversary(threshold=B)),
    ]
    rows = []
    for name, adversary in adversaries:
        rng = stream_for(11, "example", name)
        txns = make_transactions(n_threads, per_thread, lengths, rng)
        schedule = adversary.build(txns, rng)
        outcome = arena.run(schedule, rng)
        rows.append(
            {
                "adversary": name,
                "conflicts": outcome.n_conflicts,
                "waste w(S)": round(outcome.waste, 3),
                "measured ratio": round(outcome.ratio, 4),
                "(2w+1)/(w+1) bound": round(outcome.corollary1_bound, 4),
                "within bound": outcome.within_bound(slack=0.02),
            }
        )
    print(
        f"{n_threads} threads x {per_thread} transactions, B={B:g}, "
        f"exponential lengths\n"
    )
    print(render_table(rows))
    print(
        "\nno adversary can push the online policy past the Corollary 1 "
        "bound,\nand the bound itself never reaches 2."
    )


if __name__ == "__main__":
    main()
