"""Drive the HTM machine simulator on a contended stack.

Runs the same workload under stock requestor-wins (NO_DELAY) and under
the paper's uniform randomized grace periods (DELAY_RAND), printing the
machine-level statistics that explain the throughput difference, and
verifies the stack's logical consistency afterwards (every pop matched
to a push, final chain exact).

Run:  python examples/htm_stack_demo.py [n_cores]
"""

from __future__ import annotations

import sys

from repro import Machine, MachineParams, NoDelay, RandDelay, StackWorkload
from repro.experiments.report import render_table


def run_once(n_cores: int, policy_name: str, policy_factory) -> dict:
    params = MachineParams(n_cores=n_cores)
    workload = StackWorkload()
    machine = Machine(params, policy_factory)
    machine.load(workload, seed=7)
    stats = machine.run(400_000.0)
    workload.verify(machine)  # raises on any atomicity violation
    machine.check_invariants()
    reasons = stats.abort_reasons()
    return {
        "policy": policy_name,
        "ops/s (Mops)": round(
            stats.throughput_ops_per_sec(params.clock_ghz) / 1e6, 2
        ),
        "commits": stats.tx_committed,
        "aborts": stats.tx_aborted,
        "abort_rate": round(stats.abort_rate, 3),
        "graces_timed_out": reasons.get("conflict_timeout", 0),
        "wedged": reasons.get("wedged", 0),
        "fallback_ops": stats.total("fallback_ops"),
    }


def main(n_cores: int = 8) -> None:
    print(f"transactional stack, {n_cores} cores, 400k cycles\n")
    rows = [
        run_once(n_cores, "NO_DELAY", lambda i: NoDelay()),
        run_once(n_cores, "DELAY_RAND", lambda i: RandDelay()),
    ]
    print(render_table(rows))
    print(
        "\nboth runs passed the linearizability surrogate checks "
        "(push/pop matching + final-chain reconstruction)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
