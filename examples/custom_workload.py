"""Tutorial: write your own HTM workload.

Builds a *shared histogram* workload from scratch — each transaction
bumps two bins chosen from a Zipf-like distribution (hot head, long
tail), a common pattern in real applications.  The walkthrough shows
the full workload contract:

1. allocate shared memory in ``setup`` (one line per bin);
2. emit operation objects from ``next_op`` whose ``body`` generators
   yield micro-ISA instructions (with lock subscription so the fast
   path cooperates with the fallback lock);
3. give operations a lock-based ``fallback`` for after repeated aborts;
4. implement ``verify`` with an exact invariant — here, every committed
   increment must be present in the final bins (torn transactions would
   break the ledger).

Run:  python examples/custom_workload.py
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro import Machine, MachineParams, NoDelay, RandDelay
from repro.experiments.report import render_table
from repro.htm.isa import CAS, AbortTx, Compute, Fence, Read, Write
from repro.workloads.base import Operation, OpContext, Workload


class BumpOp(Operation):
    """Increment two histogram bins atomically."""

    name = "bump"

    def __init__(self, workload: "HistogramWorkload", a: int, b: int) -> None:
        self.workload = workload
        self.a = a
        self.b = b

    def _bump(self) -> Generator:
        w = self.workload
        for bin_idx in (self.a, self.b):
            value = yield Read(w.bin_addr[bin_idx])
            yield Compute(w.work_cycles)
            yield Write(w.bin_addr[bin_idx], value + 1)
        return (self.a, self.b)

    def body(self, ctx: OpContext) -> Generator:
        lock = yield Read(self.workload.lock_addr)  # lock subscription
        if lock != 0:
            yield AbortTx()
        result = yield from self._bump()
        return result

    def has_fallback(self) -> bool:
        return True

    def fallback(self, ctx: OpContext) -> Generator:
        w = self.workload
        while True:  # test-and-CAS global lock
            held = yield Read(w.lock_addr)
            if held != 0:
                yield Fence()
                continue
            ok, _ = yield CAS(w.lock_addr, 0, ctx.core_id + 1)
            if ok:
                break
            yield Fence()
        result = yield from self._bump()
        yield Write(w.lock_addr, 0)
        return result

    def on_commit(self, machine, core_id, result) -> None:
        a, b = result
        self.workload.committed_bumps[a] += 1
        self.workload.committed_bumps[b] += 1


class HistogramWorkload(Workload):
    """Zipf-skewed two-bin increments over ``n_bins`` shared bins."""

    name = "histogram"

    def __init__(self, *, n_bins: int = 32, skew: float = 1.2, work_cycles: int = 30):
        self.n_bins = n_bins
        self.work_cycles = work_cycles
        ranks = np.arange(1, n_bins + 1, dtype=float)
        weights = ranks**-skew
        self.probs = weights / weights.sum()
        self.bin_addr: list[int] = []
        self.lock_addr = -1
        self.committed_bumps = [0] * n_bins

    def setup(self, machine) -> None:
        self.bin_addr = [machine.alloc(1) for _ in range(self.n_bins)]
        self.lock_addr = machine.alloc(1)
        self.committed_bumps = [0] * self.n_bins
        for addr in self.bin_addr:
            machine.poke(addr, 0)
        machine.poke(self.lock_addr, 0)

    def next_op(self, core_id: int, rng: np.random.Generator) -> Operation:
        a, b = rng.choice(self.n_bins, size=2, replace=False, p=self.probs)
        return BumpOp(self, int(a), int(b))

    def tuned_delay_cycles(self, params) -> int:
        remote = 2 * params.hop + params.dir_lookup + params.l1_hit
        return 2 * (self.work_cycles + remote) + params.commit_cycles

    def verify(self, machine) -> None:
        for i, addr in enumerate(self.bin_addr):
            self._require(
                machine.peek(addr) == self.committed_bumps[i],
                f"bin {i}: value {machine.peek(addr)} != committed "
                f"{self.committed_bumps[i]} (torn transaction)",
            )


def main() -> None:
    rows = []
    for name, factory in [
        ("NO_DELAY", lambda i: NoDelay()),
        ("DELAY_RAND", lambda i: RandDelay()),
    ]:
        workload = HistogramWorkload()
        machine = Machine(MachineParams(n_cores=8), factory)
        machine.load(workload, seed=5)
        stats = machine.run(200_000.0)
        workload.verify(machine)  # the ledger must balance exactly
        hottest = max(workload.committed_bumps)
        rows.append(
            {
                "policy": name,
                "ops": stats.ops_completed,
                "abort_rate": round(stats.abort_rate, 3),
                "hottest_bin_hits": hottest,
            }
        )
    print("custom shared-histogram workload, 8 cores, Zipf-skewed bins\n")
    print(render_table(rows))
    print(
        "\nthe skewed head bin behaves like the stack's TOP line; the "
        "long tail like the\ntransactional app — and the ledger check "
        "proves atomicity for both policies."
    )


if __name__ == "__main__":
    main()
