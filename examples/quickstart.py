"""Quickstart: the transactional conflict problem in five minutes.

Builds the paper's conflict cost model, instantiates the optimal
policies for both conflict-resolution strategies, and verifies their
competitive ratios numerically.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ConflictKind,
    ConflictModel,
    competitive_ratio,
    constrained_competitive_ratio,
    expected_cost,
    optimal_requestor_aborts,
    optimal_requestor_wins,
    simulate_costs,
)


def main() -> None:
    B = 2000.0  # abort cost (time already invested + cleanup)
    mu = 500.0  # profiled mean remaining time (optional knowledge)

    # -- 1. The conflict cost model (Section 4) -------------------------
    model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, k=2)
    print(model.describe())
    print(f"  commit after waiting D=300:   cost = {model.cost(500.0, 300.0):g}")
    print(f"  abort after grace x=500:      cost = {model.cost(500.0, 900.0):g}")
    print(f"  offline optimum at D=900:     OPT  = {model.opt(900.0):g}")
    print()

    # -- 2. Optimal online policies (Theorems 4-6, 1-3) -----------------
    policies = {
        "DET  (Thm 4, deterministic RW)": optimal_requestor_wins(
            B, deterministic=True
        ),
        "RRW  (Thm 5, uniform)": optimal_requestor_wins(B),
        "RRW(mu) (Thm 5, mean-aware)": optimal_requestor_wins(B, mu=mu),
        "RRA  (Thm 1, exponential)": optimal_requestor_aborts(B),
        "RRA(mu) (Thm 2, mean-aware)": optimal_requestor_aborts(B, mu=mu),
    }
    print("policy delays are random variables on [0, B/(k-1)]:")
    for label, policy in policies.items():
        lo, hi = policy.support
        print(
            f"  {label:34s} support [{lo:g}, {hi:g}]  "
            f"E[delay] = {policy.expected_delay():8.1f}"
        )
    print()

    # -- 3. Verify the guarantees numerically ----------------------------
    # mean-aware policies promise their ratio against adversaries with
    # mean mu, so they are priced with the constrained evaluator
    print("competitive ratios (numeric best adversary vs closed form):")
    for label, policy in policies.items():
        kind = (
            ConflictKind.REQUESTOR_ABORTS
            if "RRA" in label
            else ConflictKind.REQUESTOR_WINS
        )
        m = ConflictModel(kind, B, 2)
        if "(mu)" in label:
            numeric = constrained_competitive_ratio(policy, m, mu).ratio
        else:
            numeric = competitive_ratio(policy, m).ratio
        closed = getattr(policy, "competitive_ratio", float("nan"))
        print(f"  {label:34s} numeric={numeric:6.4f}  closed={closed:6.4f}")
    print()

    # -- 4. Monte-Carlo a single conflict --------------------------------
    rng = np.random.default_rng(0)
    policy = optimal_requestor_wins(B)
    remaining = 750.0
    costs = simulate_costs(policy, model, remaining, rng, n=100_000)
    print(
        f"conflict with D={remaining:g}: simulated mean cost "
        f"{costs.mean():,.1f}, quadrature "
        f"{expected_cost(policy, model, remaining):,.1f}, "
        f"OPT {model.opt(remaining):,.1f}"
    )


if __name__ == "__main__":
    main()
