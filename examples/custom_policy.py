"""Write your own delay policy and evaluate it against the optima.

Demonstrates the extension surface: subclass
:class:`~repro.core._continuous.ContinuousDelayPolicy`, give it a
(vectorized) density, and the verification machinery prices it against
any adversary — no closed-form analysis needed.

The example policy is a triangular density peaking at B/2 ("hedge
toward the middle").  Spoiler: it is worse than the uniform optimum,
which is the point — Theorem 5 says nothing beats uniform.

Run:  python examples/custom_policy.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ConflictKind,
    ConflictModel,
    UniformRW,
    competitive_ratio,
    constrained_competitive_ratio,
)
from repro.core._continuous import ContinuousDelayPolicy
from repro.experiments.report import render_table


class TriangularDelay(ContinuousDelayPolicy):
    """Triangular density on [0, B], peak at B/2."""

    def __init__(self, B: float) -> None:
        self.B = float(B)
        self._lo, self._hi = 0.0, float(B)
        self.name = "TRIANGULAR"

    def pdf_vec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        half = self.B / 2.0
        up = x / half * (2.0 / self.B)
        down = (self.B - x) / half * (2.0 / self.B)
        vals = np.where(x <= half, up, down)
        return np.where(self._in_support(x), vals, 0.0)

    def cdf_vec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        clipped = np.clip(x, 0.0, self.B)
        half = self.B / 2.0
        left = clipped**2 / (half * self.B)
        right = 1.0 - (self.B - clipped) ** 2 / (half * self.B)
        raw = np.where(clipped <= half, left, right)
        return np.where(x >= self.B, 1.0, np.where(x <= 0, 0.0, raw))


def main() -> None:
    B = 1000.0
    model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)
    contenders = [TriangularDelay(B), UniformRW(B, 2)]
    rows = []
    for policy in contenders:
        uncon = competitive_ratio(policy, model)
        con = constrained_competitive_ratio(policy, model, mu=0.1 * B)
        rows.append(
            {
                "policy": policy.name,
                "sup ratio": round(uncon.ratio, 4),
                "worst D": round(uncon.worst_remaining, 1),
                "ratio @ mean mu=0.1B": round(con.ratio, 4),
            }
        )
    print(render_table(rows, title=f"custom policy vs Theorem 5 (B={B:g})"))
    print(
        "\nthe triangular hedge loses: uniform equalizes the adversary's "
        "options\n(every D costs exactly 2*OPT), any reshaping opens a "
        "worse pocket somewhere."
    )


if __name__ == "__main__":
    main()
