"""Conflict schedules — the adversary's move set.

Section 6 grants the adversary the power to put pairs of transactions in
conflict at arbitrary times, subject to three structural assumptions:

(a) a transaction already in a conflict as a requestor cannot become the
    receiver of a new conflict;
(b) a transaction in its grace period cannot be conflicted again as a
    receiver (it may appear as a requestor);
(c) conflicts are acyclic.

These assumptions exist precisely so that *the same conflicts* can be
inflicted on the offline optimum as on the online algorithm — which is
what makes the Corollary 1 comparison well-defined.  We encode a
schedule as a list of :class:`Conflict` records, each binding a receiver
transaction, the receiver's remaining time at the moment of conflict,
and the chain size; :meth:`ConflictSchedule.validate` checks (a)-(c)
structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["Transaction", "Conflict", "ConflictSchedule"]


@dataclass(frozen=True)
class Transaction:
    """A logical transaction: thread, sequence index, and commit cost.

    ``rho`` is the paper's commit cost ρ_T — the number of consecutive
    steps the transaction needs in isolation to commit.
    """

    thread: int
    index: int
    rho: float

    def __post_init__(self) -> None:
        if self.rho <= 0:
            raise InvalidParameterError(
                f"transaction commit cost must be positive, got {self.rho}"
            )

    @property
    def tid(self) -> tuple[int, int]:
        return (self.thread, self.index)


@dataclass(frozen=True)
class Conflict:
    """One adversarial conflict against a receiver transaction.

    Attributes
    ----------
    receiver:
        The transaction holding the contended data (the one whose fate
        the policy decides).
    remaining:
        The receiver's remaining running time D at conflict time
        (0 < remaining <= receiver.rho).
    k:
        Chain size (the receiver plus ``k - 1`` waiting transactions).
    requestor_thread:
        Thread id of the immediate requestor (used by the timed arena
        and by the cycle check; the ledger arena only needs k).
    """

    receiver: Transaction
    remaining: float
    k: int = 2
    requestor_thread: int = -1

    def __post_init__(self) -> None:
        if not 0.0 < self.remaining <= self.receiver.rho:
            raise InvalidParameterError(
                f"conflict remaining time {self.remaining} outside "
                f"(0, rho={self.receiver.rho}]"
            )
        if self.k < 2:
            raise InvalidParameterError(f"chain size must be >= 2, got {self.k}")

    @property
    def progress(self) -> float:
        """How long the receiver had been running when conflicted."""
        return self.receiver.rho - self.remaining


@dataclass
class ConflictSchedule:
    """A full adversarial strategy S: transactions plus their conflicts."""

    transactions: list[Transaction] = field(default_factory=list)
    conflicts: list[Conflict] = field(default_factory=list)

    def total_rho(self) -> float:
        """Σ_T ρ_T — the conflict-free sum of running times."""
        return float(sum(t.rho for t in self.transactions))

    def conflicts_for(self, txn: Transaction) -> list[Conflict]:
        return [c for c in self.conflicts if c.receiver.tid == txn.tid]

    def validate(self) -> None:
        """Structural checks for assumptions (a)-(c).

        The ledger encoding cannot express a *simultaneous* double-
        conflict on one receiver (each conflict record is resolved
        independently), so (b) reduces to requiring distinct remaining
        times per receiver; (a) and (c) reduce to the requestor thread
        differing from the receiver thread.  These checks catch
        generator bugs, not adversary cleverness.
        """
        tids = {t.tid for t in self.transactions}
        if len(tids) != len(self.transactions):
            raise InvalidParameterError("duplicate transaction ids in schedule")
        seen: dict[tuple[int, int], set[float]] = {}
        for c in self.conflicts:
            if c.receiver.tid not in tids:
                raise InvalidParameterError(
                    f"conflict references unknown transaction {c.receiver.tid}"
                )
            if c.requestor_thread == c.receiver.thread:
                raise InvalidParameterError(
                    f"self-conflict on thread {c.receiver.thread} (violates "
                    f"acyclicity)"
                )
            marks = seen.setdefault(c.receiver.tid, set())
            if c.remaining in marks:
                raise InvalidParameterError(
                    f"receiver {c.receiver.tid} conflicted twice at the same "
                    f"instant (violates assumption (b))"
                )
            marks.add(c.remaining)

    def remaining_times(self) -> np.ndarray:
        return np.asarray([c.remaining for c in self.conflicts], dtype=float)

    def chain_sizes(self) -> np.ndarray:
        return np.asarray([c.k for c in self.conflicts], dtype=int)

    def __len__(self) -> int:
        return len(self.conflicts)
