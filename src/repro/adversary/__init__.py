"""Adversarial conflict scheduling and throughput competitiveness
(Section 6, Corollaries 1 and 2)."""

from __future__ import annotations

from repro.adversary.schedule import Conflict, ConflictSchedule, Transaction
from repro.adversary.adversaries import (
    Adversary,
    PeriodicAdversary,
    RandomAdversary,
    TargetedAdversary,
)
from repro.adversary.arena import ArenaOutcome, ConflictLedgerArena, TimedArena
from repro.adversary.throughput_arena import ThroughputArena, ThroughputTrace

__all__ = [
    "Transaction",
    "Conflict",
    "ConflictSchedule",
    "Adversary",
    "RandomAdversary",
    "PeriodicAdversary",
    "TargetedAdversary",
    "ConflictLedgerArena",
    "TimedArena",
    "ArenaOutcome",
    "ThroughputArena",
    "ThroughputTrace",
]
