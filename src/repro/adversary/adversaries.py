"""Adversary strategies — generators of conflict schedules.

Each adversary builds a :class:`~repro.adversary.schedule.ConflictSchedule`
over a population of transactions.  Three personalities cover the
experimental needs:

* :class:`RandomAdversary` — conflicts strike a transaction with a
  fixed probability, at a uniformly random progress point (a neutral
  contention model).
* :class:`PeriodicAdversary` — every transaction is conflicted at fixed
  progress fractions (stable, profiler-friendly contention).
* :class:`TargetedAdversary` — conflicts land just after the point
  where the receiver's remaining work equals the policy's abort
  threshold, the most damaging placement against deterministic
  policies (the Figure 2c adversary lifted to the arena).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.adversary.schedule import Conflict, ConflictSchedule, Transaction
from repro.distributions.base import LengthDistribution
from repro.errors import InvalidParameterError
from repro.rngutil import ensure_rng

__all__ = [
    "Adversary",
    "RandomAdversary",
    "PeriodicAdversary",
    "TargetedAdversary",
    "make_transactions",
]


def make_transactions(
    n_threads: int,
    per_thread: int,
    lengths: LengthDistribution,
    rng: np.random.Generator | int | None = None,
) -> list[Transaction]:
    """Build the transaction population: ``per_thread`` transactions on
    each of ``n_threads`` threads with i.i.d. commit costs."""
    if n_threads < 2:
        raise InvalidParameterError(
            f"need >= 2 threads for conflicts, got {n_threads}"
        )
    if per_thread < 1:
        raise InvalidParameterError(f"per_thread must be >= 1, got {per_thread}")
    gen = ensure_rng(rng)
    rho = lengths.sample(n_threads * per_thread, gen)
    return [
        Transaction(thread=t, index=i, rho=float(rho[t * per_thread + i]))
        for t in range(n_threads)
        for i in range(per_thread)
    ]


class Adversary(abc.ABC):
    """Interface: turn a transaction population into a schedule."""

    name: str = "adversary"

    @abc.abstractmethod
    def build(
        self,
        transactions: list[Transaction],
        rng: np.random.Generator | int | None = None,
    ) -> ConflictSchedule:
        """Generate (and validate) a conflict schedule."""

    @staticmethod
    def _other_thread(
        thread: int, n_threads: int, rng: np.random.Generator
    ) -> int:
        """Uniform requestor thread different from ``thread``."""
        other = int(rng.integers(0, n_threads - 1))
        return other if other < thread else other + 1


class RandomAdversary(Adversary):
    """Independent conflicts: each transaction is conflicted with
    probability ``p_conflict`` per potential hit (up to ``max_hits``),
    at uniformly random progress, with chain size drawn from
    ``chain_weights``."""

    name = "random"

    def __init__(
        self,
        p_conflict: float = 0.5,
        *,
        max_hits: int = 1,
        chain_weights: dict[int, float] | None = None,
    ) -> None:
        if not 0.0 <= p_conflict <= 1.0:
            raise InvalidParameterError(f"p_conflict in [0,1], got {p_conflict}")
        if max_hits < 1:
            raise InvalidParameterError(f"max_hits must be >= 1, got {max_hits}")
        self.p_conflict = p_conflict
        self.max_hits = max_hits
        weights = chain_weights or {2: 1.0}
        if any(k < 2 for k in weights) or any(w < 0 for w in weights.values()):
            raise InvalidParameterError(f"bad chain weights {weights!r}")
        total = sum(weights.values())
        if total <= 0:
            raise InvalidParameterError("chain weights must sum > 0")
        self.chain_sizes = np.asarray(sorted(weights), dtype=int)
        self.chain_probs = np.asarray(
            [weights[k] / total for k in sorted(weights)], dtype=float
        )

    def build(self, transactions, rng=None) -> ConflictSchedule:
        gen = ensure_rng(rng)
        n_threads = 1 + max(t.thread for t in transactions)
        schedule = ConflictSchedule(transactions=list(transactions))
        for txn in transactions:
            used: set[float] = set()
            for _ in range(self.max_hits):
                if gen.random() >= self.p_conflict:
                    continue
                # remaining uniform in (0, rho]
                remaining = float((1.0 - gen.random()) * txn.rho)
                if remaining in used:
                    continue
                used.add(remaining)
                k = int(gen.choice(self.chain_sizes, p=self.chain_probs))
                schedule.conflicts.append(
                    Conflict(
                        receiver=txn,
                        remaining=remaining,
                        k=k,
                        requestor_thread=self._other_thread(
                            txn.thread, n_threads, gen
                        ),
                    )
                )
        schedule.validate()
        return schedule


class PeriodicAdversary(Adversary):
    """Conflict every transaction at fixed progress fractions."""

    name = "periodic"

    def __init__(self, fractions: tuple[float, ...] = (0.5,), k: int = 2) -> None:
        if not fractions or any(not 0.0 <= f < 1.0 for f in fractions):
            raise InvalidParameterError(
                f"fractions must be in [0, 1), got {fractions!r}"
            )
        if len(set(fractions)) != len(fractions):
            raise InvalidParameterError("fractions must be distinct")
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        self.fractions = tuple(sorted(fractions))
        self.k = k

    def build(self, transactions, rng=None) -> ConflictSchedule:
        gen = ensure_rng(rng)
        n_threads = 1 + max(t.thread for t in transactions)
        schedule = ConflictSchedule(transactions=list(transactions))
        for txn in transactions:
            for frac in self.fractions:
                schedule.conflicts.append(
                    Conflict(
                        receiver=txn,
                        remaining=txn.rho * (1.0 - frac),
                        k=self.k,
                        requestor_thread=self._other_thread(
                            txn.thread, n_threads, gen
                        ),
                    )
                )
        schedule.validate()
        return schedule


class TargetedAdversary(Adversary):
    """Place each conflict where the remaining time just exceeds a
    target threshold (e.g. the DET abort point ``B/(k-1)``), clamped
    into the transaction; maximally punishes deterministic delays."""

    name = "targeted"

    def __init__(self, threshold: float, *, overshoot: float = 1.01, k: int = 2) -> None:
        if threshold <= 0:
            raise InvalidParameterError(f"threshold must be > 0, got {threshold}")
        if overshoot <= 1.0:
            raise InvalidParameterError(f"overshoot must exceed 1, got {overshoot}")
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        self.threshold = threshold
        self.overshoot = overshoot
        self.k = k

    def build(self, transactions, rng=None) -> ConflictSchedule:
        gen = ensure_rng(rng)
        n_threads = 1 + max(t.thread for t in transactions)
        schedule = ConflictSchedule(transactions=list(transactions))
        for txn in transactions:
            remaining = min(self.threshold * self.overshoot, txn.rho)
            schedule.conflicts.append(
                Conflict(
                    receiver=txn,
                    remaining=float(remaining),
                    k=self.k,
                    requestor_thread=self._other_thread(
                        txn.thread, n_threads, gen
                    ),
                )
            )
        schedule.validate()
        return schedule
