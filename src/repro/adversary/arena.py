"""Arenas: run policies against adversarial schedules.

Two complementary arenas:

* :class:`ConflictLedgerArena` — the exact accounting of the
  Corollary 1 proof.  Every conflict ``C`` is charged to its receiver:
  the online algorithm pays the realized conflict cost, the offline
  optimum pays ``min((k-1)D, B)``, and the global sums are
  ``sum(rho) + sum(conflict costs)`` on each side.  The arena reports
  the measured ratio together with the proof's bound
  ``(2w+1)/(w+1)`` where ``w = sum(OPT conflict costs)/sum(rho)``.

* :class:`TimedArena` — an event-driven execution where transactions
  actually retry after aborts and the adversary re-inflicts its
  conflict schedule on every attempt.  This is the substrate for the
  Corollary 2 progress experiments (attempts-to-commit under
  multiplicative backoff) and for throughput-over-time curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.adversary.schedule import Conflict, ConflictSchedule
from repro.core.backoff import BackoffPolicy
from repro.core.model import ConflictKind, ConflictModel
from repro.core.policy import DelayPolicy
from repro.core.ratios import corollary1_bound
from repro.errors import InvalidParameterError, SimulationError
from repro.rngutil import ensure_rng

__all__ = ["ArenaOutcome", "ConflictLedgerArena", "TimedArena", "AttemptRecord"]


@dataclass
class ArenaOutcome:
    """Result of a ledger-arena run."""

    online_total: float
    offline_total: float
    total_rho: float
    n_conflicts: int
    online_conflict_cost: float
    offline_conflict_cost: float

    @property
    def ratio(self) -> float:
        """Measured ``sum Gamma(T, A) / sum Gamma(T, OPT)``."""
        return self.online_total / self.offline_total

    @property
    def waste(self) -> float:
        """``w(S)`` — offline conflict cost over conflict-free work."""
        return self.offline_conflict_cost / self.total_rho

    @property
    def corollary1_bound(self) -> float:
        """``(2w + 1)/(w + 1)`` — the proof's bound for this schedule."""
        return corollary1_bound(self.waste)

    def within_bound(self, slack: float = 0.0) -> bool:
        return self.ratio <= self.corollary1_bound + slack


class ConflictLedgerArena:
    """Amortized (per-conflict) accounting, exactly as in Corollary 1.

    Parameters
    ----------
    kind:
        Conflict resolution strategy (both sides use the same kind).
    B:
        Abort cost.
    policy_factory:
        ``k -> DelayPolicy`` giving the online policy per chain size.
        Policies are cached per k.
    """

    def __init__(
        self,
        kind: ConflictKind,
        B: float,
        policy_factory: Callable[[int], DelayPolicy],
    ) -> None:
        if B <= 0:
            raise InvalidParameterError(f"B must be positive, got {B}")
        self.kind = kind
        self.B = float(B)
        self._factory = policy_factory
        self._policies: dict[int, DelayPolicy] = {}
        self._models: dict[int, ConflictModel] = {}

    def policy_for(self, k: int) -> DelayPolicy:
        pol = self._policies.get(k)
        if pol is None:
            pol = self._factory(k)
            self._policies[k] = pol
        return pol

    def model_for(self, k: int) -> ConflictModel:
        m = self._models.get(k)
        if m is None:
            m = ConflictModel(self.kind, self.B, k)
            self._models[k] = m
        return m

    def run(
        self,
        schedule: ConflictSchedule,
        rng: np.random.Generator | int | None = None,
    ) -> ArenaOutcome:
        """Score the schedule: one policy draw per conflict (vectorized
        per chain size)."""
        gen = ensure_rng(rng)
        schedule.validate()
        total_rho = schedule.total_rho()
        online = 0.0
        offline = 0.0
        # group conflicts by chain size for vectorized scoring
        by_k: dict[int, list[Conflict]] = {}
        for c in schedule.conflicts:
            by_k.setdefault(c.k, []).append(c)
        for k, conflicts in sorted(by_k.items()):
            model = self.model_for(k)
            policy = self.policy_for(k)
            remaining = np.asarray([c.remaining for c in conflicts])
            delays = policy.sample_many(remaining.size, gen)
            online += float(model.cost_vec(delays, remaining).sum())
            offline += float(model.opt_vec(remaining).sum())
        return ArenaOutcome(
            online_total=total_rho + online,
            offline_total=total_rho + offline,
            total_rho=total_rho,
            n_conflicts=len(schedule),
            online_conflict_cost=online,
            offline_conflict_cost=offline,
        )

    def run_batch(
        self,
        schedules: list[ConflictSchedule],
        rngs: list[np.random.Generator | int | None],
    ) -> list[ArenaOutcome]:
        """Score many schedules with one ``cost_vec``/``opt_vec`` pass
        per chain size (struct-of-arrays over the whole batch).

        Bit-identical to sequential :meth:`run` calls: each schedule
        draws from its own rng in the same per-``k``-group order, the
        batched kernels are elementwise, and per-group sums keep
        ``ndarray.sum``'s pairwise structure by summing each schedule's
        contiguous slice of the concatenation.
        """
        if len(schedules) != len(rngs):
            raise InvalidParameterError(
                f"got {len(schedules)} schedules but {len(rngs)} rngs"
            )
        n = len(schedules)
        total_rhos: list[float] = []
        row_ks: list[list[int]] = []
        # k -> [(row index, remaining, delays)] in row order
        groups: dict[int, list[tuple[int, np.ndarray, np.ndarray]]] = {}
        for i, (schedule, rng) in enumerate(zip(schedules, rngs)):
            gen = ensure_rng(rng)
            schedule.validate()
            total_rhos.append(schedule.total_rho())
            by_k: dict[int, list[Conflict]] = {}
            for c in schedule.conflicts:
                by_k.setdefault(c.k, []).append(c)
            row_ks.append(sorted(by_k))
            for k in row_ks[-1]:
                remaining = np.asarray([c.remaining for c in by_k[k]])
                delays = self.policy_for(k).sample_many(remaining.size, gen)
                groups.setdefault(k, []).append((i, remaining, delays))
        # one vectorized scoring pass per chain size, split back per row
        sums: dict[tuple[int, int], tuple[float, float]] = {}
        for k, members in sorted(groups.items()):
            model = self.model_for(k)
            remaining = np.concatenate([m[1] for m in members])
            delays = np.concatenate([m[2] for m in members])
            cost = model.cost_vec(delays, remaining)
            opt = model.opt_vec(remaining)
            pos = 0
            for i, rem, _ in members:
                size = rem.size
                sums[(i, k)] = (
                    float(cost[pos : pos + size].sum()),
                    float(opt[pos : pos + size].sum()),
                )
                pos += size
        outcomes: list[ArenaOutcome] = []
        for i, schedule in enumerate(schedules):
            online = 0.0
            offline = 0.0
            for k in row_ks[i]:
                on_k, off_k = sums[(i, k)]
                online += on_k
                offline += off_k
            outcomes.append(
                ArenaOutcome(
                    online_total=total_rhos[i] + online,
                    offline_total=total_rhos[i] + offline,
                    total_rho=total_rhos[i],
                    n_conflicts=len(schedule),
                    online_conflict_cost=online,
                    offline_conflict_cost=offline,
                )
            )
        return outcomes


@dataclass
class AttemptRecord:
    """Outcome of executing one transaction to commit in the timed arena."""

    attempts: int
    total_time: float
    committed: bool
    waiter_delay: float
    final_B: float


class TimedArena:
    """Execute transactions with retries against a per-attempt adversary.

    Every *attempt* at a transaction of commit cost ``rho`` faces the
    conflicts the adversary pins to it (as (remaining, k) pairs, struck
    in chronological order).  Surviving a conflict (delay >= remaining)
    lets the attempt run on — later conflicts can still strike it.  An
    abort charges the wasted progress plus the grace period, and the
    transaction retries; a :class:`~repro.core.backoff.BackoffPolicy`
    grows its abort cost between attempts (Corollary 2's mechanism).

    The requestor-wins discipline is simulated (the receiver is the
    transaction we track; waiter delays are charged to
    ``waiter_delay``).
    """

    def __init__(
        self,
        kind: ConflictKind = ConflictKind.REQUESTOR_WINS,
        *,
        max_attempts: int = 10_000,
    ) -> None:
        if max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.kind = kind
        self.max_attempts = max_attempts

    def run_transaction(
        self,
        rho: float,
        conflicts: list[tuple[float, int]],
        policy: DelayPolicy,
        rng: np.random.Generator | int | None = None,
    ) -> AttemptRecord:
        """Drive one transaction to commit.

        ``conflicts`` is the adversary's per-attempt plan: a list of
        ``(remaining, k)`` with ``0 < remaining <= rho``; each attempt
        faces all of them in order of decreasing remaining time
        (i.e. chronological).
        """
        if rho <= 0:
            raise InvalidParameterError(f"rho must be positive, got {rho}")
        for remaining, k in conflicts:
            if not 0.0 < remaining <= rho:
                raise SimulationError(
                    f"conflict remaining {remaining} outside (0, {rho}]"
                )
            if k < 2:
                raise SimulationError(f"chain size {k} < 2")
        gen = ensure_rng(rng)
        ordered = sorted(conflicts, key=lambda rk: -rk[0])  # chronological
        total_time = 0.0
        waiter_delay = 0.0
        is_backoff = isinstance(policy, BackoffPolicy)

        for attempt in range(1, self.max_attempts + 1):
            aborted = False
            for remaining, k in ordered:
                delay = policy.sample(gen)
                if remaining <= delay:
                    # receiver survives: the k-1 waiters stalled for the
                    # receiver's remaining run
                    waiter_delay += (k - 1) * remaining
                    continue
                # receiver aborts after `delay` extra steps at progress
                # rho - remaining
                progress = rho - remaining
                total_time += progress + delay
                waiter_delay += (k - 1) * delay
                aborted = True
                break
            if not aborted:
                total_time += rho
                if is_backoff:
                    policy.record_commit()
                return AttemptRecord(
                    attempts=attempt,
                    total_time=total_time,
                    committed=True,
                    waiter_delay=waiter_delay,
                    final_B=policy.current_B if is_backoff else math.nan,
                )
            if is_backoff:
                policy.record_abort()
        return AttemptRecord(
            attempts=self.max_attempts,
            total_time=total_time,
            committed=False,
            waiter_delay=waiter_delay,
            final_B=policy.current_B if is_backoff else math.nan,
        )

    def run_batch(
        self,
        program,
        n_trials: int,
        *,
        seed=None,
        path: tuple = (),
        engine: str = "batch",
        n_shards: int | None = None,
        pool=None,
    ):
        """Run ``n_trials`` independent copies of a
        :class:`repro.sim.mc.TrialProgram` through the batched SoA
        engine (``repro.sim.mc``), honoring this arena's attempt cap.

        Returns a :class:`repro.sim.mc.TrialResults`; rows are
        bit-identical to per-trial :meth:`run_transaction` calls fed
        from the same draw layout (``engine="scalar"`` runs exactly
        that as the golden reference).
        """
        from dataclasses import replace

        from repro.sim import mc  # deferred: repro.sim.mc imports us

        if program.max_attempts != self.max_attempts:
            program = replace(program, max_attempts=self.max_attempts)
        kwargs = {} if n_shards is None else {"n_shards": n_shards}
        return mc.run_trials(
            program, n_trials, seed=seed, path=path, engine=engine,
            pool=pool, **kwargs,
        )

    def run_many(
        self,
        rhos: np.ndarray,
        conflicts_fn: Callable[[float], list[tuple[float, int]]],
        policy_factory: Callable[[], DelayPolicy],
        rng: np.random.Generator | int | None = None,
    ) -> list[AttemptRecord]:
        """Drive a batch of transactions, a fresh policy instance each
        (backoff state is per-transaction)."""
        gen = ensure_rng(rng)
        return [
            self.run_transaction(float(rho), conflicts_fn(float(rho)),
                                 policy_factory(), gen)
            for rho in np.asarray(rhos, dtype=float)
        ]
