"""Event-driven multi-thread arena (time-resolved Section 6).

The ledger arena scores conflicts out of time; this arena runs ``n``
threads through simulated time on the DES engine: each thread executes
its transaction sequence, an adversary process injects conflicts while
transactions run, aborts restart transactions (optionally with
Corollary 2 backoff), and the measurement is *throughput over time* —
commits per time unit in windows — plus per-transaction Γ.

It complements the other arenas: the ledger arena is the faithful
Corollary 1 accounting; the timed arena drives one transaction; this
one shows the whole system breathing.

Two adversary processes, which bracket the paper's model assumption:

* ``"per_attempt"`` — every attempt is struck with fixed probability at
  a uniform progress point: the conflict *budget* is independent of the
  policy, which is exactly the Section 6 assumption ("the adversary can
  only inflict the same set of conflicts on the offline optimal
  strategy as on the online decision algorithm").  Here the delay
  policies shine, as the theory predicts.
* ``"rate"`` — conflicts arrive as a Poisson process in *time*.  Then
  delaying stretches a transaction's exposure window and attracts more
  conflicts, an effect outside the paper's model; immediate abort gains
  an advantage the competitive analysis does not (and does not claim
  to) cover.  Keeping both modes makes the boundary of the theorem's
  applicability measurable instead of implicit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.model import ConflictKind, ConflictModel
from repro.core.policy import DelayPolicy
from repro.distributions.base import LengthDistribution
from repro.errors import InvalidParameterError
from repro.rngutil import ensure_rng, spawn_streams
from repro.sim.engine import Simulator

__all__ = ["ThreadState", "ThroughputArena", "ThroughputTrace"]


@dataclass(slots=True)
class ThreadState:
    """One simulated thread's bookkeeping."""

    thread_id: int
    rho: float = 0.0  # current transaction's commit cost
    started_at: float = 0.0  # first attempt of the current transaction
    attempt_started_at: float = 0.0
    commits: int = 0
    aborts: int = 0
    gammas: list[float] = field(default_factory=list)
    grace_until: float = -1.0  # receiver is in a grace period until then
    commit_event: object = None


@dataclass
class ThroughputTrace:
    """Windowed commit counts plus aggregate statistics."""

    window: float
    commits_per_window: list[int]
    total_commits: int
    total_aborts: int
    mean_gamma: float

    def throughput(self) -> np.ndarray:
        return np.asarray(self.commits_per_window, dtype=float) / self.window


class ThroughputArena:
    """Run n threads under an adversary conflict process.

    Parameters
    ----------
    n_threads:
        Thread count (>= 2).
    lengths:
        Transaction-length distribution (commit costs).
    policy:
        Online delay policy shared by every conflict decision.
    kind:
        Conflict-resolution strategy (cost bookkeeping only; the victim
        is the receiver, per requestor-wins, in both cases — the RA
        timing variant lives in the HTM simulator).
    conflict_rate:
        ``"rate"`` mode intensity: expected conflicts per time unit
        across the system (Poisson arrivals picking a random running
        transaction as receiver).
    adversary:
        ``"per_attempt"`` (the paper's fixed-conflict-budget model) or
        ``"rate"`` (time-proportional exposure); see module docstring.
    p_conflict:
        ``"per_attempt"`` mode: probability that an attempt is struck.
    """

    def __init__(
        self,
        n_threads: int,
        lengths: LengthDistribution,
        policy: DelayPolicy,
        *,
        kind: ConflictKind = ConflictKind.REQUESTOR_WINS,
        B: float = 200.0,
        conflict_rate: float = 0.01,
        restart_delay: float = 1.0,
        adversary: str = "per_attempt",
        p_conflict: float = 0.7,
    ) -> None:
        if n_threads < 2:
            raise InvalidParameterError(f"need >= 2 threads, got {n_threads}")
        if conflict_rate <= 0:
            raise InvalidParameterError("conflict_rate must be positive")
        if restart_delay < 0:
            raise InvalidParameterError("restart_delay must be >= 0")
        if adversary not in ("per_attempt", "rate"):
            raise InvalidParameterError(f"unknown adversary mode {adversary!r}")
        if not 0.0 <= p_conflict <= 1.0:
            raise InvalidParameterError("p_conflict must be in [0, 1]")
        self.n_threads = n_threads
        self.lengths = lengths
        self.policy = policy
        self.model = ConflictModel(kind, B, 2)
        self.conflict_rate = conflict_rate
        self.restart_delay = restart_delay
        self.adversary = adversary
        self.p_conflict = p_conflict

    # ------------------------------------------------------------------
    def run(
        self,
        horizon: float,
        *,
        window: float = 1_000.0,
        seed: int | None = None,
    ) -> ThroughputTrace:
        if horizon <= 0 or window <= 0:
            raise InvalidParameterError("horizon and window must be positive")
        sim = Simulator()
        streams = spawn_streams(seed, self.n_threads + 1)
        adversary_rng = streams[-1]
        threads = [ThreadState(i) for i in range(self.n_threads)]
        windows = [0] * int(math.ceil(horizon / window))

        def record_commit(state: ThreadState) -> None:
            state.commits += 1
            state.gammas.append(sim.now - state.started_at)
            idx = min(int(sim.now // window), len(windows) - 1)
            windows[idx] += 1

        def start_transaction(state: ThreadState, fresh: bool) -> None:
            if fresh:
                state.rho = float(
                    self.lengths.sample(1, streams[state.thread_id])[0]
                )
                state.started_at = sim.now
            state.attempt_started_at = sim.now
            state.grace_until = -1.0
            state.commit_event = sim.after(
                state.rho, finish, state, label="commit"
            )
            if self.adversary == "per_attempt":
                rng = streams[state.thread_id]
                if rng.random() < self.p_conflict:
                    at = float(rng.random() * state.rho)
                    attempt_evt = state.commit_event

                    def hit(st=state, evt=attempt_evt):
                        # strike only if the same attempt is still live
                        if st.commit_event is evt and evt is not None:
                            others = [
                                t
                                for t in threads
                                if t is not st and t.commit_event is not None
                            ]
                            if others:
                                req = others[
                                    int(
                                        adversary_rng.integers(0, len(others))
                                    )
                                ]
                                strike(st, req)

                    sim.after(max(at, 1e-9), hit, label="adv-attempt")

        def finish(state: ThreadState) -> None:
            state.commit_event = None
            record_commit(state)
            sim.after(
                self.restart_delay, start_transaction, state, True,
                label="next-txn",
            )

        def abort(state: ThreadState) -> None:
            state.aborts += 1
            if state.commit_event is not None:
                sim.cancel(state.commit_event)
                state.commit_event = None
            sim.after(
                self.restart_delay, start_transaction, state, False,
                label="retry",
            )

        def pause(state: ThreadState, wait: float) -> None:
            """Stall a requestor thread for ``wait`` cycles: its pending
            commit slides right (the thread cannot make progress while
            its coherence request is being delayed)."""
            if state.commit_event is None or wait <= 0:
                return
            finish_at = state.attempt_started_at + state.rho
            sim.cancel(state.commit_event)
            state.attempt_started_at += wait
            state.commit_event = sim.at(
                max(finish_at + wait, sim.now), finish, state, label="commit"
            )

        def adversary_tick() -> None:
            # pick a running receiver not already in a grace period,
            # and a distinct running requestor who will pay the wait
            candidates = [
                t
                for t in threads
                if t.commit_event is not None and t.grace_until < sim.now
            ]
            if len(candidates) >= 2:
                i = int(adversary_rng.integers(0, len(candidates)))
                j = int(adversary_rng.integers(0, len(candidates) - 1))
                if j >= i:
                    j += 1
                strike(candidates[i], candidates[j])
            gap = adversary_rng.exponential(1.0 / self.conflict_rate)
            sim.after(max(gap, 1e-9), adversary_tick, label="adversary")

        def strike(state: ThreadState, requestor: ThreadState) -> None:
            delay = float(self.policy.sample(adversary_rng))
            remaining = (state.attempt_started_at + state.rho) - sim.now
            if remaining <= delay:
                # receiver commits within the grace; the requestor waits
                # out the receiver's remaining time (the cost model's
                # (k-1) * D term)
                state.grace_until = sim.now + remaining
                pause(requestor, remaining)
                return
            # receiver dies at the end of the grace period; the
            # requestor waited the full grace (the (k-1) * x term)
            state.grace_until = sim.now + delay
            pause(requestor, delay)
            doomed_event = state.commit_event

            def expire(st=state, evt=doomed_event):
                if st.commit_event is evt and evt is not None:
                    abort(st)

            sim.after(delay, expire, label="grace-expire")

        for state in threads:
            start_transaction(state, True)
        if self.adversary == "rate":
            sim.after(
                float(adversary_rng.exponential(1.0 / self.conflict_rate)),
                adversary_tick,
                label="adversary",
            )
        sim.run(until=horizon)

        gammas = [g for t in threads for g in t.gammas]
        return ThroughputTrace(
            window=window,
            commits_per_window=windows,
            total_commits=sum(t.commits for t in threads),
            total_aborts=sum(t.aborts for t in threads),
            mean_gamma=float(np.mean(gammas)) if gammas else math.nan,
        )
