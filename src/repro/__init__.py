"""repro — a reproduction of *The Transactional Conflict Problem*
(Alistarh, Haider, Kübler, Nadiradze; SPAA 2018).

The package implements, from scratch:

* the paper's optimal online abort-delay policies for requestor-wins
  and requestor-aborts conflict resolution (:mod:`repro.core`) with
  numeric verification of every theorem;
* the Section 8.1 synthetic testbed (:mod:`repro.synthetic`) and the
  Section 6 adversarial-scheduling arenas (:mod:`repro.adversary`);
* a discrete-event multicore HTM simulator — private L1s, a full-map
  MSI directory, lazy validation, requestor-wins with policy-driven
  grace periods (:mod:`repro.htm`) — plus the paper's stack, queue and
  transactional-application workloads (:mod:`repro.workloads`);
* experiment runners regenerating every figure and table
  (:mod:`repro.experiments`, CLI: ``python -m repro``).

Quickstart::

    from repro import ConflictModel, ConflictKind, optimal_requestor_wins

    model = ConflictModel(ConflictKind.REQUESTOR_WINS, B=2000.0, k=2)
    policy = optimal_requestor_wins(B=2000.0, mu=500.0)
    delay = policy.sample(rng=0)          # the grace period to grant
    cost = model.cost(delay, remaining=750.0)
"""

from __future__ import annotations

from repro.core import (
    BackoffPolicy,
    ChainRA,
    ClairvoyantPolicy,
    ConflictKind,
    ConflictModel,
    DelayPolicy,
    DeterministicRA,
    DeterministicRW,
    DiscreteSkiRentalRA,
    ExponentialRA,
    FixedDelayPolicy,
    HybridResolver,
    ImmediateAbortPolicy,
    MeanConstrainedRA,
    MeanConstrainedRW,
    PolynomialRW,
    UniformRW,
    competitive_ratio,
    constrained_competitive_ratio,
    expected_cost,
    optimal_requestor_aborts,
    optimal_requestor_wins,
    progress_attempt_bound,
    ratios,
    simulate_costs,
    validate_policy,
)
from repro.adversary import (
    Adversary,
    ArenaOutcome,
    Conflict,
    ConflictLedgerArena,
    ConflictSchedule,
    PeriodicAdversary,
    RandomAdversary,
    TargetedAdversary,
    ThroughputArena,
    TimedArena,
    Transaction,
)
from repro.distributions import (
    BimodalLengths,
    DeterministicLengths,
    ExponentialLengths,
    GeometricLengths,
    LengthDistribution,
    NormalLengths,
    PoissonLengths,
    UniformLengths,
    WorstCaseForDeterministic,
    get_distribution,
)
from repro.experiments import EXPERIMENTS, render_result, run_experiment
from repro.htm import (
    ConflictContext,
    CyclePolicy,
    DetDelay,
    GreedyCM,
    HybridDelay,
    Machine,
    MachineParams,
    MachineStats,
    NoDelay,
    RandDelay,
    RequestorAbortsDelay,
    RRWMeanDelay,
    TunedDelay,
    policy_from_name,
)
from repro.htm.profiler import AdaptiveDelay, CommitProfiler
from repro.sim.trace import Tracer
from repro.synthetic import SyntheticHarness, SyntheticResult, default_policy_suite
from repro.workloads import (
    BankWorkload,
    CounterWorkload,
    ListSetWorkload,
    QueueWorkload,
    StackWorkload,
    TxAppWorkload,
    Workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ConflictKind",
    "ConflictModel",
    "DelayPolicy",
    "FixedDelayPolicy",
    "ImmediateAbortPolicy",
    "DeterministicRW",
    "UniformRW",
    "MeanConstrainedRW",
    "PolynomialRW",
    "optimal_requestor_wins",
    "DeterministicRA",
    "ExponentialRA",
    "MeanConstrainedRA",
    "ChainRA",
    "DiscreteSkiRentalRA",
    "optimal_requestor_aborts",
    "ClairvoyantPolicy",
    "BackoffPolicy",
    "progress_attempt_bound",
    "HybridResolver",
    "ratios",
    "expected_cost",
    "competitive_ratio",
    "constrained_competitive_ratio",
    "simulate_costs",
    "validate_policy",
    # distributions
    "LengthDistribution",
    "GeometricLengths",
    "NormalLengths",
    "UniformLengths",
    "ExponentialLengths",
    "PoissonLengths",
    "DeterministicLengths",
    "BimodalLengths",
    "WorstCaseForDeterministic",
    "get_distribution",
    # synthetic
    "SyntheticHarness",
    "SyntheticResult",
    "default_policy_suite",
    # adversary
    "Transaction",
    "Conflict",
    "ConflictSchedule",
    "Adversary",
    "RandomAdversary",
    "PeriodicAdversary",
    "TargetedAdversary",
    "ConflictLedgerArena",
    "TimedArena",
    "ThroughputArena",
    "ArenaOutcome",
    # htm
    "Machine",
    "MachineParams",
    "MachineStats",
    "CyclePolicy",
    "ConflictContext",
    "NoDelay",
    "TunedDelay",
    "DetDelay",
    "RandDelay",
    "RRWMeanDelay",
    "RequestorAbortsDelay",
    "HybridDelay",
    "GreedyCM",
    "AdaptiveDelay",
    "CommitProfiler",
    "Tracer",
    "policy_from_name",
    # workloads
    "Workload",
    "StackWorkload",
    "QueueWorkload",
    "TxAppWorkload",
    "CounterWorkload",
    "BankWorkload",
    "ListSetWorkload",
    # experiments
    "EXPERIMENTS",
    "run_experiment",
    "render_result",
]
