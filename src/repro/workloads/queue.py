"""Concurrent FIFO queue under HTM (Figure 3, top-right).

Michael-Scott layout — ``HEAD`` and ``TAIL`` on separate cache lines,
each pointing into a linked list that starts at a dummy node — so the
transactional fast path and the lock-free CAS fallback share one data
structure and one set of invariants:

* fast path: enqueue/dequeue wrap the two pointer updates in a
  transaction (``TAIL`` never lags on this path);
* slow path: the standard MS algorithm with helping
  (a lagging ``TAIL`` left by a preempted slow-path enqueue is swung
  forward by whoever observes it).

Enqueues conflict on the ``TAIL`` line, dequeues on ``HEAD`` — two
contention hot spots instead of the stack's one, which is why the
paper's queue sustains lower absolute throughput than its stack.

Verification: dequeues must form a subsequence-consistent FIFO order of
enqueues; with the commit-window caveat (see stack), we check the
multiset properties exactly and FIFO order per *enqueuing* core (values
from one core must leave in their enqueue order — true FIFO implies it,
and it is robust to log-append skew).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.htm.isa import CAS, AbortTx, Compute, Fence, Read, Write
from repro.workloads.base import NodePool, Operation, OpContext, Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.htm.machine import Machine
    from repro.htm.params import MachineParams

__all__ = ["QueueWorkload", "EnqueueOp", "DequeueOp", "EMPTY"]

#: Sentinel result for dequeueing an empty queue.
EMPTY = -1

_VAL = 0
_NXT = 1


class EnqueueOp(Operation):
    name = "enqueue"

    def __init__(self, workload: "QueueWorkload", node: int, value: int) -> None:
        self.workload = workload
        self.node = node
        self.value = value

    def body(self, ctx: OpContext) -> Generator:
        w = self.workload
        yield Write(self.node + _VAL, self.value)
        yield Write(self.node + _NXT, 0)
        tail = yield Read(w.tail_addr)
        nxt = yield Read(tail + _NXT)
        if nxt != 0:
            # TAIL lags behind a slow-path enqueue (MS invariant); a
            # blind link here would overwrite the fallback's node.  The
            # read of tail.next is in our read set, so a racing CAS on
            # it conflicts us out — self-abort and retry.
            yield AbortTx()
        if w.op_compute:
            yield Compute(w.op_compute)
        yield Write(tail + _NXT, self.node)
        yield Write(w.tail_addr, self.node)
        return self.value

    def has_fallback(self) -> bool:
        return True

    def fallback(self, ctx: OpContext) -> Generator:
        # Michael-Scott enqueue with helping
        w = self.workload
        yield Write(self.node + _VAL, self.value)
        yield Write(self.node + _NXT, 0)
        while True:
            tail = yield Read(w.tail_addr)
            nxt = yield Read(tail + _NXT)
            if nxt != 0:
                # tail lags; help swing it
                yield CAS(w.tail_addr, tail, nxt)
                yield Fence()
                continue
            ok, _ = yield CAS(tail + _NXT, 0, self.node)
            if ok:
                yield CAS(w.tail_addr, tail, self.node)
                return self.value
            yield Fence()

    def on_commit(self, machine: "Machine", core_id: int, result: object) -> None:
        self.workload.log.append(("enq", core_id, self.value))


class DequeueOp(Operation):
    name = "dequeue"

    def __init__(self, workload: "QueueWorkload") -> None:
        self.workload = workload

    def body(self, ctx: OpContext) -> Generator:
        w = self.workload
        head = yield Read(w.head_addr)
        nxt = yield Read(head + _NXT)
        if nxt == 0:
            return EMPTY
        value = yield Read(nxt + _VAL)
        if w.op_compute:
            yield Compute(w.op_compute)
        yield Write(w.head_addr, nxt)
        return value

    def has_fallback(self) -> bool:
        return True

    def fallback(self, ctx: OpContext) -> Generator:
        # Michael-Scott dequeue
        w = self.workload
        while True:
            head = yield Read(w.head_addr)
            tail = yield Read(w.tail_addr)
            nxt = yield Read(head + _NXT)
            if nxt == 0:
                return EMPTY
            if head == tail:
                # tail lags behind a completed enqueue; help
                yield CAS(w.tail_addr, tail, nxt)
                yield Fence()
                continue
            value = yield Read(nxt + _VAL)
            ok, _ = yield CAS(w.head_addr, head, nxt)
            if ok:
                return value
            yield Fence()

    def on_commit(self, machine: "Machine", core_id: int, result: object) -> None:
        self.workload.log.append(("deq", core_id, result))


class QueueWorkload(Workload):
    """Enqueue/dequeue mix per core (default: strict alternation).

    ``p_enqueue=None`` alternates (the paper's setup); a float draws
    enqueues i.i.d. with that probability.
    """

    name = "queue"

    def __init__(
        self,
        *,
        prefill: int = 64,
        op_compute: int = 0,
        pool_capacity: int = 1 << 14,
        p_enqueue: float | None = None,
    ) -> None:
        if p_enqueue is not None and not 0.0 <= p_enqueue <= 1.0:
            raise ValueError(f"p_enqueue must be in [0, 1], got {p_enqueue}")
        self.prefill = prefill
        self.op_compute = op_compute
        self.pool_capacity = pool_capacity
        self.p_enqueue = p_enqueue
        self.head_addr = -1
        self.tail_addr = -1
        self.pool: NodePool | None = None
        self.log: list[tuple[str, int, int]] = []
        self._seq: list[int] = []
        self._phase: list[int] = []

    def setup(self, machine: "Machine") -> None:
        n = machine.params.n_cores
        self.head_addr = machine.alloc(1)
        self.tail_addr = machine.alloc(1)
        self.pool = NodePool(machine, n, self.pool_capacity, 2)
        self._seq = [0] * n
        self._phase = [0] * n
        self.log = []
        dummy = self.pool.take(0)
        machine.poke(dummy + _VAL, 0)
        machine.poke(dummy + _NXT, 0)
        machine.poke(self.head_addr, dummy)
        machine.poke(self.tail_addr, dummy)
        # prefill
        tail = dummy
        for _ in range(self.prefill):
            node = self.pool.take(0)
            value = self._value_for(0, self._next_seq(0))
            machine.poke(node + _VAL, value)
            machine.poke(node + _NXT, 0)
            machine.poke(tail + _NXT, node)
            machine.poke(self.tail_addr, node)
            self.log.append(("enq", -1, value))
            tail = node

    def _value_for(self, core_id: int, seq: int) -> int:
        return ((core_id + 1) << 32) | seq

    def _next_seq(self, core_id: int) -> int:
        self._seq[core_id] += 1
        return self._seq[core_id]

    def next_op(self, core_id: int, rng: np.random.Generator) -> Operation:
        assert self.pool is not None
        if self.p_enqueue is None:
            self._phase[core_id] ^= 1
            is_enq = bool(self._phase[core_id])
        else:
            is_enq = bool(rng.random() < self.p_enqueue)
        if is_enq:
            node = self.pool.take(core_id)
            value = self._value_for(core_id, self._next_seq(core_id))
            return EnqueueOp(self, node, value)
        return DequeueOp(self)

    def tuned_delay_cycles(self, params: "MachineParams") -> int:
        remote = 2 * params.hop + params.dir_lookup + params.l1_hit
        # enqueue touches TAIL and the predecessor's line remotely
        return 2 * remote + 2 * params.l1_hit + self.op_compute + params.commit_cycles

    def verify(self, machine: "Machine") -> None:
        enq_order: dict[int, list[int]] = {}
        enqueued: set[int] = set()
        for kind, core, value in self.log:
            if kind == "enq":
                self._require(value not in enqueued, f"double enqueue {value}")
                enqueued.add(value)
                src = value >> 32
                enq_order.setdefault(src, []).append(value)
        dequeued: set[int] = set()
        deq_by_src: dict[int, list[int]] = {}
        for kind, core, value in self.log:
            if kind == "deq" and value != EMPTY:
                self._require(value in enqueued, f"dequeued {value} never enqueued")
                self._require(value not in dequeued, f"double dequeue {value}")
                dequeued.add(value)
                deq_by_src.setdefault(value >> 32, []).append(value)
        # per-source FIFO: a core's values leave in the order they entered
        for src, outs in deq_by_src.items():
            ins = enq_order.get(src, [])
            positions = {v: i for i, v in enumerate(ins)}
            idx = [positions[v] for v in outs]
            self._require(
                idx == sorted(idx),
                f"per-source FIFO violated for enqueuer {src}",
            )
        # final chain = enqueued - dequeued
        live: list[int] = []
        addr = machine.peek(machine.peek(self.head_addr) + _NXT)
        hops = 0
        while addr != 0:
            live.append(machine.peek(addr + _VAL))
            addr = machine.peek(addr + _NXT)
            hops += 1
            self._require(hops <= len(enqueued) + 1, "cycle in queue chain")
        self._require(
            sorted(live) == sorted(enqueued - dequeued),
            f"final queue contents mismatch: {len(live)} live vs "
            f"{len(enqueued - dequeued)} expected",
        )
