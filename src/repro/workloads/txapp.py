"""The transactional application (Figure 3, bottom row).

Each operation "jointly acquires and modifies two out of a set of 64
objects in order to commit" (Section 8.2): the transaction reads both
objects, performs its body computation, and writes both back.  Each
object sits on its own cache line.  Two variants:

* **uniform** — every transaction carries the same body work;
* **bimodal** — transactions alternate between short and very long
  bodies, the regime where the paper shows hand-tuning breaks down and
  the randomized policy wins.

The fallback path is a test-and-CAS global lock (the canonical HTM
fallback), so the slow path serializes — escalations are visible as
throughput loss, as in real HTM deployments.

Verification: every committed transaction increments both of its
objects by exactly 1, so the final object values must sum to
``2 * committed_ops`` (plus each object's count of touches) — a strong
atomicity check: a torn transaction (one write applied, not the other)
breaks the ledger.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.htm.isa import CAS, AbortTx, Compute, Fence, Read, Write
from repro.workloads.base import Operation, OpContext, Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.htm.machine import Machine
    from repro.htm.params import MachineParams

__all__ = ["TxAppWorkload", "AppTxOp"]


class AppTxOp(Operation):
    """Read-modify-write two distinct objects with body work between."""

    name = "apptx"

    def __init__(
        self, workload: "TxAppWorkload", obj_a: int, obj_b: int, work: int
    ) -> None:
        self.workload = workload
        self.obj_a = obj_a
        self.obj_b = obj_b
        self.work = work

    def body(self, ctx: OpContext) -> Generator:
        w = self.workload
        # lock subscription (standard lock elision): the fast path must
        # not run concurrently with a fallback lock holder, so read the
        # lock into the tx read set and self-abort while it is held —
        # the holder's release then conflicts us out if it races.
        lock = yield Read(w.lock_addr)
        if lock != 0:
            yield AbortTx()
        a_val = yield Read(w.obj_addr[self.obj_a])
        yield Compute(max(1, self.work // 2))
        yield Write(w.obj_addr[self.obj_a], a_val + 1)
        b_val = yield Read(w.obj_addr[self.obj_b])
        yield Compute(max(1, self.work - self.work // 2))
        yield Write(w.obj_addr[self.obj_b], b_val + 1)
        return (self.obj_a, self.obj_b)

    def has_fallback(self) -> bool:
        return True

    def fallback(self, ctx: OpContext) -> Generator:
        # global test-and-CAS lock
        w = self.workload
        while True:
            held = yield Read(w.lock_addr)
            if held != 0:
                yield Fence()
                continue
            ok, _ = yield CAS(w.lock_addr, 0, ctx.core_id + 1)
            if ok:
                break
            yield Fence()
        a_val = yield Read(w.obj_addr[self.obj_a])
        yield Compute(max(1, self.work // 2))
        yield Write(w.obj_addr[self.obj_a], a_val + 1)
        b_val = yield Read(w.obj_addr[self.obj_b])
        yield Compute(max(1, self.work - self.work // 2))
        yield Write(w.obj_addr[self.obj_b], b_val + 1)
        yield Write(w.lock_addr, 0)
        return (self.obj_a, self.obj_b)

    def on_commit(self, machine: "Machine", core_id: int, result: object) -> None:
        self.workload.touches[self.obj_a] += 1
        self.workload.touches[self.obj_b] += 1
        self.workload.committed += 1


class TxAppWorkload(Workload):
    """2-of-``n_objects`` read-modify-write transactions.

    Parameters
    ----------
    n_objects:
        Size of the object set (paper: 64).
    work_cycles:
        Body computation per transaction in the uniform variant.
    bimodal:
        When True, operations alternate ``work_cycles`` and
        ``long_factor * work_cycles`` bodies per core (the paper's
        "transactions alternate between short and very long").
    long_factor:
        Length ratio of the long mode.
    """

    name = "txapp"

    def __init__(
        self,
        *,
        n_objects: int = 64,
        work_cycles: int = 200,
        bimodal: bool = False,
        long_factor: int = 20,
    ) -> None:
        if n_objects < 2:
            raise ValueError("need >= 2 objects")
        self.n_objects = n_objects
        self.work_cycles = work_cycles
        self.bimodal = bimodal
        self.long_factor = long_factor
        self.obj_addr: list[int] = []
        self.lock_addr = -1
        self.touches = [0] * n_objects
        self.committed = 0
        self._phase: list[int] = []

    def setup(self, machine: "Machine") -> None:
        self.obj_addr = [machine.alloc(1) for _ in range(self.n_objects)]
        self.lock_addr = machine.alloc(1)
        self.touches = [0] * self.n_objects
        self.committed = 0
        self._phase = [0] * machine.params.n_cores
        for addr in self.obj_addr:
            machine.poke(addr, 0)
        machine.poke(self.lock_addr, 0)

    def next_op(self, core_id: int, rng: np.random.Generator) -> Operation:
        a = int(rng.integers(0, self.n_objects))
        b = int(rng.integers(0, self.n_objects - 1))
        if b >= a:
            b += 1
        work = self.work_cycles
        if self.bimodal:
            self._phase[core_id] ^= 1
            if self._phase[core_id] == 0:
                work = self.work_cycles * self.long_factor
        return AppTxOp(self, a, b, work)

    def mean_work_cycles(self) -> float:
        """Mean transaction body length (what a profiler would report)."""
        if not self.bimodal:
            return float(self.work_cycles)
        return self.work_cycles * (1 + self.long_factor) / 2.0

    def tuned_delay_cycles(self, params: "MachineParams") -> int:
        remote = 2 * params.hop + params.dir_lookup + params.l1_hit
        return int(self.mean_work_cycles()) + 2 * remote + params.commit_cycles

    def verify(self, machine: "Machine") -> None:
        total_incr = 0
        for i, addr in enumerate(self.obj_addr):
            value = machine.peek(addr)
            self._require(
                value == self.touches[i],
                f"object {i}: value {value} != committed touches "
                f"{self.touches[i]} (torn transaction)",
            )
            total_incr += value
        self._require(
            total_incr == 2 * self.committed,
            f"object increments {total_incr} != 2 x {self.committed} commits",
        )
