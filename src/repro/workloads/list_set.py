"""Sorted linked-list set workload (extension).

Transactions traverse a sorted singly-linked list (head sentinel) to
insert, remove, or look up a key.  Unlike the stack/queue, the read set
*grows with the traversal*, so conflicts arrive on interior nodes, and
chains of size k > 2 form naturally when several traversals pile up
behind one writer — the regime where Theorem 6's k-aware policies
differ from the k = 2 forms.

Verification replays the committed log per key: successful inserts and
removes of one key must strictly alternate (insert first), and the
final membership reconstructed from the log must equal the actual final
chain (which must also be sorted and duplicate-free).

Removed nodes are unlinked but never recycled (see NodePool), so the
fallback traversals are ABA-safe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.htm.isa import CAS, AbortTx, Fence, Read, Write
from repro.workloads.base import NodePool, Operation, OpContext, Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.htm.machine import Machine
    from repro.htm.params import MachineParams

__all__ = ["ListSetWorkload", "InsertOp", "RemoveOp", "ContainsOp"]

_VAL = 0
_NXT = 1


def _traverse(workload: "ListSetWorkload", key: int) -> Generator:
    """Walk to the first node with value >= key.

    Returns ``(prev_addr, cur_addr, cur_val)`` where ``prev_addr`` is
    the predecessor node (possibly the head sentinel) and ``cur_addr``
    is 0 at the end of the list.
    """
    prev = workload.head_addr
    cur = yield Read(prev + _NXT)
    while cur != 0:
        val = yield Read(cur + _VAL)
        if val >= key:
            return prev, cur, val
        prev = cur
        cur = yield Read(cur + _NXT)
    return prev, 0, None


class _LockMixin:
    def _acquire_lock(self, ctx: OpContext) -> Generator:
        w = self.workload  # type: ignore[attr-defined]
        while True:
            held = yield Read(w.lock_addr)
            if held != 0:
                yield Fence()
                continue
            ok, _ = yield CAS(w.lock_addr, 0, ctx.core_id + 1)
            if ok:
                return
            yield Fence()

    def _subscribe(self) -> Generator:
        w = self.workload  # type: ignore[attr-defined]
        lock = yield Read(w.lock_addr)
        if lock != 0:
            yield AbortTx()


class InsertOp(_LockMixin, Operation):
    name = "insert"

    def __init__(self, workload: "ListSetWorkload", node: int, key: int) -> None:
        self.workload = workload
        self.node = node
        self.key = key

    def _logic(self) -> Generator:
        prev, cur, val = yield from _traverse(self.workload, self.key)
        if cur != 0 and val == self.key:
            return False  # already present
        yield Write(self.node + _VAL, self.key)
        yield Write(self.node + _NXT, cur)
        yield Write(prev + _NXT, self.node)
        return True

    def body(self, ctx: OpContext) -> Generator:
        yield from self._subscribe()
        result = yield from self._logic()
        return result

    def has_fallback(self) -> bool:
        return True

    def fallback(self, ctx: OpContext) -> Generator:
        yield from self._acquire_lock(ctx)
        result = yield from self._logic()
        yield Write(self.workload.lock_addr, 0)
        return result

    def on_commit(self, machine: "Machine", core_id: int, result: object) -> None:
        self.workload.log.append(("insert", self.key, bool(result)))


class RemoveOp(_LockMixin, Operation):
    name = "remove"

    def __init__(self, workload: "ListSetWorkload", key: int) -> None:
        self.workload = workload
        self.key = key

    def _logic(self) -> Generator:
        prev, cur, val = yield from _traverse(self.workload, self.key)
        if cur == 0 or val != self.key:
            return False  # absent
        nxt = yield Read(cur + _NXT)
        yield Write(prev + _NXT, nxt)
        return True

    def body(self, ctx: OpContext) -> Generator:
        yield from self._subscribe()
        result = yield from self._logic()
        return result

    def has_fallback(self) -> bool:
        return True

    def fallback(self, ctx: OpContext) -> Generator:
        yield from self._acquire_lock(ctx)
        result = yield from self._logic()
        yield Write(self.workload.lock_addr, 0)
        return result

    def on_commit(self, machine: "Machine", core_id: int, result: object) -> None:
        self.workload.log.append(("remove", self.key, bool(result)))


class ContainsOp(_LockMixin, Operation):
    name = "contains"

    def __init__(self, workload: "ListSetWorkload", key: int) -> None:
        self.workload = workload
        self.key = key

    def _logic(self) -> Generator:
        _prev, cur, val = yield from _traverse(self.workload, self.key)
        return cur != 0 and val == self.key

    def body(self, ctx: OpContext) -> Generator:
        yield from self._subscribe()
        result = yield from self._logic()
        return result

    def has_fallback(self) -> bool:
        return True

    def fallback(self, ctx: OpContext) -> Generator:
        yield from self._acquire_lock(ctx)
        result = yield from self._logic()
        yield Write(self.workload.lock_addr, 0)
        return result

    def on_commit(self, machine: "Machine", core_id: int, result: object) -> None:
        self.workload.lookups += 1


class ListSetWorkload(Workload):
    """Insert/remove/contains over a bounded key range.

    Parameters
    ----------
    key_range:
        Keys are drawn uniformly from ``[0, key_range)``; smaller ranges
        mean hotter lists.
    p_insert / p_remove:
        Operation mix (the remainder are lookups).
    prefill:
        Keys pre-inserted at setup (every other key, up to this many).
    """

    name = "listset"

    def __init__(
        self,
        *,
        key_range: int = 64,
        p_insert: float = 0.4,
        p_remove: float = 0.4,
        prefill: int = 16,
        pool_capacity: int = 1 << 14,
    ) -> None:
        if key_range < 2:
            raise ValueError("key_range must be >= 2")
        if p_insert < 0 or p_remove < 0 or p_insert + p_remove > 1.0:
            raise ValueError("bad operation mix")
        self.key_range = key_range
        self.p_insert = p_insert
        self.p_remove = p_remove
        self.prefill = prefill
        self.pool_capacity = pool_capacity
        self.head_addr = -1
        self.lock_addr = -1
        self.pool: NodePool | None = None
        self.log: list[tuple[str, int, bool]] = []
        self.lookups = 0

    def setup(self, machine: "Machine") -> None:
        n = machine.params.n_cores
        self.head_addr = machine.alloc(2)  # sentinel: [unused, next]
        self.lock_addr = machine.alloc(1)
        self.pool = NodePool(machine, n, self.pool_capacity, 2)
        self.log = []
        self.lookups = 0
        machine.poke(self.head_addr + _NXT, 0)
        machine.poke(self.lock_addr, 0)
        # prefill with every other key, keeping the chain sorted
        tail = self.head_addr
        count = 0
        for key in range(0, self.key_range, 2):
            if count >= self.prefill:
                break
            node = self.pool.take(0)
            machine.poke(node + _VAL, key)
            machine.poke(node + _NXT, 0)
            machine.poke(tail + _NXT, node)
            self.log.append(("insert", key, True))
            tail = node
            count += 1

    def next_op(self, core_id: int, rng: np.random.Generator) -> Operation:
        assert self.pool is not None
        key = int(rng.integers(0, self.key_range))
        roll = rng.random()
        if roll < self.p_insert:
            return InsertOp(self, self.pool.take(core_id), key)
        if roll < self.p_insert + self.p_remove:
            return RemoveOp(self, key)
        return ContainsOp(self, key)

    def tuned_delay_cycles(self, params: "MachineParams") -> int:
        remote = 2 * params.hop + params.dir_lookup + params.l1_hit
        # expected traversal length ~ half the live set
        return (self.prefill // 2 + 2) * remote + params.commit_cycles

    def verify(self, machine: "Machine") -> None:
        # per-key alternation of successful ops
        state: dict[int, bool] = {}
        for kind, key, ok in self.log:
            if not ok:
                continue
            present = state.get(key, False)
            if kind == "insert":
                self._require(
                    not present, f"successful insert of present key {key}"
                )
                state[key] = True
            else:
                self._require(
                    present, f"successful remove of absent key {key}"
                )
                state[key] = False
        expected = {key for key, present in state.items() if present}
        # final chain: sorted, duplicate-free, matching the log replay
        chain: list[int] = []
        addr = machine.peek(self.head_addr + _NXT)
        hops = 0
        while addr != 0:
            chain.append(machine.peek(addr + _VAL))
            addr = machine.peek(addr + _NXT)
            hops += 1
            self._require(hops <= len(self.log) + 2, "cycle in list chain")
        self._require(chain == sorted(chain), f"chain not sorted: {chain}")
        self._require(
            len(chain) == len(set(chain)), f"duplicate keys in chain: {chain}"
        )
        self._require(
            set(chain) == expected,
            f"final membership mismatch: chain {sorted(set(chain))} vs "
            f"log replay {sorted(expected)}",
        )
