"""Bank-transfer workload (extension): the classic TM benchmark.

``n_accounts`` accounts, one per cache line.  Most operations transfer
a random amount between two random accounts inside a transaction; a
configurable fraction are **audits** — long read-only transactions that
sum every account.  Audits are the interesting stressor: their read set
spans all lines, so any concurrent committer conflicts them, and the
grace-period policies decide whether the nearly-finished audit survives.

Verification is strong:

* conservation — the final account total equals the initial total;
* snapshot consistency — every committed audit must have observed the
  exact global total (a torn read of a half-applied transfer would show
  up as a different sum, because transfers preserve the total).

The fallback path takes a global test-and-CAS lock; the HTM fast path
subscribes to it (see txapp).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.htm.isa import CAS, AbortTx, Compute, Fence, Read, Write
from repro.workloads.base import Operation, OpContext, Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.htm.machine import Machine
    from repro.htm.params import MachineParams

__all__ = ["BankWorkload", "TransferOp", "AuditOp"]


class TransferOp(Operation):
    """Move ``amount`` from account ``src`` to account ``dst``."""

    name = "transfer"

    def __init__(
        self, workload: "BankWorkload", src: int, dst: int, amount: int
    ) -> None:
        self.workload = workload
        self.src = src
        self.dst = dst
        self.amount = amount

    def _logic(self, locked: bool) -> Generator:
        w = self.workload
        src_bal = yield Read(w.account_addr[self.src])
        if w.work_cycles:
            yield Compute(w.work_cycles)
        dst_bal = yield Read(w.account_addr[self.dst])
        yield Write(w.account_addr[self.src], src_bal - self.amount)
        yield Write(w.account_addr[self.dst], dst_bal + self.amount)
        return self.amount

    def body(self, ctx: OpContext) -> Generator:
        w = self.workload
        lock = yield Read(w.lock_addr)
        if lock != 0:
            yield AbortTx()
        result = yield from self._logic(locked=False)
        return result

    def has_fallback(self) -> bool:
        return True

    def fallback(self, ctx: OpContext) -> Generator:
        w = self.workload
        while True:
            held = yield Read(w.lock_addr)
            if held != 0:
                yield Fence()
                continue
            ok, _ = yield CAS(w.lock_addr, 0, ctx.core_id + 1)
            if ok:
                break
            yield Fence()
        result = yield from self._logic(locked=True)
        yield Write(w.lock_addr, 0)
        return result

    def on_commit(self, machine: "Machine", core_id: int, result: object) -> None:
        self.workload.transfers_committed += 1


class AuditOp(Operation):
    """Sum every account inside one transaction (read-only)."""

    name = "audit"

    def __init__(self, workload: "BankWorkload") -> None:
        self.workload = workload

    def _logic(self) -> Generator:
        total = 0
        for addr in self.workload.account_addr:
            total += yield Read(addr)
        return total

    def body(self, ctx: OpContext) -> Generator:
        w = self.workload
        lock = yield Read(w.lock_addr)
        if lock != 0:
            yield AbortTx()
        total = yield from self._logic()
        return total

    def has_fallback(self) -> bool:
        return True

    def fallback(self, ctx: OpContext) -> Generator:
        w = self.workload
        while True:
            held = yield Read(w.lock_addr)
            if held != 0:
                yield Fence()
                continue
            ok, _ = yield CAS(w.lock_addr, 0, ctx.core_id + 1)
            if ok:
                break
            yield Fence()
        total = yield from self._logic()
        yield Write(w.lock_addr, 0)
        return total

    def on_commit(self, machine: "Machine", core_id: int, result: object) -> None:
        self.workload.audit_sums.append(int(result))  # type: ignore[arg-type]


class BankWorkload(Workload):
    """Random transfers with occasional full audits.

    Parameters
    ----------
    n_accounts:
        Account count (each on its own line).
    initial_balance:
        Starting balance per account.
    p_audit:
        Probability an operation is an audit.
    work_cycles:
        Body computation inside each transfer.
    """

    name = "bank"

    def __init__(
        self,
        *,
        n_accounts: int = 32,
        initial_balance: int = 1000,
        p_audit: float = 0.05,
        work_cycles: int = 20,
    ) -> None:
        if n_accounts < 2:
            raise ValueError("need >= 2 accounts")
        if not 0.0 <= p_audit <= 1.0:
            raise ValueError("p_audit must be in [0, 1]")
        self.n_accounts = n_accounts
        self.initial_balance = initial_balance
        self.p_audit = p_audit
        self.work_cycles = work_cycles
        self.account_addr: list[int] = []
        self.lock_addr = -1
        self.transfers_committed = 0
        self.audit_sums: list[int] = []

    def setup(self, machine: "Machine") -> None:
        self.account_addr = [machine.alloc(1) for _ in range(self.n_accounts)]
        self.lock_addr = machine.alloc(1)
        self.transfers_committed = 0
        self.audit_sums = []
        for addr in self.account_addr:
            machine.poke(addr, self.initial_balance)
        machine.poke(self.lock_addr, 0)

    @property
    def expected_total(self) -> int:
        return self.n_accounts * self.initial_balance

    def next_op(self, core_id: int, rng: np.random.Generator) -> Operation:
        if rng.random() < self.p_audit:
            return AuditOp(self)
        src = int(rng.integers(0, self.n_accounts))
        dst = int(rng.integers(0, self.n_accounts - 1))
        if dst >= src:
            dst += 1
        amount = int(rng.integers(1, 100))
        return TransferOp(self, src, dst, amount)

    def tuned_delay_cycles(self, params: "MachineParams") -> int:
        remote = 2 * params.hop + params.dir_lookup + params.l1_hit
        return self.work_cycles + 2 * remote + params.commit_cycles

    def verify(self, machine: "Machine") -> None:
        total = sum(machine.peek(addr) for addr in self.account_addr)
        self._require(
            total == self.expected_total,
            f"money not conserved: {total} != {self.expected_total}",
        )
        for i, observed in enumerate(self.audit_sums):
            self._require(
                observed == self.expected_total,
                f"audit {i} observed a torn total {observed} != "
                f"{self.expected_total} (isolation violation)",
            )
