"""Workload interface for the HTM machine.

A workload owns shared memory layout (installed in
:meth:`Workload.setup`) and serves :class:`Operation` objects to cores.
Each operation provides a transactional ``body`` generator and an
optional lock-free ``fallback`` generator (run after repeated aborts).
Generators must be **replayable**: an aborted attempt restarts the body
from scratch, so any resources (e.g. a node address) must be acquired
in ``__init__`` and reused idempotently.

Workloads also keep a committed-operation log (fed from ``on_commit``)
that the integration tests use for linearizability-style checking.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover
    from repro.htm.machine import Machine
    from repro.htm.params import MachineParams

__all__ = ["OpContext", "Operation", "Workload", "NodePool"]


@dataclass(frozen=True)
class OpContext:
    """Runtime context handed to operation generators."""

    core_id: int
    rng: np.random.Generator


class Operation(abc.ABC):
    """One logical operation (push, pop, enqueue, app transaction...)."""

    name: str = "op"

    @abc.abstractmethod
    def body(self, ctx: OpContext) -> Generator:
        """Transactional path (run between TxBegin/TxEnd by the core)."""

    def fallback(self, ctx: OpContext) -> Generator:
        """Non-transactional lock-free path; override with
        :meth:`has_fallback` returning True to enable."""
        raise NotImplementedError(f"{self.name} has no fallback path")

    def has_fallback(self) -> bool:
        return False

    def on_commit(self, machine: "Machine", core_id: int, result: object) -> None:
        """Hook fired when the operation completes (commits or finishes
        its fallback)."""


class Workload(abc.ABC):
    """Shared state + operation factory."""

    name: str = "workload"

    @abc.abstractmethod
    def setup(self, machine: "Machine") -> None:
        """Allocate and initialize shared memory on the machine."""

    @abc.abstractmethod
    def next_op(self, core_id: int, rng: np.random.Generator) -> Operation | None:
        """The next operation for a core (None = core goes idle)."""

    @abc.abstractmethod
    def tuned_delay_cycles(self, params: "MachineParams") -> int:
        """The hand-tuned grace period for DELAY_TUNED: the profiled
        mean fast-path transaction duration of this workload."""

    def verify(self, machine: "Machine") -> None:
        """Post-run logical consistency checks (raise
        :class:`~repro.errors.WorkloadError` on violation)."""

    # -- common helper -----------------------------------------------------
    @staticmethod
    def _require(cond: bool, message: str) -> None:
        if not cond:
            raise WorkloadError(message)


class NodePool:
    """Per-thread bump allocator over a preallocated node region.

    Nodes are never recycled within a run (wrap-around only after
    ``capacity`` allocations), which keeps the lock-free fallback paths
    safe from ABA at simulation timescales; each node occupies its own
    cache line to avoid false sharing between threads.
    """

    def __init__(
        self,
        machine: "Machine",
        threads: int,
        capacity_per_thread: int,
        words_per_node: int,
    ) -> None:
        if capacity_per_thread < 1 or words_per_node < 1:
            raise WorkloadError("bad node pool geometry")
        line = machine.params.line_words
        self.stride = max(words_per_node, line)
        self.capacity = capacity_per_thread
        self.base = [
            machine.alloc(self.stride * capacity_per_thread)
            for _ in range(threads)
        ]
        self._next = [0] * threads
        self.wrapped = [False] * threads

    def take(self, thread: int) -> int:
        """Allocate one node; returns its base word address (never 0)."""
        idx = self._next[thread]
        self._next[thread] = idx + 1
        if self._next[thread] >= self.capacity:
            self._next[thread] = 0
            self.wrapped[thread] = True
        addr = self.base[thread] + idx * self.stride
        if addr == 0:
            # address 0 doubles as the null pointer; skip it
            return self.take(thread)
        return addr
