"""Concurrent stack under HTM (Figure 3, top-left).

Layout: a ``TOP`` pointer on its own cache line; nodes
``[value, next]`` each on their own line, bump-allocated per thread.
Every core alternates push and pop, as in the paper ("the stack ...
simply alternate inserts and deletes").  The transactional fast path
wraps the pointer manipulation in one transaction; the slow path is a
Treiber stack on CAS.

All contention focuses on the ``TOP`` line — short, stable transactions,
the regime where the paper's hand-tuned delay is near-optimal and the
online policies should track it closely.

Verification: every pushed value is globally unique
(``core_id * 2^32 + seq``); :meth:`StackWorkload.verify` replays the
committed log and checks (1) no value is popped before some push of it
committed, (2) no double pops, and (3) the final in-memory chain equals
pushed-minus-popped as a multiset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.htm.isa import CAS, Compute, Fence, Read, Write
from repro.workloads.base import NodePool, Operation, OpContext, Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.htm.machine import Machine
    from repro.htm.params import MachineParams

__all__ = ["StackWorkload", "PushOp", "PopOp", "EMPTY"]

#: Sentinel result for popping an empty stack.
EMPTY = -1

_VAL = 0  # node word offsets
_NXT = 1


class PushOp(Operation):
    """Push one unique value."""

    name = "push"

    def __init__(self, workload: "StackWorkload", node: int, value: int) -> None:
        self.workload = workload
        self.node = node
        self.value = value

    def body(self, ctx: OpContext) -> Generator:
        top = yield Read(self.workload.top_addr)
        yield Write(self.node + _VAL, self.value)
        yield Write(self.node + _NXT, top)
        if self.workload.op_compute:
            yield Compute(self.workload.op_compute)
        yield Write(self.workload.top_addr, self.node)
        return self.value

    def has_fallback(self) -> bool:
        return True

    def fallback(self, ctx: OpContext) -> Generator:
        # Treiber push
        while True:
            top = yield Read(self.workload.top_addr)
            yield Write(self.node + _VAL, self.value)
            yield Write(self.node + _NXT, top)
            ok, _ = yield CAS(self.workload.top_addr, top, self.node)
            if ok:
                return self.value
            yield Fence()

    def on_commit(self, machine: "Machine", core_id: int, result: object) -> None:
        self.workload.log.append(("push", core_id, self.value))


class PopOp(Operation):
    """Pop (returns :data:`EMPTY` when the stack is empty)."""

    name = "pop"

    def __init__(self, workload: "StackWorkload") -> None:
        self.workload = workload

    def body(self, ctx: OpContext) -> Generator:
        top = yield Read(self.workload.top_addr)
        if top == 0:
            return EMPTY
        value = yield Read(top + _VAL)
        nxt = yield Read(top + _NXT)
        if self.workload.op_compute:
            yield Compute(self.workload.op_compute)
        yield Write(self.workload.top_addr, nxt)
        return value

    def has_fallback(self) -> bool:
        return True

    def fallback(self, ctx: OpContext) -> Generator:
        # Treiber pop
        while True:
            top = yield Read(self.workload.top_addr)
            if top == 0:
                return EMPTY
            value = yield Read(top + _VAL)
            nxt = yield Read(top + _NXT)
            ok, _ = yield CAS(self.workload.top_addr, top, nxt)
            if ok:
                return value
            yield Fence()

    def on_commit(self, machine: "Machine", core_id: int, result: object) -> None:
        self.workload.log.append(("pop", core_id, result))


class StackWorkload(Workload):
    """Push/pop mix per core, seeded with ``prefill`` elements.

    ``op_compute`` adds fixed body work to each transaction (0 keeps the
    paper's bare pointer-flip transactions).  ``p_push=None`` (default)
    strictly alternates push and pop, matching the paper's "simply
    alternate inserts and deletes"; a float draws pushes i.i.d. with
    that probability (a push-heavy mix grows the stack, a pop-heavy one
    drains it into EMPTY returns).
    """

    name = "stack"

    def __init__(
        self,
        *,
        prefill: int = 64,
        op_compute: int = 0,
        pool_capacity: int = 1 << 14,
        p_push: float | None = None,
    ) -> None:
        if p_push is not None and not 0.0 <= p_push <= 1.0:
            raise ValueError(f"p_push must be in [0, 1], got {p_push}")
        self.prefill = prefill
        self.op_compute = op_compute
        self.pool_capacity = pool_capacity
        self.p_push = p_push
        self.top_addr = -1
        self.pool: NodePool | None = None
        self.log: list[tuple[str, int, int]] = []
        self._seq: list[int] = []
        self._phase: list[int] = []

    # -- setup --------------------------------------------------------------
    def setup(self, machine: "Machine") -> None:
        n = machine.params.n_cores
        self.top_addr = machine.alloc(1)
        self.pool = NodePool(machine, n, self.pool_capacity, 2)
        self._seq = [0] * n
        self.log = []
        self._phase = [0] * n
        # prefill with values "pushed" by a virtual setup thread
        top = 0
        for i in range(self.prefill):
            node = self.pool.take(0)
            value = self._value_for(0, self._next_seq(0))
            machine.poke(node + _VAL, value)
            machine.poke(node + _NXT, top)
            self.log.append(("push", -1, value))
            top = node
        machine.poke(self.top_addr, top)

    def _value_for(self, core_id: int, seq: int) -> int:
        return ((core_id + 1) << 32) | seq

    def _next_seq(self, core_id: int) -> int:
        self._seq[core_id] += 1
        return self._seq[core_id]

    # -- op factory -----------------------------------------------------------
    def next_op(self, core_id: int, rng: np.random.Generator) -> Operation:
        assert self.pool is not None
        if self.p_push is None:
            self._phase[core_id] ^= 1
            is_push = bool(self._phase[core_id])
        else:
            is_push = bool(rng.random() < self.p_push)
        if is_push:
            node = self.pool.take(core_id)
            value = self._value_for(core_id, self._next_seq(core_id))
            return PushOp(self, node, value)
        return PopOp(self)

    # -- tuning ----------------------------------------------------------------
    def tuned_delay_cycles(self, params: "MachineParams") -> int:
        """Profiled mean fast-path length: ~4 accesses; under contention
        the TOP access is a remote miss (directory round trip), node
        accesses are local hits."""
        remote = 2 * params.hop + params.dir_lookup + params.l1_hit
        local = 3 * params.l1_hit
        return remote + local + self.op_compute + params.commit_cycles

    # -- verification ------------------------------------------------------------
    def verify(self, machine: "Machine") -> None:
        # Two passes: log-append order can differ from linearization
        # order by up to the commit latency, so pops are checked against
        # the full push set rather than a running prefix.
        pushed: set[int] = set()
        popped: set[int] = set()
        for kind, _core, value in self.log:
            if kind == "push":
                self._require(value not in pushed, f"double push of {value}")
                pushed.add(value)
        for kind, _core, value in self.log:
            if kind == "pop":
                if value == EMPTY:
                    continue
                self._require(
                    value in pushed, f"popped value {value} never pushed"
                )
                self._require(value not in popped, f"double pop of {value}")
                popped.add(value)
        # walk the final chain
        live: list[int] = []
        addr = machine.peek(self.top_addr)
        hops = 0
        while addr != 0:
            live.append(machine.peek(addr + _VAL))
            addr = machine.peek(addr + _NXT)
            hops += 1
            self._require(hops <= len(pushed) + 1, "cycle in stack chain")
        self._require(
            sorted(live) == sorted(pushed - popped),
            f"final stack contents mismatch: {len(live)} live vs "
            f"{len(pushed - popped)} expected",
        )
