"""HTM workloads (Section 8.2): contended stack, queue, the 2-of-64
transactional application (uniform and bimodal), and a shared-counter
microbenchmark."""

from __future__ import annotations

from repro.workloads.base import OpContext, Operation, Workload
from repro.workloads.stack import StackWorkload
from repro.workloads.queue import QueueWorkload
from repro.workloads.txapp import TxAppWorkload
from repro.workloads.counter import CounterWorkload
from repro.workloads.bank import BankWorkload
from repro.workloads.list_set import ListSetWorkload

__all__ = [
    "Operation",
    "OpContext",
    "Workload",
    "StackWorkload",
    "QueueWorkload",
    "TxAppWorkload",
    "CounterWorkload",
    "BankWorkload",
    "ListSetWorkload",
]
