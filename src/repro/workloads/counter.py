"""Shared-counter microworkload: maximal contention on one line.

Every operation increments one shared counter inside a transaction —
the degenerate high-contention case used by unit/property tests (exact
final value = committed ops) and by ablations that need conflict chains
longer than 2 (every core piles onto the same line).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.htm.isa import CAS, Compute, Fence, Read, Write
from repro.workloads.base import Operation, OpContext, Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.htm.machine import Machine
    from repro.htm.params import MachineParams

__all__ = ["CounterWorkload", "IncrementOp"]


class IncrementOp(Operation):
    name = "increment"

    def __init__(self, workload: "CounterWorkload") -> None:
        self.workload = workload

    def body(self, ctx: OpContext) -> Generator:
        value = yield Read(self.workload.counter_addr)
        if self.workload.work_cycles:
            yield Compute(self.workload.work_cycles)
        yield Write(self.workload.counter_addr, value + 1)
        return value + 1

    def has_fallback(self) -> bool:
        return True

    def fallback(self, ctx: OpContext) -> Generator:
        while True:
            value = yield Read(self.workload.counter_addr)
            ok, _ = yield CAS(self.workload.counter_addr, value, value + 1)
            if ok:
                return value + 1
            yield Fence()

    def on_commit(self, machine: "Machine", core_id: int, result: object) -> None:
        self.workload.committed += 1


class CounterWorkload(Workload):
    """Increment a single shared counter, optionally with body work and
    a bounded number of total operations (``ops_limit``)."""

    name = "counter"

    def __init__(self, *, work_cycles: int = 0, ops_limit: int | None = None) -> None:
        self.work_cycles = work_cycles
        self.ops_limit = ops_limit
        self.counter_addr = -1
        self.committed = 0
        self._issued = 0

    def setup(self, machine: "Machine") -> None:
        self.counter_addr = machine.alloc(1)
        machine.poke(self.counter_addr, 0)
        self.committed = 0
        self._issued = 0

    def next_op(self, core_id: int, rng: np.random.Generator) -> Operation | None:
        if self.ops_limit is not None and self._issued >= self.ops_limit:
            return None
        self._issued += 1
        return IncrementOp(self)

    def tuned_delay_cycles(self, params: "MachineParams") -> int:
        remote = 2 * params.hop + params.dir_lookup + params.l1_hit
        return remote + self.work_cycles + params.commit_cycles

    def verify(self, machine: "Machine") -> None:
        value = machine.peek(self.counter_addr)
        self._require(
            value == self.committed,
            f"counter {value} != committed increments {self.committed} "
            f"(lost or torn update)",
        )
