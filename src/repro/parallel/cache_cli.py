"""``repro cache`` — operator verbs for the result cache.

``verify`` checksum-scans every entry in the cache directory and
reports corrupt ones (exit 1 when any are found, so CI can gate on a
clean cache); ``prune`` deletes corrupt and stale entries plus leftover
temp files from interrupted writes.  Both read the same
:func:`repro.parallel.cache.scan_cache_dir` verdicts the runtime cache
uses, so what ``verify`` flags is exactly what ``get_rows`` would
refuse to replay.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.parallel.cache import scan_cache_dir

__all__ = ["build_cache_parser", "cache_main"]

DEFAULT_CACHE_DIR = pathlib.Path(".repro-cache")


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="verify or prune the experiment result cache",
    )
    sub = parser.add_subparsers(dest="verb", required=True)
    for verb, help_text in (
        ("verify", "checksum-scan entries; exit 1 if any are corrupt"),
        ("prune", "delete corrupt/stale entries and leftover temp files"),
    ):
        sp = sub.add_parser(verb, help=help_text)
        sp.add_argument(
            "--cache-dir",
            type=pathlib.Path,
            default=DEFAULT_CACHE_DIR,
            help=f"cache directory to scan (default: {DEFAULT_CACHE_DIR})",
        )
        sp.add_argument(
            "--json",
            action="store_true",
            help="emit one machine-readable JSON object instead of prose",
        )
    return parser


def _tally(reports) -> dict[str, int]:
    tally = {"ok": 0, "corrupt": 0, "stale": 0, "missing": 0}
    for report in reports:
        tally[report.status] = tally.get(report.status, 0) + 1
    return tally


def cache_main(argv: list[str] | None = None) -> int:
    args = build_cache_parser().parse_args(argv)
    reports = scan_cache_dir(args.cache_dir)
    tally = _tally(reports)
    bad = [r for r in reports if r.status in ("corrupt", "stale")]

    if args.verb == "verify":
        if args.json:
            print(
                json.dumps(
                    {
                        "cache_dir": str(args.cache_dir),
                        "entries": len(reports),
                        **tally,
                        "bad_entries": [
                            {
                                "path": str(r.path),
                                "status": r.status,
                                "reason": r.reason,
                            }
                            for r in bad
                        ],
                    },
                    sort_keys=True,
                )
            )
        else:
            for report in bad:
                print(f"{report.status}: {report.path} ({report.reason})")
            print(
                f"cache verify: {len(reports)} entries, {tally['ok']} ok, "
                f"{tally['corrupt']} corrupt, {tally['stale']} stale"
            )
        return 1 if tally["corrupt"] else 0

    # prune: delete what verify would flag, plus interrupted-write litter
    removed = []
    for report in bad:
        try:
            report.path.unlink()
            removed.append(report)
        except OSError as exc:
            print(f"could not remove {report.path}: {exc}", file=sys.stderr)
    tmp_swept = 0
    if args.cache_dir.is_dir():
        for tmp in sorted(args.cache_dir.glob("*.tmp*")):
            try:
                tmp.unlink()
                tmp_swept += 1
            except OSError:
                pass
    if args.json:
        print(
            json.dumps(
                {
                    "cache_dir": str(args.cache_dir),
                    "entries": len(reports),
                    "removed": [
                        {
                            "path": str(r.path),
                            "status": r.status,
                            "reason": r.reason,
                        }
                        for r in removed
                    ],
                    "tmp_swept": tmp_swept,
                },
                sort_keys=True,
            )
        )
    else:
        for report in removed:
            print(f"removed {report.status}: {report.path} ({report.reason})")
        print(
            f"cache prune: removed {len(removed)} of {len(reports)} "
            f"entries, swept {tmp_swept} temp files"
        )
    return 0
