"""Crash-consistent write-ahead checkpoint journal.

The old checkpoint was one JSON blob rewritten after every experiment —
atomic per write, but a single torn or corrupt file lost the whole
batch's progress.  The journal is append-only JSONL: one self-checking
record per line, each committed with ``flush`` + ``fsync`` before the
run proceeds, so the durable prefix of the file is always a valid
history and recovery is "truncate the torn tail, replay the rest".

Record format (canonical JSON, sorted keys, compact separators)::

    {"crc": "<sha256-16>", "data": {...}, "kind": "done", "seq": 3}

``crc`` is the checksum of the record serialized with ``crc`` set to
``""`` — any bit flip in the line fails verification.  ``seq`` is
strictly increasing; the first record is always the header
(``kind="header"``) carrying the run configuration ``(quick, seed)``
that resume compatibility is keyed on.

:func:`recover` reads a journal back: it verifies every line, stops at
the first unparsable / checksum-failing / out-of-order record, truncates
the file to the durable prefix in place (crash-mid-write leaves exactly
one torn tail; anything after it is unreachable history), and reports
how much was dropped.  A legacy single-blob checkpoint (PR 1 format) is
recognized and imported read-only.

:func:`atomic_write_text` is the sanctioned primitive for every
non-append artifact write (cache entries, rendered reports): temp file
in the same directory, ``fsync``, ``os.replace``, directory ``fsync`` —
a crash at any instant leaves either the old bytes or the new bytes,
never a truncated hybrid.  simlint rule ERR004 flags direct writes to
checkpoint/cache artifacts that bypass it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.obs.metrics import get_registry
from repro.obs.tracebus import NO_SIM_TIME, get_bus

__all__ = [
    "CheckpointJournal",
    "JournalRecovery",
    "atomic_write_text",
    "record_checksum",
    "recover",
]

#: Bump on record-format changes; recovery refuses newer versions.
JOURNAL_VERSION = 1


def atomic_write_text(path: pathlib.Path | str, text: str) -> pathlib.Path:
    """Write ``text`` to ``path`` all-or-nothing.

    Temp file in the same directory (so ``os.replace`` stays on one
    filesystem), data ``fsync`` before the rename, directory ``fsync``
    after it — the sequence a crash cannot tear.
    """
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        with _ignore_os_error():
            os.unlink(tmp)
        raise
    _fsync_dir(path.parent)
    return path


class _ignore_os_error:
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return exc_type is not None and issubclass(exc_type, OSError)


def _fsync_dir(directory: pathlib.Path) -> None:
    """Persist a rename/append by fsyncing the containing directory
    (best effort: some filesystems refuse directory fds)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def record_checksum(record: dict) -> str:
    """Checksum of a journal record with its ``crc`` field blanked."""
    payload = json.dumps(
        {**record, "crc": ""}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _encode(record: dict) -> str:
    record = {**record, "crc": record_checksum(record)}
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


@dataclass
class JournalRecovery:
    """What :func:`recover` found in (and did to) a journal file."""

    #: verified records, header first (empty for missing/foreign files).
    records: list[dict] = field(default_factory=list)
    #: bytes removed as a torn/corrupt tail (0 for a clean journal).
    dropped_bytes: int = 0
    #: lines removed (the torn record plus anything after it).
    dropped_records: int = 0
    #: True when the file was a pre-journal single-blob checkpoint.
    legacy: bool = False

    @property
    def header(self) -> dict | None:
        if self.records and self.records[0].get("kind") == "header":
            return self.records[0]["data"]
        return None

    @property
    def truncated(self) -> bool:
        return self.dropped_bytes > 0

    def done_map(self) -> dict[str, dict]:
        """Fold ``done`` records into exp_id -> latest status entry."""
        done: dict[str, dict] = {}
        for record in self.records:
            if record.get("kind") == "done":
                data = dict(record["data"])
                exp_id = data.pop("exp_id", None)
                if isinstance(exp_id, str):
                    done[exp_id] = data
        return done


def _parse_line(line: str, expect_seq: int) -> dict | None:
    """One verified record from ``line``, or None on any defect."""
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict):
        return None
    if record.get("seq") != expect_seq:
        return None
    crc = record.get("crc")
    if not isinstance(crc, str) or record_checksum(record) != crc:
        return None
    return record


def _recover_legacy(payload: dict) -> JournalRecovery:
    """Import a PR-1-era single-blob checkpoint read-only."""
    done = payload.get("done")
    records: list[dict] = [
        {
            "seq": 0,
            "kind": "header",
            "data": {
                "version": 0,
                "quick": payload.get("quick"),
                "seed": payload.get("seed"),
            },
        }
    ]
    if isinstance(done, dict):
        for exp_id, entry in done.items():
            if isinstance(entry, dict):
                records.append(
                    {
                        "seq": len(records),
                        "kind": "done",
                        "data": {"exp_id": exp_id, **entry},
                    }
                )
    return JournalRecovery(records=records, legacy=True)


def recover(path: pathlib.Path | str, *, truncate: bool = True) -> JournalRecovery:
    """Replay a journal, truncating any torn tail to the durable prefix.

    Missing or entirely unreadable files recover to an empty history —
    resume must never refuse to start because a crash mangled its own
    bookkeeping.  With ``truncate=False`` the file is left untouched
    (dry-run verification).
    """
    path = pathlib.Path(path)
    try:
        raw = path.read_bytes()
    except OSError:
        return JournalRecovery()
    if not raw:
        return JournalRecovery()
    text = raw.decode("utf-8", errors="replace")
    if text.lstrip().startswith("{") and '"crc"' not in text.split("\n", 1)[0]:
        # legacy single-blob checkpoint (or foreign JSON): import, don't edit
        try:
            payload = json.loads(text)
        except ValueError:
            payload = None
        if isinstance(payload, dict) and "done" in payload:
            return _recover_legacy(payload)
    records: list[dict] = []
    good_bytes = 0
    cursor = 0
    dropped_records = 0
    for line in text.splitlines(keepends=True):
        stripped = line.rstrip("\r\n")
        record = _parse_line(stripped, len(records)) if stripped else None
        if record is None or not line.endswith("\n"):
            # torn/corrupt record: everything from here on is dropped
            dropped_records = sum(
                1 for rest in text[cursor:].splitlines() if rest.strip()
            )
            break
        records.append(record)
        cursor += len(line)
        good_bytes = cursor
    dropped = len(raw) - len(text[:good_bytes].encode())
    recovery = JournalRecovery(
        records=records,
        dropped_bytes=dropped,
        dropped_records=dropped_records,
    )
    if recovery.truncated and truncate:
        with open(path, "rb+") as fh:
            fh.truncate(len(text[:good_bytes].encode()))
            fh.flush()
            os.fsync(fh.fileno())
        get_registry().counter("journal_recoveries").inc()
        get_bus().emit(
            NO_SIM_TIME,
            "journal_recovered",
            -1,
            path=str(path),
            kept=len(records),
            dropped_records=dropped_records,
            dropped_bytes=dropped,
        )
    return recovery


class CheckpointJournal:
    """Append-only, fsync-committed run journal keyed on ``(quick, seed)``.

    ``open()`` recovers any existing file first: a compatible journal is
    continued (its ``done`` map is what ``--resume`` replays), while a
    foreign-configuration, legacy, or hopeless file is rotated aside so
    the new run starts from a clean, verifiable history.
    """

    def __init__(
        self,
        path: pathlib.Path | str,
        *,
        quick: bool = False,
        seed: int | None = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.quick = bool(quick)
        self.seed = seed
        self._fh = None
        self._seq = 0
        self.recovery: JournalRecovery | None = None
        #: the foreign-configuration history rotated aside by ``open()``
        #: (None when the existing file was compatible or absent).
        self.rotated: JournalRecovery | None = None
        self._imported: dict[str, dict] = {}

    # ------------------------------------------------------------------
    def _compatible(self, recovery: JournalRecovery) -> bool:
        header = recovery.header
        return (
            header is not None
            and not recovery.legacy
            and header.get("version") == JOURNAL_VERSION
            and header.get("quick") == self.quick
            and header.get("seed") == self.seed
        )

    def open(self) -> "CheckpointJournal":
        """Recover + open for appending; idempotent."""
        if self._fh is not None:
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.recovery = recover(self.path)
        if self.recovery.records and not self._compatible(self.recovery):
            header = self.recovery.header or {}
            if (
                self.recovery.legacy
                and header.get("quick") == self.quick
                and header.get("seed") == self.seed
            ):
                # pre-journal blob for the same configuration: honor its
                # completions, then continue in journal format
                self._imported = self.recovery.done_map()
            else:
                self.rotated = self.recovery
            # foreign/legacy history: preserve it, start fresh
            with _ignore_os_error():
                os.replace(self.path, self.path.with_name(self.path.name + ".old"))
            self.recovery = JournalRecovery()
        self._fh = open(self.path, "a", encoding="utf-8")
        self._seq = len(self.recovery.records)
        if self._seq == 0:
            self.append(
                "header",
                version=JOURNAL_VERSION,
                quick=self.quick,
                seed=self.seed,
            )
            for exp_id, entry in self._imported.items():
                # legacy completions become durable journal records
                self.append("done", exp_id=exp_id, **entry)
        return self

    def append(self, kind: str, **data) -> dict:
        """Durably append one record (flush + fsync before returning)."""
        if self._fh is None:
            raise ExperimentError("journal is not open; call open() first")
        record = {"seq": self._seq, "kind": kind, "data": data}
        self._fh.write(_encode(record) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._seq += 1
        get_bus().emit(
            NO_SIM_TIME,
            "checkpoint_written",
            -1,
            path=str(self.path),
            record_kind=kind,
            seq=record["seq"],
        )
        return record

    def mark_done(self, exp_id: str, entry: dict) -> None:
        """Record one experiment's final status (the ``--resume`` unit)."""
        self.append("done", exp_id=exp_id, **entry)

    def done_map(self) -> dict[str, dict]:
        """Completed/failed entries replayed at ``open()`` time."""
        replayed = self.recovery.done_map() if self.recovery else {}
        return {**self._imported, **replayed}

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()
