"""Parallel execution layer: process pools, sharding, result caching.

Two levels of fan-out (docs/PERFORMANCE.md):

* **Inter-experiment** — :class:`ParallelExecutor` runs whole
  experiments in worker processes with parent-enforced process-level
  timeouts and single-writer checkpointing
  (``python -m repro all --jobs N``).
* **Intra-experiment** — :class:`ShardPool` / :func:`make_pool` map
  trial shards (``SyntheticHarness.run(n_shards=...)``) and sweep
  cells (``run_fig3(pool=...)``) over workers; per-shard
  ``SeedSequence`` streams plus ordered ``Welford.merge_all`` keep
  results bit-identical for a fixed ``(seed, n_shards)`` and invariant
  to the worker count.

Plus :class:`ResultCache`, the content-addressed row store keyed on
``exp_id + kwargs + seed + quick +`` a source-tree fingerprint.
"""

from __future__ import annotations

from repro.parallel.cache import ResultCache, cache_key, source_fingerprint
from repro.parallel.executor import (
    ExperimentOutcome,
    ExperimentTask,
    ParallelExecutor,
)
from repro.parallel.pool import (
    ProcessPool,
    SerialPool,
    ShardPool,
    best_start_method,
    make_pool,
)

__all__ = [
    "ExperimentOutcome",
    "ExperimentTask",
    "ParallelExecutor",
    "ProcessPool",
    "ResultCache",
    "SerialPool",
    "ShardPool",
    "best_start_method",
    "cache_key",
    "make_pool",
    "source_fingerprint",
]
