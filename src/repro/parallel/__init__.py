"""Parallel execution layer: process pools, sharding, result caching.

Two levels of fan-out (docs/PERFORMANCE.md):

* **Inter-experiment** — :class:`ParallelExecutor` runs whole
  experiments in worker processes with parent-enforced process-level
  timeouts and single-writer checkpointing
  (``python -m repro all --jobs N``).
* **Intra-experiment** — :class:`ShardPool` / :func:`make_pool` map
  trial shards (``SyntheticHarness.run(n_shards=...)``) and sweep
  cells (``run_fig3(pool=...)``) over workers; per-shard
  ``SeedSequence`` streams plus ordered ``Welford.merge_all`` keep
  results bit-identical for a fixed ``(seed, n_shards)`` and invariant
  to the worker count.

Plus :class:`ResultCache`, the content-addressed row store keyed on
``exp_id + kwargs + seed + quick +`` a source-tree fingerprint, and the
crash-tolerance layer: :class:`SupervisedPool` (warm workers,
heartbeats, bounded restarts, degradation to serial),
:class:`CheckpointJournal` (append-only fsync'd JSONL with per-record
checksums and torn-tail recovery), and :class:`RetryPolicy` (the one
retry/re-execution/restart budget object every path shares).
"""

from __future__ import annotations

from repro.parallel.cache import (
    ResultCache,
    cache_key,
    scan_cache_dir,
    source_fingerprint,
)
from repro.parallel.executor import (
    ExperimentOutcome,
    ExperimentTask,
    ParallelExecutor,
)
from repro.parallel.journal import (
    CheckpointJournal,
    JournalRecovery,
    atomic_write_text,
    recover,
)
from repro.parallel.pool import (
    ProcessPool,
    SerialPool,
    ShardPool,
    best_start_method,
    make_pool,
)
from repro.parallel.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.parallel.supervisor import SupervisedPool, SupervisorStats

__all__ = [
    "CheckpointJournal",
    "DEFAULT_RETRY_POLICY",
    "ExperimentOutcome",
    "ExperimentTask",
    "JournalRecovery",
    "ParallelExecutor",
    "ProcessPool",
    "ResultCache",
    "RetryPolicy",
    "SerialPool",
    "ShardPool",
    "SupervisedPool",
    "SupervisorStats",
    "atomic_write_text",
    "best_start_method",
    "cache_key",
    "make_pool",
    "recover",
    "scan_cache_dir",
    "source_fingerprint",
]
