"""Supervised warm worker pool: heartbeats, restarts, degradation.

The original executor paid one process spawn per experiment and treated
any worker death as a terminal, unexplained failure.  This module is
the robust replacement underneath :class:`~repro.parallel.executor.
ParallelExecutor`:

* **Warm pool** — up to ``jobs`` worker processes are spawned *once*
  per run and then fed tasks over duplex pipes until the queue drains
  (the scaffolding the ROADMAP's shared-memory speedup work needs).
* **Heartbeats** — each worker runs a tiny side thread that pings the
  parent every ``heartbeat_interval`` seconds; a worker whose beats
  stop (SIGSTOP, deadlocked interpreter, dead machine slot) is declared
  hung after ``heartbeat_timeout`` and killed.
* **Crash supervision** — a worker that dies (pipe EOF) has its exit
  status classified (``signal:SIGKILL`` / ``exit:3`` / ``clean``), its
  in-flight task re-dispatched to a fresh worker with exponential
  backoff, bounded by :class:`~repro.parallel.retry.RetryPolicy.
  max_task_reexecutions`.
* **Degradation ladder** — dead workers are replaced while the
  pool-wide ``max_worker_restarts`` budget lasts; when the pool empties
  with work remaining, the supervisor runs the rest *serially in the
  parent* (``degraded_to_serial``) — a chaotic host can slow a run
  down, never wedge or lose it.

Determinism: supervision decides only *where and how often* a task body
executes; the body itself is :func:`repro.experiments.run_experiment`
with a fixed seed, so re-executed tasks produce byte-identical rows and
the chaos CI gate can diff a SIGKILL-riddled run against a fault-free
one.  Supervision events (``worker_crashed``, ``worker_restarted``,
``degraded_to_serial``) go to the *parent's* bus and never into the
per-experiment captures that feed ``--trace-out``.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import InvalidParameterError
from repro.obs.metrics import get_registry
from repro.obs.tracebus import NO_SIM_TIME, get_bus
from repro.parallel.pool import best_start_method
from repro.parallel.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "ExperimentTask",
    "ExperimentOutcome",
    "SupervisorStats",
    "SupervisedPool",
    "classify_exit",
]

#: How often a worker's heartbeat thread pings the parent (seconds).
DEFAULT_HEARTBEAT_INTERVAL = 0.2
#: Parent-side silence budget before a worker is declared hung.
DEFAULT_HEARTBEAT_TIMEOUT = 30.0


@dataclass(frozen=True)
class ExperimentTask:
    """Everything a worker needs to run one experiment (picklable)."""

    exp_id: str
    quick: bool = False
    seed: int | None = None
    timeout: float | None = None
    retry: RetryPolicy = DEFAULT_RETRY_POLICY
    cache_dir: str | None = None
    fingerprint: str | None = None
    overrides: dict = field(default_factory=dict)
    #: run under a fresh obs capture and ship the metric snapshot +
    #: trace events back alongside the result
    collect: bool = False


@dataclass
class ExperimentOutcome:
    """What became of one dispatched experiment."""

    exp_id: str
    status: str  # "ok" | "failed" | "skipped"
    result: object | None = None  # ExperimentResult when status == "ok"
    error_type: str | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    #: per-experiment observability (only with ``collect=True``):
    #: a MetricsRegistry snapshot and the worker's ObsEvent list
    metrics: dict | None = None
    events: list | None = None
    #: how the executing process ended when the run did not return
    #: normally: ``signal:SIGKILL``, ``exit:3``, ``clean``, ``timeout``,
    #: ``heartbeat_timeout`` — None for in-process results
    exit_cause: str | None = None
    #: total executions this task consumed (1 = no re-execution)
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class SupervisorStats:
    """Aggregate supervision counters for one pool run."""

    worker_crashes: int = 0
    worker_restarts: int = 0
    task_reexecutions: int = 0
    heartbeat_timeouts: int = 0
    parent_kills: int = 0
    degraded_to_serial: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "worker_crashes": self.worker_crashes,
            "worker_restarts": self.worker_restarts,
            "task_reexecutions": self.task_reexecutions,
            "heartbeat_timeouts": self.heartbeat_timeouts,
            "parent_kills": self.parent_kills,
            "degraded_to_serial": self.degraded_to_serial,
        }

    def any(self) -> bool:
        return any(self.as_dict().values())


def classify_exit(exitcode: int | None) -> str:
    """Human-meaningful cause from a reaped process's exit code."""
    if exitcode is None:
        return "unknown"
    if exitcode < 0:
        try:
            name = signal.Signals(-exitcode).name
        except ValueError:
            name = str(-exitcode)
        return f"signal:{name}"
    if exitcode == 0:
        return "clean"
    return f"exit:{exitcode}"


def _execute_task(task: ExperimentTask) -> tuple[str, object]:
    """Run one task body; every outcome becomes data, never a raise.

    Shared by the worker loop and the parent's degraded-serial path, so
    both produce indistinguishable payloads.
    """
    from contextlib import nullcontext

    from repro.experiments.registry import run_experiment
    from repro.obs import capture
    from repro.parallel.cache import ResultCache

    try:
        cache = (
            ResultCache(task.cache_dir, fingerprint=task.fingerprint)
            if task.cache_dir
            else None
        )
        with (capture() if task.collect else nullcontext()) as cap:
            result = run_experiment(
                task.exp_id,
                quick=task.quick,
                seed=task.seed,
                timeout=task.timeout,
                retry=task.retry,
                cache=cache,
                **task.overrides,
            )
        if cap is not None:
            return "ok", (result, cap.snapshot(), cap.events)
        return "ok", result
    except BaseException as exc:  # simlint: disable=ERR002,ERR003 -- process/serialization boundary: the supervisor re-raises this as a failure outcome; a worker must never die silently
        return "failed", (type(exc).__name__, str(exc))


def _pool_worker(conn, worker_id: int, heartbeat_interval: float, chaos_config: dict | None) -> None:  # simlint: disable=DET004 -- seeds ride inside each ExperimentTask payload; run_experiment derives every stream from them
    """Persistent worker loop: recv task, run, send result, repeat.

    A side thread heartbeats over the same pipe (send-locked) so the
    parent can tell "busy computing" from "frozen or gone".  Chaos, when
    armed, fires at the seeded injection point *before* the task body —
    modeling a worker lost between dispatch and completion.
    """
    from repro.faults.chaos import ChaosPlan, apply_worker_chaos

    chaos = ChaosPlan.from_dict(chaos_config) if chaos_config else None
    send_lock = threading.Lock()
    stop = threading.Event()

    def send(msg) -> bool:
        with send_lock:
            try:
                conn.send(msg)
                return True
            except Exception:  # simlint: disable=ERR002 -- unpicklable payload or vanished parent: the caller downgrades to a reportable failure
                return False

    def beat() -> None:
        n = 0
        while not stop.wait(heartbeat_interval):
            n += 1
            if not send(("hb", worker_id, n)):
                return

    threading.Thread(target=beat, name="heartbeat", daemon=True).start()
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg is None:
                break
            task, attempt = msg
            if chaos is not None:
                apply_worker_chaos(chaos, task.exp_id, attempt)
            start = time.monotonic()
            status, payload = _execute_task(task)
            elapsed = time.monotonic() - start
            if not send(("done", task.exp_id, attempt, status, payload, elapsed)):
                # unpicklable result: report the failure instead
                if not send(
                    (
                        "done",
                        task.exp_id,
                        attempt,
                        "failed",
                        ("ExperimentError", "result could not be pickled"),
                        elapsed,
                    )
                ):
                    break
    finally:
        stop.set()
        conn.close()


@dataclass
class _Worker:
    proc: object
    conn: object
    worker_id: int
    last_beat: float
    #: (task, attempt, dispatch time) while busy, else None
    inflight: tuple | None = None


class SupervisedPool:
    """Spawn-once worker pool with crash/hang supervision.

    ``run`` executes a list of :class:`ExperimentTask` and returns
    ``{exp_id: ExperimentOutcome}`` for every task that was executed
    (tasks never started — e.g. after ``stop_on_failure`` — are simply
    absent).  ``on_outcome`` fires in completion order.
    """

    def __init__(
        self,
        jobs: int,
        *,
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
        timeout: float | None = None,
        kill_grace: float = 5.0,
        poll_interval: float = 0.05,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float | None = DEFAULT_HEARTBEAT_TIMEOUT,
        chaos=None,
        start_method: str | None = None,
    ) -> None:
        if jobs < 1:
            raise InvalidParameterError(f"need jobs >= 1, got {jobs}")
        self.jobs = jobs
        self.retry = retry
        self.timeout = timeout
        self.kill_grace = kill_grace
        self.poll_interval = poll_interval
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.chaos = chaos
        self._ctx = multiprocessing.get_context(
            start_method or best_start_method()
        )
        self.stats = SupervisorStats()
        self._workers: dict = {}  # conn -> _Worker
        self._next_worker_id = 0
        self._restarts_used = 0

    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(
                child_conn,
                self._next_worker_id,
                self.heartbeat_interval,
                self.chaos.to_dict() if self.chaos is not None else None,
            ),
            name=f"repro-worker-{self._next_worker_id}",
        )
        proc.start()
        child_conn.close()  # parent keeps only its end
        self._workers[parent_conn] = _Worker(
            proc, parent_conn, self._next_worker_id, time.monotonic()
        )
        self._next_worker_id += 1

    def _reap(self, worker: _Worker, *, kill: bool = False) -> int | None:
        """Remove a worker from the pool and collect its exit code."""
        self._workers.pop(worker.conn, None)
        if kill and worker.proc.is_alive():
            worker.proc.kill()  # SIGKILL works on SIGSTOPped processes too
        worker.proc.join()
        worker.conn.close()
        return worker.proc.exitcode

    def _maybe_replace(self, work_remaining: bool) -> None:
        """Spawn a replacement worker inside the restart budget."""
        if not work_remaining or len(self._workers) >= self.jobs:
            return
        if self._restarts_used >= self.retry.max_worker_restarts:
            return  # budget spent: the pool shrinks (ladder to serial)
        delay = self.retry.restart_delay(self._restarts_used)
        self._restarts_used += 1
        if delay > 0:
            time.sleep(min(delay, 1.0))
        self._spawn()
        self.stats.worker_restarts += 1
        get_registry().counter("worker_restarts").inc()
        get_bus().emit(
            NO_SIM_TIME,
            "worker_restarted",
            -1,
            restarts_used=self._restarts_used,
            budget=self.retry.max_worker_restarts,
        )

    def _shutdown(self) -> None:
        for worker in list(self._workers.values()):
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in list(self._workers.values()):
            worker.proc.join(1.0)
            if worker.proc.is_alive():  # pragma: no cover - stuck worker
                worker.proc.kill()
                worker.proc.join()
            worker.conn.close()
        self._workers.clear()

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: list[ExperimentTask],
        *,
        on_outcome=None,
        stop_on_failure: bool = False,
    ) -> dict[str, ExperimentOutcome]:
        self.stats = SupervisorStats()
        pending: deque = deque((task, 0) for task in tasks)
        delayed: list = []  # (ready_at, task, attempt) crash-requeue backoffs
        outcomes: dict[str, ExperimentOutcome] = {}
        failed = False

        def record(outcome: ExperimentOutcome) -> None:
            nonlocal failed
            outcomes[outcome.exp_id] = outcome
            if outcome.status == "failed":
                failed = True
            if on_outcome is not None:
                on_outcome(outcome)

        def work_remaining() -> bool:
            return bool(pending or delayed)

        def crash_failure(task, attempt, exitcode, cause, elapsed) -> None:
            record(
                ExperimentOutcome(
                    task.exp_id,
                    "failed",
                    error_type="ExperimentError",
                    error=(
                        f"worker for {task.exp_id!r} exited without a "
                        f"result (exit code {exitcode}, cause {cause}, "
                        f"attempt {attempt + 1} of "
                        f"{self.retry.max_task_reexecutions + 1})"
                    ),
                    elapsed_s=elapsed,
                    exit_cause=cause,
                    attempts=attempt + 1,
                )
            )

        def on_worker_death(worker: _Worker, *, cause: str | None = None, kill: bool = False) -> None:  # simlint: disable=DET004 -- parent-side supervision bookkeeping; no randomness, rows unaffected
            now = time.monotonic()
            exitcode = self._reap(worker, kill=kill)
            cause = cause or classify_exit(exitcode)
            self.stats.worker_crashes += 1
            get_registry().counter("worker_crashes").inc()
            get_bus().emit(
                NO_SIM_TIME,
                "worker_crashed",
                -1,
                worker=worker.worker_id,
                cause=cause,
                exp_id=worker.inflight[0].exp_id if worker.inflight else None,
            )
            if worker.inflight is not None:
                task, attempt, start = worker.inflight
                if attempt < self.retry.max_task_reexecutions and not (
                    stop_on_failure and failed
                ):
                    self.stats.task_reexecutions += 1
                    get_registry().counter("task_reexecutions").inc()
                    delayed.append(
                        (
                            now + self.retry.reexecution_backoff(attempt),
                            task,
                            attempt + 1,
                        )
                    )
                else:
                    crash_failure(task, attempt, exitcode, cause, now - start)
            self._maybe_replace(work_remaining())

        # warm pool: spawned once, fed until the queue drains
        for _ in range(min(self.jobs, len(tasks))):
            self._spawn()

        while pending or delayed or any(
            w.inflight is not None for w in self._workers.values()
        ):
            now = time.monotonic()
            if delayed:
                for entry in [d for d in delayed if d[0] <= now]:
                    delayed.remove(entry)
                    pending.append((entry[1], entry[2]))
            if stop_on_failure and failed:
                pending.clear()
                delayed.clear()
            if not self._workers:
                if work_remaining():
                    self._degrade(pending, delayed, record, stop_on_failure)
                break
            for worker in list(self._workers.values()):
                if not pending:
                    break
                if worker.inflight is None:
                    task, attempt = pending.popleft()
                    try:
                        worker.conn.send((task, attempt))
                    except (BrokenPipeError, OSError):
                        pending.appendleft((task, attempt))
                        continue  # the EOF path below reaps it
                    worker.inflight = (task, attempt, time.monotonic())
            ready = multiprocessing.connection.wait(
                list(self._workers), timeout=self.poll_interval
            )
            now = time.monotonic()
            for conn in ready:
                worker = self._workers.get(conn)
                if worker is None:
                    continue
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    on_worker_death(worker)
                    continue
                if msg[0] == "hb":
                    worker.last_beat = now
                elif msg[0] == "done":
                    _, exp_id, attempt, status, payload, elapsed = msg
                    task = worker.inflight[0] if worker.inflight else None
                    worker.inflight = None
                    worker.last_beat = now
                    record(
                        self._outcome_from_payload(
                            exp_id,
                            attempt,
                            status,
                            payload,
                            elapsed,
                            collect=bool(task and task.collect),
                        )
                    )
            now = time.monotonic()
            self._enforce_timeouts(now, record, work_remaining)
            self._enforce_heartbeats(now, on_worker_death, work_remaining)
        self._shutdown()
        return outcomes

    # ------------------------------------------------------------------
    def _outcome_from_payload(
        self, exp_id, attempt, status, payload, elapsed, *, collect
    ) -> ExperimentOutcome:
        if status == "ok":
            metrics = events = None
            result = payload
            if collect:
                result, metrics, events = payload
            return ExperimentOutcome(
                exp_id,
                "ok",
                result=result,
                elapsed_s=elapsed,
                metrics=metrics,
                events=events,
                attempts=attempt + 1,
            )
        error_type, error = payload
        return ExperimentOutcome(
            exp_id,
            "failed",
            error_type=error_type,
            error=error,
            elapsed_s=elapsed,
            attempts=attempt + 1,
        )

    def _enforce_timeouts(self, now, record, work_remaining) -> None:
        """Parent-side backstop: kill workers past timeout + kill_grace.

        A parent kill is a budget decision, exactly like the in-worker
        watchdog — the task is *not* re-executed.
        """
        if self.timeout is None:
            return
        budget = self.timeout + self.kill_grace
        for worker in list(self._workers.values()):
            if worker.inflight is None:
                continue
            task, attempt, start = worker.inflight
            if now - start <= budget:
                continue
            worker.inflight = None  # consumed: do not requeue
            self._reap(worker, kill=True)
            self.stats.parent_kills += 1
            get_registry().counter("worker_parent_kills").inc()
            get_bus().emit(
                NO_SIM_TIME,
                "worker_crashed",
                -1,
                worker=worker.worker_id,
                cause="timeout",
                exp_id=task.exp_id,
            )
            record(
                ExperimentOutcome(
                    task.exp_id,
                    "failed",
                    error_type="ExperimentTimeoutError",
                    error=(
                        f"experiment {task.exp_id!r} exceeded its "
                        f"{self.timeout:g}s wall-clock budget; "
                        f"worker process killed by the parent "
                        f"(in-worker watchdog did not fire)"
                    ),
                    elapsed_s=now - start,
                    exit_cause="timeout",
                    attempts=attempt + 1,
                )
            )
            self._maybe_replace(work_remaining())

    def _enforce_heartbeats(self, now, on_worker_death, work_remaining) -> None:
        """Declare silent workers hung; their task is re-executed."""
        if self.heartbeat_timeout is None:
            return
        for worker in list(self._workers.values()):
            if now - worker.last_beat <= self.heartbeat_timeout:
                continue
            if worker.inflight is None and not work_remaining():
                continue  # idle pool winding down: nothing depends on it
            self.stats.heartbeat_timeouts += 1
            get_registry().counter("worker_heartbeat_timeouts").inc()
            on_worker_death(worker, cause="heartbeat_timeout", kill=True)

    def _degrade(self, pending, delayed, record, stop_on_failure) -> None:
        """The last rung: run everything left serially in the parent.

        Reached only when the restart budget is spent and no worker
        survives.  Chaos does not apply here (it targets workers), so a
        degraded run always terminates.
        """
        self.stats.degraded_to_serial = 1
        get_registry().counter("degraded_to_serial").inc()
        remaining = list(pending) + [(d[1], d[2]) for d in sorted(delayed, key=lambda d: d[0])]
        pending.clear()
        delayed.clear()
        get_bus().emit(
            NO_SIM_TIME,
            "degraded_to_serial",
            -1,
            remaining=len(remaining),
            restarts_used=self._restarts_used,
        )
        for task, attempt in remaining:
            start = time.monotonic()
            status, payload = _execute_task(task)
            outcome = self._outcome_from_payload(
                task.exp_id,
                attempt,
                status,
                payload,
                time.monotonic() - start,
                collect=task.collect,
            )
            record(outcome)
            if stop_on_failure and outcome.status == "failed":
                break
