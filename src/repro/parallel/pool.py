"""Shard pools: map picklable work over worker processes, in order.

The determinism contract of the whole package rests on one property of
these pools: :meth:`ShardPool.starmap` returns results **in task
order**, regardless of which worker finished first.  Combined with the
per-shard ``SeedSequence`` streams (:func:`repro.rngutil.spawn_streams`)
this makes every sharded computation bit-identical for a fixed
``(seed, n_shards)`` and invariant to the worker count — ``--jobs`` can
only change wall clock, never a row.

Two implementations share the interface:

* :class:`SerialPool` — runs tasks inline.  The ``jobs=1`` path and the
  default when no pool is supplied; also what worker processes use
  internally (no nested pools).
* :class:`ProcessPool` — a thin wrapper over
  :class:`multiprocessing.pool.Pool` using the ``fork`` start method
  where available (so runtime-registered experiments and closures
  survive into workers), falling back to ``spawn`` elsewhere.

Worker functions handed to a pool must be module-level (picklable) and
must take their seed/stream as an explicit argument — enforced
statically by simlint rule DET004 (docs/STATIC_ANALYSIS.md).
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterable, Sequence

from repro.errors import InvalidParameterError

__all__ = ["ShardPool", "SerialPool", "ProcessPool", "make_pool", "best_start_method"]


def best_start_method() -> str:
    """``fork`` where the platform offers it, else ``spawn``.

    Fork keeps the parent's in-memory experiment registry (including
    test doubles registered at runtime) visible to workers; spawn-based
    workers can only run experiments importable from the module tree.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ShardPool:
    """Interface: ordered ``starmap`` over argument tuples."""

    #: number of concurrent workers (1 for the serial pool).
    jobs: int = 1

    def starmap(
        self, fn: Callable, tasks: Iterable[Sequence]
    ) -> list:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker processes (idempotent)."""

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialPool(ShardPool):
    """Run every task inline, in order."""

    jobs = 1

    def starmap(self, fn: Callable, tasks: Iterable[Sequence]) -> list:
        return [fn(*task) for task in tasks]


class ProcessPool(ShardPool):
    """Ordered process-backed ``starmap`` (multiprocessing.Pool).

    Results come back in task order (``Pool.starmap`` semantics), so a
    sharded reduction that folds them by index is deterministic no
    matter which worker ran which shard.
    """

    def __init__(self, jobs: int, *, start_method: str | None = None) -> None:
        if jobs < 1:
            raise InvalidParameterError(f"need jobs >= 1, got {jobs}")
        self.jobs = jobs
        ctx = multiprocessing.get_context(start_method or best_start_method())
        self._pool = ctx.Pool(processes=jobs)

    def starmap(self, fn: Callable, tasks: Iterable[Sequence]) -> list:
        return self._pool.starmap(fn, [tuple(t) for t in tasks])

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def make_pool(jobs: int, *, start_method: str | None = None) -> ShardPool:
    """A :class:`ProcessPool` for ``jobs > 1``, else a :class:`SerialPool`."""
    if jobs < 1:
        raise InvalidParameterError(f"need jobs >= 1, got {jobs}")
    if jobs == 1:
        return SerialPool()
    return ProcessPool(jobs, start_method=start_method)
