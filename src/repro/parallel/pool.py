"""Shard pools: map picklable work over worker processes, in order.

The determinism contract of the whole package rests on one property of
these pools: :meth:`ShardPool.starmap` returns results **in task
order**, regardless of which worker finished first.  Combined with the
per-shard ``SeedSequence`` streams (:func:`repro.rngutil.spawn_streams`)
this makes every sharded computation bit-identical for a fixed
``(seed, n_shards)`` and invariant to the worker count — ``--jobs`` can
only change wall clock, never a row.

Two implementations share the interface:

* :class:`SerialPool` — runs tasks inline.  The ``jobs=1`` path and the
  default when no pool is supplied; also what worker processes use
  internally (no nested pools).
* :class:`ProcessPool` — a thin wrapper over
  :class:`multiprocessing.pool.Pool` using the ``fork`` start method
  where available (so runtime-registered experiments and closures
  survive into workers), falling back to ``spawn`` elsewhere.

Worker functions handed to a pool must be module-level (picklable) and
must take their seed/stream as an explicit argument — enforced
statically by simlint rule DET004 (docs/STATIC_ANALYSIS.md).
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterable, Sequence

from repro.errors import InvalidParameterError
from repro.obs import capture, get_bus, get_registry, obs_active

__all__ = ["ShardPool", "SerialPool", "ProcessPool", "make_pool", "best_start_method"]


def best_start_method() -> str:
    """``fork`` where the platform offers it, else ``spawn``.

    Fork keeps the parent's in-memory experiment registry (including
    test doubles registered at runtime) visible to workers; spawn-based
    workers can only run experiments importable from the module tree.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ShardPool:
    """Interface: ordered ``starmap`` over argument tuples."""

    #: number of concurrent workers (1 for the serial pool).
    jobs: int = 1

    def starmap(
        self, fn: Callable, tasks: Iterable[Sequence]
    ) -> list:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker processes (idempotent)."""

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialPool(ShardPool):
    """Run every task inline, in order."""

    jobs = 1

    def starmap(self, fn: Callable, tasks: Iterable[Sequence]) -> list:
        return [fn(*task) for task in tasks]


def _obs_call(fn: Callable, args: tuple) -> tuple:
    """Run one task under a fresh capture (worker side of the metered
    starmap).  Returns ``(result, metrics snapshot, events)`` so the
    parent can fold observability back in task order."""
    with capture() as cap:
        out = fn(*args)
    return out, cap.snapshot(), cap.events


class ProcessPool(ShardPool):
    """Ordered process-backed ``starmap`` (multiprocessing.Pool).

    Results come back in task order (``Pool.starmap`` semantics), so a
    sharded reduction that folds them by index is deterministic no
    matter which worker ran which shard.

    When observability is active in the parent (:func:`repro.obs.capture`
    or an enabled module-level registry/bus), tasks run under a fresh
    per-worker capture and the collected metric snapshots and trace
    events are replayed into the parent's registry/bus **in task
    order** — so ``--jobs`` cannot reorder (or lose) a single count or
    event relative to the serial pool.
    """

    def __init__(self, jobs: int, *, start_method: str | None = None) -> None:
        if jobs < 1:
            raise InvalidParameterError(f"need jobs >= 1, got {jobs}")
        self.jobs = jobs
        ctx = multiprocessing.get_context(start_method or best_start_method())
        self._pool = ctx.Pool(processes=jobs)

    def starmap(self, fn: Callable, tasks: Iterable[Sequence]) -> list:
        task_tuples = [tuple(t) for t in tasks]
        if not obs_active():
            return self._pool.starmap(fn, task_tuples)
        metered = self._pool.starmap(
            _obs_call, [(fn, t) for t in task_tuples]
        )
        registry, bus = get_registry(), get_bus()
        results = []
        for out, snap, events in metered:
            registry.absorb(snap)
            for event in events:
                bus.publish(event)
            results.append(out)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def make_pool(jobs: int, *, start_method: str | None = None) -> ShardPool:
    """A :class:`ProcessPool` for ``jobs > 1``, else a :class:`SerialPool`."""
    if jobs < 1:
        raise InvalidParameterError(f"need jobs >= 1, got {jobs}")
    if jobs == 1:
        return SerialPool()
    return ProcessPool(jobs, start_method=start_method)
