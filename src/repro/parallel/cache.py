"""Content-addressed experiment result cache.

``python -m repro`` reruns are usually replays: the simulator is a pure
function of ``(code, exp_id, kwargs, seed, quick)``, so recomputing a
200k-trial grid that nothing invalidated is pure wall clock.  The cache
stores each experiment's **rows** under a key that hashes exactly the
things the rows depend on:

``key = sha256(version | exp_id | quick | seed | canonical(kwargs) |
source fingerprint)``

* ``kwargs`` are canonicalized (sorted keys, tuples as lists,
  non-JSON values by ``repr``) so equivalent calls collide on purpose.
* The **source fingerprint** hashes every ``.py`` file under the
  installed ``repro`` package (path + content), so *any* code change
  invalidates every entry — no staleness analysis, just a new key.

Only rows are reused; titles, params, and notes are rebuilt from the
live registry at hit time, so a cached result is indistinguishable from
a fresh one in every rendered artifact (rows survive a JSON round-trip
bit-exactly: floats serialize via shortest-repr).

Failures are never cached, and a corrupt or unreadable entry is a miss,
never an error.  Since version 2 every entry carries a ``crc`` — a
checksum over its canonical rows — so silent bit rot is *detected*, not
replayed into results: a mismatch counts as ``cache_corrupt`` and the
rows are recomputed.  ``repro cache verify`` / ``repro cache prune``
(:mod:`repro.parallel.cache_cli`) expose the same check as an operator
tool via :func:`scan_cache_dir`.  Entries are committed with
:func:`repro.parallel.journal.atomic_write_text`, so a crash mid-write
leaves the previous entry (or nothing), never a torn file.
``scorecard`` is the headline consumer: in one ``python -m repro all``
batch it re-grades sub-experiments from their just-written cache
entries instead of recomputing them.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass

import repro
from repro.obs.metrics import get_registry
from repro.obs.tracebus import NO_SIM_TIME, get_bus
from repro.parallel.journal import atomic_write_text

__all__ = [
    "ResultCache",
    "source_fingerprint",
    "cache_key",
    "rows_checksum",
    "CacheEntryReport",
    "scan_cache_dir",
]

#: Bump to invalidate every existing cache entry on format changes.
#: v2 added the per-entry ``crc`` field (rows checksum).
CACHE_VERSION = 2

_fingerprint_memo: dict[pathlib.Path, str] = {}


def source_fingerprint(root: pathlib.Path | None = None) -> str:
    """Hash of every ``.py`` file (relative path + content) under ``root``.

    ``root`` defaults to the installed :mod:`repro` package directory.
    Memoized per process: the tree cannot change under a running
    experiment batch, and workers would otherwise rescan per task.
    """
    if root is None:
        root = pathlib.Path(repro.__file__).resolve().parent
    root = pathlib.Path(root)
    cached = _fingerprint_memo.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    out = digest.hexdigest()
    _fingerprint_memo[root] = out
    return out


def _canon(value):
    """Canonical JSON-able form of a kwargs value (stable across runs)."""
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def rows_checksum(rows: list) -> str:
    """Checksum over the canonical JSON form of an entry's rows."""
    payload = json.dumps(_canon(rows), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def cache_key(
    exp_id: str,
    kwargs: dict,
    *,
    quick: bool,
    seed: int | None,
    fingerprint: str,
) -> str:
    """The content hash one experiment invocation addresses."""
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "exp_id": exp_id,
            "quick": bool(quick),
            "seed": seed,
            "kwargs": _canon(kwargs),
            "fingerprint": fingerprint,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Row store under ``root``, one JSON file per key.

    ``fingerprint`` may be passed in (e.g. computed once in the parent
    and shipped to worker processes); by default it is computed — and
    memoized — from the installed source tree.
    """

    def __init__(
        self, root: pathlib.Path | str, *, fingerprint: str | None = None
    ) -> None:
        self.root = pathlib.Path(root)
        self.fingerprint = fingerprint or source_fingerprint()

    def _path(self, exp_id: str, key: str) -> pathlib.Path:
        # exp_id prefix keeps the directory human-auditable; slashes in
        # dynamic ids (ablate/<flip>/<workload>) flatten so every entry
        # stays a direct child of root (scan/prune glob "*.json" there)
        return self.root / f"{exp_id.replace('/', '__')}-{key[:32]}.json"

    def key(
        self, exp_id: str, kwargs: dict, *, quick: bool, seed: int | None
    ) -> str:
        return cache_key(
            exp_id, kwargs, quick=quick, seed=seed, fingerprint=self.fingerprint
        )

    def get_rows(
        self, exp_id: str, kwargs: dict, *, quick: bool, seed: int | None
    ) -> list[dict] | None:
        """Cached rows for this invocation, or ``None`` on any miss."""
        path = self._path(
            exp_id, self.key(exp_id, kwargs, quick=quick, seed=seed)
        )
        report = _check_entry(path)
        if report.status == "corrupt":
            # detected bit rot: surface it, recompute instead of replaying
            get_registry().counter("cache_corrupt").inc()
            get_bus().emit(
                NO_SIM_TIME,
                "cache_miss",
                -1,
                exp_id=exp_id,
                corrupt=True,
                reason=report.reason,
            )
            get_registry().counter("cache_misses").inc()
            return None
        if report.status != "ok":
            return self._miss(exp_id)
        get_registry().counter("cache_hits").inc()
        get_bus().emit(NO_SIM_TIME, "cache_hit", -1, exp_id=exp_id)
        return report.rows

    def _miss(self, exp_id: str) -> None:
        """Count a lookup miss (no-op instruments when obs is off)."""
        get_registry().counter("cache_misses").inc()
        get_bus().emit(NO_SIM_TIME, "cache_miss", -1, exp_id=exp_id)
        return None

    def put_rows(
        self,
        exp_id: str,
        rows: list[dict],
        kwargs: dict,
        *,
        quick: bool,
        seed: int | None,
    ) -> pathlib.Path | None:
        """Store rows; returns the entry path, or ``None`` when the rows
        are not JSON-serializable (such results are simply not cached)."""
        key = self.key(exp_id, kwargs, quick=quick, seed=seed)
        payload = {
            "version": CACHE_VERSION,
            "exp_id": exp_id,
            "quick": bool(quick),
            "seed": seed,
            "kwargs": _canon(kwargs),
            "fingerprint": self.fingerprint,
            "rows": rows,
        }
        try:
            payload["crc"] = rows_checksum(rows)
            text = json.dumps(payload)
        except (TypeError, ValueError):
            return None
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(exp_id, key)
        # durable + atomic: concurrent writers race benignly, a crash
        # mid-write leaves the previous entry (or nothing), never a torn one
        atomic_write_text(path, text + "\n")
        return path

    # -- operator verbs (``repro cache verify`` / ``prune``) -----------
    def scan(self) -> list["CacheEntryReport"]:
        """Checksum-verify every entry under :attr:`root`."""
        return scan_cache_dir(self.root)


@dataclass(frozen=True)
class CacheEntryReport:
    """Verdict on one cache file from :func:`scan_cache_dir`.

    ``status`` is ``"ok"``, ``"corrupt"`` (bit rot, torn write, schema
    damage — the entry can only mislead), ``"stale"`` (valid but a
    previous format version — harmless, will never hit), or
    ``"missing"`` (unreadable/absent).
    """

    path: pathlib.Path
    status: str
    reason: str = ""
    rows: list | None = None


def _check_entry(path: pathlib.Path) -> CacheEntryReport:
    """Classify one cache file: ok / corrupt / stale / missing."""
    try:
        raw = path.read_bytes()
    except OSError as exc:
        return CacheEntryReport(path, "missing", f"unreadable: {exc}")
    try:
        payload = json.loads(raw.decode())
    except UnicodeDecodeError:
        return CacheEntryReport(path, "corrupt", "not valid UTF-8")
    except ValueError:
        return CacheEntryReport(path, "corrupt", "not valid JSON")
    if not isinstance(payload, dict) or not isinstance(
        payload.get("rows"), list
    ):
        return CacheEntryReport(path, "corrupt", "entry schema damaged")
    version = payload.get("version")
    if version != CACHE_VERSION:
        return CacheEntryReport(
            path, "stale", f"format version {version} != {CACHE_VERSION}"
        )
    crc = payload.get("crc")
    if not isinstance(crc, str):
        return CacheEntryReport(path, "corrupt", "checksum missing")
    actual = rows_checksum(payload["rows"])
    if actual != crc:
        return CacheEntryReport(
            path, "corrupt", f"checksum mismatch ({actual} != {crc})"
        )
    return CacheEntryReport(path, "ok", rows=payload["rows"])


def scan_cache_dir(root: pathlib.Path | str) -> list[CacheEntryReport]:
    """Verify every ``*.json`` entry under ``root`` (sorted by name).

    Leftover ``*.tmp.*`` files from interrupted writes are not entries
    and are not reported; ``repro cache prune`` sweeps them separately.
    """
    root = pathlib.Path(root)
    if not root.is_dir():
        return []
    return [_check_entry(path) for path in sorted(root.glob("*.json"))]
