"""Content-addressed experiment result cache.

``python -m repro`` reruns are usually replays: the simulator is a pure
function of ``(code, exp_id, kwargs, seed, quick)``, so recomputing a
200k-trial grid that nothing invalidated is pure wall clock.  The cache
stores each experiment's **rows** under a key that hashes exactly the
things the rows depend on:

``key = sha256(version | exp_id | quick | seed | canonical(kwargs) |
source fingerprint)``

* ``kwargs`` are canonicalized (sorted keys, tuples as lists,
  non-JSON values by ``repr``) so equivalent calls collide on purpose.
* The **source fingerprint** hashes every ``.py`` file under the
  installed ``repro`` package (path + content), so *any* code change
  invalidates every entry — no staleness analysis, just a new key.

Only rows are reused; titles, params, and notes are rebuilt from the
live registry at hit time, so a cached result is indistinguishable from
a fresh one in every rendered artifact (rows survive a JSON round-trip
bit-exactly: floats serialize via shortest-repr).

Failures are never cached, and a corrupt or unreadable entry is a miss,
never an error.  ``scorecard`` is the headline consumer: in one
``python -m repro all`` batch it re-grades sub-experiments from their
just-written cache entries instead of recomputing them.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import repro
from repro.obs.metrics import get_registry
from repro.obs.tracebus import NO_SIM_TIME, get_bus

__all__ = ["ResultCache", "source_fingerprint", "cache_key"]

#: Bump to invalidate every existing cache entry on format changes.
CACHE_VERSION = 1

_fingerprint_memo: dict[pathlib.Path, str] = {}


def source_fingerprint(root: pathlib.Path | None = None) -> str:
    """Hash of every ``.py`` file (relative path + content) under ``root``.

    ``root`` defaults to the installed :mod:`repro` package directory.
    Memoized per process: the tree cannot change under a running
    experiment batch, and workers would otherwise rescan per task.
    """
    if root is None:
        root = pathlib.Path(repro.__file__).resolve().parent
    root = pathlib.Path(root)
    cached = _fingerprint_memo.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    out = digest.hexdigest()
    _fingerprint_memo[root] = out
    return out


def _canon(value):
    """Canonical JSON-able form of a kwargs value (stable across runs)."""
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def cache_key(
    exp_id: str,
    kwargs: dict,
    *,
    quick: bool,
    seed: int | None,
    fingerprint: str,
) -> str:
    """The content hash one experiment invocation addresses."""
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "exp_id": exp_id,
            "quick": bool(quick),
            "seed": seed,
            "kwargs": _canon(kwargs),
            "fingerprint": fingerprint,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Row store under ``root``, one JSON file per key.

    ``fingerprint`` may be passed in (e.g. computed once in the parent
    and shipped to worker processes); by default it is computed — and
    memoized — from the installed source tree.
    """

    def __init__(
        self, root: pathlib.Path | str, *, fingerprint: str | None = None
    ) -> None:
        self.root = pathlib.Path(root)
        self.fingerprint = fingerprint or source_fingerprint()

    def _path(self, exp_id: str, key: str) -> pathlib.Path:
        # exp_id prefix keeps the directory human-auditable
        return self.root / f"{exp_id}-{key[:32]}.json"

    def key(
        self, exp_id: str, kwargs: dict, *, quick: bool, seed: int | None
    ) -> str:
        return cache_key(
            exp_id, kwargs, quick=quick, seed=seed, fingerprint=self.fingerprint
        )

    def get_rows(
        self, exp_id: str, kwargs: dict, *, quick: bool, seed: int | None
    ) -> list[dict] | None:
        """Cached rows for this invocation, or ``None`` on any miss."""
        path = self._path(
            exp_id, self.key(exp_id, kwargs, quick=quick, seed=seed)
        )
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return self._miss(exp_id)
        rows = payload.get("rows") if isinstance(payload, dict) else None
        if not isinstance(rows, list):
            return self._miss(exp_id)
        get_registry().counter("cache_hits").inc()
        get_bus().emit(NO_SIM_TIME, "cache_hit", -1, exp_id=exp_id)
        return rows

    def _miss(self, exp_id: str) -> None:
        """Count a lookup miss (no-op instruments when obs is off)."""
        get_registry().counter("cache_misses").inc()
        get_bus().emit(NO_SIM_TIME, "cache_miss", -1, exp_id=exp_id)
        return None

    def put_rows(
        self,
        exp_id: str,
        rows: list[dict],
        kwargs: dict,
        *,
        quick: bool,
        seed: int | None,
    ) -> pathlib.Path | None:
        """Store rows; returns the entry path, or ``None`` when the rows
        are not JSON-serializable (such results are simply not cached)."""
        key = self.key(exp_id, kwargs, quick=quick, seed=seed)
        payload = {
            "version": CACHE_VERSION,
            "exp_id": exp_id,
            "quick": bool(quick),
            "seed": seed,
            "kwargs": _canon(kwargs),
            "fingerprint": self.fingerprint,
            "rows": rows,
        }
        try:
            text = json.dumps(payload)
        except (TypeError, ValueError):
            return None
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(exp_id, key)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text + "\n")
        tmp.replace(path)  # atomic: concurrent writers race benignly
        return path
