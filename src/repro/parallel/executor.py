"""Inter-experiment process-pool executor.

``python -m repro all --jobs N`` dispatches independent experiments to
worker processes.  Since the supervised-pool rework the heavy lifting
lives in :mod:`repro.parallel.supervisor`; this module keeps the
CLI-facing :class:`ParallelExecutor` surface stable:

* **Workers** run :func:`repro.experiments.run_experiment` — each in
  the *main thread of its own process*, so the ``SIGALRM`` watchdog is
  fully armed there (the worker's heartbeat thread is a side thread;
  the task body stays on the main thread).  Workers are now *warm*:
  spawned once per run and fed tasks over their pipes until the queue
  drains.
* **The parent** owns every side effect: it is the single writer of
  the checkpoint journal (``on_complete`` fires in completion order),
  it renders results, and it supervises workers — process-level
  timeouts, heartbeat-based hang detection, bounded re-execution of
  tasks whose worker crashed, and degradation to serial in-parent
  execution when the restart budget runs out.

Determinism: a worker computes rows with exactly the same
``run_experiment`` call the serial path uses, and nothing about
scheduling (or supervision — re-execution reruns the same seeded body)
feeds the computation, so rows are invariant to ``--jobs`` and to any
chaos schedule that lets the run complete.  Results are *reported* in
submission order; only checkpoint entries land in completion order.
"""

from __future__ import annotations

from typing import Callable

from repro.parallel.retry import RetryPolicy
from repro.parallel.supervisor import (
    ExperimentOutcome,
    ExperimentTask,
    SupervisedPool,
)

__all__ = ["ExperimentTask", "ExperimentOutcome", "ParallelExecutor"]


class ParallelExecutor:
    """Fan ``exp_ids`` out over a supervised pool of ``jobs`` workers.

    Parameters mirror the serial CLI path; ``kill_grace`` is the slack
    after ``timeout`` before the parent stops trusting the in-worker
    watchdog and kills the process itself.  ``retries`` builds a
    :class:`~repro.parallel.retry.RetryPolicy` for callers that predate
    it; pass ``retry`` to control crash re-execution and the worker
    restart budget too.
    """

    def __init__(
        self,
        jobs: int,
        *,
        quick: bool = False,
        seed: int | None = None,
        timeout: float | None = None,
        retries: int = 0,
        retry: RetryPolicy | None = None,
        cache_dir: str | None = None,
        fingerprint: str | None = None,
        overrides: dict | None = None,
        collect: bool = False,
        kill_grace: float = 5.0,
        poll_interval: float = 0.05,
        heartbeat_timeout: float | None = None,
        chaos=None,
        start_method: str | None = None,
    ) -> None:
        self.jobs = jobs
        self.quick = quick
        self.seed = seed
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy(retries=retries)
        self.cache_dir = cache_dir
        self.fingerprint = fingerprint
        self.overrides = dict(overrides or {})
        self.collect = collect
        pool_kwargs = dict(
            retry=self.retry,
            timeout=timeout,
            kill_grace=kill_grace,
            poll_interval=poll_interval,
            chaos=chaos,
            start_method=start_method,
        )
        if heartbeat_timeout is not None:
            pool_kwargs["heartbeat_timeout"] = heartbeat_timeout
        self.pool = SupervisedPool(jobs, **pool_kwargs)

    @property
    def stats(self):
        """Supervision counters from the most recent :meth:`run`."""
        return self.pool.stats

    # ------------------------------------------------------------------
    def _task(self, exp_id: str) -> ExperimentTask:
        return ExperimentTask(
            exp_id=exp_id,
            quick=self.quick,
            seed=self.seed,
            timeout=self.timeout,
            retry=self.retry,
            cache_dir=self.cache_dir,
            fingerprint=self.fingerprint,
            overrides=self.overrides,
            collect=self.collect,
        )

    def run(
        self,
        exp_ids: list[str],
        *,
        on_complete: Callable[[ExperimentOutcome], None] | None = None,
        stop_on_failure: bool = False,
    ) -> list[ExperimentOutcome]:
        """Execute ``exp_ids``; return outcomes in submission order.

        ``on_complete`` fires in *completion* order (the checkpoint
        hook — the parent is the only writer).  With
        ``stop_on_failure`` a failure stops launching new work; already
        running experiments finish, unstarted ones come back
        ``"skipped"``.
        """
        outcomes = self.pool.run(
            [self._task(exp_id) for exp_id in exp_ids],
            on_outcome=on_complete,
            stop_on_failure=stop_on_failure,
        )
        for exp_id in exp_ids:  # unstarted under stop_on_failure
            if exp_id not in outcomes:
                outcomes[exp_id] = ExperimentOutcome(exp_id, "skipped")
        return [outcomes[exp_id] for exp_id in exp_ids]
