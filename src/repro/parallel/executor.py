"""Inter-experiment process-pool executor.

``python -m repro all --jobs N`` dispatches independent experiments to
worker processes.  Division of labour:

* **Workers** run :func:`repro.experiments.run_experiment` — each in
  the *main thread of its own process*, so the ``SIGALRM`` watchdog is
  fully armed there (the serial CLI shares this property; only
  embedders running experiments on secondary threads lose it).  A
  worker reports exactly one ``(status, payload)`` message back over
  its pipe and exits.
* **The parent** owns every side effect: it is the single writer of
  the checkpoint file (``on_complete`` fires in completion order), it
  renders results, and it enforces a **process-level timeout** — a
  worker that blows through ``timeout`` plus a grace period is
  terminated outright, which works even against code that swallows the
  in-worker alarm (``except BaseException`` loops, C extensions
  holding the GIL between bytecodes, masked signals).

Determinism: a worker computes rows with exactly the same
``run_experiment`` call the serial path uses, and nothing about
scheduling feeds the computation, so rows are invariant to ``--jobs``.
Results are *reported* in submission order; only checkpoint entries
land in completion order.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import InvalidParameterError
from repro.parallel.pool import best_start_method

__all__ = ["ExperimentTask", "ExperimentOutcome", "ParallelExecutor"]


@dataclass(frozen=True)
class ExperimentTask:
    """Everything a worker needs to run one experiment (picklable)."""

    exp_id: str
    quick: bool = False
    seed: int | None = None
    timeout: float | None = None
    retries: int = 0
    cache_dir: str | None = None
    fingerprint: str | None = None
    overrides: dict = field(default_factory=dict)
    #: run under a fresh obs capture and ship the metric snapshot +
    #: trace events back alongside the result
    collect: bool = False


@dataclass
class ExperimentOutcome:
    """What became of one dispatched experiment."""

    exp_id: str
    status: str  # "ok" | "failed" | "skipped"
    result: object | None = None  # ExperimentResult when status == "ok"
    error_type: str | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    #: per-experiment observability (only with ``collect=True``):
    #: a MetricsRegistry snapshot and the worker's ObsEvent list
    metrics: dict | None = None
    events: list | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _worker_entry(conn, task: ExperimentTask) -> None:  # simlint: disable=DET004 -- the seed rides inside the ExperimentTask payload; run_experiment derives every stream from it
    """Run one experiment in a worker process; report over ``conn``.

    Every outcome — including the watchdog timeout and interrupts —
    crosses the process boundary as data: the parent turns it back
    into a failure outcome, so nothing is swallowed, merely relocated.
    """
    from contextlib import nullcontext

    from repro.experiments.registry import run_experiment
    from repro.obs import capture
    from repro.parallel.cache import ResultCache

    try:
        cache = (
            ResultCache(task.cache_dir, fingerprint=task.fingerprint)
            if task.cache_dir
            else None
        )
        with (capture() if task.collect else nullcontext()) as cap:
            result = run_experiment(
                task.exp_id,
                quick=task.quick,
                seed=task.seed,
                timeout=task.timeout,
                retries=task.retries,
                cache=cache,
                **task.overrides,
            )
        if cap is not None:
            payload = ("ok", (result, cap.snapshot(), cap.events))
        else:
            payload = ("ok", result)
    except BaseException as exc:  # simlint: disable=ERR002,ERR003 -- process boundary: the parent re-raises this as a failure outcome; a worker must never die silently
        payload = ("failed", (type(exc).__name__, str(exc)))
    try:
        conn.send(payload)
    except Exception:  # simlint: disable=ERR002 -- unpicklable result: downgrade to a reportable failure rather than hanging the parent
        conn.send(
            ("failed", ("ExperimentError", "result could not be pickled"))
        )
    finally:
        conn.close()


class ParallelExecutor:
    """Fan ``exp_ids`` out over up to ``jobs`` worker processes.

    Parameters mirror the serial CLI path; ``kill_grace`` is the slack
    after ``timeout`` before the parent stops trusting the in-worker
    watchdog and terminates the process itself.
    """

    def __init__(
        self,
        jobs: int,
        *,
        quick: bool = False,
        seed: int | None = None,
        timeout: float | None = None,
        retries: int = 0,
        cache_dir: str | None = None,
        fingerprint: str | None = None,
        overrides: dict | None = None,
        collect: bool = False,
        kill_grace: float = 5.0,
        poll_interval: float = 0.05,
        start_method: str | None = None,
    ) -> None:
        if jobs < 1:
            raise InvalidParameterError(f"need jobs >= 1, got {jobs}")
        self.jobs = jobs
        self.quick = quick
        self.seed = seed
        self.timeout = timeout
        self.retries = retries
        self.cache_dir = cache_dir
        self.fingerprint = fingerprint
        self.overrides = dict(overrides or {})
        self.collect = collect
        self.kill_grace = kill_grace
        self.poll_interval = poll_interval
        self._ctx = multiprocessing.get_context(
            start_method or best_start_method()
        )

    # ------------------------------------------------------------------
    def _task(self, exp_id: str) -> ExperimentTask:
        return ExperimentTask(
            exp_id=exp_id,
            quick=self.quick,
            seed=self.seed,
            timeout=self.timeout,
            retries=self.retries,
            cache_dir=self.cache_dir,
            fingerprint=self.fingerprint,
            overrides=self.overrides,
            collect=self.collect,
        )

    def run(
        self,
        exp_ids: list[str],
        *,
        on_complete: Callable[[ExperimentOutcome], None] | None = None,
        stop_on_failure: bool = False,
    ) -> list[ExperimentOutcome]:
        """Execute ``exp_ids``; return outcomes in submission order.

        ``on_complete`` fires in *completion* order (the checkpoint
        hook — the parent is the only writer).  With
        ``stop_on_failure`` a failure stops launching new work; already
        running experiments finish, unstarted ones come back
        ``"skipped"``.
        """
        pending: deque[str] = deque(exp_ids)
        live: dict = {}  # conn -> (process, exp_id, start time)
        outcomes: dict[str, ExperimentOutcome] = {}
        failed = False

        def record(outcome: ExperimentOutcome) -> None:
            nonlocal failed
            outcomes[outcome.exp_id] = outcome
            if outcome.status == "failed":
                failed = True
            if on_complete is not None:
                on_complete(outcome)

        while pending or live:
            while (
                pending
                and len(live) < self.jobs
                and not (stop_on_failure and failed)
            ):
                exp_id = pending.popleft()
                recv_conn, send_conn = self._ctx.Pipe(duplex=False)
                proc = self._ctx.Process(
                    target=_worker_entry,
                    args=(send_conn, self._task(exp_id)),
                    name=f"repro-{exp_id}",
                )
                proc.start()
                send_conn.close()  # parent keeps only the read end
                live[recv_conn] = (proc, exp_id, time.monotonic())
            if not live:
                break  # stop_on_failure drained the launch loop
            ready = multiprocessing.connection.wait(
                list(live), timeout=self.poll_interval
            )
            now = time.monotonic()
            for conn in ready:
                proc, exp_id, start = live.pop(conn)
                try:
                    status, payload = conn.recv()
                except (EOFError, OSError):
                    proc.join()  # reap first so exitcode is populated
                    status, payload = "failed", (
                        "ExperimentError",
                        f"worker for {exp_id!r} exited without a result "
                        f"(exit code {proc.exitcode})",
                    )
                conn.close()
                proc.join()
                if status == "ok":
                    metrics = events = None
                    if self.collect:
                        payload, metrics, events = payload
                    record(
                        ExperimentOutcome(
                            exp_id,
                            "ok",
                            result=payload,
                            elapsed_s=now - start,
                            metrics=metrics,
                            events=events,
                        )
                    )
                else:
                    error_type, error = payload
                    record(
                        ExperimentOutcome(
                            exp_id,
                            "failed",
                            error_type=error_type,
                            error=error,
                            elapsed_s=now - start,
                        )
                    )
            if self.timeout is not None:
                budget = self.timeout + self.kill_grace
                for conn in [
                    c for c, (_, _, s) in live.items() if now - s > budget
                ]:
                    proc, exp_id, start = live.pop(conn)
                    proc.terminate()
                    proc.join(1.0)
                    if proc.is_alive():  # pragma: no cover - SIGTERM blocked
                        proc.kill()
                        proc.join()
                    conn.close()
                    record(
                        ExperimentOutcome(
                            exp_id,
                            "failed",
                            error_type="ExperimentTimeoutError",
                            error=(
                                f"experiment {exp_id!r} exceeded its "
                                f"{self.timeout:g}s wall-clock budget; "
                                f"worker process killed by the parent "
                                f"(in-worker watchdog did not fire)"
                            ),
                            elapsed_s=now - start,
                        )
                    )
        for exp_id in pending:  # unstarted under stop_on_failure
            outcomes[exp_id] = ExperimentOutcome(exp_id, "skipped")
        return [outcomes[exp_id] for exp_id in exp_ids if exp_id in outcomes]
