"""One retry/backoff policy shared by every execution path.

Before this module each layer carried its own ad-hoc knobs: the serial
runner had ``retries`` + ``retry_backoff``, the parallel executor
forwarded them, and worker-crash recovery did not exist at all.  A
:class:`RetryPolicy` is the single picklable object threaded through
:func:`repro.experiments.run_experiment`, the
:class:`~repro.parallel.executor.ParallelExecutor`, and the
:class:`~repro.parallel.supervisor.SupervisedPool`:

* ``retries`` / ``backoff_base`` / ``backoff_factor`` — in-process
  re-runs after a transient :class:`~repro.errors.SimulationError`
  (exponential backoff; timeouts are never retried).
* ``max_task_reexecutions`` — how often a task whose *worker process*
  died (SIGKILL, OOM, chaos) is handed to a fresh worker before it is
  recorded as failed.
* ``max_worker_restarts`` / ``restart_backoff`` — the pool-wide budget
  of replacement workers; once exhausted the supervisor degrades to
  serial in-parent execution instead of spawning forever.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry, re-execution, and restart budgets for one run (picklable)."""

    #: extra in-process attempts after a transient ``SimulationError``.
    retries: int = 0
    #: first backoff sleep in seconds; doubles (``backoff_factor``) per attempt.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    #: re-executions of a task whose worker process died mid-flight.
    max_task_reexecutions: int = 2
    #: pool-wide budget of replacement worker processes.
    max_worker_restarts: int = 8
    #: first sleep before restarting a dead worker; doubles per restart.
    restart_backoff: float = 0.02

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise InvalidParameterError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.max_task_reexecutions < 0:
            raise InvalidParameterError(
                "max_task_reexecutions must be >= 0, got "
                f"{self.max_task_reexecutions}"
            )
        if self.max_worker_restarts < 0:
            raise InvalidParameterError(
                f"max_worker_restarts must be >= 0, got "
                f"{self.max_worker_restarts}"
            )
        if self.backoff_base < 0 or self.restart_backoff < 0:
            raise InvalidParameterError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise InvalidParameterError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    # ------------------------------------------------------------------
    def attempt_backoff(self, attempt: int) -> float:
        """Sleep before in-process retry number ``attempt`` (0-based)."""
        return self.backoff_base * self.backoff_factor**attempt

    def reexecution_backoff(self, reexecution: int) -> float:
        """Sleep before re-dispatching a crashed task (0-based count)."""
        return self.backoff_base * self.backoff_factor**reexecution

    def restart_delay(self, restart: int) -> float:
        """Sleep before spawning replacement worker number ``restart``."""
        return self.restart_backoff * self.backoff_factor**restart


#: The defaults every path uses when no explicit policy is given.
DEFAULT_RETRY_POLICY = RetryPolicy()
