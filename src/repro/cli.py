"""Command-line entry point: regenerate the paper's tables and figures.

Examples::

    python -m repro --list
    python -m repro fig2a tab_ratios
    python -m repro all --quick
    python -m repro fig3_stack --seed 7 --out results/
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.experiments import EXPERIMENTS, render_result, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'The Transactional "
            "Conflict Problem' (SPAA 2018)"
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (or 'all'); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced trial counts / horizons (CI mode)",
    )
    parser.add_argument("--seed", type=int, default=None, help="root RNG seed")
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to also write one <id>.txt report per experiment",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with --out, additionally write <id>.json (rows + params) "
        "for downstream plotting",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.experiments:
        for exp_id, title in sorted(EXPERIMENTS.items()):
            print(f"{exp_id:16s} {title}")
        return 0
    ids = list(args.experiments)
    if ids == ["all"]:
        ids = sorted(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use --list to see available ids", file=sys.stderr)
        return 2
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for exp_id in ids:
        start = time.perf_counter()
        result = run_experiment(exp_id, quick=args.quick, seed=args.seed)
        text = render_result(result)
        elapsed = time.perf_counter() - start
        print(text)
        print(f"[{exp_id} completed in {elapsed:.1f}s]\n")
        if args.out is not None:
            (args.out / f"{exp_id}.txt").write_text(text + "\n")
            if args.json:
                payload = {
                    "exp_id": result.exp_id,
                    "title": result.title,
                    "params": {k: repr(v) for k, v in result.params.items()},
                    "rows": result.rows,
                    "notes": result.notes,
                }
                (args.out / f"{exp_id}.json").write_text(
                    json.dumps(payload, indent=2, default=str) + "\n"
                )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
