"""Command-line entry point: regenerate the paper's tables and figures.

Examples::

    python -m repro --list
    python -m repro fig2a tab_ratios
    python -m repro all --quick
    python -m repro fig3_stack --seed 7 --out results/
    python -m repro all --quick --keep-going --timeout 120 --resume
    python -m repro all --quick --jobs 4
    python -m repro fig3_stack --jobs 8          # intra-experiment shards
    python -m repro all --no-cache --cache-dir /tmp/repro-cache
    python -m repro lint --list-rules
    python -m repro analyze                      # lint --deep alias
    python -m repro cache verify
    python -m repro all --quick --jobs 4 --chaos 1234 --resume
    python -m repro loadgen --quick --seed 3     # decision-service replay
    python -m repro serve --requests 2000        # serving smoke

``lint`` dispatches to :mod:`repro.analysis.cli` — the simlint
determinism & contract linter (docs/STATIC_ANALYSIS.md); ``cache``
dispatches to :mod:`repro.parallel.cache_cli` — checksum verification
and pruning of the result cache; ``serve``/``loadgen`` dispatch to
:mod:`repro.serve.cli` — the conflict-policy decision service and its
million-client replay harness (docs/SERVING.md).

Parallelism & caching (docs/PERFORMANCE.md):

* ``--jobs N`` with several experiments fans them out to worker
  processes (ordered reporting, single-writer checkpointing,
  process-level timeout kills); with a single experiment it hands the
  runner a shard pool for intra-experiment fan-out.  Rows are
  invariant to ``--jobs`` — only wall clock changes.
* Results are cached content-addressed under ``--cache-dir``
  (default ``.repro-cache``, or ``$REPRO_CACHE_DIR``); any source
  change invalidates every entry.  ``--no-cache`` (or
  ``$REPRO_NO_CACHE=1``) disables both lookup and store.

Resilience (docs/ROBUSTNESS.md):

* ``--timeout`` arms a per-experiment wall-clock watchdog; under
  ``--jobs`` the parent also kills overdue worker processes.
* ``--retries`` re-runs an experiment that died with a transient
  :class:`~repro.errors.SimulationError` (timeouts are never retried).
* ``--keep-going`` records failures and keeps running; the run exits
  non-zero with a per-experiment failure summary instead of aborting
  at the first error.
* ``--resume`` (with ``--checkpoint``, or the default checkpoint path)
  skips experiments a previous invocation already completed, so a
  crashed or killed batch picks up where it left off.  Checkpoints are
  an append-only, fsync-committed JSONL *journal* with per-record
  checksums: a crash mid-write costs at most the torn tail, which
  recovery truncates back to the last durable record.
* Under ``--jobs``, workers are warm and *supervised*: heartbeat pings
  detect crashed or hung workers, their in-flight task is re-executed
  on a fresh worker (bounded, with backoff), and once
  ``--max-worker-restarts`` replacements are spent the run degrades to
  serial in-parent execution instead of failing.
* ``--chaos SEED`` arms the process-level chaos harness (seeded
  SIGKILLs of workers at injection points) to exercise exactly that
  machinery; completed runs still produce rows byte-identical to a
  fault-free run.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from contextlib import nullcontext

from repro.errors import ReproError
from repro.experiments import (
    EXPERIMENTS,
    render_failures,
    render_result,
    run_experiment,
)
from repro.obs import capture as obs_capture

__all__ = ["main", "build_parser"]

#: Default checkpoint location when ``--resume`` is given without an
#: explicit ``--checkpoint`` (and no ``--out`` directory to put it in).
DEFAULT_CHECKPOINT = pathlib.Path(".repro-checkpoint.json")

#: Default result-cache location (overridable via ``$REPRO_CACHE_DIR``).
DEFAULT_CACHE_DIR = ".repro-cache"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'The Transactional "
            "Conflict Problem' (SPAA 2018)"
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (or 'all'); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced trial counts / horizons (CI mode)",
    )
    parser.add_argument("--seed", type=int, default=None, help="root RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes: several experiments fan out one-per-"
        "worker; a single experiment gets an intra-experiment shard "
        "pool.  Rows are identical at any --jobs (deterministic "
        "sharding)",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=not os.environ.get("REPRO_NO_CACHE"),
        help="reuse content-addressed cached rows when nothing they "
        "depend on changed (--no-cache disables; also "
        "$REPRO_NO_CACHE=1)",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=pathlib.Path(
            os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        ),
        metavar="PATH",
        help=f"result cache directory (default {DEFAULT_CACHE_DIR}, or "
        "$REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to also write one <id>.txt report per experiment",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with --out, additionally write <id>.json (rows + params) "
        "for downstream plotting",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock watchdog per experiment; a run past the budget "
        "is killed with ExperimentTimeoutError (with --jobs, the parent "
        "kills the worker process itself if the in-worker alarm fails)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry an experiment up to N times (exponential backoff) "
        "after a transient SimulationError; timeouts are not retried",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="collect per-experiment failures and keep running; exit "
        "non-zero with a failure summary at the end",
    )
    parser.add_argument(
        "--checkpoint",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="record per-experiment completion in an append-only "
        "checkpoint journal (default with --resume: "
        f"<out>/checkpoint.json, else {DEFAULT_CHECKPOINT})",
    )
    parser.add_argument(
        "--chaos",
        type=int,
        default=None,
        metavar="SEED",
        help="arm seeded process-level chaos: SIGKILL worker processes "
        "at deterministic injection points (needs --jobs > 1); the "
        "supervised pool re-executes killed tasks, so completed runs "
        "still produce fault-free rows",
    )
    parser.add_argument(
        "--max-worker-restarts",
        type=int,
        default=8,
        metavar="N",
        help="pool-wide budget of replacement worker processes; once "
        "spent, remaining experiments run serially in the parent",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments the checkpoint already marks completed "
        "(same --quick/--seed run only)",
    )
    parser.add_argument(
        "--metrics-out",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="write the batch's merged metrics snapshot as JSON "
        "(per-experiment snapshots merged in submission order — "
        "byte-identical at any --jobs; docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--trace-out",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="write the batch's trace events as canonical JSONL "
        "(submission order — byte-identical at any --jobs)",
    )
    return parser


def _checkpoint_path(args: argparse.Namespace) -> pathlib.Path | None:
    """Where checkpoint state lives, or None when checkpointing is off
    (neither --checkpoint nor --resume was requested)."""
    if args.checkpoint is not None:
        return args.checkpoint
    if not args.resume:
        return None
    if args.out is not None:
        return args.out / "checkpoint.json"
    return DEFAULT_CHECKPOINT


def _open_journal(args: argparse.Namespace, ckpt_path: pathlib.Path):
    """Open (recovering) the checkpoint journal; report what recovery
    did.  A journal from a different ``(quick, seed)`` configuration is
    rotated aside — resuming across configurations would silently mix
    incomparable results.  Journal records land in completion order, so
    their ``checkpoint_written`` events stay out of the per-experiment
    captures that feed ``--trace-out`` (which must stay invariant to
    ``--jobs``)."""
    from repro.parallel import CheckpointJournal

    journal = CheckpointJournal(
        ckpt_path, quick=args.quick, seed=args.seed
    ).open()
    if journal.rotated is not None:
        header = journal.rotated.header or {}
        print(
            f"checkpoint {ckpt_path} is from a different run "
            f"(quick={header.get('quick')!r}, seed={header.get('seed')!r}); "
            f"ignoring it",
            file=sys.stderr,
        )
    elif journal.recovery is not None and journal.recovery.truncated:
        rec = journal.recovery
        print(
            f"checkpoint {ckpt_path}: recovered a torn tail "
            f"({rec.dropped_records} record(s), {rec.dropped_bytes} bytes "
            f"dropped); resuming from the last durable record",
            file=sys.stderr,
        )
    return journal


def _mark_done(journal, exp_id: str, entry: dict) -> None:
    """Durably record one experiment's final status (no-op without a
    journal)."""
    if journal is not None:
        journal.mark_done(exp_id, entry)


def _emit_result(args: argparse.Namespace, result, elapsed: float) -> None:
    """Print one completed experiment and write its --out artifacts."""
    text = render_result(result)
    print(text)
    suffix = " (cache hit)" if result.cached else ""
    print(f"[{result.exp_id} completed in {elapsed:.1f}s{suffix}]\n")
    if args.out is not None:
        (args.out / f"{result.exp_id}.txt").write_text(text + "\n")
        if args.json:
            payload = {
                "exp_id": result.exp_id,
                "title": result.title,
                "params": {k: repr(v) for k, v in result.params.items()},
                "rows": result.rows,
                "notes": result.notes,
            }
            (args.out / f"{result.exp_id}.json").write_text(
                json.dumps(payload, indent=2, default=str) + "\n"
            )


def _write_obs(args: argparse.Namespace, snaps: list, events: list) -> None:
    """Write --metrics-out / --trace-out artifacts.

    ``snaps`` and ``events`` arrive in experiment submission order, so
    both files are byte-identical at any ``--jobs``."""
    from repro.obs import merge_snapshots
    from repro.obs.tracebus import write_jsonl

    if args.metrics_out is not None:
        args.metrics_out.write_text(
            json.dumps(merge_snapshots(snaps), indent=2, sort_keys=True) + "\n"
        )
        print(f"[metrics snapshot -> {args.metrics_out}]")
    if args.trace_out is not None:
        count = write_jsonl(events, args.trace_out)
        print(f"[{count} trace events -> {args.trace_out}]")


#: Supervision vocabulary folded into --metrics-out / --trace-out:
#: counters the supervised pool and journal recovery increment, and the
#: event kinds they emit on the parent's bus.  Fault-free runs produce
#: none of either, so the obs artifacts stay byte-identical at any
#: --jobs; under chaos they carry the restart/recovery counts.
_SUPERVISION_COUNTERS = frozenset(
    {
        "worker_crashes",
        "worker_restarts",
        "task_reexecutions",
        "worker_heartbeat_timeouts",
        "worker_parent_kills",
        "degraded_to_serial",
        "journal_recoveries",
    }
)
_SUPERVISION_KINDS = frozenset(
    {
        "worker_crashed",
        "worker_restarted",
        "journal_recovered",
        "degraded_to_serial",
    }
)


def _fold_supervision(parent_cap, snaps: list, events: list) -> None:
    """Append the parent capture's supervision counters/events to the
    obs outputs (see _SUPERVISION_COUNTERS)."""
    if parent_cap is None:
        return
    events.extend(
        e for e in parent_cap.events if e.kind in _SUPERVISION_KINDS
    )
    counters = {
        name: value
        for name, value in parent_cap.snapshot().get("counters", {}).items()
        if name in _SUPERVISION_COUNTERS and value
    }
    if counters:
        snaps.append({"counters": counters, "gauges": {}, "histograms": {}})


def _run_parallel(
    args: argparse.Namespace,
    ids: list[str],
    cache,
    journal,
    done: dict[str, dict],
    failures: list[dict[str, object]],
    *,
    collect: bool = False,
):
    """Fan ``ids`` out over the supervised worker pool.

    The parent stays the only checkpoint writer: per-experiment
    ``done`` records land in completion order (fsync'd journal
    appends), while results are *emitted* in submission order so the
    report reads like the serial run.  Returns ``(outcomes,
    supervisor stats)``.
    """
    from repro.parallel import ParallelExecutor, RetryPolicy

    chaos = None
    retry = RetryPolicy(
        retries=args.retries, max_worker_restarts=args.max_worker_restarts
    )
    if args.chaos is not None:
        from repro.faults import ChaosPlan

        chaos = ChaosPlan(seed=args.chaos)
        if retry.max_task_reexecutions < chaos.safe_attempt:
            # chaos is suppressed from safe_attempt on; the budget must
            # reach it or a chaosed task could fail before its safe run
            retry = RetryPolicy(
                retries=retry.retries,
                max_task_reexecutions=chaos.safe_attempt,
                max_worker_restarts=retry.max_worker_restarts,
            )
    executor = ParallelExecutor(
        args.jobs,
        quick=args.quick,
        seed=args.seed,
        timeout=args.timeout,
        retry=retry,
        cache_dir=str(args.cache_dir) if cache is not None else None,
        fingerprint=cache.fingerprint if cache is not None else None,
        collect=collect,
        chaos=chaos,
    )
    buffered: dict[str, object] = {}
    emit_order = list(ids)

    def flush() -> None:
        while emit_order and emit_order[0] in buffered:
            outcome = buffered.pop(emit_order.pop(0))
            if outcome.ok:
                _emit_result(args, outcome.result, outcome.elapsed_s)
            elif outcome.status == "failed":
                print(
                    f"[{outcome.exp_id} FAILED after {outcome.elapsed_s:.1f}s:"
                    f" {outcome.error_type}: {outcome.error}]\n",
                    file=sys.stderr,
                )

    def on_complete(outcome) -> None:
        # completion order: checkpoint first, so a kill right here loses
        # at most the in-flight experiments, never a finished one
        if outcome.ok:
            done[outcome.exp_id] = {
                "status": "ok",
                "elapsed_s": round(outcome.elapsed_s, 2),
            }
        else:
            failure = {
                "exp_id": outcome.exp_id,
                "error_type": outcome.error_type,
                "error": outcome.error,
            }
            if outcome.exit_cause is not None:
                # the real reason the worker died (signal/exit/timeout)
                failure["exit_cause"] = outcome.exit_cause
            failures.append(failure)
            done[outcome.exp_id] = {
                "status": "failed",
                "elapsed_s": round(outcome.elapsed_s, 2),
                **{k: v for k, v in failure.items() if k != "exp_id"},
            }
        _mark_done(journal, outcome.exp_id, done[outcome.exp_id])
        buffered[outcome.exp_id] = outcome
        flush()

    outcomes = executor.run(
        ids, on_complete=on_complete, stop_on_failure=not args.keep_going
    )
    flush()
    skipped = [o.exp_id for o in outcomes if o.status == "skipped"]
    if skipped:
        print(
            f"[{len(skipped)} experiment(s) not started after failure: "
            f"{', '.join(skipped)}]",
            file=sys.stderr,
        )
    stats = executor.stats
    if stats.any():
        summary = ", ".join(
            f"{k}={v}" for k, v in stats.as_dict().items() if v
        )
        print(f"[supervisor: {summary}]", file=sys.stderr)
    return outcomes, stats


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # the determinism & contract linter is its own subcommand with
        # its own parser; see repro.analysis.cli and docs/STATIC_ANALYSIS.md
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "analyze":
        # alias for `lint --deep`: the whole-program determinism pass
        # (call-graph purity + seed provenance; repro.analysis.flow)
        from repro.analysis.cli import main as lint_main

        return lint_main(["--deep", *argv[1:]])
    if argv and argv[0] == "trace":
        # run one experiment under the trace bus and export its event
        # stream; see repro.obs.cli and docs/OBSERVABILITY.md
        from repro.obs.cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "cache":
        # result-cache operator verbs (verify / prune); see
        # repro.parallel.cache_cli and docs/ROBUSTNESS.md
        from repro.parallel.cache_cli import cache_main

        return cache_main(argv[1:])
    if argv and argv[0] == "loadgen":
        # the decision-service replay/load harness; see repro.serve
        # and docs/SERVING.md
        from repro.serve.cli import loadgen_main

        return loadgen_main(argv[1:])
    if argv and argv[0] == "serve":
        # one-shot smoke serving of the conflict-policy decision
        # service; see repro.serve and docs/SERVING.md
        from repro.serve.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "ablate":
        # the strategy-ablation matrix + importance ranking; see
        # repro.ablation and docs/ABLATION.md
        from repro.ablation.cli import ablate_main

        return ablate_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list or not args.experiments:
        for exp_id, title in sorted(EXPERIMENTS.items()):
            print(f"{exp_id:16s} {title}")
        return 0
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    ids = list(args.experiments)
    if ids == ["all"]:
        ids = sorted(EXPERIMENTS)
    # ablation cells (ablate/<flip>/<workload>) resolve dynamically
    from repro.experiments.registry import known_experiment

    unknown = [i for i in ids if not known_experiment(i)]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use --list to see available ids", file=sys.stderr)
        return 2
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    cache = None
    if args.cache:
        from repro.parallel import ResultCache

        cache = ResultCache(args.cache_dir)

    if args.chaos is not None and args.jobs < 2:
        print(
            "--chaos targets worker processes and needs --jobs > 1; "
            "ignoring it",
            file=sys.stderr,
        )
        args.chaos = None

    collect = args.metrics_out is not None or args.trace_out is not None
    journal = None
    try:
        # the parent-side capture records supervision activity (worker
        # crashes/restarts, journal recoveries); fault-free runs record
        # nothing, keeping --metrics-out/--trace-out byte-identical at
        # any --jobs
        with (obs_capture() if collect else nullcontext()) as parent_cap:
            ckpt_path = _checkpoint_path(args)
            done: dict[str, dict] = {}
            if ckpt_path is not None:
                journal = _open_journal(args, ckpt_path)
                if args.resume:
                    done = journal.done_map()

            failures: list[dict[str, object]] = []
            run_ids: list[str] = []
            for exp_id in ids:
                if args.resume and done.get(exp_id, {}).get("status") == "ok":
                    print(f"[{exp_id} already completed; skipping (--resume)]")
                    continue
                run_ids.append(exp_id)

            # chaos forces the supervised-executor path even for a
            # single experiment: it is the layer that survives the kills
            if args.jobs > 1 and (len(run_ids) > 1 or args.chaos is not None):
                outcomes, _ = _run_parallel(
                    args, run_ids, cache, journal, done, failures,
                    collect=collect,
                )
                if collect:
                    snaps = [
                        o.metrics for o in outcomes if o.metrics is not None
                    ]
                    events = [
                        e for o in outcomes if o.events for e in o.events
                    ]
                    _fold_supervision(parent_cap, snaps, events)
                    _write_obs(args, snaps, events)
                if failures:
                    print(render_failures(failures), file=sys.stderr)
                    return 1
                return 0

            # serial path (also: single experiment with an
            # intra-experiment pool)
            pool = None
            if args.jobs > 1 and run_ids:
                from repro.parallel import make_pool

                pool = make_pool(args.jobs)
            snaps: list = []
            events: list = []
            try:
                for exp_id in run_ids:
                    start = time.perf_counter()
                    try:
                        with (
                            obs_capture() if collect else nullcontext()
                        ) as cap:
                            result = run_experiment(
                                exp_id,
                                quick=args.quick,
                                seed=args.seed,
                                timeout=args.timeout,
                                retries=args.retries,
                                cache=cache,
                                pool=pool,
                            )
                        if cap is not None:
                            snaps.append(cap.snapshot())
                            events.extend(cap.events)
                    except ReproError as exc:
                        elapsed = time.perf_counter() - start
                        failure = {
                            "exp_id": exp_id,
                            "error_type": type(exc).__name__,
                            "error": str(exc),
                        }
                        failures.append(failure)
                        done[exp_id] = {
                            "status": "failed",
                            "elapsed_s": round(elapsed, 2),
                            **{
                                k: v
                                for k, v in failure.items()
                                if k != "exp_id"
                            },
                        }
                        _mark_done(journal, exp_id, done[exp_id])
                        print(
                            f"[{exp_id} FAILED after {elapsed:.1f}s: "
                            f"{type(exc).__name__}: {exc}]\n",
                            file=sys.stderr,
                        )
                        if not args.keep_going:
                            print(render_failures(failures), file=sys.stderr)
                            return 1
                        continue
                    elapsed = time.perf_counter() - start
                    _emit_result(args, result, elapsed)
                    done[exp_id] = {
                        "status": "ok",
                        "elapsed_s": round(elapsed, 2),
                    }
                    _mark_done(journal, exp_id, done[exp_id])
            finally:
                if pool is not None:
                    pool.close()
            if collect:
                _fold_supervision(parent_cap, snaps, events)
                _write_obs(args, snaps, events)
            if failures:
                print(render_failures(failures), file=sys.stderr)
                return 1
            return 0
    finally:
        if journal is not None:
            journal.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
