"""Deterministic random-number-stream management.

All stochastic components of the library draw from
:class:`numpy.random.Generator` instances.  To keep every experiment
reproducible *and* every parallel component statistically independent, we
derive child generators from a root seed with :func:`spawn_streams`, which
uses NumPy's ``SeedSequence`` spawning (the recommended HPC practice for
creating independent streams — each child stream is guaranteed not to
overlap with its siblings).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "ensure_rng",
    "spawn_streams",
    "stream_for",
    "seedseq_for",
    "DEFAULT_SEED",
]

#: Seed used when an experiment does not specify one.  Fixed so that the
#: benchmark harness regenerates identical tables run-to-run.
DEFAULT_SEED = 0x5EED_2018


def ensure_rng(
    rng: np.random.Generator | int | None,
) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (seeded with :data:`DEFAULT_SEED`).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    return np.random.default_rng(rng)


def spawn_streams(
    seed: int | np.random.SeedSequence | None, n: int
) -> list[np.random.Generator]:
    """Create ``n`` statistically independent generators from one seed.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` uses :data:`DEFAULT_SEED`.
    n:
        Number of independent streams, e.g. one per simulated thread.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} streams")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


def seedseq_for(seed: int | None, *path: int | str) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` behind :func:`stream_for`.

    Use this instead of :func:`stream_for` when the component needs to
    *spawn* further independent child streams (e.g. one per trial shard
    in a parallel run) rather than draw directly: spawning from the
    sequence keeps the shard tree deterministic for a fixed
    ``(seed, path, n_shards)`` regardless of how many worker processes
    execute the shards.
    """
    entropy: list[int] = [DEFAULT_SEED if seed is None else int(seed)]
    for part in path:
        if isinstance(part, str):
            entropy.extend(part.encode("utf-8"))
        else:
            entropy.append(int(part))
    return np.random.SeedSequence(entropy)


def stream_for(seed: int | None, *path: int | str) -> np.random.Generator:
    """Derive a generator for a named component.

    ``path`` identifies the component (for instance
    ``stream_for(seed, "fig3", "stack", thread_id)``); the same
    ``(seed, path)`` pair always yields the same stream, while distinct
    paths yield independent streams.  Strings are folded into entropy via
    a stable (non-``hash()``) encoding so results do not vary with
    ``PYTHONHASHSEED``.
    """
    return np.random.default_rng(seedseq_for(seed, *path))


def interleave_choices(
    rng: np.random.Generator, options: Sequence[object], n: int
) -> list[object]:
    """Draw ``n`` items uniformly (with replacement) from ``options``.

    Thin helper used by workload generators; kept here so workloads do
    not each reimplement seeded choice with differing dtypes.
    """
    if not options:
        raise ValueError("options must be non-empty")
    idx = rng.integers(0, len(options), size=n)
    return [options[i] for i in idx]
