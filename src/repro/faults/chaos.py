"""Process-level chaos: seeded worker kills and artifact corruption.

PR 1's injectors misbehave *inside* the simulated machine; this module
misbehaves at the level the machine runs on — worker processes and the
files the run trusts.  Everything is derived from one seed with
counter-less hash draws, so a chaos schedule is a pure function of
``(seed, exp_id, attempt)``: two runs with the same seed kill the same
workers at the same points, which is what lets the chaos CI gate assert
byte-identical rows against the fault-free run.

Three injector families:

* **Worker kills** — :meth:`ChaosPlan.should_kill` /
  :meth:`ChaosPlan.should_stop` decide whether the worker executing
  ``(exp_id, attempt)`` SIGKILLs or SIGSTOPs itself at its seeded
  injection point (:func:`apply_worker_chaos`, called by the supervised
  pool right before the task body runs).  Draws are suppressed from
  ``safe_attempt`` on, so a task survives chaos after at most
  ``safe_attempt`` re-executions — chaos may slow a run down, never
  wedge it.
* **Torn writes** — :func:`tear_tail` chops a file mid-record exactly
  the way a crash during an unsynced append would, the scenario the
  journal's recovery path must absorb.
* **Bit rot** — :func:`corrupt_bytes` flips deterministically chosen
  bytes, the scenario ``repro cache verify`` must detect.

Nothing here runs unless explicitly armed (``--chaos SEED`` on the CLI
or a plan handed to the executor/tests); an unarmed run never imports a
single hash draw.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import signal
from dataclasses import asdict, dataclass, fields

from repro.errors import FaultInjectionError

__all__ = ["ChaosPlan", "apply_worker_chaos", "tear_tail", "corrupt_bytes"]


def _draw(seed: int, *parts: object) -> float:
    """Deterministic uniform in [0, 1) from a hash of the parts."""
    payload = "|".join(str(p) for p in (seed, *parts)).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded process-level fault schedule (picklable, serializable)."""

    seed: int
    #: probability the worker running ``(exp_id, attempt)`` is SIGKILLed.
    kill_rate: float = 0.25
    #: probability the worker is SIGSTOPped instead (heartbeat loss).
    stop_rate: float = 0.0
    #: attempts >= this are never chaosed, so every task terminates.
    safe_attempt: int = 2

    def __post_init__(self) -> None:
        for name in ("kill_rate", "stop_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultInjectionError(f"{name} is a probability, got {value}")
        if self.safe_attempt < 1:
            raise FaultInjectionError(
                f"safe_attempt must be >= 1, got {self.safe_attempt}"
            )

    # ------------------------------------------------------------------
    def should_kill(self, exp_id: str, attempt: int) -> bool:
        return (
            attempt < self.safe_attempt
            and _draw(self.seed, "kill", exp_id, attempt) < self.kill_rate
        )

    def should_stop(self, exp_id: str, attempt: int) -> bool:
        return (
            attempt < self.safe_attempt
            and not self.should_kill(exp_id, attempt)
            and _draw(self.seed, "stop", exp_id, attempt) < self.stop_rate
        )

    # -- (de)serialization (crosses the worker process boundary) --------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, config: dict) -> "ChaosPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(config) - known
        if unknown:
            raise FaultInjectionError(
                f"unknown chaos-plan keys: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**config)


def apply_worker_chaos(plan: ChaosPlan, exp_id: str, attempt: int) -> None:  # simlint: disable=DET004 -- the plan's seed IS the randomness source; draws are pure hashes of (seed, exp_id, attempt)
    """The worker-side injection point: maybe die, maybe freeze.

    SIGKILL models an OOM kill / operator ``kill -9`` — the parent sees
    the pipe close and the exit status carry the signal.  SIGSTOP models
    a wedged-but-alive process — heartbeats cease and only the
    supervisor's heartbeat timeout can recover the slot.
    """
    if plan.should_kill(exp_id, attempt):
        os.kill(os.getpid(), signal.SIGKILL)
    if plan.should_stop(exp_id, attempt):
        os.kill(os.getpid(), signal.SIGSTOP)


def tear_tail(path: pathlib.Path | str, *, keep_fraction: float = 0.5) -> int:
    """Truncate ``path`` mid-record, as a crash during an unsynced
    append would; returns the number of bytes cut.  The cut lands
    strictly inside the final line so recovery sees a genuinely torn
    record, not a clean prefix."""
    path = pathlib.Path(path)
    raw = path.read_bytes()
    if not raw:
        return 0
    body = raw.rstrip(b"\n")
    last_line_start = body.rfind(b"\n") + 1
    tail_len = len(raw) - last_line_start
    keep = last_line_start + max(1, int(tail_len * keep_fraction))
    keep = min(keep, len(raw) - 1)  # always cut at least the newline
    with open(path, "rb+") as fh:
        fh.truncate(keep)
    return len(raw) - keep


def corrupt_bytes(
    path: pathlib.Path | str, *, seed: int, n_flips: int = 4
) -> int:
    """Flip ``n_flips`` deterministically chosen bytes in ``path``;
    returns how many were flipped (0 for an empty file)."""
    path = pathlib.Path(path)
    raw = bytearray(path.read_bytes())
    if not raw:
        return 0
    flipped = 0
    for i in range(n_flips):
        offset = int(_draw(seed, "corrupt", path.name, i) * len(raw))
        raw[offset] ^= 0xFF
        flipped += 1
    path.write_bytes(bytes(raw))
    return flipped
