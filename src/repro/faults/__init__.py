"""Pluggable fault injection for the HTM simulator.

The paper proves its delay policies constant-competitive against an
*adversary*, but the seed simulator only ever exercised them on a
well-behaved machine.  This package supplies the misbehaving machine:
config-driven, deterministic (seeded from :mod:`repro.rngutil`
streams) injection of spurious aborts, cache-capacity pressure,
interconnect jitter and duplication, core stalls, and noise on the
B/k/µ estimates every policy decision consumes.

Usage::

    from repro.faults import FaultPlan
    from repro.htm import Machine, MachineParams, RandDelay

    plan = FaultPlan(spurious_abort_rate=1e-4, link_jitter_rate=0.1,
                     link_jitter_cycles=20)
    machine = Machine(MachineParams(), lambda i: RandDelay(), faults=plan)
    machine.load(workload, seed=1)
    stats = machine.run(200_000.0)
    print(stats.fault_counters)   # {'spurious_aborts': 12, ...}

:mod:`repro.faults.chaos` extends the adversary one level up — to the
*host* the harness runs on: seeded SIGKILL/SIGSTOP of worker
processes (:class:`ChaosPlan`, armed by ``--chaos SEED``) and
deterministic corruption of checkpoint/cache artifacts
(:func:`tear_tail`, :func:`corrupt_bytes`), exercised by the chaos CI
job against the supervised executor's recovery guarantees.

See ``docs/ROBUSTNESS.md`` for the fault model and
``python -m repro robustness`` for the policy-degradation sweep.
"""

from __future__ import annotations

from repro.faults.chaos import (
    ChaosPlan,
    apply_worker_chaos,
    corrupt_bytes,
    tear_tail,
)
from repro.faults.injectors import (
    NULL_INJECTOR,
    FaultInjector,
    NullInjector,
    injector_for,
)
from repro.faults.plan import FaultPlan

__all__ = [
    "ChaosPlan",
    "FaultPlan",
    "FaultInjector",
    "NullInjector",
    "NULL_INJECTOR",
    "apply_worker_chaos",
    "corrupt_bytes",
    "injector_for",
    "tear_tail",
]
