"""Fault plans: the configuration half of the fault-injection layer.

A :class:`FaultPlan` is a frozen, validated description of *what* can
go wrong during an HTM machine run and *how often*.  It is pure data —
the runtime half (drawing from seeded RNG streams, scheduling spurious
aborts, jittering the interconnect) lives in
:mod:`repro.faults.injectors` so a plan can be hashed, serialized into
experiment metadata, and shared across machines.

The fault model (documented at length in ``docs/ROBUSTNESS.md``):

===========================  ============================================
spurious_abort_rate          per-cycle hazard of a spurious abort while a
                             transaction runs (models HTM implementation
                             aborts: interrupts, TLB shootdowns, ...)
capacity_shrink_prob +       per-transaction probability that the L1
capacity_ways_lost           temporarily loses ways (models SMT sibling
                             pressure / way-partitioning changes)
link_jitter_rate +           per coherence traversal, probability of
link_jitter_cycles           paying up to that many extra cycles
                             (models interconnect congestion / NUMA)
probe_dup_rate               probability a probe is delivered twice; the
                             duplicate is deduplicated at the receiver
                             and counted (models at-least-once fabrics)
stall_rate + stall_cycles    per-operation probability that the issuing
                             core stalls (models OS preemption)
b_noise / k_noise / mu_noise log-normal sigmas on the B, k, µ estimates
                             fed to the conflict policies (models
                             measurement error; see
                             :class:`repro.core.estimators.NoisyEstimator`)
===========================  ============================================

An all-zero plan is exactly equivalent to no plan: the machine takes
the null-injector fast path and produces byte-identical results (the
determinism regression test pins this).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace

from repro.errors import FaultInjectionError

__all__ = ["FaultPlan"]

_PROBABILITIES = (
    "capacity_shrink_prob",
    "link_jitter_rate",
    "probe_dup_rate",
    "stall_rate",
)
_NON_NEGATIVE = (
    "spurious_abort_rate",
    "capacity_ways_lost",
    "link_jitter_cycles",
    "stall_cycles",
    "b_noise",
    "k_noise",
    "mu_noise",
)


@dataclass(frozen=True)
class FaultPlan:
    """Composable fault-injection configuration for one machine run."""

    spurious_abort_rate: float = 0.0
    capacity_shrink_prob: float = 0.0
    capacity_ways_lost: int = 1
    link_jitter_rate: float = 0.0
    link_jitter_cycles: int = 0
    probe_dup_rate: float = 0.0
    stall_rate: float = 0.0
    stall_cycles: int = 0
    b_noise: float = 0.0
    k_noise: float = 0.0
    mu_noise: float = 0.0

    def __post_init__(self) -> None:
        for name in _NON_NEGATIVE:
            if getattr(self, name) < 0:
                raise FaultInjectionError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )
        for name in _PROBABILITIES:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultInjectionError(
                    f"{name} is a probability, got {value}"
                )
        if self.spurious_abort_rate > 1.0:
            raise FaultInjectionError(
                "spurious_abort_rate is a per-cycle hazard and must be <= 1"
            )
        if self.link_jitter_rate > 0 and self.link_jitter_cycles < 1:
            raise FaultInjectionError(
                "link_jitter_rate > 0 needs link_jitter_cycles >= 1"
            )
        if self.stall_rate > 0 and self.stall_cycles < 1:
            raise FaultInjectionError(
                "stall_rate > 0 needs stall_cycles >= 1"
            )
        if self.capacity_shrink_prob > 0 and self.capacity_ways_lost < 1:
            raise FaultInjectionError(
                "capacity_shrink_prob > 0 needs capacity_ways_lost >= 1"
            )

    # ------------------------------------------------------------------
    def is_null(self) -> bool:
        """True when the plan injects nothing (all rates/sigmas zero)."""
        return (
            self.spurious_abort_rate == 0.0
            and self.capacity_shrink_prob == 0.0
            and self.link_jitter_rate == 0.0
            and self.probe_dup_rate == 0.0
            and self.stall_rate == 0.0
            and self.b_noise == 0.0
            and self.k_noise == 0.0
            and self.mu_noise == 0.0
        )

    def active_faults(self) -> list[str]:
        """Names of the injectors this plan actually enables."""
        out = []
        if self.spurious_abort_rate > 0:
            out.append("spurious_abort")
        if self.capacity_shrink_prob > 0:
            out.append("capacity_shrink")
        if self.link_jitter_rate > 0:
            out.append("link_jitter")
        if self.probe_dup_rate > 0:
            out.append("probe_dup")
        if self.stall_rate > 0:
            out.append("core_stall")
        if self.b_noise > 0 or self.k_noise > 0 or self.mu_noise > 0:
            out.append("estimator_noise")
        return out

    # -- (de)serialization (checkpoint / experiment metadata) ------------
    def to_dict(self) -> dict[str, float | int]:
        return asdict(self)

    @classmethod
    def from_dict(cls, config: dict[str, float | int]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(config) - known
        if unknown:
            raise FaultInjectionError(
                f"unknown fault-plan keys: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**config)

    def scaled(self, factor: float) -> "FaultPlan":
        """Copy with every *rate* scaled (noise sigmas untouched);
        handy for sweeping one plan shape over intensities."""
        if factor < 0:
            raise FaultInjectionError(f"scale factor must be >= 0, got {factor}")
        return replace(
            self,
            spurious_abort_rate=min(1.0, self.spurious_abort_rate * factor),
            capacity_shrink_prob=min(1.0, self.capacity_shrink_prob * factor),
            link_jitter_rate=min(1.0, self.link_jitter_rate * factor),
            probe_dup_rate=min(1.0, self.probe_dup_rate * factor),
            stall_rate=min(1.0, self.stall_rate * factor),
        )

    def describe(self) -> str:
        active = self.active_faults()
        return "no faults" if not active else "+".join(active)
