"""Runtime fault injection for the HTM machine.

The :class:`FaultInjector` is the active half of a
:class:`~repro.faults.plan.FaultPlan`: it owns the seeded RNG streams,
schedules spurious-abort timers, applies capacity pressure, wraps the
interconnect with jitter, and perturbs the estimator inputs the
conflict policies see.  The machine talks to it through a small hook
surface (begin/end transaction, probe delivery, operation issue,
context construction) so the HTM protocol code stays fault-agnostic.

When no plan is given (or the plan is all-zero), the machine keeps the
module-level :data:`NULL_INJECTOR` — every hook is a no-op that neither
consumes randomness nor schedules events, so clean runs are
byte-identical to a build without the fault layer at all.  The
determinism regression test (``tests/test_faults.py``) pins this.

Seeding: streams derive from the machine's load seed via
:func:`repro.rngutil.stream_for` under the ``"faults"`` namespace, so
they are independent of every per-core stream — arming the injector
never perturbs the workload's own randomness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.estimators import NoisyEstimator
from repro.faults.plan import FaultPlan
from repro.htm.controller import AbortReason
from repro.htm.interconnect import JitteredTopology
from repro.rngutil import stream_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.htm.controller import CoreMemSystem
    from repro.htm.machine import Machine

__all__ = ["FaultInjector", "NullInjector", "NULL_INJECTOR", "injector_for"]


class NullInjector:
    """The no-fault fast path: every hook is an inert identity.

    Kept stateless and shared (:data:`NULL_INJECTOR`) so constructing
    machines stays cheap and the clean path has zero per-event cost
    beyond one attribute lookup and a constant-returning call.
    """

    plan: FaultPlan | None = None

    def arm(self, machine: "Machine", seed: int | None) -> None:
        return None

    def on_begin_tx(self, mem: "CoreMemSystem") -> None:
        return None

    def on_end_tx(self, mem: "CoreMemSystem") -> None:
        return None

    def probe_duplicated(self) -> bool:
        return False

    def stall_cycles(self) -> int:
        return 0

    def noisy_context(self, tx_age: int, chain_k: int) -> tuple[int, int]:
        return tx_age, chain_k

    def noisy_commit_duration(self, duration: float) -> float:
        return duration


#: Shared inert injector used by every machine without a fault plan.
NULL_INJECTOR = NullInjector()


class FaultInjector(NullInjector):
    """Active injector bound to one machine run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.machine: "Machine | None" = None
        self._rng = None  # armed at load time (needs the run seed)
        self._estimator = NoisyEstimator(
            sigma_b=plan.b_noise, sigma_k=plan.k_noise, sigma_mu=plan.mu_noise
        )
        # per-core pending spurious-abort timer events
        self._spurious_events: dict[int, object] = {}

    # ------------------------------------------------------------------
    def arm(self, machine: "Machine", seed: int | None) -> None:
        """Bind to a machine at load time: derive streams, wrap the
        interconnect.  Called once per ``Machine.load``."""
        self.machine = machine
        self._rng = stream_for(seed, "faults", "events")
        self._spurious_events.clear()
        plan = self.plan
        if plan.link_jitter_rate > 0:
            topology = machine.directory.topology
            # re-arming (load called twice) must not stack wrappers
            if isinstance(topology, JitteredTopology):
                topology = topology.inner
            machine.directory.topology = JitteredTopology(
                topology,
                stream_for(seed, "faults", "link"),
                rate=plan.link_jitter_rate,
                max_extra=plan.link_jitter_cycles,
                on_jitter=lambda: self._count("link_jitter_events"),
            )

    def _count(self, key: str, n: int = 1) -> None:
        self.machine.stats.registry.counter("fault_" + key).inc(n)
        self.machine.emit("fault_injected", -1, fault=key, n=n)

    # -- transaction lifecycle -------------------------------------------
    def on_begin_tx(self, mem: "CoreMemSystem") -> None:
        plan = self.plan
        if plan.spurious_abort_rate > 0:
            # exponential inter-arrival at the configured per-cycle
            # hazard; only armed when it would land within any plausible
            # horizon (keeps the event queue free of far-future timers)
            ttf = self._rng.exponential(1.0 / plan.spurious_abort_rate)
            delay = max(1, int(ttf))
            if delay < 2**40:
                self._spurious_events[mem.core_id] = mem.sim.after(
                    delay,
                    self._spurious_fire,
                    mem,
                    mem.tx_epoch,
                    label="fault-spurious",
                )
        if plan.capacity_shrink_prob > 0 and (
            self._rng.random() < plan.capacity_shrink_prob
        ):
            lost = min(plan.capacity_ways_lost, mem.params.l1_assoc - 1)
            if lost > 0:
                mem.cache.reserved_ways = lost
                self._count("capacity_shrinks")

    def _spurious_fire(self, mem: "CoreMemSystem", epoch: int) -> None:
        # the event has fired: forget it so on_end_tx does not cancel a
        # popped event (which would corrupt the queue's live count)
        self._spurious_events.pop(mem.core_id, None)
        if mem.tx_active and mem.tx_epoch == epoch:
            self._count("spurious_aborts")
            mem.abort_tx(AbortReason.SPURIOUS)

    def on_end_tx(self, mem: "CoreMemSystem") -> None:
        event = self._spurious_events.pop(mem.core_id, None)
        if event is not None:
            mem.sim.cancel(event)
        if mem.cache.reserved_ways:
            mem.cache.reserved_ways = 0

    # -- coherence messages ----------------------------------------------
    def probe_duplicated(self) -> bool:
        """At-least-once delivery: the duplicate reaches the receiver,
        which deduplicates by (requestor, line) message id — exactly
        what full-map directories do for retried probes — so the only
        architectural effect is the counter.  Latency effects of flaky
        links are modeled separately by the link-jitter injector."""
        plan = self.plan
        if plan.probe_dup_rate > 0 and self._rng.random() < plan.probe_dup_rate:
            self._count("probe_dups_dropped")
            return True
        return False

    # -- core issue path ---------------------------------------------------
    def stall_cycles(self) -> int:
        plan = self.plan
        if plan.stall_rate > 0 and self._rng.random() < plan.stall_rate:
            self._count("core_stalls")
            return int(self._rng.integers(1, plan.stall_cycles + 1))
        return 0

    # -- estimator noise ---------------------------------------------------
    def noisy_context(self, tx_age: int, chain_k: int) -> tuple[int, int]:
        """Perturb the (age, k) pair a conflict decision is about to
        use.  ``B = age + overhead`` downstream, so age noise is B
        noise on the variable component the receiver actually measures."""
        est = self._estimator
        if est.sigma_b == 0.0 and est.sigma_k == 0.0:
            return tx_age, chain_k
        self._count("noisy_estimates")
        return est.age_hat(tx_age, self._rng), est.k_hat(chain_k, self._rng)

    def noisy_commit_duration(self, duration: float) -> float:
        """Perturb the committed-duration samples feeding the online
        profiler (µ estimation) — commit observers see the noisy value."""
        est = self._estimator
        if est.sigma_mu == 0.0:
            return duration
        return est.mu_hat(duration, self._rng)


def injector_for(plan: FaultPlan | None) -> NullInjector:
    """The injector a machine should carry for ``plan`` (shared null
    object when the plan injects nothing)."""
    if plan is None or plan.is_null():
        return NULL_INJECTOR
    return FaultInjector(plan)
