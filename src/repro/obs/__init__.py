"""Unified observability layer: metrics, structured tracing, profiling.

Three coordinated pieces (docs/OBSERVABILITY.md):

* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry`
  of counters, gauges and fixed-edge histograms with cheap no-op
  handles when disabled, and deterministic snapshot merging.
* :mod:`repro.obs.tracebus` — a :class:`TraceBus` of typed
  :class:`ObsEvent` records with JSONL and Chrome ``trace_event``
  serialization; the legacy per-machine tracer is a sink on the same
  schema.
* :mod:`repro.obs.profile` — :class:`PhaseProfiler` for per-phase wall
  clock and event-loop occupancy in the simulation kernel.

The usual entry point is :func:`capture`: it installs a fresh registry
and bus for the duration of a block and hands back everything recorded,
which is exactly what the CLI's ``--metrics-out``/``--trace-out`` and
the parallel executor's per-worker collection do.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    merge_snapshots,
    use_registry,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.tracebus import (
    EVENT_KINDS,
    JsonlSink,
    ListSink,
    NULL_BUS,
    NullBus,
    ObsEvent,
    TraceBus,
    chrome_trace,
    disable_tracing,
    enable_tracing,
    get_bus,
    jsonl_line,
    use_bus,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "use_registry",
    "enable_metrics",
    "disable_metrics",
    "merge_snapshots",
    "ObsEvent",
    "TraceBus",
    "ListSink",
    "JsonlSink",
    "NullBus",
    "NULL_BUS",
    "get_bus",
    "use_bus",
    "enable_tracing",
    "disable_tracing",
    "jsonl_line",
    "write_jsonl",
    "chrome_trace",
    "EVENT_KINDS",
    "PhaseProfiler",
    "Capture",
    "capture",
    "obs_active",
]


def obs_active() -> bool:
    """True when a live registry or bus is installed process-wide."""
    return get_registry().enabled or get_bus().enabled


class Capture:
    """What :func:`capture` collected: a registry plus an event list."""

    def __init__(self, registry: MetricsRegistry, sink: ListSink) -> None:
        self.registry = registry
        self._sink = sink

    @property
    def events(self) -> list[ObsEvent]:
        return self._sink.events

    def snapshot(self) -> dict:
        return self.registry.snapshot()


@contextmanager
def capture() -> Iterator[Capture]:
    """Install a fresh registry + bus for the block; yields the capture.

    Everything emitted inside the block — machine counters chained to
    the registry, bus events from any layer — is recorded; the previous
    registry/bus are restored on exit.  The capture object stays valid
    after the block (snapshots and events are read after restoration).
    """
    registry = MetricsRegistry()
    bus = TraceBus()
    sink = ListSink()
    bus.subscribe(sink)
    with use_registry(registry), use_bus(bus):
        yield Capture(registry, sink)
