"""The structured trace bus: one typed event schema for every layer.

An :class:`ObsEvent` is a timestamped, typed record with a small
JSON-able detail dict.  Emitters (the HTM machine, the fault injector,
the synthetic harness, the result cache, the CLI checkpointer) publish
to the process's active :class:`TraceBus`; sinks subscribe.  The legacy
per-machine :class:`repro.sim.trace.Tracer` is one such sink — its
``TraceEvent`` *is* this class.

Canonical event kinds (full schema in docs/OBSERVABILITY.md):

==================  ======================================================
``txn_begin``       transaction opened (core)
``commit``          transaction committed (core, duration)
``abort``           transaction aborted (core, reason, age)
``conflict``        conflicting probe delayed (core, line, requestor, k,
                    delay, mode)
``grace_granted``   grace/backstop timer armed (core, delay, mode)
``grace_expired``   grace timer fired with the transaction still live
                    (core, mode)
``fault_injected``  injector fired (fault, n)
``checkpoint_written``  journal record committed (path, kind, seq)
``cache_hit`` / ``cache_miss``  result-cache lookup (exp_id)
``synthetic_run``   one synthetic harness run completed (distribution,
                    trials, B, mu, per-policy means)
``worker_crashed``  supervised worker died or hung (worker, cause,
                    exp_id)
``worker_restarted``  replacement worker spawned (restarts_used,
                    budget)
``journal_recovered``  torn checkpoint tail truncated on recovery
                    (path, kept, dropped_records, dropped_bytes)
``degraded_to_serial``  worker pool exhausted; remaining tasks run
                    serially in the parent (remaining, restarts_used)
``decision_served``  decision service answered one conflict request
                    (seq, action, grace, regime, policy)
``regime_switch``   adaptive policy re-dispatched to a new theorem
                    regime (seq, old, new, k, mu_over_b)
``loadgen_phase``   load generator crossed a workload-phase boundary
                    (phase, first_seq, mu, rate)
``ablation_run``    one ablation matrix cell measured (flip, workload,
                    replicates)
==================  ======================================================

Serialization is canonical — ``json.dumps(..., sort_keys=True)`` with
compact separators — so two event streams are equal iff their JSONL
bytes are equal; the parallel layer's determinism CI step diffs exactly
these bytes across ``--jobs`` values.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

__all__ = [
    "ObsEvent",
    "TraceBus",
    "ListSink",
    "JsonlSink",
    "NullBus",
    "NULL_BUS",
    "get_bus",
    "use_bus",
    "enable_tracing",
    "disable_tracing",
    "jsonl_line",
    "write_jsonl",
    "chrome_trace",
    "EVENT_KINDS",
]

#: The documented event vocabulary.  The bus does not reject other
#: kinds (embedders may extend it), but everything the tree emits is
#: listed here and in docs/OBSERVABILITY.md.
EVENT_KINDS = frozenset(
    {
        "txn_begin",
        "commit",
        "abort",
        "conflict",
        "grace_granted",
        "grace_expired",
        "fault_injected",
        "checkpoint_written",
        "cache_hit",
        "cache_miss",
        "synthetic_run",
        "worker_crashed",
        "worker_restarted",
        "journal_recovered",
        "degraded_to_serial",
        "decision_served",
        "regime_switch",
        "loadgen_phase",
        "ablation_run",
    }
)

#: Timestamp used for operational events that happen outside any
#: simulation clock (cache lookups, synthetic summaries): a fixed
#: sentinel, never a wall-clock read, so streams stay deterministic.
NO_SIM_TIME = 0.0


@dataclass(frozen=True)
class ObsEvent:
    """One timestamped record (also ``repro.sim.trace.TraceEvent``)."""

    time: float
    kind: str
    core: int = -1
    detail: dict = field(default_factory=dict)

    def format(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:>12.1f}] core{self.core:<3d} {self.kind:<18s} {extras}"


def jsonl_line(event: ObsEvent) -> str:
    """Canonical one-line JSON for an event (no trailing newline)."""
    return json.dumps(
        {
            "ts": event.time,
            "kind": event.kind,
            "core": event.core,
            "data": event.detail,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def write_jsonl(events: Iterable[ObsEvent], path) -> int:
    """Write events as JSONL; returns the number of lines written."""
    count = 0
    with open(path, "w") as fh:
        for event in events:
            fh.write(jsonl_line(event) + "\n")
            count += 1
    return count


def chrome_trace(events: Iterable[ObsEvent]) -> dict:
    """Events in Chrome ``trace_event`` JSON (open in about:tracing or
    Perfetto).  Commits with a ``duration`` detail become complete
    ("X") slices ending at the commit instant; everything else is an
    instant ("i") event.  ``tid`` is the core (-1 for machine-level
    events)."""
    trace_events = []
    for event in events:
        common = {
            "name": event.kind,
            "pid": 0,
            "tid": event.core,
            "cat": "repro",
            "args": event.detail,
        }
        duration = event.detail.get("duration")
        if event.kind == "commit" and isinstance(duration, (int, float)):
            trace_events.append(
                {
                    **common,
                    "ph": "X",
                    "ts": event.time - duration,
                    "dur": duration,
                }
            )
        else:
            trace_events.append(
                {**common, "ph": "i", "ts": event.time, "s": "t"}
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ns"}


class ListSink:
    """Append every event to a list (the capture sink)."""

    def __init__(self) -> None:
        self.events: list[ObsEvent] = []

    def record(self, event: ObsEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()


class JsonlSink:
    """Accumulate events and write them out as canonical JSONL."""

    def __init__(self) -> None:
        self.events: list[ObsEvent] = []

    def record(self, event: ObsEvent) -> None:
        self.events.append(event)

    def dump(self, path) -> int:
        return write_jsonl(self.events, path)


class TraceBus:
    """Fan events out to subscribed sinks."""

    enabled = True

    def __init__(self) -> None:
        self._sinks: list = []
        self.emitted = 0

    def subscribe(self, sink) -> None:
        """Attach ``sink`` (anything with ``record(event)``)."""
        if sink not in self._sinks:
            self._sinks.append(sink)

    def unsubscribe(self, sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def emit(self, time: float, kind: str, core: int = -1, **detail) -> ObsEvent:
        """Build and publish one event; returns it."""
        event = ObsEvent(time, kind, core, detail)
        self.publish(event)
        return event

    def publish(self, event: ObsEvent) -> None:
        """Deliver an already-built event (snapshot replay path)."""
        self.emitted += 1
        for sink in self._sinks:
            sink.record(event)


class NullBus:
    """Disabled bus: emitters check ``enabled`` and skip the detail
    dict construction entirely, so the off path costs one attribute
    read."""

    enabled = False
    emitted = 0

    def subscribe(self, sink) -> None:
        return None

    def unsubscribe(self, sink) -> None:
        return None

    def emit(self, time: float, kind: str, core: int = -1, **detail) -> None:
        return None

    def publish(self, event: ObsEvent) -> None:
        return None


#: Shared disabled bus (the default module-level state).
NULL_BUS = NullBus()

_active: TraceBus | NullBus = NULL_BUS


def get_bus() -> TraceBus | NullBus:
    """The process's active trace bus (the null bus when disabled)."""
    return _active


def enable_tracing(bus: TraceBus | None = None) -> TraceBus:
    """Install (and return) a live module-level bus."""
    global _active
    _active = bus if bus is not None else TraceBus()
    return _active


def disable_tracing() -> None:
    global _active
    _active = NULL_BUS


@contextmanager
def use_bus(bus: TraceBus | NullBus) -> Iterator[TraceBus | NullBus]:
    """Scoped :func:`enable_tracing`: restores the previous bus."""
    global _active
    previous = _active
    _active = bus
    try:
        yield bus
    finally:
        _active = previous


def replay(events: Sequence[ObsEvent], bus: TraceBus | NullBus) -> None:
    """Publish already-built events onto ``bus`` in order (how worker
    event streams are folded into the parent's bus)."""
    for event in events:
        bus.publish(event)
