"""``python -m repro trace <exp>`` — export one experiment's events.

Runs a single experiment under a fresh observability capture
(:func:`repro.obs.capture`) and writes the structured event stream as
canonical JSONL, optionally alongside a Chrome ``trace_event`` file
(load in ``about:tracing`` or Perfetto) and the experiment's metrics
snapshot.  The result cache is bypassed: a cache hit replays rows
without re-simulating, which would leave the trace empty.

Examples::

    python -m repro trace fig2a --quick --seed 3
    python -m repro trace fig3_stack --quick --out fig3.jsonl --chrome fig3.json
    python -m repro trace fig2a --quick --metrics fig2a-metrics.json

The event schema is documented in docs/OBSERVABILITY.md; the JSONL
bytes are deterministic for a fixed (experiment, quick, seed).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Run one experiment under the trace bus and export its "
            "structured event stream (docs/OBSERVABILITY.md)"
        ),
    )
    parser.add_argument(
        "experiment", help="experiment id; see python -m repro --list"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced trial counts / horizons (CI mode)",
    )
    parser.add_argument("--seed", type=int, default=None, help="root RNG seed")
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="JSONL destination (default <experiment>.trace.jsonl)",
    )
    parser.add_argument(
        "--chrome",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="also write Chrome trace_event JSON (about:tracing, Perfetto)",
    )
    parser.add_argument(
        "--metrics",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="also write the experiment's metrics snapshot as JSON",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError
    from repro.experiments import EXPERIMENTS, run_experiment
    from repro.obs import capture, chrome_trace, write_jsonl

    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"use python -m repro --list",
            file=sys.stderr,
        )
        return 2
    out = args.out or pathlib.Path(f"{args.experiment}.trace.jsonl")
    try:
        with capture() as cap:
            run_experiment(
                args.experiment, quick=args.quick, seed=args.seed, cache=None
            )
    except ReproError as exc:
        print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    count = write_jsonl(cap.events, out)
    print(f"[{args.experiment}: {count} events -> {out}]")
    kinds: dict[str, int] = {}
    for event in cap.events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    for kind, n in sorted(kinds.items()):
        print(f"  {kind:20s} {n}")
    if args.chrome is not None:
        args.chrome.write_text(
            json.dumps(chrome_trace(cap.events), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"[chrome trace -> {args.chrome}]")
    if args.metrics is not None:
        args.metrics.write_text(
            json.dumps(cap.snapshot(), indent=2, sort_keys=True) + "\n"
        )
        print(f"[metrics snapshot -> {args.metrics}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
