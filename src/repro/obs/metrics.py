"""Process-local metrics: counters, gauges, deterministic histograms.

The registry is the numeric half of the observability layer
(docs/OBSERVABILITY.md).  Three design rules keep it compatible with
the repository's bit-determinism contract:

* **Integer-only aggregation.**  Counters and histogram bucket counts
  are integers, so merging per-worker snapshots is associative and
  byte-exact regardless of how trials were sharded.  Gauges are
  last-write-wins and merged in a caller-specified order.
* **Fixed bucket edges.**  Histograms take their edges at creation and
  never adapt, so two runs (or two workers) always bucket identically.
* **Cheap no-op handles.**  The module-level registry defaults to
  :data:`NULL_REGISTRY`; its instruments are shared singletons whose
  methods do nothing, so instrumented hot paths cost one attribute
  lookup and a constant call when observability is off.

Per-machine registries chain to the module-level one at handle-creation
time: when a capture is active (:func:`use_registry`), every increment
lands both locally (machine stats) and in the capture.
"""

from __future__ import annotations

import bisect
import math
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.errors import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "use_registry",
    "enable_metrics",
    "disable_metrics",
    "merge_snapshots",
]


class Counter:
    """Monotonic integer count; ``inc`` forwards to a parent handle."""

    __slots__ = ("name", "_value", "_parent")

    def __init__(self, name: str, parent: "Counter | None" = None) -> None:
        self.name = name
        self._value = 0
        self._parent = parent

    def inc(self, n: int = 1) -> None:
        self._value += n
        if self._parent is not None:
            self._parent.inc(n)

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Last-write-wins value (e.g. a current queue depth)."""

    __slots__ = ("name", "_value", "_parent")

    def __init__(self, name: str, parent: "Gauge | None" = None) -> None:
        self.name = name
        self._value = 0
        self._parent = parent

    def set(self, value) -> None:
        self._value = value
        if self._parent is not None:
            self._parent.set(value)

    @property
    def value(self):
        return self._value


class Histogram:
    """Fixed-edge histogram; deterministic by construction.

    ``edges`` are the ascending bucket boundaries: an observation lands
    in bucket ``i`` when ``edges[i] <= x < edges[i+1]``; values below
    ``edges[0]`` count as underflow, values at or above ``edges[-1]``
    as overflow.  Only integer counts are stored, so snapshots merge
    exactly.
    """

    __slots__ = ("name", "edges", "counts", "underflow", "overflow", "n",
                 "_parent")

    def __init__(
        self,
        name: str,
        edges: Sequence[float],
        parent: "Histogram | None" = None,
    ) -> None:
        edges = tuple(edges)
        if len(edges) < 2:
            raise InvalidParameterError(
                f"histogram {name!r} needs >= 2 edges, got {len(edges)}"
            )
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise InvalidParameterError(
                f"histogram {name!r} edges must be strictly ascending"
            )
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) - 1)
        self.underflow = 0
        self.overflow = 0
        self.n = 0
        self._parent = parent

    def observe(self, x: float) -> None:
        self.n += 1
        if x < self.edges[0]:
            self.underflow += 1
        elif x >= self.edges[-1]:
            self.overflow += 1
        else:
            self.counts[bisect.bisect_right(self.edges, x) - 1] += 1
        if self._parent is not None:
            self._parent.observe(x)

    def quantile(self, q: float) -> float:
        """Edge-resolution nearest-rank quantile.

        Returns the smallest bucket boundary ``b`` such that at least
        ``ceil(q * n)`` observations were strictly below ``b`` — i.e.
        the upper edge of the bucket holding the nearest-rank sample,
        a conservative (never under-reporting) latency read.  Ranks
        that land in the underflow region clamp to ``edges[0]`` and
        ranks in the overflow region clamp to ``edges[-1]``; an empty
        histogram returns NaN.

        The exact contract the latency-accounting tests pin: for any
        observation stream, the sorted-array nearest-rank value lies
        inside the bucket whose upper edge this returns (or beyond the
        clamped edge for under/overflow).
        """
        if not 0.0 < q <= 1.0:
            raise InvalidParameterError(
                f"quantile q must be in (0, 1], got {q!r}"
            )
        if self.n == 0:
            return float("nan")
        rank = max(1, math.ceil(self.n * q))
        cumulative = self.underflow
        if cumulative >= rank:
            return self.edges[0]
        for i, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                return self.edges[i + 1]
        return self.edges[-1]

    def snapshot(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
            "n": self.n,
        }


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self, n: int = 1) -> None:
        return None

    def set(self, value) -> None:
        return None

    def observe(self, x: float) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled registry: hands out the shared no-op instrument."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, edges: Sequence[float] | None = None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def absorb(self, snap: dict) -> None:
        return None

    def reset(self) -> None:
        return None


#: Shared disabled registry (the default module-level state).
NULL_REGISTRY = NullRegistry()


class MetricsRegistry:
    """A live registry of named instruments.

    ``parent`` (optional) chains every instrument to the same-named
    instrument of another registry: increments apply to both.  The HTM
    machine uses this to feed a CLI capture without giving up its own
    always-on local counters.
    """

    enabled = True

    def __init__(self, parent: "MetricsRegistry | None" = None) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._parent = parent

    # -- instruments --------------------------------------------------------
    def counter(self, name: str) -> Counter:
        handle = self._counters.get(name)
        if handle is None:
            parent = self._parent.counter(name) if self._parent else None
            handle = self._counters[name] = Counter(name, parent)
        return handle

    def gauge(self, name: str) -> Gauge:
        handle = self._gauges.get(name)
        if handle is None:
            parent = self._parent.gauge(name) if self._parent else None
            handle = self._gauges[name] = Gauge(name, parent)
        return handle

    def histogram(
        self, name: str, edges: Sequence[float] | None = None
    ) -> Histogram:
        handle = self._histograms.get(name)
        if handle is None:
            if edges is None:
                raise InvalidParameterError(
                    f"histogram {name!r} does not exist yet; pass its edges"
                )
            parent = (
                self._parent.histogram(name, edges) if self._parent else None
            )
            handle = self._histograms[name] = Histogram(name, edges, parent)
        elif edges is not None and tuple(edges) != handle.edges:
            raise InvalidParameterError(
                f"histogram {name!r} already exists with different edges"
            )
        return handle

    # -- views --------------------------------------------------------------
    def counter_values(self, prefix: str = "") -> dict[str, int]:
        """``{name: value}`` for counters whose name starts with ``prefix``
        (sorted by name, so iteration order is deterministic)."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict:
        """JSON-able, sorted, integer-exact state (the merge unit)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }

    def absorb(self, snap: dict) -> None:
        """Fold one snapshot into this registry (counters add, gauges
        last-write-wins, histogram counts add).  Callers absorb worker
        snapshots **in submission order** so gauge merges — the only
        order-sensitive part — are deterministic."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, hist in snap.get("histograms", {}).items():
            handle = self.histogram(name, hist["edges"])
            for i, count in enumerate(hist["counts"]):
                handle.counts[i] += count
            handle.underflow += hist["underflow"]
            handle.overflow += hist["overflow"]
            handle.n += hist["n"]

    def reset(self) -> None:
        """Zero every instrument **in place**: handles bound before the
        reset keep counting into the same objects afterwards (the HTM
        warmup reset depends on this)."""
        for counter in self._counters.values():
            counter._value = 0
        for gauge in self._gauges.values():
            gauge._value = 0
        for hist in self._histograms.values():
            hist.counts = [0] * len(hist.counts)
            hist.underflow = 0
            hist.overflow = 0
            hist.n = 0


def merge_snapshots(snaps: Sequence[dict]) -> dict:
    """Merge snapshots **in the given order** into one snapshot.

    Counters and histogram counts are integer sums (order-free); gauges
    are last-write-wins in ``snaps`` order.  The CLI merges per-worker
    snapshots in submission order, which makes ``--metrics-out`` output
    byte-identical at any ``--jobs`` (docs/OBSERVABILITY.md).
    """
    acc = MetricsRegistry()
    for snap in snaps:
        acc.absorb(snap)
    return acc.snapshot()


# -- module-level active registry -------------------------------------------
_active: MetricsRegistry | NullRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The process's active registry (the null registry when disabled)."""
    return _active


def enable_metrics(
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Install (and return) a live module-level registry."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable_metrics() -> None:
    global _active
    _active = NULL_REGISTRY


@contextmanager
def use_registry(
    registry: MetricsRegistry | NullRegistry,
) -> Iterator[MetricsRegistry | NullRegistry]:
    """Scoped :func:`enable_metrics`: restores the previous registry."""
    global _active
    previous = _active
    _active = registry
    try:
        yield registry
    finally:
        _active = previous
