"""Profiling hooks: per-phase wall clock and event-loop occupancy.

A :class:`PhaseProfiler` measures where a machine run spends real time:
coarse phases (warmup / measure / drain, timed by ``Machine.run``) and
per-event-label handler time inside the simulation kernel
(``Simulator.step`` routes event firing through :meth:`record_fire`
when a profiler is attached).

**Determinism note**: the profiler reads the host clock, but nothing it
measures ever feeds back into the simulation — it is pure observation,
attached after construction and consulted after the run.  That is why
this module lives in ``repro.obs`` (outside the simlint DET scope) and
the kernel only ever calls it through an attached handle.

Occupancy = handler time / loop wall time.  The remainder is kernel
overhead: heap pops, watchdog checks, compactions.  A healthy run sits
near 1.0; a low value with a huge event count means the queue is
churning cancelled events (see EventQueue compaction).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Accumulates phase wall-clock and per-label handler timings."""

    def __init__(self) -> None:
        #: phase name -> accumulated wall seconds
        self.phases: dict[str, float] = {}
        #: event label -> [fired count, accumulated handler seconds]
        self.handlers: dict[str, list] = {}
        self.handler_seconds = 0.0
        self.loop_seconds = 0.0
        self._loop_start: float | None = None

    # -- coarse phases ------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    # -- kernel hooks -------------------------------------------------------
    def record_fire(self, label: str, fire) -> None:
        """Run one event handler, charging its wall time to ``label``."""
        start = time.perf_counter()
        try:
            fire()
        finally:
            elapsed = time.perf_counter() - start
            cell = self.handlers.get(label)
            if cell is None:
                cell = self.handlers[label] = [0, 0.0]
            cell[0] += 1
            cell[1] += elapsed
            self.handler_seconds += elapsed

    def loop_enter(self) -> None:
        self._loop_start = time.perf_counter()

    def loop_exit(self) -> None:
        if self._loop_start is not None:
            self.loop_seconds += time.perf_counter() - self._loop_start
            self._loop_start = None

    # -- views --------------------------------------------------------------
    def occupancy(self) -> float:
        """Fraction of event-loop wall time spent inside handlers."""
        if self.loop_seconds <= 0.0:
            return 0.0
        return min(1.0, self.handler_seconds / self.loop_seconds)

    def summary(self) -> dict:
        """JSON-able report (seconds, counts, occupancy)."""
        return {
            "phases_s": {
                name: secs for name, secs in sorted(self.phases.items())
            },
            "handlers": {
                label: {"count": cell[0], "seconds": cell[1]}
                for label, cell in sorted(self.handlers.items())
            },
            "loop_s": self.loop_seconds,
            "handler_s": self.handler_seconds,
            "occupancy": self.occupancy(),
        }
