"""Deterministic replay/load generation for the decision service.

The generator simulates a population of millions of clients hammering
a contended key space and asking the service for conflict decisions:

* **Zipfian key skew** — keys are drawn from a bounded Zipf(s)
  distribution over ``n_keys`` keys (precomputed CDF + binary search),
  so a handful of hot keys carry most of the conflict traffic, like a
  real OLTP hotspot.
* **Bursty arrivals** — inter-arrival gaps are exponential at a base
  rate, except that every ``burst_every`` conflicts the next
  ``burst_len`` arrivals come at ``burst_rate`` (an on/off modulated
  Poisson process).
* **Regime shifts** — the stream is a sequence of
  :class:`PhaseSpec` workload phases with different mean commit
  durations µ, chain-size distributions and transaction ages, so the
  online estimators see genuine drift and the adaptive policy has to
  re-dispatch mid-stream.

Everything is a pure function of ``(seed, config)`` via
:func:`repro.rngutil.stream_for` — same seed, same byte-identical
request trace, which the determinism tests and the CI serve gate pin.
Draws are batched per phase with NumPy, so generating millions of
requests costs array operations, not per-request Python dispatch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import InvalidParameterError
from repro.rngutil import stream_for
from repro.serve.service import CommitReport, ConflictRequest

__all__ = [
    "PhaseSpec",
    "LoadGenConfig",
    "default_config",
    "generate",
    "request_trace_line",
    "zipf_cdf",
]


@dataclass(frozen=True)
class PhaseSpec:
    """One workload phase (a contention regime).

    ``conflicts`` conflict requests are generated with transaction
    ages ~ Exp(``age_mean``), chain sizes ``2 + Geometric(k_p) - 1``
    (so ``k_p = 1`` pins k = 2, smaller ``k_p`` grows deeper chains),
    and — with probability ``commit_ratio`` after each conflict — a
    commit report with duration ~ Exp(``mu_cycles``).  Arrivals run at
    ``rate`` requests/µs, except bursts of ``burst_len`` requests at
    ``burst_rate`` starting every ``burst_every`` conflicts.
    """

    conflicts: int
    mu_cycles: float
    k_p: float
    age_mean: float
    commit_ratio: float = 0.08
    rate: float = 0.05
    burst_rate: float = 1.0
    burst_len: int = 64
    burst_every: int = 512

    def __post_init__(self) -> None:
        if self.conflicts < 1:
            raise InvalidParameterError(
                f"conflicts must be >= 1, got {self.conflicts}"
            )
        if not 0.0 < self.k_p <= 1.0:
            raise InvalidParameterError(
                f"k_p must be in (0, 1], got {self.k_p}"
            )
        if not 0.0 <= self.commit_ratio <= 1.0:
            raise InvalidParameterError(
                f"commit_ratio must be in [0, 1], got {self.commit_ratio}"
            )
        for name in ("mu_cycles", "age_mean", "rate", "burst_rate"):
            if getattr(self, name) <= 0:
                raise InvalidParameterError(
                    f"{name} must be > 0, got {getattr(self, name)}"
                )
        if self.burst_len < 0 or self.burst_every < 1:
            raise InvalidParameterError(
                "burst_len must be >= 0 and burst_every >= 1"
            )


@dataclass(frozen=True)
class LoadGenConfig:
    """The full request-stream shape: key space plus phase schedule."""

    phases: tuple[PhaseSpec, ...]
    n_keys: int = 4096
    zipf_s: float = 1.1
    client_space: int = 1_000_000

    def __post_init__(self) -> None:
        if not self.phases:
            raise InvalidParameterError("config needs at least one phase")
        if self.n_keys < 1 or self.client_space < 1:
            raise InvalidParameterError(
                "n_keys and client_space must be >= 1"
            )
        if self.zipf_s <= 0:
            raise InvalidParameterError(
                f"zipf_s must be > 0, got {self.zipf_s}"
            )

    @property
    def total_conflicts(self) -> int:
        return sum(p.conflicts for p in self.phases)

    def scaled(self, conflicts: int) -> "LoadGenConfig":
        """Same shape, phase budgets rescaled to ``conflicts`` total."""
        if conflicts < len(self.phases):
            raise InvalidParameterError(
                f"need >= {len(self.phases)} conflicts, got {conflicts}"
            )
        total = self.total_conflicts
        scaled = []
        assigned = 0
        for i, phase in enumerate(self.phases):
            if i == len(self.phases) - 1:
                n = conflicts - assigned
            else:
                n = max(1, int(round(conflicts * phase.conflicts / total)))
            assigned += n
            scaled.append(
                PhaseSpec(
                    conflicts=n,
                    mu_cycles=phase.mu_cycles,
                    k_p=phase.k_p,
                    age_mean=phase.age_mean,
                    commit_ratio=phase.commit_ratio,
                    rate=phase.rate,
                    burst_rate=phase.burst_rate,
                    burst_len=phase.burst_len,
                    burst_every=phase.burst_every,
                )
            )
        return LoadGenConfig(
            phases=tuple(scaled),
            n_keys=self.n_keys,
            zipf_s=self.zipf_s,
            client_space=self.client_space,
        )


def default_config(quick: bool = False) -> LoadGenConfig:
    """The standard three-regime schedule.

    Phase 0 — *short transactions, shallow chains*: µ̂/B̂ lands well
    inside the Theorem 5 mean regime (the adaptive policy should
    settle on ``mean`` after bootstrap).  Phase 1 — *long
    transactions*: µ jumps 25x, pushing µ̂/B̂ far above the regime
    threshold (``rand``).  Phase 2 — *deeper chains, short
    transactions again*: back inside the (now k ≈ 3) regime
    (``mean``).  Quick mode totals 10k conflicts; full mode 1M.
    """
    scale = 1 if quick else 100
    # commit_ratio 0.4 so even the quick 10k-conflict schedule pushes
    # more than one full estimator window (1024 commits) of µ samples
    # through each phase — otherwise phase 1's long-transaction
    # durations would never decay out and phase 2 could not switch the
    # adaptive policy back into the mean regime.
    return LoadGenConfig(
        phases=(
            PhaseSpec(
                conflicts=4_000 * scale,
                mu_cycles=60.0,
                k_p=1.0,
                age_mean=400.0,
                commit_ratio=0.4,
            ),
            PhaseSpec(
                conflicts=3_000 * scale,
                mu_cycles=2_000.0,
                k_p=0.9,
                age_mean=200.0,
                commit_ratio=0.4,
                rate=0.02,
                burst_rate=0.5,
                burst_len=128,
                burst_every=1_024,
            ),
            PhaseSpec(
                conflicts=3_000 * scale,
                mu_cycles=80.0,
                k_p=0.5,
                age_mean=300.0,
                commit_ratio=0.4,
            ),
        ),
    )


def zipf_cdf(n_keys: int, s: float) -> np.ndarray:
    """CDF of a bounded Zipf(s) law over ranks ``1..n_keys``."""
    weights = np.arange(1, n_keys + 1, dtype=np.float64) ** -float(s)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def _burst_rates(phase: PhaseSpec) -> np.ndarray:
    """Per-conflict arrival rate: base, with periodic burst windows."""
    idx = np.arange(phase.conflicts)
    in_burst = (idx % phase.burst_every) < phase.burst_len
    return np.where(in_burst, phase.burst_rate, phase.rate)


def generate(
    seed: int | None, config: LoadGenConfig
) -> Iterator[ConflictRequest | CommitReport]:
    """Yield the request stream, one event at a time, in ``seq`` order.

    Each phase derives its own child stream
    (``stream_for(seed, "loadgen", phase_index)``) and batch-draws all
    of its randomness up front, so the stream for a fixed
    ``(seed, config)`` is byte-identical run to run and streamable at
    millions of events without holding them all in memory.
    """
    cdf = zipf_cdf(config.n_keys, config.zipf_s)
    seq = 0
    arrival = 0.0
    for phase_idx, phase in enumerate(config.phases):
        rng = stream_for(seed, "loadgen", phase_idx)
        n = phase.conflicts
        key_u = rng.random(n)
        keys = np.searchsorted(cdf, key_u)
        clients = rng.integers(0, config.client_space, n)
        ages = rng.exponential(phase.age_mean, n)
        chain_ks = 1 + rng.geometric(phase.k_p, n)
        commit_u = rng.random(n)
        durations = rng.exponential(phase.mu_cycles, n)
        gaps = rng.exponential(1.0, n) / _burst_rates(phase)
        for i in range(n):
            arrival += float(gaps[i])
            at = round(arrival, 3)
            yield ConflictRequest(
                seq=seq,
                client_id=int(clients[i]),
                key=int(keys[i]),
                tx_age=int(ages[i]),
                chain_k=int(chain_ks[i]),
                phase=phase_idx,
                arrival_us=at,
            )
            seq += 1
            if commit_u[i] < phase.commit_ratio:
                yield CommitReport(
                    seq=seq,
                    client_id=int(clients[i]),
                    key=int(keys[i]),
                    duration=round(float(durations[i]), 3),
                    phase=phase_idx,
                    arrival_us=at,
                )
                seq += 1


def request_trace_line(event: ConflictRequest | CommitReport) -> str:
    """Canonical one-line JSON for a generated event.

    The request-trace analogue of
    :func:`repro.serve.service.decision_line`: two traces are equal
    iff their bytes are equal, which is how the determinism tests pin
    "same seed → same stream".
    """
    if isinstance(event, CommitReport):
        payload = {
            "kind": "commit",
            "seq": event.seq,
            "client": event.client_id,
            "key": event.key,
            "duration": event.duration,
            "phase": event.phase,
            "arrival_us": event.arrival_us,
        }
    else:
        payload = {
            "kind": "conflict",
            "seq": event.seq,
            "client": event.client_id,
            "key": event.key,
            "age": event.tx_age,
            "chain_k": event.chain_k,
            "phase": event.phase,
            "arrival_us": event.arrival_us,
        }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
