"""The conflict-policy decision service (docs/SERVING.md).

The batch experiments evaluate the paper's policies offline; this
package runs them as a *service*: a long-running asyncio loop that
answers "grant grace Δ or abort?" per conflict request, with the
policy inputs (B, k, µ) estimated online from the request stream
(:mod:`repro.core.estimators`) and the regime re-dispatched live as
they drift (:class:`repro.htm.conflict_policy.RegimeAdaptiveDelay`).

Three modules:

* :mod:`repro.serve.service` — the wire types
  (:class:`ConflictRequest`, :class:`CommitReport`,
  :class:`Decision`) and :class:`DecisionService`, a seq-ordered
  asyncio server whose decision log is byte-identical at any client
  concurrency.
* :mod:`repro.serve.loadgen` — the deterministic replay/load
  generator: Zipfian key skew, bursty arrivals, and workload phases
  that shift the (µ, k, B) regime mid-stream, over a client-id space
  of millions.
* :mod:`repro.serve.replay` — the in-process harness that drives a
  generated stream through the service with N concurrent submitters
  and reports p50/p99 decision latency, sustained decisions/sec and
  the decision log (``BENCH_serve.json`` via
  ``benchmarks/bench_serve.py`` and ``python -m repro loadgen``).

CLI verbs: ``python -m repro serve`` (one-shot smoke serving) and
``python -m repro loadgen`` (the full replay + bench artifact).
"""

from __future__ import annotations

from repro.serve.loadgen import (
    LoadGenConfig,
    PhaseSpec,
    default_config,
    generate,
    request_trace_line,
)
from repro.serve.replay import ReplayReport, bench_payload, run_replay
from repro.serve.service import (
    CommitReport,
    ConflictRequest,
    Decision,
    DecisionService,
    decision_line,
)

__all__ = [
    "ConflictRequest",
    "CommitReport",
    "Decision",
    "DecisionService",
    "decision_line",
    "PhaseSpec",
    "LoadGenConfig",
    "default_config",
    "generate",
    "request_trace_line",
    "ReplayReport",
    "run_replay",
    "bench_payload",
]
