"""The in-process replay harness: drive a stream through the service.

:func:`run_replay` feeds a generated request stream
(:mod:`repro.serve.loadgen`) through a :class:`DecisionService` with
``clients`` concurrent submitter coroutines.  Events are sharded
round-robin over the submitters (so each submitter's sequence numbers
ascend, the service's in-order guarantee holds, and progress is
deadlock-free), with a bounded per-submitter queue providing
backpressure so millions of events stream through constant memory.

The report carries the two things the ROADMAP's serving milestone
asks for: **sustained decisions/sec** (conflict decisions over the
serve-loop wall clock) and **p50/p99 decision latency** read from the
service's fixed-edge histograms via
:meth:`~repro.obs.metrics.Histogram.quantile` — plus the canonical
decision log whose byte-identity across seeds/concurrency the tests
and CI gate.  :func:`bench_payload` shapes a report into the
schema-validated ``BENCH_serve.json`` artifact.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass, field

from repro.errors import InvalidParameterError
from repro.htm.conflict_policy import CyclePolicy
from repro.htm.params import MachineParams
from repro.obs.tracebus import get_bus
from repro.serve.loadgen import LoadGenConfig, default_config, generate
from repro.serve.service import DecisionService

__all__ = ["ReplayReport", "run_replay", "bench_payload"]

#: Per-submitter outstanding-event bound (backpressure window).
DEFAULT_WINDOW = 64


@dataclass
class ReplayReport:
    """Everything one replay produced."""

    requests: int
    conflicts: int
    commits: int
    grants: int
    aborts: int
    regime_switches: int
    clients: int
    phases: int
    wall_s: float
    decisions_per_sec: float
    p50_us: float
    p99_us: float
    service_p50_us: float
    service_p99_us: float
    decision_log: list[str] = field(repr=False)
    decide_latency: dict = field(repr=False)
    service_latency: dict = field(repr=False)

    def decision_log_sha256(self) -> str:
        digest = hashlib.sha256()
        for line in self.decision_log:
            digest.update(line.encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()


async def _submitter(service: DecisionService, queue: asyncio.Queue) -> None:
    while True:
        event = await queue.get()
        if event is None:
            return
        await service.submit(event)


async def _replay_async(
    seed: int | None,
    config: LoadGenConfig,
    service: DecisionService,
    clients: int,
    window: int,
) -> None:
    queues = [asyncio.Queue(maxsize=window) for _ in range(clients)]
    tasks = [
        asyncio.create_task(_submitter(service, q)) for q in queues
    ]
    bus = get_bus()
    last_phase = -1
    i = 0
    for event in generate(seed, config):
        if bus.enabled and event.phase != last_phase:
            bus.emit(
                float(event.seq),
                "loadgen_phase",
                phase=event.phase,
                first_seq=event.seq,
                mu=config.phases[event.phase].mu_cycles,
                rate=config.phases[event.phase].rate,
            )
            last_phase = event.phase
        await queues[i % clients].put(event)
        i += 1
    for q in queues:
        await q.put(None)
    await asyncio.gather(*tasks)
    await service.stop()


def run_replay(
    seed: int | None = None,
    config: LoadGenConfig | None = None,
    *,
    clients: int = 8,
    window: int = DEFAULT_WINDOW,
    quick: bool = True,
    policy: CyclePolicy | None = None,
    params: MachineParams | None = None,
) -> ReplayReport:
    """Replay a generated stream through a fresh service; report.

    ``clients`` is the number of concurrent in-process submitters the
    stream is multiplexed over (the simulated client-id space is the
    config's, up to millions); the decision log is invariant to it.
    """
    if clients < 1:
        raise InvalidParameterError(f"clients must be >= 1, got {clients}")
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    if config is None:
        config = default_config(quick=quick)
    service = DecisionService(seed=seed, policy=policy, params=params)

    async def main() -> None:
        await service.start()
        await _replay_async(seed, config, service, clients, window)

    start = time.perf_counter()
    asyncio.run(main())
    wall_s = time.perf_counter() - start

    requests = service.conflicts + service.commits
    return ReplayReport(
        requests=requests,
        conflicts=service.conflicts,
        commits=service.commits,
        grants=service.grants,
        aborts=service.aborts,
        regime_switches=service.regime_switches,
        clients=clients,
        phases=len(config.phases),
        wall_s=wall_s,
        decisions_per_sec=(
            service.conflicts / wall_s if wall_s > 0 else float(requests)
        ),
        p50_us=service.decide_latency.quantile(0.50),
        p99_us=service.decide_latency.quantile(0.99),
        service_p50_us=service.service_latency.quantile(0.50),
        service_p99_us=service.service_latency.quantile(0.99),
        decision_log=service.decision_log,
        decide_latency=service.decide_latency.snapshot(),
        service_latency=service.service_latency.snapshot(),
    )


def bench_payload(
    report: ReplayReport, *, quick: bool, seed: int | None
) -> dict:
    """Shape a replay report into the ``BENCH_serve.json`` payload.

    The caller validates and writes it through
    :func:`benchmarks.schema.dump_payload` (kind ``"serve"``) — write
    time is the validation point, like every other bench artifact.
    """
    import multiprocessing
    import platform

    return {
        "schema_version": 1,
        "suite": "serve",
        "generated_by": "repro.serve.replay",
        "quick": quick,
        "seed": -1 if seed is None else int(seed),
        "python": platform.python_version(),
        "cpu_count": multiprocessing.cpu_count(),
        "requests": report.requests,
        "conflicts": report.conflicts,
        "commits": report.commits,
        "grants": report.grants,
        "aborts": report.aborts,
        "regime_switches": report.regime_switches,
        "clients": report.clients,
        "phases": report.phases,
        "wall_s": round(report.wall_s, 4),
        "decisions_per_sec": round(report.decisions_per_sec, 1),
        "p50_us": report.p50_us,
        "p99_us": report.p99_us,
        "service_p50_us": report.service_p50_us,
        "service_p99_us": report.service_p99_us,
        "decision_log_sha256": report.decision_log_sha256(),
    }
