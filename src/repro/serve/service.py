"""The asyncio decision service: grant grace Δ or abort, per conflict.

Protocol (docs/SERVING.md): clients submit two event kinds over a
shared, monotonically-increasing sequence space —

* :class:`ConflictRequest` — "my transaction (age, chain k) was hit by
  a conflicting probe; how long may I keep delaying it?"  Answered
  with a :class:`Decision`: ``grant`` with a grace period in cycles,
  or ``abort`` (grace 0).
* :class:`CommitReport` — "my transaction committed after D cycles",
  the live µ feed for the online estimators.  Acknowledged, never
  logged.

**Determinism.**  The service serves strictly in ``seq`` order: a
reorder buffer holds early arrivals until their predecessors are
decided, so any number of concurrent clients produces the *same*
decision sequence — same estimator trajectory, same RNG consumption,
same regime switches.  The decision log is therefore byte-identical at
any concurrency level, which is the property the loadgen determinism
gate diffs in CI.  Wall-clock only ever feeds the latency histograms
(metrics), never a decision.

Per-decision latency lands in two fixed-edge
:class:`~repro.obs.metrics.Histogram`\\ s: ``decide`` (the policy
computation alone) and ``service`` (submit-to-resolution, including
reorder wait) — p50/p99 come from
:meth:`~repro.obs.metrics.Histogram.quantile`.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass

from repro.errors import InvalidParameterError, SimulationError
from repro.htm.conflict_policy import (
    RegimeAdaptiveDelay,
    ConflictContext,
    CyclePolicy,
)
from repro.htm.params import MachineParams
from repro.obs.metrics import Histogram, get_registry
from repro.obs.tracebus import get_bus
from repro.rngutil import stream_for

__all__ = [
    "ConflictRequest",
    "CommitReport",
    "Decision",
    "DecisionService",
    "decision_line",
    "LATENCY_EDGES_US",
]

#: Fixed decision-latency bucket edges (microseconds).  Fixed edges
#: keep histograms mergeable and run-to-run comparable
#: (docs/OBSERVABILITY.md); the top edge clamps the p99 read for
#: pathological stalls.
LATENCY_EDGES_US = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 50_000.0, 100_000.0,
)


@dataclass(frozen=True)
class ConflictRequest:
    """One "grant or abort?" question from a client.

    ``seq`` is the global submission sequence number (assigned by the
    client/load generator, served in order); ``tx_age`` and
    ``chain_k`` are the receiver transaction's age in cycles and
    waits-for chain size at conflict time — exactly the
    :class:`~repro.htm.conflict_policy.ConflictContext` inputs.
    """

    seq: int
    client_id: int
    key: int
    tx_age: int
    chain_k: int
    phase: int = 0
    arrival_us: float = 0.0
    requestor_age: int | None = None


@dataclass(frozen=True)
class CommitReport:
    """A committed transaction's duration (the µ estimator feed)."""

    seq: int
    client_id: int
    key: int
    duration: float
    phase: int = 0
    arrival_us: float = 0.0


@dataclass(frozen=True)
class Decision:
    """The service's answer to one event.

    ``action`` is ``"grant"`` (wait ``grace`` cycles before aborting
    the receiver) or ``"abort"`` (grace 0, abort immediately) for
    conflicts, ``"ack"`` for commit reports.  ``regime`` is the
    adaptive policy's dispatch at decision time (``"-"`` for static
    policies).
    """

    seq: int
    action: str
    grace: int
    regime: str
    policy: str


def decision_line(decision: Decision) -> str:
    """Canonical one-line JSON for a decision (no trailing newline).

    Same canonicalization contract as the trace bus: two decision logs
    are equal iff their bytes are equal.
    """
    return json.dumps(
        {
            "seq": decision.seq,
            "action": decision.action,
            "grace": decision.grace,
            "regime": decision.regime,
            "policy": decision.policy,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


class DecisionService:
    """Seq-ordered async server around one conflict policy.

    Usage::

        service = DecisionService(seed=3)
        await service.start()
        decision = await service.submit(ConflictRequest(...))
        ...
        await service.stop()

    ``submit`` may be called from any number of client coroutines in
    any interleaving; each client must submit its own events in
    ascending ``seq`` order (the load generator's round-robin sharding
    guarantees this), and every sequence number below the highest
    submitted one must eventually be submitted by someone or the
    serving loop would wait for the gap forever.
    """

    def __init__(
        self,
        *,
        seed: int | None = None,
        params: MachineParams | None = None,
        policy: CyclePolicy | None = None,
        latency_edges: tuple = LATENCY_EDGES_US,
    ) -> None:
        self.params = params if params is not None else MachineParams()
        self.policy = policy if policy is not None else RegimeAdaptiveDelay()
        self._rng = stream_for(seed, "serve", "decisions")
        self._pending: dict[int, tuple[object, asyncio.Future, float]] = {}
        self._next_seq = 0
        self._wakeup: asyncio.Event | None = None
        self._loop_task: asyncio.Task | None = None
        self._stopping = False
        #: canonical decision-log lines, conflict decisions only
        self.decision_log: list[str] = []
        self.decide_latency = Histogram("decide_latency_us", latency_edges)
        self.service_latency = Histogram("service_latency_us", latency_edges)
        self.conflicts = 0
        self.commits = 0
        self.grants = 0
        self.aborts = 0
        self.regime_switches = 0
        self._last_regime = getattr(self.policy, "regime", "-")

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        if self._loop_task is not None:
            raise SimulationError("decision service already started")
        self._stopping = False
        self._wakeup = asyncio.Event()
        self._loop_task = asyncio.create_task(self._serve_loop())

    async def stop(self) -> None:
        """Drain: serve everything already submitted, then shut down."""
        if self._loop_task is None:
            return
        self._stopping = True
        self._wakeup.set()
        await self._loop_task
        self._loop_task = None
        if self._pending:  # gap before a drained tail: refuse silently
            stuck = sorted(self._pending)
            for seq in stuck:
                _, fut, _ = self._pending.pop(seq)
                if not fut.done():
                    fut.set_exception(
                        SimulationError(
                            f"service stopped at seq {self._next_seq} with "
                            f"a sequence gap; undecided: {stuck[:5]}..."
                        )
                    )

    # -- the request path --------------------------------------------------
    async def submit(self, event) -> Decision:
        """Queue one event; resolves with its :class:`Decision`."""
        if self._wakeup is None:
            raise SimulationError("decision service is not started")
        if event.seq < self._next_seq or event.seq in self._pending:
            raise InvalidParameterError(
                f"seq {event.seq} already served or pending"
            )
        fut = asyncio.get_running_loop().create_future()
        self._pending[event.seq] = (event, fut, time.perf_counter())
        self._wakeup.set()
        return await fut

    async def _serve_loop(self) -> None:
        while True:
            entry = self._pending.pop(self._next_seq, None)
            if entry is None:
                if self._stopping:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            event, fut, submitted = entry
            decision = self._decide(event)
            self.service_latency.observe(
                (time.perf_counter() - submitted) * 1e6
            )
            if not fut.done():  # client may have been cancelled
                fut.set_result(decision)
            self._next_seq += 1

    # -- deciding ----------------------------------------------------------
    def _decide(self, event) -> Decision:
        t0 = time.perf_counter()
        if isinstance(event, CommitReport):
            observe = getattr(self.policy, "observe_commit", None)
            if observe is not None:
                observe(event.duration)
            self.commits += 1
            decision = Decision(event.seq, "ack", 0, self._last_regime,
                                self.policy.name)
        else:
            ctx = ConflictContext(
                tx_age=event.tx_age,
                chain_k=event.chain_k,
                params=self.params,
                requestor_age=event.requestor_age,
            )
            grace = int(self.policy.decide(ctx, self._rng))
            regime = getattr(self.policy, "regime", "-")
            if grace > 0:
                self.grants += 1
                action = "grant"
            else:
                self.aborts += 1
                action = "abort"
            self.conflicts += 1
            decision = Decision(event.seq, action, grace, regime,
                                self.policy.name)
            self.decision_log.append(decision_line(decision))
            if regime != self._last_regime:
                self.regime_switches += 1
                bus = get_bus()
                if bus.enabled:
                    bus.emit(
                        float(event.seq),
                        "regime_switch",
                        old=self._last_regime,
                        new=regime,
                        seq=event.seq,
                    )
                self._last_regime = regime
            get_registry().counter(f"decisions_{action}").inc()
        self.decide_latency.observe((time.perf_counter() - t0) * 1e6)
        bus = get_bus()
        if bus.enabled:
            bus.emit(
                float(event.seq),
                "decision_served",
                seq=event.seq,
                action=decision.action,
                grace=decision.grace,
                regime=decision.regime,
            )
        return decision
