"""``python -m repro serve`` / ``python -m repro loadgen`` verbs.

``loadgen`` is the full replay harness: generate a seeded request
stream (Zipf skew, bursts, regime shifts), drive it through the
decision service with N concurrent submitters, write the canonical
decision log and the schema-validated ``BENCH_serve.json`` artifact,
and print the latency/throughput summary.  ``serve`` is the one-shot
smoke variant: a small stream, a per-regime decision summary, no
artifact by default.

Examples::

    python -m repro loadgen --quick --seed 3
    python -m repro loadgen --quick --seed 3 --clients 32 \\
        --decision-log serve.log --out BENCH_serve.json
    python -m repro loadgen --requests 1000000 --seed 3   # full replay
    python -m repro serve --requests 2000 --seed 7 --policy DELAY_RAND

Determinism contract (docs/SERVING.md): for a fixed seed the decision
log is byte-identical at any ``--clients`` / ``--window`` — CI diffs
exactly that.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

__all__ = ["loadgen_main", "serve_main"]


def _bench_schema():
    """Import ``benchmarks.schema`` (repo-root package) from anywhere.

    ``python -m repro`` only guarantees ``src`` on ``sys.path``; the
    bench schema lives beside the artifacts at the repo root, so fall
    back to adding it explicitly.
    """
    try:
        from benchmarks import schema
        return schema
    except ImportError:
        root = pathlib.Path(__file__).resolve().parents[3]
        if (root / "benchmarks" / "schema.py").exists():
            sys.path.insert(0, str(root))
            from benchmarks import schema
            return schema
        return None


def _common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=None, help="root RNG seed")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="10k-conflict schedule instead of the 1M full replay",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        metavar="N",
        help="override the schedule's total conflict count",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=8,
        metavar="N",
        help="concurrent submitter coroutines (the decision log is "
        "invariant to this; default 8)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=64,
        metavar="N",
        help="per-submitter outstanding-request bound (default 64)",
    )
    parser.add_argument(
        "--policy",
        default=None,
        metavar="NAME",
        help="serve a fixed policy instead of DELAY_REGIME "
        "(NO_DELAY, DELAY_DET, DELAY_RAND, ...)",
    )
    parser.add_argument(
        "--decision-log",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="write the canonical decision log (one JSON line per "
        "conflict decision)",
    )


def _build_replay(args):
    from repro.htm.conflict_policy import policy_from_name
    from repro.htm.params import MachineParams
    from repro.serve.loadgen import default_config
    from repro.serve.replay import run_replay

    config = default_config(quick=args.quick)
    if args.requests is not None:
        config = config.scaled(args.requests)
    params = MachineParams()
    policy = None
    if args.policy is not None:
        policy = policy_from_name(
            args.policy, params, tuned_cycles=100, mu_cycles=100.0
        )
    return run_replay(
        args.seed,
        config,
        clients=args.clients,
        window=args.window,
        quick=args.quick,
        policy=policy,
        params=params,
    )


def _write_decision_log(args, report) -> None:
    if args.decision_log is not None:
        args.decision_log.write_text(
            "\n".join(report.decision_log) + "\n"
            if report.decision_log
            else ""
        )
        print(
            f"[{len(report.decision_log)} decisions -> {args.decision_log}]"
        )


def _summary(report) -> str:
    return (
        f"[serve: {report.requests} requests ({report.conflicts} conflicts, "
        f"{report.commits} commits) in {report.wall_s:.2f}s — "
        f"{report.decisions_per_sec:,.0f} decisions/s, "
        f"decide p50 {report.p50_us:g}µs p99 {report.p99_us:g}µs, "
        f"service p99 {report.service_p99_us:g}µs, "
        f"{report.grants} grants / {report.aborts} aborts, "
        f"{report.regime_switches} regime switches]"
    )


def loadgen_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description=(
            "Replay a seeded million-client request stream through the "
            "conflict-policy decision service (docs/SERVING.md)"
        ),
    )
    _common_args(parser)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_serve.json"),
        metavar="PATH",
        help="BENCH_serve.json destination (default ./BENCH_serve.json)",
    )
    parser.add_argument(
        "--request-trace",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="also write the generated request stream as canonical JSONL",
    )
    args = parser.parse_args(argv)
    from repro.errors import ReproError
    from repro.serve.replay import bench_payload

    try:
        report = _build_replay(args)
    except ReproError as exc:
        print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    print(_summary(report))
    _write_decision_log(args, report)
    if args.request_trace is not None:
        from repro.serve.loadgen import (
            default_config,
            generate,
            request_trace_line,
        )

        config = default_config(quick=args.quick)
        if args.requests is not None:
            config = config.scaled(args.requests)
        with open(args.request_trace, "w") as fh:
            count = 0
            for event in generate(args.seed, config):
                fh.write(request_trace_line(event) + "\n")
                count += 1
        print(f"[{count} requests -> {args.request_trace}]")
    payload = bench_payload(report, quick=args.quick, seed=args.seed)
    schema = _bench_schema()
    if schema is not None:
        schema.dump_payload(payload, "serve", args.out)
    else:  # no repo checkout around the installed package
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(
            "[benchmarks.schema not importable; wrote unvalidated payload]",
            file=sys.stderr,
        )
    print(f"[bench payload -> {args.out}]")
    return 0


def serve_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "One-shot smoke serving: run the decision service over a "
            "small generated stream and summarize its decisions"
        ),
    )
    _common_args(parser)
    args = parser.parse_args(argv)
    if args.requests is None:
        args.requests = 2_000
    from repro.errors import ReproError

    try:
        report = _build_replay(args)
    except ReproError as exc:
        print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    print(_summary(report))
    regimes: dict[str, int] = {}
    for line in report.decision_log:
        regime = json.loads(line)["regime"]
        regimes[regime] = regimes.get(regime, 0) + 1
    for regime, n in sorted(regimes.items()):
        print(f"  regime {regime:10s} {n} decisions")
    _write_decision_log(args, report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(loadgen_main())
