"""Chain-size sweep (extension): the RW/RA crossover in the cost domain.

The paper's "Implications" observation — requestor-aborts wins at
``k = 2``, requestor-wins for chains — is stated through competitive
ratios.  This experiment makes it measurable: for each chain size it
evaluates both strategies' optimal policies (and the hybrid pick)
against a common adversary ensemble, three ways:

* closed-form competitive ratio (the theory);
* numeric sup-ratio (quadrature + adversary grid — validates theory);
* Monte-Carlo mean cost against sampled remaining times (what a system
  would actually pay).
"""

from __future__ import annotations

import numpy as np

from repro.core.model import ConflictKind, ConflictModel
from repro.core.ratios import rand_ra_ratio, rand_rw_optimal_ratio
from repro.core.requestor_aborts import optimal_requestor_aborts
from repro.core.requestor_wins import optimal_requestor_wins
from repro.core.verify import competitive_ratio, simulate_costs
from repro.rngutil import stream_for

__all__ = ["run_ext_chains"]


def run_ext_chains(
    *,
    B: float = 500.0,
    k_values: tuple[int, ...] = (2, 3, 4, 6, 10, 16),
    trials: int = 100_000,
    seed: int | None = None,
) -> list[dict[str, object]]:
    """One row per (k, strategy) with theory vs numeric vs Monte-Carlo."""
    rows: list[dict[str, object]] = []
    for k in k_values:
        rng = stream_for(seed, "ext_chains", k)
        # common adversary: remaining times uniform on (0, 2*cap]
        cap = B / (k - 1)
        remaining = (1.0 - rng.random(trials)) * 2.0 * cap
        entries = [
            (
                "RW",
                optimal_requestor_wins(B, k),
                ConflictModel(ConflictKind.REQUESTOR_WINS, B, k),
                rand_rw_optimal_ratio(k),
            ),
            (
                "RA",
                optimal_requestor_aborts(B, k),
                ConflictModel(ConflictKind.REQUESTOR_ABORTS, B, k),
                rand_ra_ratio(k),
            ),
        ]
        mc_costs = {}
        for label, policy, model, closed in entries:
            numeric = competitive_ratio(policy, model, grid=1024).ratio
            costs = simulate_costs(policy, model, remaining, rng)
            opt = model.opt_vec(remaining)
            mc_ratio = float(costs.sum() / opt.sum())
            mc_costs[label] = mc_ratio
            rows.append(
                {
                    "k": k,
                    "strategy": label,
                    "closed_ratio": closed,
                    "numeric_ratio": numeric,
                    "mc_cost_vs_OPT": mc_ratio,
                }
            )
        winner = min(mc_costs, key=mc_costs.get)  # type: ignore[arg-type]
        hybrid_pick = "RA" if rand_ra_ratio(k) <= rand_rw_optimal_ratio(k) else "RW"
        rows.append(
            {
                "k": k,
                "strategy": "HYBRID picks",
                "closed_ratio": min(
                    rand_ra_ratio(k), rand_rw_optimal_ratio(k)
                ),
                "numeric_ratio": float("nan"),
                "mc_cost_vs_OPT": mc_costs[hybrid_pick],
                "pick": hybrid_pick,
                "mc_winner": winner,
            }
        )
    return rows
