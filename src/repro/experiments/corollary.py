"""Corollary experiments: global competitiveness and progress.

* ``cor1`` — the Section 6 claim: under adversarial conflict
  scheduling, the randomized requestor-wins policy's sum of running
  times is within ``(2w+1)/(w+1)`` of the offline optimum.  We sweep
  adversaries and contention levels, reporting measured ratio vs bound.
* ``cor2`` — the Section 7 claim: with multiplicative abort-cost
  backoff, a transaction of running time ``y`` meeting ``gamma``
  conflicts per execution commits within
  ``log2 y + log2 gamma + log2 k - log2 B + 2`` attempts with
  probability >= 1/2.
"""

from __future__ import annotations

import numpy as np

from repro.adversary import (
    ConflictLedgerArena,
    PeriodicAdversary,
    RandomAdversary,
    TargetedAdversary,
    TimedArena,
)
from repro.adversary.adversaries import make_transactions
from repro.core.backoff import BackoffPolicy, progress_attempt_bound
from repro.core.model import ConflictKind
from repro.core.requestor_wins import UniformRW
from repro.distributions import ExponentialLengths, UniformLengths
from repro.rngutil import stream_for

__all__ = ["run_cor1", "run_cor2"]


def run_cor1(
    *,
    n_threads: int = 16,
    per_thread: int = 200,
    B: float = 300.0,
    mu: float = 500.0,
    seed: int | None = None,
) -> list[dict[str, object]]:
    """Measured global ratio vs the Corollary 1 bound, per adversary."""
    adversaries = [
        RandomAdversary(0.3),
        RandomAdversary(0.9, max_hits=3, chain_weights={2: 0.6, 3: 0.3, 5: 0.1}),
        PeriodicAdversary(fractions=(0.25, 0.75)),
        TargetedAdversary(threshold=B, k=2),
    ]
    rows: list[dict[str, object]] = []
    for dist_name, dist in (
        ("exponential", ExponentialLengths(mu)),
        ("uniform", UniformLengths(mu)),
    ):
        for adv in adversaries:
            rng = stream_for(seed, "cor1", dist_name, adv.name)
            txns = make_transactions(n_threads, per_thread, dist, rng)
            schedule = adv.build(txns, rng)
            arena = ConflictLedgerArena(
                ConflictKind.REQUESTOR_WINS, B, lambda k: UniformRW(B, k)
            )
            outcome = arena.run(schedule, rng)
            rows.append(
                {
                    "lengths": dist_name,
                    "adversary": adv.name,
                    "conflicts": outcome.n_conflicts,
                    "waste_w": outcome.waste,
                    "measured_ratio": outcome.ratio,
                    "bound": outcome.corollary1_bound,
                    "within": outcome.within_bound(slack=0.02),
                }
            )
    return rows


def run_cor2(
    *,
    B0: float = 64.0,
    k: int = 2,
    trials: int = 400,
    seed: int | None = None,
) -> list[dict[str, object]]:
    """Attempts-to-commit with doubling backoff vs the Corollary 2 bound."""
    arena = TimedArena()
    rows: list[dict[str, object]] = []
    for y, gamma in ((500.0, 1), (500.0, 3), (4000.0, 2), (4000.0, 6)):
        rng = stream_for(seed, "cor2", int(y), gamma)
        # gamma conflicts per execution, evenly spread
        conflicts = [
            (y * (1.0 - (i + 0.5) / gamma) + 1.0, k) for i in range(gamma)
        ]
        attempts = []
        for _ in range(trials):
            policy = BackoffPolicy(
                lambda b, kk=k: UniformRW(b, kk), B0=B0, factor=2.0
            )
            record = arena.run_transaction(y, conflicts, policy, rng)
            attempts.append(record.attempts)
        bound = progress_attempt_bound(y, gamma, k, B0)
        attempts_arr = np.asarray(attempts)
        rows.append(
            {
                "y": y,
                "gamma": gamma,
                "bound_attempts": bound,
                "median_attempts": float(np.median(attempts_arr)),
                "p_within_bound": float(np.mean(attempts_arr <= bound)),
                "holds_half": bool(np.mean(attempts_arr <= bound) >= 0.5),
            }
        )
    return rows
