"""Corollary experiments: global competitiveness and progress.

* ``cor1`` — the Section 6 claim: under adversarial conflict
  scheduling, the randomized requestor-wins policy's sum of running
  times is within ``(2w+1)/(w+1)`` of the offline optimum.  We sweep
  adversaries and contention levels, reporting measured ratio vs bound.
* ``cor2`` — the Section 7 claim: with multiplicative abort-cost
  backoff, a transaction of running time ``y`` meeting ``gamma``
  conflicts per execution commits within
  ``log2 y + log2 gamma + log2 k - log2 B + 2`` attempts with
  probability >= 1/2.
"""

from __future__ import annotations

import numpy as np

from repro.adversary import (
    ConflictLedgerArena,
    PeriodicAdversary,
    RandomAdversary,
    TargetedAdversary,
    TimedArena,
)
from repro.adversary.adversaries import make_transactions
from repro.core.backoff import progress_attempt_bound
from repro.core.model import ConflictKind
from repro.core.requestor_wins import UniformRW
from repro.distributions import ExponentialLengths, UniformLengths
from repro.errors import InvalidParameterError
from repro.rngutil import seedseq_for, stream_for
from repro.sim.mc import TrialProgram

__all__ = ["run_cor1", "run_cor2"]

#: The (y, gamma) grid of the Corollary 2 progress experiment.
COR2_GRID = ((500.0, 1), (500.0, 3), (4000.0, 2), (4000.0, 6))


def run_cor1(
    *,
    n_threads: int = 16,
    per_thread: int = 200,
    B: float = 300.0,
    mu: float = 500.0,
    seed: int | None = None,
    engine: str = "batch",
) -> list[dict[str, object]]:
    """Measured global ratio vs the Corollary 1 bound, per adversary.

    ``engine="batch"`` scores every (lengths, adversary) schedule in
    one struct-of-arrays pass per chain size
    (:meth:`ConflictLedgerArena.run_batch`); ``engine="scalar"`` keeps
    the original one-schedule-at-a-time loop as the golden reference.
    Both produce bit-identical rows.
    """
    if engine not in ("batch", "scalar"):
        raise InvalidParameterError(f"unknown engine {engine!r}")
    adversaries = [
        RandomAdversary(0.3),
        RandomAdversary(0.9, max_hits=3, chain_weights={2: 0.6, 3: 0.3, 5: 0.1}),
        PeriodicAdversary(fractions=(0.25, 0.75)),
        TargetedAdversary(threshold=B, k=2),
    ]
    arena = ConflictLedgerArena(
        ConflictKind.REQUESTOR_WINS, B, lambda k: UniformRW(B, k)
    )
    cells = []
    for dist_name, dist in (
        ("exponential", ExponentialLengths(mu)),
        ("uniform", UniformLengths(mu)),
    ):
        for adv in adversaries:
            rng = stream_for(seed, "cor1", dist_name, adv.name)
            txns = make_transactions(n_threads, per_thread, dist, rng)
            cells.append((dist_name, adv, adv.build(txns, rng), rng))
    if engine == "batch":
        outcomes = arena.run_batch(
            [cell[2] for cell in cells], [cell[3] for cell in cells]
        )
    else:
        outcomes = [
            arena.run(schedule, rng) for _, _, schedule, rng in cells
        ]
    return [
        {
            "lengths": dist_name,
            "adversary": adv.name,
            "conflicts": outcome.n_conflicts,
            "waste_w": outcome.waste,
            "measured_ratio": outcome.ratio,
            "bound": outcome.corollary1_bound,
            "within": outcome.within_bound(slack=0.02),
        }
        for (dist_name, adv, _, _), outcome in zip(cells, outcomes)
    ]


def run_cor2(
    *,
    B0: float = 64.0,
    k: int = 2,
    trials: int = 400,
    seed: int | None = None,
    engine: str = "batch",
    pool=None,
) -> list[dict[str, object]]:
    """Attempts-to-commit with doubling backoff vs the Corollary 2 bound.

    Each (y, gamma) row executes ``trials`` independent transactions
    through the batched SoA engine (``repro.sim.mc``); the row's draw
    streams derive from ``seedseq_for(seed, "cor2", y, gamma)``, so
    rows are identical at any ``--jobs`` and between ``engine="batch"``
    and the scalar golden reference.
    """
    arena = TimedArena()
    rows: list[dict[str, object]] = []
    for y, gamma in COR2_GRID:
        # gamma conflicts per execution, evenly spread
        conflicts = tuple(
            (y * (1.0 - (i + 0.5) / gamma) + 1.0, k) for i in range(gamma)
        )
        program = TrialProgram(
            rho=y, conflicts=conflicts, k=k, B0=B0, factor=2.0
        )
        results = arena.run_batch(
            program,
            trials,
            seed=seedseq_for(seed, "cor2", int(y), gamma),
            engine=engine,
            pool=pool,
        )
        bound = progress_attempt_bound(y, gamma, k, B0)
        rows.append(
            {
                "y": y,
                "gamma": gamma,
                "bound_attempts": bound,
                "median_attempts": float(np.median(results.attempts)),
                "p_within_bound": float(np.mean(results.attempts <= bound)),
                "holds_half": bool(np.mean(results.attempts <= bound) >= 0.5),
            }
        )
    return rows
