"""Experiment registry: id -> runner, with quick-mode scaling.

Every table and figure in the paper (and every ablation in DESIGN.md)
has an entry here; the benchmark files and the CLI both dispatch through
:func:`run_experiment` so there is exactly one implementation per
artifact.

:func:`run_experiment` is hardened for long batch runs (the resilience
half of this is CLI-visible as ``--timeout`` / ``--retries``):

* **Watchdog** — ``timeout`` seconds of wall clock per attempt; a
  signal-based alarm (main thread) kills runaway experiments with
  :class:`~repro.errors.ExperimentTimeoutError` even when they are
  stuck outside the simulation kernel.
* **Retry with exponential backoff** — ``retries`` extra attempts for
  transient :class:`~repro.errors.SimulationError` failures (the kind
  injected faults produce); timeouts and misconfigurations are never
  retried.
"""

from __future__ import annotations

import contextlib
import inspect
import logging
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.ablation.runner import run_ablate_rank
from repro.errors import ExperimentError, ExperimentTimeoutError, SimulationError
from repro.experiments import (
    ablations,
    chains,
    corollary,
    fig2,
    fig3,
    regimes,
    robustness,
    scorecard,
    tables,
    throughput,
)

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "register_experiment",
    "known_experiment",
]


logger = logging.getLogger(__name__)


@dataclass
class ExperimentResult:
    """Rows + metadata for one experiment run.

    ``cached`` marks a result whose rows were served from a
    :class:`repro.parallel.ResultCache` instead of being recomputed;
    everything else (title, params, notes) is always rebuilt from the
    live registry, so cached and fresh results render identically.
    """

    exp_id: str
    title: str
    rows: list[dict[str, object]]
    params: dict[str, object] = field(default_factory=dict)
    notes: str = ""
    cached: bool = False


@dataclass(frozen=True)
class _Spec:
    title: str
    runner: Callable[..., list[dict[str, object]]]
    full_kwargs: dict
    quick_kwargs: dict
    notes: str = ""


_SPECS: dict[str, _Spec] = {
    # full-mode Monte-Carlo grids fix n_shards=8: the shard count is part
    # of the result's identity (same rows at any --jobs), while the pool
    # the CLI passes decides only where the shards execute
    "fig2a": _Spec(
        "Fig 2a: average conflict cost, high fixed cost (B=2000, mu=500)",
        fig2.run_fig2a,
        dict(trials=200_000, n_shards=8),
        dict(trials=20_000),
        "paper: DET near OPT; RRW(mu)/RRA(mu) beat RRW/RRA; "
        "RRW ~ 2x OPT, RRA ~ e/(e-1) x OPT",
    ),
    "fig2b": _Spec(
        "Fig 2b: average conflict cost, low fixed cost (B=200, mu=500)",
        fig2.run_fig2b,
        dict(trials=200_000, n_shards=8),
        dict(trials=20_000),
        "paper: DET notably worse; constrained ~ unconstrained; RA beats RW",
    ),
    "fig2c": _Spec(
        "Fig 2c: worst-case distribution for DET",
        fig2.run_fig2c,
        dict(trials=200_000, n_shards=8),
        dict(trials=20_000),
        "paper: DET ~ 3x OPT; randomized policies stay near their ratios",
    ),
    "fig3_stack": _Spec(
        "Fig 3: stack throughput vs threads",
        fig3.run_fig3_stack,
        dict(horizon=300_000.0),
        dict(horizon=60_000.0, threads=(1, 4, 8)),
        "paper: DELAY_TUNED best, online policies close, NO_DELAY worst "
        "under contention",
    ),
    "fig3_queue": _Spec(
        "Fig 3: queue throughput vs threads",
        fig3.run_fig3_queue,
        dict(horizon=300_000.0),
        dict(horizon=60_000.0, threads=(1, 4, 8)),
        "paper: same ordering as stack at lower absolute throughput",
    ),
    "fig3_txapp": _Spec(
        "Fig 3: transactional application throughput vs threads",
        fig3.run_fig3_txapp,
        dict(horizon=300_000.0),
        dict(horizon=60_000.0, threads=(1, 4, 8)),
        "paper: delay policies improve on NO_DELAY (up to ~4x)",
    ),
    "fig3_bimodal": _Spec(
        "Fig 3: bimodal transactional application throughput vs threads",
        fig3.run_fig3_bimodal,
        # bimodal at high contention is noisy; average 3 seeds per cell
        dict(horizon=300_000.0, repeats=3),
        dict(horizon=60_000.0, threads=(1, 4, 8)),
        "paper: hand-tuning loses; NO_DELAY decent; DELAY_RAND best at "
        "high contention/variance",
    ),
    "tab_ratios": _Spec(
        "Competitive-ratio verification (Theorems 1-6)",
        tables.run_tab_ratios,
        dict(),
        dict(B_values=(200.0,), k_values=(2, 4), grid=512),
        "numeric sup-ratio must match closed form to grid accuracy",
    ),
    "tab_abort_prob": _Spec(
        "Section 5.3 abort probabilities (RW vs RA)",
        tables.run_tab_abort_prob,
        dict(),
        dict(B_values=(200.0,)),
        "paper: RW ~ 1-1.8/B, RA ~ 1-2.4/B; RA less likely to abort",
    ),
    "cor1": _Spec(
        "Corollary 1: global ratio vs (2w+1)/(w+1) bound",
        corollary.run_cor1,
        dict(),
        dict(n_threads=8, per_thread=50),
        "measured sum-of-running-times ratio must respect the bound",
    ),
    "cor2": _Spec(
        "Corollary 2: progress under multiplicative backoff",
        corollary.run_cor2,
        dict(),
        dict(trials=100),
        "P(commit within bound attempts) must be >= 1/2",
    ),
    "abl_delay_cap": _Spec(
        "Ablation: delay support cap around B/(k-1)",
        ablations.run_abl_delay_cap,
        dict(),
        dict(factors=(0.5, 1.0, 2.0)),
        "the B/(k-1) cap should minimize the ratio",
    ),
    "abl_hybrid": _Spec(
        "Ablation: hybrid RW/RA crossover over chain size",
        ablations.run_abl_hybrid,
        dict(),
        dict(k_values=(2, 3, 6)),
        "RA wins at k=2, RW wins for k>=3 (paper Implications)",
    ),
    "abl_mean_error": _Spec(
        "Ablation: sensitivity to mis-estimated mean",
        ablations.run_abl_mean_error,
        dict(),
        dict(error_factors=(0.5, 1.0, 2.0)),
        "",
    ),
    "abl_wedge": _Spec(
        "Ablation: wedge-aware immediate aborts in the HTM",
        ablations.run_abl_wedge,
        dict(),
        dict(threads=(4,), horizon=60_000.0),
        "wedge-awareness should not hurt and usually helps",
    ),
    "abl_backoff": _Spec(
        "Ablation: multiplicative vs additive abort-cost growth",
        ablations.run_abl_backoff,
        dict(),
        dict(trials=60),
        "",
    ),
    "abl_htm_resolution": _Spec(
        "Extension: RW vs RA vs hybrid vs adaptive resolution in the HTM",
        ablations.run_abl_htm_resolution,
        dict(),
        dict(threads=(4,), horizon=80_000.0),
        "the paper's Implications section suggests a hybrid performs best",
    ),
    "ext_bank": _Spec(
        "Extension: bank transfers + audits, all resolution strategies",
        fig3.run_ext_bank,
        dict(threads=(1, 2, 4, 8, 12, 16)),
        dict(horizon=60_000.0, threads=(2, 8)),
        "money conservation + audit snapshot consistency verified per run",
    ),
    "ext_listset": _Spec(
        "Extension: sorted linked-list set, all resolution strategies",
        fig3.run_ext_listset,
        dict(threads=(1, 2, 4, 8, 12, 16)),
        dict(horizon=60_000.0, threads=(2, 8)),
        "long traversal read sets; chains k > 2 form naturally",
    ),
    "ext_chains": _Spec(
        "Extension: RW/RA crossover over chain size (theory vs MC)",
        chains.run_ext_chains,
        dict(),
        dict(k_values=(2, 3, 6), trials=20_000),
        "RA wins at k=2, RW from k=3 on; the hybrid tracks the winner",
    ),
    "abl_sensitivity": _Spec(
        "Ablation: policy ordering vs abort-cost calibration",
        ablations.run_abl_sensitivity,
        dict(),
        dict(abort_cycles=(60,), overheads=(100,), horizon=60_000.0),
        "the delay-vs-NO_DELAY ordering must be stable across the "
        "plausible abort-penalty range (DESIGN.md 5b.5)",
    ),
    "abl_k_aware": _Spec(
        "Ablation: chain-size-aware delay cap B/(k-1) vs k-blind",
        ablations.run_abl_k_aware,
        dict(),
        dict(n_cores_values=(8,), horizon=80_000.0),
        "Theorem 5/6's k scaling, measured live on a chain-heavy line",
    ),
    "ext_regimes": _Spec(
        "Extension: cost-vs-OPT curves over the B/mu regime axis",
        regimes.run_ext_regimes,
        dict(),
        dict(b_over_mu=(0.5, 2.0, 8.0), trials=20_000),
        "the continuous curve behind Figures 2a/2b: DET's plateau, the "
        "constrained-policy detachment, the RW/RA ordering flip",
    ),
    "scorecard": _Spec(
        "Reproduction scorecard: every headline claim, graded",
        scorecard.run_scorecard,
        dict(quick=False),
        dict(quick=True),
        "one pass/fail row per paper claim; TOTAL row aggregates",
    ),
    "robustness": _Spec(
        "Robustness: policy throughput degradation vs injected fault rate",
        robustness.run_robustness,
        dict(),
        dict(
            spurious_rates=(0.0, 1e-3),
            n_cores=4,
            horizon=30_000.0,
            policies=("NO_DELAY", "DELAY_RAND"),
        ),
        "delay policies should degrade gracefully (no cliff) as the "
        "machine injects spurious aborts, link jitter, and stalls",
    ),
    "robustness_est": _Spec(
        "Robustness: competitive ratio vs B/k/mu estimator noise",
        robustness.run_robustness_est,
        dict(),
        dict(sigmas=(0.0, 0.5), draws=12),
        "mean-constrained policies are the noise-sensitive ones "
        "(Thm 2/5 regime); unconstrained RRW degrades smoothly",
    ),
    "ext_throughput": _Spec(
        "Extension: time-resolved arena under both adversary models",
        throughput.run_ext_throughput,
        dict(),
        dict(horizon=100_000.0),
        "per_attempt (paper's model): delays win; rate (outside the "
        "model): immediate abort gains an un-modeled advantage",
    ),
    "ablate_rank": _Spec(
        "Ablation: component importance ranking over the flip matrix",
        run_ablate_rank,
        dict(
            workloads=("queue", "txapp"),
            replicates=4,
            horizon=120_000.0,
            n_cores=8,
            arena_conflicts=400,
            attempt_trials=48,
            attempt_cap=128,
        ),
        dict(
            workloads=("queue",),
            replicates=2,
            horizon=24_000.0,
            n_cores=4,
            arena_conflicts=120,
            attempt_trials=24,
            attempt_cap=64,
        ),
        "which policy component earns its keep: grace / family / "
        "B-growth / estimator / fallback flips, ranked (docs/ABLATION.md)",
    ),
}

#: Public experiment table (id -> title).
EXPERIMENTS: dict[str, str] = {k: s.title for k, s in _SPECS.items()}


def _resolve_spec(exp_id: str) -> _Spec | None:
    """Static registry lookup, plus dynamic resolution of ablation cell
    ids (``ablate/<flip>/<workload>``).

    Cells are resolved from the id alone so worker processes — which
    never see the parent's runtime registrations — rebuild the same
    spec under any start method, and every cell gets its own
    content-addressed cache entry.  Malformed ``ablate/`` ids raise
    :class:`~repro.errors.ExperimentError` like any other unknown id.
    """
    spec = _SPECS.get(exp_id)
    if spec is None and exp_id.startswith("ablate/"):
        from repro.ablation.cells import spec_args

        return _Spec(**spec_args(exp_id))
    return spec


def known_experiment(exp_id: str) -> bool:
    """Whether :func:`run_experiment` can resolve ``exp_id``."""
    try:
        return _resolve_spec(exp_id) is not None
    except ExperimentError:
        return False


def register_experiment(
    exp_id: str,
    title: str,
    runner: Callable[..., list[dict[str, object]]],
    *,
    full_kwargs: dict | None = None,
    quick_kwargs: dict | None = None,
    notes: str = "",
    replace: bool = False,
) -> None:
    """Register an experiment at runtime (extensions, test doubles).

    The CLI and :func:`run_experiment` see it immediately; ``replace``
    guards against accidental shadowing of a built-in artifact.
    """
    if exp_id in _SPECS and not replace:
        raise ExperimentError(
            f"experiment {exp_id!r} already registered (pass replace=True)"
        )
    _SPECS[exp_id] = _Spec(
        title, runner, full_kwargs or {}, quick_kwargs or {}, notes
    )
    EXPERIMENTS[exp_id] = title


@contextlib.contextmanager
def _watchdog(seconds: float | None, exp_id: str):
    """Wall-clock kill switch around one experiment attempt.

    Uses ``SIGALRM`` so even loops that never re-enter the simulation
    kernel get interrupted.  Signals only work on the main thread;
    elsewhere the engine-level deadline (``Machine.run(wall_timeout)``)
    remains the only enforcement, so we degrade to a warning rather
    than refusing to run — run experiments through
    ``repro.parallel.ParallelExecutor`` (or the CLI's ``--jobs``) when
    hard enforcement matters: its workers run on their own main
    threads *and* the parent kills overdue worker processes outright.
    """
    if seconds is None or seconds <= 0:
        yield
        return
    if (
        threading.current_thread() is not threading.main_thread()
        or not hasattr(signal, "SIGALRM")
    ):
        logger.warning(
            "experiment %r: timeout=%gs requested off the main thread; "
            "the SIGALRM watchdog cannot arm here and only engine-level "
            "deadlines apply — use repro.parallel.ParallelExecutor for "
            "process-level enforcement",
            exp_id,
            seconds,
        )
        yield
        return

    def _fire(signum, frame):
        raise ExperimentTimeoutError(
            f"experiment {exp_id!r} exceeded its {seconds:g}s wall-clock "
            f"budget (watchdog)"
        )

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: Runtime-only arguments: forwarded to runners that accept them but
#: excluded from result params and cache keys — they say *where* work
#: executes, never *what* is computed.
_RUNTIME_ONLY = ("pool", "cache")


def run_experiment(
    exp_id: str,
    *,
    quick: bool = False,
    seed: int | None = None,
    timeout: float | None = None,
    retries: int = 0,
    retry_backoff: float = 0.05,
    retry=None,
    cache=None,
    pool=None,
    **overrides,
) -> ExperimentResult:
    """Run one experiment by id.

    ``quick`` shrinks trial counts/horizons for CI; ``overrides`` are
    forwarded to the runner (after the mode defaults).  ``timeout``
    arms a per-attempt wall-clock watchdog; ``retry`` (a
    :class:`repro.parallel.retry.RetryPolicy` — the one object every
    execution path shares) re-runs the experiment with exponential
    backoff when it dies with a transient
    :class:`~repro.errors.SimulationError` — the failure mode injected
    faults produce.  ``retries`` / ``retry_backoff`` are the legacy
    spelling and build an equivalent policy when no ``retry`` is given.
    Timeouts, bad parameters, and unknown ids are never retried.

    ``cache`` (a :class:`repro.parallel.ResultCache`) short-circuits
    the run when an entry for this exact invocation exists, and stores
    the rows afterwards otherwise; failures are never cached.  ``pool``
    (a :class:`repro.parallel.ShardPool`) is handed to runners that
    support intra-experiment fan-out (trial shards, sweep cells).
    Neither changes the rows — caching replays them, pooling only
    relocates the computation — and neither appears in the result's
    ``params`` or the cache key.
    """
    spec = _resolve_spec(exp_id)
    if spec is None:
        known = ", ".join(sorted(_SPECS))
        raise ExperimentError(f"unknown experiment {exp_id!r}; known: {known}")
    if retry is None:
        if retries < 0:
            raise ExperimentError(f"retries must be >= 0, got {retries}")
        from repro.parallel.retry import RetryPolicy

        retry = RetryPolicy(retries=retries, backoff_base=retry_backoff)
    sig_params = inspect.signature(spec.runner).parameters
    kwargs = dict(spec.quick_kwargs if quick else spec.full_kwargs)
    kwargs.update(overrides)
    if seed is not None and "seed" in sig_params:
        kwargs.setdefault("seed", seed)
    kwargs = {k: v for k, v in kwargs.items() if k not in _RUNTIME_ONLY}
    if cache is not None:
        hit = cache.get_rows(exp_id, kwargs, quick=quick, seed=seed)
        if hit is not None:
            return ExperimentResult(
                exp_id=exp_id,
                title=spec.title,
                rows=hit,
                params=kwargs,
                notes=spec.notes,
                cached=True,
            )
    call_kwargs = dict(kwargs)
    if pool is not None and "pool" in sig_params:
        call_kwargs["pool"] = pool
    if cache is not None and "cache" in sig_params:
        call_kwargs["cache"] = cache
    attempts = retry.retries + 1
    for attempt in range(attempts):
        try:
            with _watchdog(timeout, exp_id):
                rows = spec.runner(**call_kwargs)
            break
        except ExperimentTimeoutError:
            raise  # a timeout is a budget decision, not a transient fault
        except SimulationError:
            if attempt + 1 >= attempts:
                raise
            time.sleep(retry.attempt_backoff(attempt))
    if cache is not None:
        cache.put_rows(exp_id, rows, kwargs, quick=quick, seed=seed)
    return ExperimentResult(
        exp_id=exp_id,
        title=spec.title,
        rows=rows,
        params=kwargs,
        notes=spec.notes,
    )
