"""Figure 3 — HTM throughput vs thread count (Section 8.2).

Four panels (stack, queue, transactional application, bimodal
application) x four conflict policies (NO_DELAY, DELAY_TUNED,
DELAY_DET, DELAY_RAND), swept over the paper's 1..18 thread axis.

Rows report committed operations per second at the configured clock,
plus abort statistics for diagnosis.
"""

from __future__ import annotations

import functools
from typing import Callable

import numpy as _np

from repro.htm import (
    DetDelay,
    Machine,
    MachineParams,
    NoDelay,
    RandDelay,
    TunedDelay,
)
from repro.rngutil import DEFAULT_SEED
from repro.workloads import (
    QueueWorkload,
    StackWorkload,
    TxAppWorkload,
    Workload,
)

__all__ = [
    "FIG3_POLICIES",
    "FIG3_THREADS",
    "run_fig3",
    "run_fig3_stack",
    "run_fig3_queue",
    "run_fig3_txapp",
    "run_fig3_bimodal",
]

#: Figure 3's policy series, in legend order.
FIG3_POLICIES = ("NO_DELAY", "DELAY_TUNED", "DELAY_DET", "DELAY_RAND")

#: Thread counts swept (the paper's x-axis runs to 18).
FIG3_THREADS = (1, 2, 4, 6, 8, 12, 16, 18)


def _policy_factory(name: str, workload: Workload, params: MachineParams):
    if name == "NO_DELAY":
        return lambda core_id: NoDelay()
    if name == "DELAY_TUNED":
        tuned = workload.tuned_delay_cycles(params)
        return lambda core_id: TunedDelay(tuned)
    if name == "DELAY_DET":
        return lambda core_id: DetDelay()
    if name == "DELAY_RAND":
        return lambda core_id: RandDelay()
    if name == "DELAY_RA":
        from repro.htm import RequestorAbortsDelay

        return lambda core_id: RequestorAbortsDelay()
    if name == "DELAY_HYBRID":
        from repro.htm import HybridDelay

        return lambda core_id: HybridDelay()
    if name == "GREEDY_CM":
        from repro.htm import GreedyCM

        return lambda core_id: GreedyCM()
    raise ValueError(f"unknown Figure 3 policy {name!r}")


def _rep_worker(
    workload_factory: Callable[[], Workload],
    n: int,
    policy_name: str,
    horizon: float,
    base_seed: int,
    verify: bool,
    rep: int,
) -> tuple[float, int, int, int, int]:
    """One (threads, policy, repeat) machine run — the unit of parallel
    fan-out.

    Module-level so process pools can pickle it; the machine seed comes
    in via ``base_seed`` (simlint DET004) and depends only on the task
    coordinates ``(n, rep)``, so the result is identical wherever the
    repeat executes.  Returns the raw per-rep statistics
    ``(throughput, ops, aborts, commits, fallbacks)``; rows are folded
    per cell by :func:`_merge_cell` in rep order.
    """
    params = MachineParams(n_cores=max(n, 1))
    workload = workload_factory()
    machine = Machine(params, _policy_factory(policy_name, workload, params))
    machine.load(workload, seed=base_seed + 1009 * n + 7919 * rep)
    stats = machine.run(horizon)
    if verify:
        workload.verify(machine)
    return (
        stats.throughput_ops_per_sec(params.clock_ghz),
        stats.ops_completed,
        stats.tx_aborted,
        stats.tx_committed,
        stats.total("fallback_ops"),
    )


def _merge_cell(
    n: int,
    policy_name: str,
    reps: list[tuple[float, int, int, int, int]],
) -> dict[str, object]:
    """Fold one cell's per-rep statistics (in rep order) into its row."""
    repeats = len(reps)
    tputs = [r[0] for r in reps]
    ops_total = sum(r[1] for r in reps)
    aborts = sum(r[2] for r in reps)
    commits = sum(r[3] for r in reps)
    fallbacks = sum(r[4] for r in reps)
    arr = _np.asarray(tputs)
    row: dict[str, object] = {
        "threads": n,
        "policy": policy_name,
        "ops_per_sec": float(arr.mean()),
        "ops": ops_total // repeats,
        "abort_rate": aborts / max(commits + aborts, 1),
        "fallback_ops": fallbacks // repeats,
    }
    if repeats > 1:
        row["sem"] = float(arr.std(ddof=1) / _np.sqrt(repeats))
    return row


def run_fig3(
    workload_factory: Callable[[], Workload],
    *,
    threads: tuple[int, ...] = FIG3_THREADS,
    policies: tuple[str, ...] = FIG3_POLICIES,
    horizon: float = 300_000.0,
    seed: int | None = None,
    verify: bool = True,
    repeats: int = 1,
    pool=None,
) -> list[dict[str, object]]:
    """One Figure 3 panel: sweep threads x policies on a workload.

    ``repeats > 1`` averages each cell over independent seeds and adds a
    standard-error column — recommended at high contention, where
    single-seed ordering is noisy (see EXPERIMENTS.md on the bimodal
    panel).

    ``pool`` (an object with ``starmap``, e.g.
    :class:`repro.parallel.ProcessPool`) fans out one task per
    *(cell, repeat)* — so ``repeats > 1`` parallelizes inside a cell
    too; every repeat is seeded from its own ``(n, rep)`` coordinates
    and cells fold their repeats in rep order, so rows are identical
    with or without a pool.  Pooled runs need a picklable
    ``workload_factory`` (the built-in panels use ``functools.partial``).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    base_seed = DEFAULT_SEED if seed is None else seed
    coords = [(n, policy_name) for n in threads for policy_name in policies]
    tasks = [
        (workload_factory, n, policy_name, horizon, base_seed, verify, rep)
        for n, policy_name in coords
        for rep in range(repeats)
    ]
    if pool is None:
        results = [_rep_worker(*task) for task in tasks]
    else:
        results = pool.starmap(_rep_worker, tasks)
    return [
        _merge_cell(n, policy_name, results[i * repeats : (i + 1) * repeats])
        for i, (n, policy_name) in enumerate(coords)
    ]


def run_fig3_stack(*, pool=None, **kwargs) -> list[dict[str, object]]:
    """Figure 3, stack throughput."""
    return run_fig3(StackWorkload, pool=pool, **kwargs)


def run_fig3_queue(*, pool=None, **kwargs) -> list[dict[str, object]]:
    """Figure 3, queue throughput."""
    return run_fig3(QueueWorkload, pool=pool, **kwargs)


def run_fig3_txapp(*, pool=None, **kwargs) -> list[dict[str, object]]:
    """Figure 3, transactional application (uniform lengths)."""
    return run_fig3(
        functools.partial(TxAppWorkload, work_cycles=100), pool=pool, **kwargs
    )


def run_fig3_bimodal(*, pool=None, **kwargs) -> list[dict[str, object]]:
    """Figure 3, bimodal transactional application."""
    return run_fig3(
        functools.partial(TxAppWorkload, work_cycles=100, bimodal=True),
        pool=pool,
        **kwargs,
    )


#: Extended policy set: the paper's four series plus the extension
#: resolutions (requestor-aborts, the Implications hybrid, and the
#: global-knowledge Greedy contention manager baseline).
EXT_POLICIES = (
    "NO_DELAY",
    "DELAY_RAND",
    "DELAY_RA",
    "DELAY_HYBRID",
    "GREEDY_CM",
)


def run_ext_bank(*, pool=None, **kwargs) -> list[dict[str, object]]:
    """Extension panel: bank transfers + audits under every resolution."""
    from repro.workloads import BankWorkload

    kwargs.setdefault("policies", EXT_POLICIES)
    return run_fig3(
        functools.partial(BankWorkload, p_audit=0.1), pool=pool, **kwargs
    )


def run_ext_listset(*, pool=None, **kwargs) -> list[dict[str, object]]:
    """Extension panel: sorted linked-list set under every resolution."""
    from repro.workloads import ListSetWorkload

    kwargs.setdefault("policies", EXT_POLICIES)
    return run_fig3(ListSetWorkload, pool=pool, **kwargs)
