"""Regime sweep (extension): where each strategy wins, as a curve.

Figures 2a and 2b are two points (B/µ = 4 and B/µ = 0.4) of an
underlying curve; this experiment sweeps the ratio ``B/µ`` continuously
and reports each policy's mean cost relative to OPT, exposing:

* where DET's near-OPT plateau ends (it aborts once lengths routinely
  exceed B),
* where the mean-constrained policies detach from their unconstrained
  counterparts (the regime thresholds of Theorems 2/5), and
* the RW/RA ordering flip as B/µ shrinks.
"""

from __future__ import annotations

from repro.distributions import ExponentialLengths
from repro.rngutil import stream_for
from repro.synthetic import SyntheticHarness

__all__ = ["run_ext_regimes"]


def run_ext_regimes(
    *,
    mu: float = 500.0,
    b_over_mu: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    trials: int = 100_000,
    seed: int | None = None,
) -> list[dict[str, object]]:
    """One row per B/µ point with each policy's cost normalized to OPT."""
    rows: list[dict[str, object]] = []
    dist = ExponentialLengths(mu)
    for ratio in b_over_mu:
        B = mu * ratio
        harness = SyntheticHarness(B, mu)
        result = harness.run(
            dist, trials, stream_for(seed, "ext_regimes", int(ratio * 100))
        )
        normalized = result.normalized()
        row: dict[str, object] = {"B/mu": ratio}
        for label in ("DET", "RRW", "RRW(mu)", "RRA", "RRA(mu)"):
            row[label] = round(normalized[label], 4)
        row["best"] = min(
            (label for label in normalized if label != "OPT"),
            key=lambda lbl: normalized[lbl],
        )
        rows.append(row)
    return rows
