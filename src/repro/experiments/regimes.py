"""Regime sweep (extension): where each strategy wins, as a curve.

Figures 2a and 2b are two points (B/µ = 4 and B/µ = 0.4) of an
underlying curve; this experiment sweeps the ratio ``B/µ`` continuously
and reports each policy's mean cost relative to OPT, exposing:

* where DET's near-OPT plateau ends (it aborts once lengths routinely
  exceed B),
* where the mean-constrained policies detach from their unconstrained
  counterparts (the regime thresholds of Theorems 2/5), and
* the RW/RA ordering flip as B/µ shrinks.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.distributions import ExponentialLengths
from repro.rngutil import stream_for
from repro.synthetic import SyntheticHarness

__all__ = ["run_ext_regimes"]


def _cell_worker(
    mu: float, ratio: float, trials: int, seed: int | None
) -> dict[str, object]:
    """One B/µ point — the unit of parallel fan-out.

    Module-level (picklable) with its seed as an argument (simlint
    DET004); the cell's stream depends only on ``(seed, ratio)``, so
    the row is identical wherever it executes.
    """
    B = mu * ratio
    dist = ExponentialLengths(mu)
    harness = SyntheticHarness(B, mu)
    result = harness.run(
        dist, trials, stream_for(seed, "ext_regimes", int(ratio * 100))
    )
    normalized = result.normalized()
    row: dict[str, object] = {"B/mu": ratio}
    for label in ("DET", "RRW", "RRW(mu)", "RRA", "RRA(mu)"):
        row[label] = round(normalized[label], 4)
    row["best"] = min(
        (label for label in normalized if label != "OPT"),
        key=lambda lbl: normalized[lbl],
    )
    return row


def run_ext_regimes(
    *,
    mu: float = 500.0,
    b_over_mu: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    trials: int = 100_000,
    seed: int | None = None,
    pool=None,
) -> list[dict[str, object]]:
    """One row per B/µ point with each policy's cost normalized to OPT.

    ``pool`` (an object with ``starmap``, e.g.
    :class:`repro.parallel.ProcessPool`) fans the sweep cells out over
    worker processes; each cell's stream is derived from its own
    coordinates, so rows are identical with or without a pool.
    """
    cells = [(mu, ratio, trials, seed) for ratio in b_over_mu]
    if pool is None:
        rows = [_cell_worker(*cell) for cell in cells]
    else:
        rows = pool.starmap(_cell_worker, cells)
    # Theory overlay: the mean-constrained policies' worst-case
    # guarantees across the whole B/µ axis, one batched kernel call per
    # column (the MC columns above are empirical vs-OPT under one
    # specific distribution; the bounds hold against *any* adversary
    # with that mean).  Computed after the MC pass so RNG draw order is
    # untouched.
    Bs = mu * np.asarray(b_over_mu, dtype=float)
    rw_bound = kernels.rw_best_ratio(Bs, mu)
    ra_bound = kernels.ra_best_ratio(Bs, mu)
    for row, rw_b, ra_b in zip(rows, rw_bound, ra_bound):
        row["RRW(mu)_bound"] = round(float(rw_b), 4)
        row["RRA(mu)_bound"] = round(float(ra_b), 4)
    return rows
