"""Ablation benches for the design choices DESIGN.md calls out.

* ``abl_delay_cap`` — how the competitive ratio degrades when the
  uniform policy's support cap deviates from ``B/(k-1)``.
* ``abl_hybrid`` — the RW/RA crossover and the hybrid resolver's ratio
  envelope over chain sizes (Section 1 "Implications").
* ``abl_mean_error`` — sensitivity of the mean-constrained policies to
  a mis-estimated µ (a profiler with bias).
* ``abl_wedge`` — the HTM simulator's wedge-aware immediate abort
  (structural D = inf) on vs off.
* ``abl_backoff`` — multiplicative vs additive abort-cost growth for
  the Corollary 2 progress mechanism.
"""

from __future__ import annotations

import numpy as np

from repro.adversary import TimedArena
from repro.core.hybrid import HybridResolver
from repro.core.model import ConflictKind, ConflictModel
from repro.core.policy import FixedDelayPolicy
from repro.core.ratios import rand_ra_ratio, rand_rw_optimal_ratio
from repro.core.requestor_wins import MeanConstrainedRW, UniformRW
from repro.core.verify import competitive_ratio, constrained_competitive_ratio
from repro.errors import InvalidParameterError
from repro.htm import Machine, MachineParams, RandDelay
from repro.rngutil import seedseq_for
from repro.sim.mc import TrialProgram
from repro.workloads import QueueWorkload

__all__ = [
    "run_abl_delay_cap",
    "run_abl_hybrid",
    "run_abl_mean_error",
    "run_abl_wedge",
    "run_abl_backoff",
    "run_abl_htm_resolution",
    "run_abl_sensitivity",
    "run_abl_k_aware",
]


class _CappedUniform(UniformRW):
    """Uniform delay policy with an arbitrary (non-optimal) cap."""

    def __init__(self, B: float, k: int, cap_factor: float) -> None:
        super().__init__(B, k)
        if cap_factor <= 0:
            raise InvalidParameterError("cap_factor must be positive")
        self._hi = cap_factor * B / (k - 1)
        self.cap_factor = cap_factor
        self.name = f"RRW(cap x{cap_factor:g})"
        self._grid_cache = None

    def pdf_vec(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(self._in_support(x), 1.0 / self._hi, 0.0)

    def cdf_vec(self, x):
        x = np.asarray(x, dtype=float)
        return np.clip(x / self._hi, 0.0, 1.0)


def run_abl_delay_cap(
    *,
    B: float = 200.0,
    k_values: tuple[int, ...] = (2, 4),
    factors: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
) -> list[dict[str, object]]:
    """Competitive ratio of uniform policies with caps around B/(k-1)."""
    rows = []
    for k in k_values:
        model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, k)
        for factor in factors:
            policy = _CappedUniform(B, k, factor)
            result = competitive_ratio(policy, model)
            rows.append(
                {
                    "k": k,
                    "cap_factor": factor,
                    "ratio": result.ratio,
                    "worst_D": result.worst_remaining,
                    "optimal_cap": factor == 1.0,
                }
            )
    return rows


def run_abl_hybrid(
    *, B: float = 200.0, k_values: tuple[int, ...] = (2, 3, 4, 6, 10, 20)
) -> list[dict[str, object]]:
    """RW vs RA optimal ratios over k, and the hybrid's choice."""
    resolver = HybridResolver(B)
    rows = []
    for k in k_values:
        rw = rand_rw_optimal_ratio(k)
        ra = rand_ra_ratio(k)
        rows.append(
            {
                "k": k,
                "ratio_RW": rw,
                "ratio_RA": ra,
                "hybrid_picks": resolver.preferred_kind(k).value,
                "hybrid_ratio": min(rw, ra),
            }
        )
    return rows


def run_abl_mean_error(
    *,
    B: float = 2000.0,
    mu_true: float = 250.0,
    error_factors: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
) -> list[dict[str, object]]:
    """Constrained RW policy built with a biased mean estimate.

    The policy's guarantee is evaluated against adversaries with the
    *true* mean; an overestimate wastes the constraint, an underestimate
    voids the guarantee (the bound only covers mu_hat-mean adversaries).
    """
    model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, 2)
    rows = []
    for factor in error_factors:
        mu_hat = mu_true * factor
        if MeanConstrainedRW.regime_holds(B, mu_hat):
            policy: object = MeanConstrainedRW(B, mu_hat)
        else:
            policy = UniformRW(B, 2)
        achieved = constrained_competitive_ratio(policy, model, mu_true)
        promised = getattr(policy, "competitive_ratio", float("nan"))
        rows.append(
            {
                "mu_hat/mu": factor,
                "policy": policy.name,
                "promised_ratio_at_mu_hat": promised,
                "achieved_ratio_at_true_mu": achieved.ratio,
            }
        )
    return rows


def run_abl_wedge(
    *,
    threads: tuple[int, ...] = (4, 8),
    horizon: float = 200_000.0,
    seed: int | None = None,
) -> list[dict[str, object]]:
    """HTM throughput with and without wedge-aware immediate aborts."""
    rows = []
    for n in threads:
        for wedge in (True, False):
            params = MachineParams(n_cores=n)
            workload = QueueWorkload()
            machine = Machine(
                params, lambda i: RandDelay(), wedge_aware=wedge
            )
            machine.load(workload, seed=(seed or 0) + n)
            stats = machine.run(horizon)
            workload.verify(machine)
            rows.append(
                {
                    "threads": n,
                    "wedge_aware": wedge,
                    "ops": stats.ops_completed,
                    "abort_rate": stats.abort_rate,
                }
            )
    return rows


def run_abl_htm_resolution(
    *,
    threads: tuple[int, ...] = (4, 8),
    horizon: float = 200_000.0,
    seed: int | None = None,
) -> list[dict[str, object]]:
    """Extension ablation: conflict-resolution strategy inside the HTM.

    Compares requestor-wins (DELAY_RAND), requestor-aborts (NACK the
    requestor at grace expiry), the per-conflict hybrid of the paper's
    "Implications" section, and the online adaptive-profiler policy, on
    the queue and transactional-app workloads.
    """
    from repro.htm import GreedyCM, HybridDelay, RequestorAbortsDelay
    from repro.htm.profiler import AdaptiveDelay, CommitProfiler
    from repro.workloads import TxAppWorkload

    def factories():
        profiler = CommitProfiler()
        return [
            ("RW (DELAY_RAND)", lambda i: RandDelay(), None),
            ("RA (NACK)", lambda i: RequestorAbortsDelay(), None),
            ("HYBRID", lambda i: HybridDelay(), None),
            ("ADAPTIVE", lambda i, p=profiler: AdaptiveDelay(p), profiler),
            ("GREEDY_CM (global)", lambda i: GreedyCM(), None),
        ]

    rows = []
    for workload_name, workload_factory in (
        ("queue", QueueWorkload),
        ("txapp", lambda: TxAppWorkload(work_cycles=100)),
    ):
        for n in threads:
            for label, factory, profiler in factories():
                params = MachineParams(n_cores=n)
                workload = workload_factory()
                machine = Machine(params, factory)
                if profiler is not None:
                    machine.commit_observers.append(profiler.observe_commit)
                machine.load(workload, seed=(seed or 0) + 31 * n)
                stats = machine.run(horizon)
                workload.verify(machine)
                rows.append(
                    {
                        "workload": workload_name,
                        "threads": n,
                        "resolution": label,
                        "ops": stats.ops_completed,
                        "abort_rate": round(stats.abort_rate, 3),
                        "nacks": stats.total("nacks_sent"),
                    }
                )
    return rows


def run_abl_sensitivity(
    *,
    abort_cycles: tuple[int, ...] = (24, 60, 120),
    overheads: tuple[int, ...] = (40, 100, 200),
    n_cores: int = 8,
    horizon: float = 120_000.0,
    seed: int | None = None,
) -> list[dict[str, object]]:
    """Sensitivity of the Figure 3 policy ordering to the calibration
    constants (DESIGN.md §5b.5).

    Sweeps the abort penalty and the policies' abort-cost overhead on
    the queue workload; the claim under test is that *which policy
    wins* (delays vs NO_DELAY) is stable across the plausible range,
    even though absolute throughput moves.
    """
    from repro.htm import NoDelay, RandDelay

    rows = []
    for ac in abort_cycles:
        for ao in overheads:
            params = MachineParams(
                n_cores=n_cores, abort_cycles=ac, abort_overhead=ao
            )
            ops = {}
            for label, factory in (
                ("NO_DELAY", lambda i: NoDelay()),
                ("DELAY_RAND", lambda i: RandDelay()),
            ):
                workload = QueueWorkload()
                machine = Machine(params, factory)
                machine.load(workload, seed=(seed or 0) + ac + ao)
                stats = machine.run(horizon)
                workload.verify(machine)
                ops[label] = stats.ops_completed
            rows.append(
                {
                    "abort_cycles": ac,
                    "abort_overhead": ao,
                    "NO_DELAY_ops": ops["NO_DELAY"],
                    "DELAY_RAND_ops": ops["DELAY_RAND"],
                    "delay_wins": ops["DELAY_RAND"] > ops["NO_DELAY"],
                }
            )
    return rows


class _KBlindRand:
    """DELAY_RAND with the chain size forced to 2 (ablation control).

    Theorems 5/6 cap delays at ``B/(k-1)``; this control ignores the
    observed chain and always uses the k = 2 support ``[0, B)``,
    overholding the line when k - 1 transactions wait behind it.
    """

    name = "DELAY_RAND_KBLIND"

    def decide(self, ctx, rng) -> int:
        return int(rng.random() * ctx.abort_cost)


def run_abl_k_aware(
    *,
    n_cores_values: tuple[int, ...] = (4, 8, 16),
    work_cycles: int = 150,
    horizon: float = 200_000.0,
    seed: int | None = None,
) -> list[dict[str, object]]:
    """Does the ``B/(k-1)`` chain scaling matter in a live machine?

    The shared counter with body work piles every core onto one line,
    building chains; the k-aware uniform policy shrinks its delays as
    waiters accumulate, the k-blind control does not.
    """
    from repro.htm import RandDelay
    from repro.workloads import CounterWorkload

    rows = []
    for n in n_cores_values:
        params = MachineParams(n_cores=n)
        ops = {}
        for label, factory in (
            ("k-aware (Thm 5/6)", lambda i: RandDelay()),
            ("k-blind (always k=2)", lambda i: _KBlindRand()),
        ):
            workload = CounterWorkload(work_cycles=work_cycles)
            machine = Machine(params, factory)
            machine.load(workload, seed=(seed or 0) + n)
            stats = machine.run(horizon)
            workload.verify(machine)
            ops[label] = stats.ops_completed
        rows.append(
            {
                "cores": n,
                "k_aware_ops": ops["k-aware (Thm 5/6)"],
                "k_blind_ops": ops["k-blind (always k=2)"],
                "k_aware_wins": ops["k-aware (Thm 5/6)"]
                >= ops["k-blind (always k=2)"],
            }
        )
    return rows


def run_abl_backoff(
    *,
    B0: float = 64.0,
    y: float = 2000.0,
    gamma: int = 3,
    trials: int = 300,
    seed: int | None = None,
    engine: str = "batch",
    pool=None,
) -> list[dict[str, object]]:
    """Multiplicative vs additive abort-cost growth: attempts to commit.

    Each variant's ``trials`` transactions run through the batched SoA
    engine (``repro.sim.mc``) via :meth:`TimedArena.run_batch`;
    ``engine="scalar"`` replays the same draws through the original
    per-trial ``run_transaction`` loop (bit-identical rows).
    """
    arena = TimedArena()
    conflicts = tuple(
        (y * (1.0 - (i + 0.5) / gamma) + 1.0, 2) for i in range(gamma)
    )
    rows = []
    variants = [
        ("x2.0 (paper)", dict(factor=2.0, increment=0.0)),
        ("x1.5", dict(factor=1.5, increment=0.0)),
        ("+B0 additive", dict(factor=1.0, increment=B0)),
        ("+4B0 additive", dict(factor=1.0, increment=4 * B0)),
    ]
    for label, kwargs in variants:
        program = TrialProgram(rho=y, conflicts=conflicts, k=2, B0=B0, **kwargs)
        results = arena.run_batch(
            program,
            trials,
            seed=seedseq_for(seed, "abl_backoff", label),
            engine=engine,
            pool=pool,
        )
        arr = results.attempts.astype(float)
        rows.append(
            {
                "growth": label,
                "median_attempts": float(np.median(arr)),
                "p90_attempts": float(np.percentile(arr, 90)),
                "max_attempts": int(arr.max()),
            }
        )
    return rows
