"""Time-resolved throughput experiment (extension).

Runs the event-driven arena under both adversary processes to make the
boundary of the paper's conflict model measurable:

* ``per_attempt`` (the Section 6 assumption — a fixed conflict budget
  per attempt, policy-independent): the delay policies must win;
* ``rate`` (conflicts proportional to exposure time — outside the
  model): immediate abort gains an advantage the analysis does not
  claim to cover.
"""

from __future__ import annotations

from repro.adversary.throughput_arena import ThroughputArena
from repro.core import kernels
from repro.core.model import ConflictKind
from repro.core.policy import ImmediateAbortPolicy
from repro.core.requestor_wins import DeterministicRW, UniformRW
from repro.distributions import UniformLengths

__all__ = ["run_ext_throughput"]


def _theory_costs(B: float, mu: float) -> tuple[dict[str, float], float]:
    """Kernel-computed expected per-conflict cost at the mean remaining
    time ``D = µ/2`` for each arena policy, plus OPT's cost there.

    One batched quadrature/point evaluation per policy family (the
    arena's cells share these lookups across both adversary modes)
    instead of per-cell scalar integration.
    """
    RW = ConflictKind.REQUESTOR_WINS
    d_ref = [mu / 2.0]
    costs = {
        "NO_DELAY": kernels.expected_cost_grid(RW, "det", B, 2, d_ref, x0=0.0),
        "RRW (uniform)": kernels.expected_cost_grid(RW, "uniform_rw", B, 2, d_ref),
        "DET (B/(k-1))": kernels.expected_cost_grid(RW, "det", B, 2, d_ref),
    }
    opt = float(kernels.conflict_opt(mu / 2.0, B, 2))
    return {label: float(v[0, 0]) for label, v in costs.items()}, opt


def run_ext_throughput(
    *,
    n_threads: int = 8,
    mu: float = 500.0,
    B: float = 1000.0,
    horizon: float = 300_000.0,
    p_conflict: float = 0.8,
    conflict_rate: float = 0.02,
    seed: int | None = None,
) -> list[dict[str, object]]:
    policies = [
        ("NO_DELAY", ImmediateAbortPolicy()),
        ("RRW (uniform)", UniformRW(B)),
        ("DET (B/(k-1))", DeterministicRW(B)),
    ]
    theory, opt_ref = _theory_costs(B, mu)
    rows: list[dict[str, object]] = []
    for mode in ("per_attempt", "rate"):
        for label, policy in policies:
            arena = ThroughputArena(
                n_threads,
                UniformLengths(mu),
                policy,
                B=B,
                adversary=mode,
                p_conflict=p_conflict,
                conflict_rate=conflict_rate,
            )
            trace = arena.run(horizon, window=horizon / 20, seed=seed)
            rows.append(
                {
                    "adversary": mode,
                    "policy": label,
                    "commits": trace.total_commits,
                    "aborts": trace.total_aborts,
                    "mean_gamma": round(trace.mean_gamma, 1),
                    "theory_cost": round(theory[label], 1),
                    "theory_vs_OPT": round(theory[label] / opt_ref, 2),
                }
            )
    return rows
