"""Analysis "tables": competitive ratios and abort probabilities.

The paper reports its optimality results as theorems rather than a
numbered table; ``tab_ratios`` regenerates the implied table — for each
theorem, the closed-form ratio next to an implementation-independent
numeric evaluation (grid-search adversary against quadrature expected
costs) — and ``tab_abort_prob`` reproduces the Section 5.3
abort-probability comparison.
"""

from __future__ import annotations

import math

from repro.core import ratios
from repro.core.model import ConflictKind, ConflictModel
from repro.core.requestor_aborts import (
    ChainRA,
    DeterministicRA,
    DiscreteSkiRentalRA,
    ExponentialRA,
)
from repro.core.requestor_wins import (
    DeterministicRW,
    MeanConstrainedRW,
    PolynomialRW,
    UniformRW,
)
from repro.core.verify import (
    competitive_ratio,
    constrained_competitive_ratio,
)

__all__ = ["run_tab_ratios", "run_tab_abort_prob"]


def run_tab_ratios(
    *,
    B_values: tuple[float, ...] = (50.0, 200.0, 2000.0),
    k_values: tuple[int, ...] = (2, 3, 4, 8),
    grid: int = 2048,
) -> list[dict[str, object]]:
    """Theorem-by-theorem ratio verification grid."""
    rows: list[dict[str, object]] = []
    for B in B_values:
        for k in k_values:
            rw = ConflictModel(ConflictKind.REQUESTOR_WINS, B, k)
            ra = ConflictModel(ConflictKind.REQUESTOR_ABORTS, B, k)
            mu_rw = 0.5 * B * ratios.rw_mean_regime_threshold(k)
            mu_ra = 0.5 * B * ratios.ra_mean_regime_threshold(k)

            entries: list[tuple[str, str, object, ConflictModel, float | None]] = [
                ("Thm4", "DET(RW)", DeterministicRW(B, k), rw, None),
                ("Thm5", "RRW uniform", UniformRW(B, k), rw, None),
                ("Thm1/3", "RRA exp", ExponentialRA(B, k), ra, None),
                ("-", "DET(RA)", DeterministicRA(B, k), ra, None),
            ]
            if k == 2:
                entries.append(
                    ("Thm5", "RRW(mu)", MeanConstrainedRW(B, mu_rw), rw, mu_rw)
                )
                entries.append(
                    (
                        "Thm1",
                        "ski discrete",
                        DiscreteSkiRentalRA(int(B)),
                        ra,
                        None,
                    )
                )
            else:
                entries.append(
                    ("Thm6", "RRW poly", PolynomialRW(B, k), rw, None)
                )
                entries.append(
                    (
                        "Thm6*",
                        "RRW(mu) poly",
                        PolynomialRW(B, k, mu_rw),
                        rw,
                        mu_rw,
                    )
                )
            entries.append(
                ("Thm2/3", "RRA(mu)", ChainRA(B, k, mu_ra), ra, mu_ra)
            )

            for theorem, label, policy, model, mu in entries:
                closed = getattr(policy, "competitive_ratio", math.nan)
                if mu is None:
                    numeric = competitive_ratio(policy, model, grid=grid).ratio
                else:
                    numeric = constrained_competitive_ratio(
                        policy, model, mu, grid=grid
                    ).ratio
                rows.append(
                    {
                        "theorem": theorem,
                        "policy": label,
                        "B": B,
                        "k": k,
                        "mu": mu if mu is not None else "",
                        "closed_form": closed,
                        "numeric": numeric,
                        "rel_err": abs(numeric - closed) / closed,
                    }
                )
    return rows


def run_tab_abort_prob(
    *, B_values: tuple[float, ...] = (50.0, 200.0, 2000.0)
) -> list[dict[str, object]]:
    """Section 5.3: P(abort) at the adversary's best response ``y = B``.

    Paper approximations: RW ``~ 1 - 1.8/B``, RA ``~ 1 - 2.4/B`` — the
    requestor-aborts optimum is less likely to abort.
    """
    rows = []
    for B in B_values:
        rw = ratios.abort_probability_rw(B)
        ra = ratios.abort_probability_ra(B)
        rows.append(
            {
                "B": B,
                "P_abort_RW": rw,
                "paper_RW": 1.0 - 1.8 / B,
                "P_abort_RA": ra,
                "paper_RA": 1.0 - 2.4 / B,
                "RA_less_likely": ra < rw,
            }
        )
    return rows
