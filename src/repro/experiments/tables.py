"""Analysis "tables": competitive ratios and abort probabilities.

The paper reports its optimality results as theorems rather than a
numbered table; ``tab_ratios`` regenerates the implied table — for each
theorem, the closed-form ratio next to an implementation-independent
numeric evaluation (grid-search adversary against quadrature expected
costs) — and ``tab_abort_prob`` reproduces the Section 5.3
abort-probability comparison.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.model import ConflictKind, ConflictModel
from repro.core.requestor_aborts import DiscreteSkiRentalRA
from repro.core.verify import competitive_ratio

__all__ = ["run_tab_ratios", "run_tab_abort_prob"]


def run_tab_ratios(
    *,
    B_values: tuple[float, ...] = (50.0, 200.0, 2000.0),
    k_values: tuple[int, ...] = (2, 3, 4, 8),
    grid: int = 2048,
) -> list[dict[str, object]]:
    """Theorem-by-theorem ratio verification grid.

    Both columns are evaluated over the whole ``(B, k)`` grid with one
    :mod:`repro.core.kernels` batch call per theorem family — closed
    forms via the vectorized ratio kernels, numerics via the batched
    grid-search adversary — instead of one scalar policy evaluation per
    cell.  Only the day-indexed discrete ski-rental entry (a pmf, not a
    density family) keeps its per-cell path.
    """
    RW, RA = ConflictKind.REQUESTOR_WINS, ConflictKind.REQUESTOR_ABORTS
    Bs = np.asarray([B for B in B_values for _ in k_values], dtype=float)
    ks = np.asarray([k for _ in B_values for k in k_values])
    mu_rw = 0.5 * Bs * kernels.rw_mean_regime_threshold(ks)
    mu_ra = 0.5 * Bs * kernels.ra_mean_regime_threshold(ks)

    num_det_rw, _ = kernels.competitive_ratio_grid(RW, "det", Bs, ks, grid=grid)
    num_uniform, _ = kernels.competitive_ratio_grid(
        RW, "uniform_rw", Bs, ks, grid=grid
    )
    num_exp, _ = kernels.competitive_ratio_grid(RA, "exp_ra", Bs, ks, grid=grid)
    num_det_ra, _ = kernels.competitive_ratio_grid(RA, "det", Bs, ks, grid=grid)
    num_chain = kernels.constrained_competitive_ratio_grid(
        RA, "chain_ra", Bs, ks, mu_ra, grid=grid
    )
    two = ks == 2
    num_log = np.full(len(Bs), np.nan)
    num_poly = np.full(len(Bs), np.nan)
    num_poly_mu = np.full(len(Bs), np.nan)
    if two.any():
        num_log[two] = kernels.constrained_competitive_ratio_grid(
            RW, "log_rw", Bs[two], ks[two], mu_rw[two], grid=grid
        )
    if (~two).any():
        num_poly[~two], _ = kernels.competitive_ratio_grid(
            RW, "poly_rw", Bs[~two], ks[~two], grid=grid
        )
        num_poly_mu[~two] = kernels.constrained_competitive_ratio_grid(
            RW, "poly_rw_mu", Bs[~two], ks[~two], mu_rw[~two], grid=grid
        )

    cf_det_rw = kernels.det_rw_ratio(ks)
    cf_uniform = kernels.rand_rw_uniform_ratio(ks)
    cf_exp = kernels.rand_ra_ratio(ks)
    cf_det_ra = kernels.det_ra_ratio(ks)
    cf_rw_mu = kernels.constrained_rw_ratio(Bs, mu_rw, ks)
    cf_poly = kernels.rand_rw_optimal_ratio(ks)
    cf_chain = kernels.constrained_ra_ratio(Bs, mu_ra, ks)

    rows: list[dict[str, object]] = []

    def emit(i, theorem, label, mu, closed, numeric) -> None:
        closed, numeric = float(closed), float(numeric)
        rows.append(
            {
                "theorem": theorem,
                "policy": label,
                "B": float(Bs[i]),
                "k": int(ks[i]),
                "mu": mu if mu is not None else "",
                "closed_form": closed,
                "numeric": numeric,
                "rel_err": abs(numeric - closed) / closed,
            }
        )

    for i in range(len(Bs)):
        emit(i, "Thm4", "DET(RW)", None, cf_det_rw[i], num_det_rw[i])
        emit(i, "Thm5", "RRW uniform", None, cf_uniform[i], num_uniform[i])
        emit(i, "Thm1/3", "RRA exp", None, cf_exp[i], num_exp[i])
        emit(i, "-", "DET(RA)", None, cf_det_ra[i], num_det_ra[i])
        if ks[i] == 2:
            emit(i, "Thm5", "RRW(mu)", float(mu_rw[i]), cf_rw_mu[i], num_log[i])
            ski = DiscreteSkiRentalRA(int(Bs[i]))
            ra_model = ConflictModel(RA, float(Bs[i]), 2)
            emit(
                i,
                "Thm1",
                "ski discrete",
                None,
                kernels.ski_discrete_ratio(int(Bs[i])),
                competitive_ratio(ski, ra_model, grid=grid).ratio,
            )
        else:
            emit(i, "Thm6", "RRW poly", None, cf_poly[i], num_poly[i])
            emit(
                i, "Thm6*", "RRW(mu) poly", float(mu_rw[i]),
                cf_rw_mu[i], num_poly_mu[i],
            )
        emit(i, "Thm2/3", "RRA(mu)", float(mu_ra[i]), cf_chain[i], num_chain[i])
    return rows


def run_tab_abort_prob(
    *, B_values: tuple[float, ...] = (50.0, 200.0, 2000.0)
) -> list[dict[str, object]]:
    """Section 5.3: P(abort) at the adversary's best response ``y = B``.

    Paper approximations: RW ``~ 1 - 1.8/B``, RA ``~ 1 - 2.4/B`` — the
    requestor-aborts optimum is less likely to abort.
    """
    Bs = np.asarray(B_values, dtype=float)
    rw = kernels.abort_probability_rw(Bs)
    ra = kernels.abort_probability_ra(Bs)
    return [
        {
            "B": float(Bs[i]),
            "P_abort_RW": float(rw[i]),
            "paper_RW": 1.0 - 1.8 / float(Bs[i]),
            "P_abort_RA": float(ra[i]),
            "paper_RA": 1.0 - 2.4 / float(Bs[i]),
            "RA_less_likely": bool(ra[i] < rw[i]),
        }
        for i in range(len(Bs))
    ]
