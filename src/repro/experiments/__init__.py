"""Experiment runners: one per table and figure in the paper.

Use :func:`repro.experiments.registry.run_experiment` (re-exported at
the package root) or the CLI (``python -m repro``).
"""

from __future__ import annotations

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentResult,
    register_experiment,
    run_experiment,
)
from repro.experiments.report import (
    render_failures,
    render_result,
    render_series,
    render_table,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "register_experiment",
    "run_experiment",
    "render_failures",
    "render_result",
    "render_table",
    "render_series",
]
