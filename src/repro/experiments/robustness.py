"""Robustness benches: how the paper's policies behave off the happy path.

Two experiments exercise the :mod:`repro.faults` layer:

* ``robustness`` — the HTM machine under an escalating fault plan
  (spurious aborts, link jitter, core stalls, capacity pressure).  The
  claim: the delay policies degrade *gracefully* — throughput retained
  relative to a clean run of the same policy falls smoothly with the
  fault rate, with no cliff, and the workload still verifies (the
  protocol-level guarantee the fuzz tests pin down).
* ``robustness_est`` — the analytic side: the constrained policies'
  competitive-ratio guarantee is only as good as the profiler's B/k/µ
  estimates.  Log-normal noise on the estimates (via
  :class:`repro.core.estimators.NoisyEstimator`) quantifies how quickly
  the achieved ratio drifts from the promised one.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimators import NoisyEstimator
from repro.core.model import ConflictKind, ConflictModel
from repro.core.requestor_wins import MeanConstrainedRW, UniformRW
from repro.core.verify import competitive_ratio, constrained_competitive_ratio
from repro.faults.plan import FaultPlan
from repro.htm import Machine, MachineParams, policy_from_name
from repro.rngutil import stream_for
from repro.workloads import QueueWorkload

__all__ = ["run_robustness", "run_robustness_est", "plan_for_rate"]


def plan_for_rate(rate: float) -> FaultPlan:
    """Escalating composite plan keyed by the spurious-abort rate.

    ``rate == 0`` is the genuinely-null plan (clean baseline; byte-
    identical to no fault layer at all).  A positive rate also switches
    on proportionate ambient faults — link jitter, core stalls, and
    occasional capacity pressure — so the sweep stresses every injector,
    not just the abort path.
    """
    if rate == 0.0:
        return FaultPlan()
    return FaultPlan(
        spurious_abort_rate=rate,
        link_jitter_rate=min(0.5, 100.0 * rate),
        link_jitter_cycles=16,
        stall_rate=min(0.25, 25.0 * rate),
        stall_cycles=200,
        capacity_shrink_prob=min(0.5, 50.0 * rate),
        capacity_ways_lost=2,
    )


def run_robustness(
    *,
    policies: tuple[str, ...] = ("NO_DELAY", "DELAY_DET", "DELAY_RAND"),
    spurious_rates: tuple[float, ...] = (0.0, 1e-4, 5e-4, 2e-3),
    n_cores: int = 8,
    horizon: float = 150_000.0,
    seed: int | None = None,
) -> list[dict[str, object]]:
    """Queue throughput per policy as the injected fault rate climbs.

    ``retained`` is ops relative to the same policy's clean (rate 0)
    run; graceful degradation means it falls smoothly and the ordering
    among policies is preserved.  Every run is verified — faults must
    never corrupt the data structure, only slow it down.
    """
    if 0.0 not in spurious_rates:
        spurious_rates = (0.0,) + tuple(spurious_rates)
    rows: list[dict[str, object]] = []
    clean_ops: dict[str, int] = {}
    for name in policies:
        for rate in spurious_rates:
            params = MachineParams(n_cores=n_cores)
            plan = plan_for_rate(rate)
            workload = QueueWorkload()
            machine = Machine(
                params,
                lambda i, _n=name, _p=params: policy_from_name(_n, _p),
                faults=plan,
            )
            machine.load(workload, seed=(seed or 0) + n_cores)
            stats = machine.run(horizon)
            workload.verify(machine)
            if rate == 0.0:
                clean_ops[name] = stats.ops_completed
            base = clean_ops.get(name) or 1
            rows.append(
                {
                    "policy": name,
                    "fault_rate": rate,
                    "ops": stats.ops_completed,
                    "retained": round(stats.ops_completed / base, 3),
                    "abort_rate": round(stats.abort_rate, 3),
                    "spurious": stats.fault_counts().get("spurious_aborts", 0),
                    "faults": sum(stats.fault_counts().values()),
                }
            )
    return rows


def run_robustness_est(
    *,
    B: float = 2000.0,
    mu_true: float = 250.0,
    sigmas: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0),
    draws: int = 24,
    seed: int | None = None,
) -> list[dict[str, object]]:
    """Achieved vs promised competitive ratio under noisy B/k/µ.

    Each draw perturbs the estimates with i.i.d. log-normal noise of
    width ``sigma`` (one :class:`NoisyEstimator` per draw) and builds
    the policies from the *noisy* values; the guarantee is then graded
    against adversaries parameterized by the *true* values — exactly the
    gap a biased or jittery profiler opens in practice.

    ``sigma == 0`` must reproduce the exact-estimate baseline (one draw
    suffices; the estimator consumes no randomness).
    """
    k_true = 2
    model = ConflictModel(ConflictKind.REQUESTOR_WINS, B, k_true)
    rows: list[dict[str, object]] = []
    for sigma in sigmas:
        est = NoisyEstimator(sigma_b=sigma, sigma_k=sigma, sigma_mu=sigma)
        n = 1 if est.exact else draws
        uncon: list[float] = []
        con: list[float] = []
        degraded = 0
        for d in range(n):
            rng = stream_for(seed, "robustness_est", f"s{sigma}", f"d{d}")
            B_hat = float(est.mu_hat(B, rng))  # same multiplicative noise
            k_hat = est.k_hat(k_true, rng)
            mu_hat = est.mu_hat(mu_true, rng)
            uncon.append(
                competitive_ratio(UniformRW(B_hat, k_hat), model).ratio
            )
            if MeanConstrainedRW.regime_holds(B_hat, mu_hat):
                policy: object = MeanConstrainedRW(B_hat, mu_hat)
            else:
                policy = UniformRW(B_hat, k_true)
                degraded += 1
            con.append(
                constrained_competitive_ratio(policy, model, mu_true).ratio
            )
        uncon_a = np.asarray(uncon)
        con_a = np.asarray(con)
        rows.append(
            {
                "sigma": sigma,
                "draws": n,
                "RRW_mean": round(float(uncon_a.mean()), 3),
                "RRW_worst": round(float(uncon_a.max()), 3),
                "RRW_mu_mean": round(float(con_a.mean()), 3),
                "RRW_mu_worst": round(float(con_a.max()), 3),
                "regime_lost": degraded,
            }
        )
    return rows
