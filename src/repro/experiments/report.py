"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's tables
and figures report; there is no plotting dependency, so "figures" are
rendered as aligned series tables plus a coarse ASCII bar where that
helps eyeball the shape.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.registry import ExperimentResult

__all__ = [
    "render_table",
    "render_series",
    "render_result",
    "render_failures",
    "ascii_bars",
]


def _fmt(value: object, ndigits: int = 4) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.{ndigits}g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]], *, title: str = ""
) -> str:
    """Align a list of dict rows into a fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    out: list[str] = []
    if title:
        out.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    out.append(header)
    out.append("  ".join("-" * w for w in widths))
    for line in cells:
        out.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(out)


def ascii_bars(
    labels: Sequence[str], values: Sequence[float], *, width: int = 40
) -> str:
    """Horizontal bar sketch (normalized to the max value)."""
    if not labels or len(labels) != len(values):
        return ""
    peak = max(values) if max(values) > 0 else 1.0
    label_w = max(len(lbl) for lbl in labels)
    lines = []
    for lbl, val in zip(labels, values):
        bar = "#" * max(1, int(round(width * val / peak))) if val > 0 else ""
        lines.append(f"{lbl.ljust(label_w)} |{bar} {_fmt(float(val))}")
    return "\n".join(lines)


def render_series(
    x_name: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
) -> str:
    """Render figure-style data: one x column, one column per series."""
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, object] = {x_name: x}
        for name, ys in series.items():
            row[name] = ys[i]
        rows.append(row)
    return render_table(rows, title=title)


def render_failures(failures: Sequence[Mapping[str, object]]) -> str:
    """Per-experiment failure summary (the CLI's ``--keep-going``
    epilogue).  Each entry carries ``exp_id``, ``error_type``, and
    ``error``; the summary is also what lands in the checkpoint file."""
    if not failures:
        return "all experiments completed"
    lines = [f"{len(failures)} experiment(s) FAILED:"]
    for failure in failures:
        lines.append(
            f"  {str(failure['exp_id']):16s} "
            f"{failure['error_type']}: {failure['error']}"
        )
    return "\n".join(lines)


def render_result(result: "ExperimentResult") -> str:
    """Full text report for one experiment."""
    parts = [f"== {result.exp_id}: {result.title} =="]
    if result.params:
        parts.append(
            "params: "
            + ", ".join(f"{k}={_fmt(v)}" for k, v in result.params.items())
        )
    parts.append(render_table(result.rows))
    if result.notes:
        parts.append("notes: " + result.notes)
    return "\n".join(parts)
