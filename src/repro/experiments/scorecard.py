"""The reproduction scorecard: every paper claim, checked in one run.

``python -m repro scorecard --quick`` regenerates each artifact at CI
scale and grades its *headline claim* (the qualitative statement
EXPERIMENTS.md tracks), producing a single pass/fail table — the
"does this reproduction still reproduce?" smoke check.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import ReproError

__all__ = ["run_scorecard"]


def _grade_fig2a(rows) -> tuple[bool, str]:
    by = {(r["distribution"], r["policy"]): r["vs_OPT"] for r in rows}
    ok = all(
        by[(d, "RRW(mu)")] <= by[(d, "RRW")] + 0.02
        and by[(d, "RRA(mu)")] <= by[(d, "RRA")] + 0.02
        for d in ("uniform", "exponential")
    )
    return ok, "constrained policies beat unconstrained at B >> mu"


def _grade_fig2b(rows) -> tuple[bool, str]:
    by = {(r["distribution"], r["policy"]): r["mean_cost"] for r in rows}
    ok = all(
        by[(d, "RRA")] < by[(d, "RRW")] for d in ("uniform", "exponential")
    )
    return ok, "RA beats RW at B < mu"


def _grade_fig2c(rows) -> tuple[bool, str]:
    det = next(r["vs_OPT"] for r in rows if r["policy"] == "DET")
    rrw = next(r["vs_OPT"] for r in rows if r["policy"] == "RRW")
    return (
        abs(det - 3.0) < 0.05 and abs(rrw - 2.0) < 0.1,
        "DET forced to 3x OPT; RRW holds 2x",
    )


def _grade_fig3_common(rows, *, tuned_wins: bool) -> tuple[bool, str]:
    at8 = {r["policy"]: r["ops_per_sec"] for r in rows if r["threads"] == 8}
    best_delay = max(at8["DELAY_TUNED"], at8["DELAY_RAND"], at8["DELAY_DET"])
    ok = best_delay >= at8["NO_DELAY"] * 0.95
    return ok, "delay policies >= NO_DELAY under contention"


def _grade_tab_ratios(rows) -> tuple[bool, str]:
    worst = max(r["rel_err"] for r in rows)
    return worst < 5e-3, f"worst closed-vs-numeric rel err {worst:.1e}"


def _grade_tab_abort(rows) -> tuple[bool, str]:
    return all(r["RA_less_likely"] for r in rows), "RA less likely to abort"


def _grade_cor1(rows) -> tuple[bool, str]:
    return all(r["within"] for r in rows), "global ratio within (2w+1)/(w+1)"


def _grade_cor2(rows) -> tuple[bool, str]:
    return all(r["holds_half"] for r in rows), "commit within bound w.p. >= 1/2"


def _grade_hybrid(rows) -> tuple[bool, str]:
    picks = {r["k"]: r["hybrid_picks"] for r in rows}
    ok = picks.get(2) == "requestor_aborts" and all(
        v == "requestor_wins" for k, v in picks.items() if k >= 3
    )
    return ok, "RA at k=2, RW for chains (Implications)"


def _grade_robustness(rows) -> tuple[bool, str]:
    faulty = [r for r in rows if r["fault_rate"] > 0]
    ok = bool(faulty) and all(
        r["faults"] > 0 and r["retained"] >= 0.4 for r in faulty
    )
    return ok, "throughput degrades gracefully under injected faults"


def _grade_ablate(rows) -> tuple[bool, str]:
    """The importance ranking is well-formed and the grace-period rule
    dominates estimator choice (the paper's central lever)."""
    ranks = [r["rank"] for r in rows]
    importances = [r["importance"] for r in rows]
    well_formed = (
        ranks == list(range(1, len(rows) + 1))
        and all(math.isfinite(i) and i >= 0 for i in importances)
        and all(a >= b for a, b in zip(importances, importances[1:]))
    )
    by_flip = {r["flip"]: r["rank"] for r in rows}
    grace = by_flip.get("grace=off")
    estimators = [v for k, v in by_flip.items() if k.startswith("estimator=")]
    ok = (
        well_formed
        and grace is not None
        and bool(estimators)
        and all(grace < e for e in estimators)
    )
    return ok, "grace-period rule outranks estimator choice in ablation"


#: claim graders per experiment id (quick-mode rows in, verdict out).
_GRADERS: dict[str, Callable] = {
    "fig2a": _grade_fig2a,
    "fig2b": _grade_fig2b,
    "fig2c": _grade_fig2c,
    "fig3_stack": lambda rows: _grade_fig3_common(rows, tuned_wins=True),
    "fig3_queue": lambda rows: _grade_fig3_common(rows, tuned_wins=True),
    "fig3_txapp": lambda rows: _grade_fig3_common(rows, tuned_wins=False),
    "tab_ratios": _grade_tab_ratios,
    "tab_abort_prob": _grade_tab_abort,
    "cor1": _grade_cor1,
    "cor2": _grade_cor2,
    "abl_hybrid": _grade_hybrid,
    "robustness": _grade_robustness,
    "ablate_rank": _grade_ablate,
}


def run_scorecard(
    *, quick: bool = True, seed: int | None = None, cache=None
) -> list[dict[str, object]]:
    """Run every graded artifact and report pass/fail per claim.

    ``cache`` (a :class:`repro.parallel.ResultCache`) lets the grading
    pass reuse sub-experiment rows a previous run — typically the same
    ``python -m repro all`` batch — already computed, instead of
    regenerating every artifact; rows survive the cache's JSON
    round-trip bit-exactly, so grades are identical either way.
    """
    from repro.experiments.registry import run_experiment

    rows: list[dict[str, object]] = []
    for exp_id, grader in _GRADERS.items():
        try:
            result = run_experiment(exp_id, quick=quick, seed=seed, cache=cache)
            passed, claim = grader(result.rows)
            rows.append(
                {
                    "artifact": exp_id,
                    "claim": claim,
                    "reproduced": passed,
                }
            )
        except ReproError as exc:  # pragma: no cover - failed artifacts
            # ReproError (not just ExperimentError): a graded artifact
            # that dies with a simulation/timeout/fault error should
            # show up as a failed claim, not abort the whole scorecard
            rows.append(
                {"artifact": exp_id, "claim": repr(exc), "reproduced": False}
            )
    rows.append(
        {
            "artifact": "TOTAL",
            "claim": f"{sum(bool(r['reproduced']) for r in rows)}/{len(rows)} "
            f"claims reproduced",
            "reproduced": all(bool(r["reproduced"]) for r in rows),
        }
    )
    return rows
