"""Figure 2 — synthetic average-cost experiments (Section 8.1).

* ``fig2a``: high fixed cost, B = 2000, µ = 500.
* ``fig2b``: low fixed cost, B = 200, µ = 500.
* ``fig2c``: the worst-case distribution for the deterministic policy.

Each produces one row per (distribution, policy) with the mean conflict
cost, and normalized-to-OPT columns matching how the published bars are
read.
"""

from __future__ import annotations

from repro.core import kernels
from repro.distributions import (
    ExponentialLengths,
    GeometricLengths,
    NormalLengths,
    PoissonLengths,
    UniformLengths,
    WorstCaseForDeterministic,
)
from repro.rngutil import seedseq_for, stream_for
from repro.synthetic import SyntheticHarness

__all__ = ["run_fig2a", "run_fig2b", "run_fig2c", "FIG2_DISTRIBUTIONS"]

#: The five Section 8.1 length distributions, in the paper's order.
FIG2_DISTRIBUTIONS = ("geometric", "normal", "uniform", "exponential", "poisson")


def _distributions(mu: float):
    return [
        GeometricLengths(mu),
        NormalLengths(mu),
        UniformLengths(mu),
        ExponentialLengths(mu),
        PoissonLengths(mu),
    ]


def _theory_bounds(B: float, mu: float, k: int = 2) -> dict[str, float]:
    """Worst-case competitive-ratio guarantee per Figure 2 policy label.

    Evaluated once per grid (kernel calls, not per-row scalar math) —
    the closed-form bound each bar must stay under; MC ``vs_OPT``
    values are per-distribution averages, so they sit at or below
    these against the theorems' adversary.
    """
    return {
        "RRW(mu)": float(kernels.rw_best_ratio(B, mu, k)),
        "RRA(mu)": float(kernels.ra_best_ratio(B, mu, k)),
        "RRW": float(kernels.rand_rw_optimal_ratio(k)),
        "RRA": float(kernels.rand_ra_ratio(k)),
        "DET": float(kernels.det_rw_ratio(k)),
        "OPT": 1.0,
    }


def _run_cost_grid(
    exp_id: str,
    B: float,
    mu: float,
    trials: int,
    seed: int | None,
    n_shards: int = 1,
    pool=None,
) -> list[dict[str, object]]:
    """Monte-Carlo grid over the five distributions.

    ``n_shards`` fixes the trial-shard count (part of the result's
    identity: rows are bit-identical for a fixed ``(seed, n_shards)``
    and invariant to ``pool`` / ``--jobs``); ``pool`` only decides
    where the shards execute.  ``n_shards == 1`` reproduces the
    historical single-stream draws exactly.
    """
    harness = SyntheticHarness(B, mu)
    bounds = _theory_bounds(B, mu)
    rows: list[dict[str, object]] = []
    for dist in _distributions(mu):
        result = harness.run(
            dist,
            trials,
            (
                stream_for(seed, exp_id, dist.name)
                if n_shards == 1
                else seedseq_for(seed, exp_id, dist.name)
            ),
            n_shards=n_shards,
            pool=pool,
        )
        opt = result.mean_cost("OPT")
        for label, acc in result.stats.items():
            rows.append(
                {
                    "distribution": dist.name,
                    "policy": label,
                    "mean_cost": acc.mean,
                    "sem": acc.sem,
                    "vs_OPT": acc.mean / opt,
                    "theory_bound": round(bounds[label], 4),
                }
            )
    return rows


def run_fig2a(
    trials: int = 200_000,
    seed: int | None = None,
    n_shards: int = 1,
    pool=None,
):
    """Average cost, high fixed cost (B = 2000, µ = 500)."""
    return _run_cost_grid("fig2a", 2000.0, 500.0, trials, seed, n_shards, pool)


def run_fig2b(
    trials: int = 200_000,
    seed: int | None = None,
    n_shards: int = 1,
    pool=None,
):
    """Average cost, low fixed cost (B = 200, µ = 500)."""
    return _run_cost_grid("fig2b", 200.0, 500.0, trials, seed, n_shards, pool)


def run_fig2c(
    trials: int = 200_000,
    seed: int | None = None,
    B: float = 500.0,
    n_shards: int = 1,
    pool=None,
):
    """Average cost when the adversary plays DET's worst case.

    The remaining time is drawn directly (the adversary chooses ``D``,
    per Theorem 4's lower-bound argument) concentrated just past DET's
    abort point ``B/(k-1)``, so DET pays ``kx + B ~ 3B`` where OPT pays
    ``B``.
    """
    dist = WorstCaseForDeterministic(B, k=2)
    harness = SyntheticHarness(B, dist.mean, interrupt="direct")
    result = harness.run(
        dist,
        trials,
        (
            stream_for(seed, "fig2c")
            if n_shards == 1
            else seedseq_for(seed, "fig2c")
        ),
        n_shards=n_shards,
        pool=pool,
    )
    opt = result.mean_cost("OPT")
    bounds = _theory_bounds(B, dist.mean)
    return [
        {
            "distribution": "det-worst",
            "policy": label,
            "mean_cost": acc.mean,
            "sem": acc.sem,
            "vs_OPT": acc.mean / opt,
            "theory_bound": round(bounds[label], 4),
        }
        for label, acc in result.stats.items()
    ]
