"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "RegimeError",
    "SimulationError",
    "ProtocolError",
    "WorkloadError",
    "ExperimentError",
    "FaultInjectionError",
    "ExperimentTimeoutError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidParameterError(ReproError, ValueError):
    """A model, policy, or simulation parameter is out of its valid domain.

    Examples: non-positive abort cost ``B``, chain size ``k < 2``, a
    negative mean, or a delay outside the policy support.
    """


class RegimeError(ReproError, ValueError):
    """A closed-form policy was requested outside its validity regime.

    The mean-constrained policies of Theorems 2, 3, 5 and 6 are optimal
    only when ``mu / B`` lies below a regime threshold.  The factory
    functions switch regimes automatically; constructing a constrained
    policy *directly* outside its regime raises this error.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class ProtocolError(SimulationError):
    """The cache-coherence / HTM protocol state machine was violated.

    Raised by the directory and cache controllers on illegal transitions,
    e.g. two modified copies of the same line, a sharer missing from the
    directory's sharer set, or a commit of an aborted transaction.
    """


class WorkloadError(ReproError, RuntimeError):
    """A workload produced an inconsistent logical state.

    Raised e.g. when a pop observes a value that was never pushed, which
    would indicate a broken atomicity guarantee in the simulated HTM.
    """


class ExperimentError(ReproError, RuntimeError):
    """An experiment runner was misconfigured or failed to produce data."""


class FaultInjectionError(ReproError, ValueError):
    """A fault-injection plan is invalid.

    Examples: a probability outside ``[0, 1]``, a negative hazard rate
    or stall length, or shrinking away more cache ways than exist.
    """


class ExperimentTimeoutError(ExperimentError):
    """An experiment exceeded its wall-clock budget and was killed.

    Raised by the runner's watchdog (``run_experiment(timeout=...)``)
    and by the simulation kernel's deadline hook.  Deliberately *not*
    retried by the runner: a timeout is a budget decision, not a
    transient fault.
    """
