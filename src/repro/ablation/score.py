"""Importance scoring: what breaks when one component is flipped.

For each flip, every metric is compared against the baseline over the
**paired** ``(workload, rep)`` grid (the runner seeds machine and
adversary streams from the pair coordinates only, so each pair shares
its random numbers with the baseline's).  Per pair the delta is
normalized by the metric's mode:

* ``relative`` (scale metrics: throughput, ratio-vs-OPT, attempts) —
  ``(flip - base) / |base|``
* ``absolute`` (rates already in [0, 1]: abort rate, fallback share) —
  ``flip - base``

A flip's **importance** is the mean of the absolute normalized deltas
across metrics — how much the system moves, in any direction, when the
component is removed or substituted.  Each per-metric delta carries a
seeded-bootstrap 95% confidence interval (resampling pairs), so the
report distinguishes real movement from replicate noise.  Ranking sorts
by descending importance with the flip label as the deterministic
tie-break.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ablation import axes
from repro.errors import InvalidParameterError
from repro.rngutil import stream_for

__all__ = ["MetricSpec", "METRICS", "FlipScore", "score_matrix", "rank_scores"]

#: Bootstrap resamples for the per-metric confidence intervals.
N_BOOT = 200

#: Guard denominator for relative deltas.
_EPS = 1e-12


@dataclass(frozen=True)
class MetricSpec:
    """One scored metric: its delta normalization and good direction."""

    name: str
    mode: str  # "relative" | "absolute"
    better: str  # "higher" | "lower"


#: The scored metric set, in report order (docs/ABLATION.md defines each).
METRICS: tuple[MetricSpec, ...] = (
    MetricSpec("ops_per_sec", "relative", "higher"),
    MetricSpec("abort_rate", "absolute", "lower"),
    MetricSpec("ratio_vs_opt", "relative", "lower"),
    MetricSpec("attempts_p90", "relative", "lower"),
    MetricSpec("fallback_share", "absolute", "lower"),
)


@dataclass(frozen=True)
class FlipScore:
    """One flip's scored comparison against the baseline."""

    flip: str
    axis: str
    value: str
    importance: float
    n_pairs: int
    #: metric name -> {baseline_mean, flipped_mean, delta, ci_lo, ci_hi}
    metrics: dict[str, dict[str, float]]


def _pairs(rows):
    """Index rows by flip -> (workload, rep) -> row."""
    table: dict[str, dict[tuple[str, int], dict]] = {}
    for row in rows:
        table.setdefault(str(row["flip"]), {})[
            (str(row["workload"]), int(row["rep"]))
        ] = row
    return table


def _norm_deltas(spec: MetricSpec, base_rows, flip_rows, keys) -> np.ndarray:
    out = np.empty(len(keys))
    for i, key in enumerate(keys):
        b = float(base_rows[key][spec.name])
        f = float(flip_rows[key][spec.name])
        d = f - b
        if spec.mode == "relative":
            d = d / max(abs(b), _EPS)
        out[i] = d
    return out


def _bootstrap_ci(deltas: np.ndarray, rng) -> tuple[float, float]:
    n = deltas.size
    idx = rng.integers(0, n, size=(N_BOOT, n))
    means = deltas[idx].mean(axis=1)
    lo, hi = np.percentile(means, [2.5, 97.5])
    return float(lo), float(hi)


def score_matrix(
    rows, *, seed: int | None = None
) -> list[FlipScore]:
    """Score every non-baseline flip in ``rows`` against the baseline.

    Rows are the runner's replicate rows (any subset of the matrix);
    flips keep their first-appearance order.  A matrix with no baseline
    rows cannot be scored; a baseline-only (or empty) matrix scores to
    an empty list.
    """
    table = _pairs(rows)
    if not table:
        return []
    base = table.get(axes.BASELINE_LABEL)
    if base is None:
        raise InvalidParameterError(
            "ablation matrix has no baseline rows; importance is "
            "defined as movement relative to the baseline"
        )
    scores: list[FlipScore] = []
    for flip, flip_rows in table.items():
        if flip == axes.BASELINE_LABEL:
            continue
        keys = sorted(set(base) & set(flip_rows))
        if not keys:
            raise InvalidParameterError(
                f"flip {flip!r} shares no (workload, rep) pairs with "
                f"the baseline; run both over the same grid"
            )
        metrics: dict[str, dict[str, float]] = {}
        norm_means: list[float] = []
        for spec in METRICS:
            deltas = _norm_deltas(spec, base, flip_rows, keys)
            point = float(deltas.mean())
            rng = stream_for(seed, "ablate", "boot", flip, spec.name)
            ci_lo, ci_hi = _bootstrap_ci(deltas, rng)
            metrics[spec.name] = {
                "baseline_mean": float(
                    np.mean([float(base[k][spec.name]) for k in keys])
                ),
                "flipped_mean": float(
                    np.mean([float(flip_rows[k][spec.name]) for k in keys])
                ),
                "delta": point,
                "ci_lo": ci_lo,
                "ci_hi": ci_hi,
            }
            norm_means.append(abs(point))
        axis = str(next(iter(flip_rows.values()))["axis"])
        value = str(next(iter(flip_rows.values()))["value"])
        scores.append(
            FlipScore(
                flip=flip,
                axis=axis,
                value=value,
                importance=float(np.mean(norm_means)),
                n_pairs=len(keys),
                metrics=metrics,
            )
        )
    return scores


def rank_scores(scores: list[FlipScore]) -> list[FlipScore]:
    """Descending importance; ties break on the flip label (stable and
    deterministic, so equal-importance flips always rank alphabetically)."""
    return sorted(scores, key=lambda s: (-s.importance, s.flip))
