"""``python -m repro ablate`` — run the ablation matrix and report.

Generates the baseline-plus-one-flip cell set over the chosen workload
set, executes it through the experiment registry (each cell is the
experiment ``ablate/<flip>/<workload>``) — in parallel via
:class:`repro.parallel.ParallelExecutor` when ``--jobs > 1`` — with the
content-addressed ``.repro-cache/`` short-circuiting unchanged cells,
then scores flip importance and writes three artifacts into ``--out``:

* ``BENCH_ablate.json`` — schema-validated (``benchmarks/schema.py``,
  kind ``"ablate"``)
* ``BENCH_ablate.csv`` — the raw replicate rows
* ``BENCH_ablate.md`` — the importance-ranking report

Same seed ⇒ byte-identical artifacts at any ``--jobs``, and a
warm-cache rerun reproduces them while hitting cache for every
unchanged cell (the CI ``ablate`` job diffs exactly this).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.ablation import axes
from repro.ablation.cells import DEFAULT_WORKLOADS, WORKLOADS, cell_id
from repro.ablation.report import build_payload, render_csv, render_markdown
from repro.ablation.score import rank_scores, score_matrix
from repro.errors import ReproError

__all__ = ["ablate_main", "build_ablate_parser"]

DEFAULT_CACHE_DIR = ".repro-cache"


def _bench_schema():
    """Import ``benchmarks.schema`` (repo-root package) from anywhere."""
    try:
        from benchmarks import schema
        return schema
    except ImportError:
        root = pathlib.Path(__file__).resolve().parents[3]
        if (root / "benchmarks" / "schema.py").exists():
            sys.path.insert(0, str(root))
            from benchmarks import schema
            return schema
        return None


def build_ablate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro ablate",
        description="Strategy-ablation matrix with importance ranking "
        "(docs/ABLATION.md)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-scale cells (small horizons and trial counts)",
    )
    parser.add_argument("--seed", type=int, default=None, help="root seed")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for cell fan-out (rows are identical at "
        "any value)",
    )
    parser.add_argument(
        "--workloads", default=",".join(DEFAULT_WORKLOADS),
        help=f"comma-separated workload set "
        f"(known: {', '.join(sorted(WORKLOADS))})",
    )
    parser.add_argument(
        "--flips", default=None,
        help="comma-separated flip subset (default: the full matrix); "
        "'baseline' is always added",
    )
    parser.add_argument(
        "--replicates", type=int, default=None,
        help="override replicates per cell",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("."),
        help="directory for BENCH_ablate.{json,csv,md}",
    )
    parser.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="disable the content-addressed result cache",
    )
    parser.add_argument(
        "--cache-dir", type=pathlib.Path, default=None,
        help=f"cache directory (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds",
    )
    return parser


def _resolve_flips(arg: str | None) -> list[str]:
    if arg is None:
        return axes.flip_labels()
    labels = [f.strip() for f in arg.split(",") if f.strip()]
    for label in labels:
        axes.config_from_flip(label)  # validates; raises on bad labels
    if axes.BASELINE_LABEL not in labels:
        labels.insert(0, axes.BASELINE_LABEL)
    return labels


def _run_cells(args, ids, overrides, cache_dir):
    """Execute cells; return (rows_by_id, cache_hits) or raise."""
    from repro.experiments.registry import run_experiment

    if args.jobs > 1 and len(ids) > 1:
        from repro.parallel.executor import ParallelExecutor

        executor = ParallelExecutor(
            args.jobs,
            quick=args.quick,
            seed=args.seed,
            timeout=args.timeout,
            cache_dir=None if cache_dir is None else str(cache_dir),
            overrides=overrides,
        )
        outcomes = executor.run(list(ids))
        failed = [o for o in outcomes if o.status != "ok"]
        if failed:
            for o in failed:
                print(
                    f"[{o.exp_id} {o.status}: {o.error_type}: {o.error}]",
                    file=sys.stderr,
                )
            raise ReproError(f"{len(failed)} ablation cell(s) failed")
        results = {o.exp_id: o.result for o in outcomes}
    else:
        cache = None
        if cache_dir is not None:
            from repro.parallel import ResultCache

            cache = ResultCache(cache_dir)
        results = {}
        for exp_id in ids:
            results[exp_id] = run_experiment(
                exp_id,
                quick=args.quick,
                seed=args.seed,
                timeout=args.timeout,
                cache=cache,
                **overrides,
            )
    hits = sum(1 for r in results.values() if r.cached)
    return results, hits


def ablate_main(argv: list[str] | None = None) -> int:
    args = build_ablate_parser().parse_args(argv)
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.replicates is not None and args.replicates < 1:
        print(
            f"--replicates must be >= 1, got {args.replicates}",
            file=sys.stderr,
        )
        return 2
    try:
        flips = _resolve_flips(args.flips)
        workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
        unknown = [w for w in workloads if w not in WORKLOADS]
        if unknown:
            raise ReproError(
                f"unknown workload(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(WORKLOADS))}"
            )
        if not workloads:
            raise ReproError("empty workload set")
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    cache_dir = None
    if args.cache:
        cache_dir = args.cache_dir or pathlib.Path(DEFAULT_CACHE_DIR)

    overrides: dict = {}
    if args.replicates is not None:
        overrides["replicates"] = args.replicates

    ids = [cell_id(flip, w) for flip in flips for w in workloads]
    try:
        results, hits = _run_cells(args, ids, overrides, cache_dir)
    except ReproError as exc:
        print(f"ablate failed: {exc}", file=sys.stderr)
        return 1

    rows = [row for exp_id in ids for row in results[exp_id].rows]
    replicates = (
        args.replicates
        if args.replicates is not None
        else max((int(r["rep"]) for r in rows), default=-1) + 1
    )
    scores = score_matrix(rows, seed=args.seed)
    ranked = rank_scores(scores)
    payload = build_payload(
        rows,
        scores,
        workloads=workloads,
        replicates=replicates,
        quick=args.quick,
        seed=args.seed,
    )

    args.out.mkdir(parents=True, exist_ok=True)
    json_path = args.out / "BENCH_ablate.json"
    schema = _bench_schema()
    if schema is not None:
        schema.dump_payload(payload, "ablate", json_path)
    else:  # no repo checkout around the installed package
        json_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(
            "[benchmarks.schema not importable; wrote unvalidated payload]",
            file=sys.stderr,
        )
    csv_path = args.out / "BENCH_ablate.csv"
    csv_path.write_text(render_csv(rows))
    md_path = args.out / "BENCH_ablate.md"
    md_path.write_text(render_markdown(payload))

    for rank, s in enumerate(ranked, start=1):
        print(f"{rank:2d}. {s.flip:16s} importance {s.importance:.4f}")
    print(f"[ablate: cells={len(ids)} cache_hits={hits}]")
    print(f"[reports -> {json_path}, {csv_path}, {md_path}]")
    return 0
