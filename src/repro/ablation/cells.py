"""Matrix cells as experiment ids: ``ablate/<flip>/<workload>``.

Every cell of the ablation matrix is addressable through the experiment
registry (``repro.experiments.registry``), which resolves ``ablate/``
ids dynamically via :func:`spec_args`.  That gives each cell

* a unique task id for :class:`repro.parallel.ParallelExecutor` (the
  supervised pool keys outcomes by experiment id),
* its own content-addressed ``.repro-cache/`` entry
  (``key = canonical config | seed | source fingerprint``), and
* spawn-safety: worker processes rebuild the spec from the id alone, so
  no runtime registration has to cross a process boundary.
"""

from __future__ import annotations

import functools

from repro.ablation import axes
from repro.errors import ExperimentError, InvalidParameterError
from repro.workloads import QueueWorkload, StackWorkload, TxAppWorkload

__all__ = [
    "WORKLOADS",
    "DEFAULT_WORKLOADS",
    "cell_id",
    "parse_cell_id",
    "spec_args",
]

#: Workload table for the matrix: name -> picklable zero-arg factory.
WORKLOADS = {
    "stack": StackWorkload,
    "queue": QueueWorkload,
    "txapp": functools.partial(TxAppWorkload, work_cycles=100),
    "bimodal": functools.partial(TxAppWorkload, work_cycles=100, bimodal=True),
}

#: The workload set `python -m repro ablate` sweeps by default.
DEFAULT_WORKLOADS = ("queue", "txapp")

_PREFIX = "ablate/"


def cell_id(flip: str, workload: str) -> str:
    """The experiment id of one matrix cell."""
    return f"{_PREFIX}{flip}/{workload}"


def parse_cell_id(exp_id: str) -> tuple[str, str]:
    """Split ``ablate/<flip>/<workload>`` and validate both parts.

    Raises :class:`~repro.errors.ExperimentError` on malformed ids so
    the registry reports them like any other unknown experiment.
    """
    if not exp_id.startswith(_PREFIX):
        raise ExperimentError(f"not an ablation cell id: {exp_id!r}")
    rest = exp_id[len(_PREFIX):]
    flip, sep, workload = rest.rpartition("/")
    if not sep or not flip or not workload:
        raise ExperimentError(
            f"malformed ablation cell id {exp_id!r}; expected "
            f"'ablate/<flip>/<workload>'"
        )
    try:
        axes.config_from_flip(flip)
    except InvalidParameterError as exc:
        raise ExperimentError(f"bad flip in {exp_id!r}: {exc}") from exc
    if workload not in WORKLOADS:
        raise ExperimentError(
            f"unknown ablation workload {workload!r} in {exp_id!r}; "
            f"known: {', '.join(sorted(WORKLOADS))}"
        )
    return flip, workload


#: Per-cell scale knobs (the registry merges quick/full + overrides).
_FULL_KWARGS = dict(
    replicates=5,
    horizon=120_000.0,
    n_cores=8,
    arena_conflicts=400,
    attempt_trials=48,
    attempt_cap=128,
)
_QUICK_KWARGS = dict(
    replicates=2,
    horizon=24_000.0,
    n_cores=4,
    arena_conflicts=120,
    attempt_trials=24,
    attempt_cap=64,
)


def spec_args(exp_id: str) -> dict:
    """Constructor kwargs for the registry's ``_Spec`` of one cell.

    Returned as a plain dict (not a ``_Spec``) so this module never
    imports the registry — the registry imports us, lazily, when it
    sees an ``ablate/`` id.
    """
    from repro.ablation.runner import run_ablation_cell

    flip, workload = parse_cell_id(exp_id)
    return dict(
        title=f"Ablation cell: {flip} on {workload}",
        runner=functools.partial(
            run_ablation_cell, flip=flip, workload=workload
        ),
        full_kwargs=dict(_FULL_KWARGS),
        quick_kwargs=dict(_QUICK_KWARGS),
        notes="baseline-plus-one-flip matrix cell (docs/ABLATION.md)",
    )
