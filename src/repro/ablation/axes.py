"""The ablatable axes of a conflict-policy configuration.

A :class:`PolicyConfig` names one value per axis; the **baseline** is
the full system (every component on, the online-estimated regime
policy), and the run matrix is *baseline plus one component flipped* —
one configuration per alternative value of each axis, everything else
held at baseline (the aumai-ablation protocol).

=============  ==========  =============================================
axis           baseline    alternatives
=============  ==========  =============================================
``grace``      ``on``      ``off`` — no grace period, stock
                           requestor-wins (``NO_DELAY``)
``family``     ``regime``  ``det`` (Theorem 4's ``B/(k-1)``), ``rand``
                           (Theorem 5's uniform draw), ``greedy``
                           (the global-knowledge Greedy contention
                           manager, the non-paper comparison arm)
``b_growth``   ``on``      ``off`` — no Corollary 2 abort-cost growth
                           between retries
``estimator``  ``online``  ``offline`` (static profiled µ), ``oracle``
                           (exact µ from a calibration pass)
``fallback``   ``on``      ``off`` — never escalate to the lock-based
                           fallback path
=============  ==========  =============================================

Flip labels are ``axis=value`` strings (``grace=off``); the baseline's
label is ``baseline``.  :meth:`PolicyConfig.canonical` is the stable
sorted-key form that feeds cache keys and reports.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import InvalidParameterError

__all__ = [
    "Axis",
    "AXES",
    "BASELINE_LABEL",
    "PolicyConfig",
    "baseline_config",
    "config_from_flip",
    "flip_labels",
    "iter_flips",
]

#: The baseline row's flip label.
BASELINE_LABEL = "baseline"


@dataclass(frozen=True)
class Axis:
    """One ablatable component: its baseline value and alternatives."""

    name: str
    baseline: str
    alternatives: tuple[str, ...]
    doc: str = ""

    @property
    def values(self) -> tuple[str, ...]:
        return (self.baseline, *self.alternatives)


#: The axis registry, in matrix (and report) order.
AXES: tuple[Axis, ...] = (
    Axis("grace", "on", ("off",), "grace-period rule on conflict"),
    Axis(
        "family",
        "regime",
        ("det", "rand", "greedy"),
        "backoff family: regime-adaptive vs DET vs RAND vs greedy CM",
    ),
    Axis("b_growth", "on", ("off",), "Corollary 2 abort-cost growth"),
    Axis(
        "estimator",
        "online",
        ("offline", "oracle"),
        "(B, k, mu) estimate source for the regime policy",
    ),
    Axis("fallback", "on", ("off",), "lock-based fallback escalation"),
)

_AXES_BY_NAME = {axis.name: axis for axis in AXES}


@dataclass(frozen=True)
class PolicyConfig:
    """One point of the configuration space (one value per axis)."""

    grace: str = "on"
    family: str = "regime"
    b_growth: str = "on"
    estimator: str = "online"
    fallback: str = "on"

    def __post_init__(self) -> None:
        for f in fields(self):
            axis = _AXES_BY_NAME[f.name]
            value = getattr(self, f.name)
            if value not in axis.values:
                raise InvalidParameterError(
                    f"axis {f.name!r} has no value {value!r}; "
                    f"known: {', '.join(axis.values)}"
                )

    def canonical(self) -> dict[str, str]:
        """Stable sorted-key dict form (cache keys, reports)."""
        return {f.name: getattr(self, f.name) for f in sorted(
            fields(self), key=lambda f: f.name
        )}

    def flip_label(self) -> str:
        """``axis=value`` for a one-flip config, ``baseline`` for the
        baseline; multi-flip configs are rejected."""
        base = baseline_config()
        flips = [
            (f.name, getattr(self, f.name))
            for f in fields(self)
            if getattr(self, f.name) != getattr(base, f.name)
        ]
        if not flips:
            return BASELINE_LABEL
        if len(flips) > 1:
            raise InvalidParameterError(
                f"config flips {len(flips)} axes at once "
                f"({flips}); the matrix is baseline-plus-one-flip"
            )
        name, value = flips[0]
        return f"{name}={value}"


def baseline_config() -> PolicyConfig:
    """The full system: every axis at its baseline value."""
    return PolicyConfig()


def config_from_flip(label: str) -> PolicyConfig:
    """Parse a flip label (``baseline`` or ``axis=value``) to a config."""
    if label == BASELINE_LABEL:
        return baseline_config()
    name, sep, value = label.partition("=")
    if not sep or not name or not value:
        raise InvalidParameterError(
            f"malformed flip label {label!r}; expected "
            f"{BASELINE_LABEL!r} or 'axis=value'"
        )
    axis = _AXES_BY_NAME.get(name)
    if axis is None:
        raise InvalidParameterError(
            f"unknown ablation axis {name!r}; known: "
            f"{', '.join(a.name for a in AXES)}"
        )
    if value == axis.baseline:
        raise InvalidParameterError(
            f"{label!r} is the baseline value; use {BASELINE_LABEL!r}"
        )
    if value not in axis.alternatives:
        raise InvalidParameterError(
            f"axis {name!r} has no alternative {value!r}; known: "
            f"{', '.join(axis.alternatives)}"
        )
    return PolicyConfig(**{name: value})


def iter_flips() -> list[tuple[str, PolicyConfig]]:
    """The full matrix: ``(label, config)``, baseline first, then one
    entry per alternative value in axis order."""
    out = [(BASELINE_LABEL, baseline_config())]
    for axis in AXES:
        for value in axis.alternatives:
            out.append((f"{axis.name}={value}", PolicyConfig(**{axis.name: value})))
    return out


def flip_labels() -> list[str]:
    """All flip labels in matrix order (baseline included)."""
    return [label for label, _ in iter_flips()]
