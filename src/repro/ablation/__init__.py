"""Strategy-ablation engine with importance ranking.

The paper's results are driven by a handful of interacting policy
components — the grace-period rule, the backoff family, Corollary 2's
B-growth, the (B, k, µ) estimator, and the fallback path.  This package
answers *which component earns its keep*: it declares the ablatable
axes (:mod:`repro.ablation.axes`), generates the
baseline-plus-one-component-flipped run matrix over a workload set
(:mod:`repro.ablation.cells`), measures every cell on the HTM simulator
*and* the adversarial arenas (:mod:`repro.ablation.runner`), scores each
flip's importance with paired deltas and bootstrap confidence intervals
(:mod:`repro.ablation.score`), and renders schema-validated JSON / CSV /
Markdown reports (:mod:`repro.ablation.report`).

``python -m repro ablate`` (:mod:`repro.ablation.cli`) is the operator
entry point; each cell is addressable as an experiment id
(``ablate/<flip>/<workload>``) so the matrix executes through the
existing :class:`repro.parallel.ParallelExecutor` and the
content-addressed ``.repro-cache/`` — warm reruns replay every
unchanged cell.  See docs/ABLATION.md.
"""

from repro.ablation.axes import (
    AXES,
    PolicyConfig,
    baseline_config,
    config_from_flip,
    flip_labels,
    iter_flips,
)
from repro.ablation.cells import WORKLOADS, cell_id, parse_cell_id
from repro.ablation.runner import run_ablate_rank, run_ablation_cell
from repro.ablation.score import FlipScore, score_matrix

__all__ = [
    "AXES",
    "PolicyConfig",
    "baseline_config",
    "config_from_flip",
    "flip_labels",
    "iter_flips",
    "WORKLOADS",
    "cell_id",
    "parse_cell_id",
    "run_ablation_cell",
    "run_ablate_rank",
    "FlipScore",
    "score_matrix",
]
