"""Render the ablation matrix: JSON payload, CSV rows, Markdown ranking.

All three artifacts are pure functions of (rows, scores, run metadata):
no wall clock, no environment probes — the CI ``ablate`` job diffs a
cold-cache run against a warm rerun byte-for-byte, and the tests assert
the same identity across ``--jobs``.
"""

from __future__ import annotations

import io

from repro.ablation import axes
from repro.ablation.score import METRICS, FlipScore, rank_scores

__all__ = ["CSV_COLUMNS", "build_payload", "render_csv", "render_markdown"]

#: Raw replicate-row CSV column order.
CSV_COLUMNS = (
    "flip",
    "axis",
    "value",
    "workload",
    "rep",
    "ops_per_sec",
    "abort_rate",
    "fallback_share",
    "ratio_vs_opt",
    "attempts_p90",
)

#: Schema version of the ``BENCH_ablate.json`` payload.
SCHEMA_VERSION = 1


def _fmt(value) -> str:
    """Byte-stable cell text: shortest-repr floats, plain ints/strs."""
    if isinstance(value, float):
        return repr(value)
    return str(value)


def build_payload(
    rows,
    scores: list[FlipScore],
    *,
    workloads,
    replicates: int,
    quick: bool,
    seed: int | None,
) -> dict:
    """The ``BENCH_ablate.json`` document (``benchmarks/schema.py`` kind
    ``"ablate"``)."""
    ranked = rank_scores(scores)
    baseline: dict[str, dict[str, float]] = {}
    for workload in workloads:
        cell = [
            r for r in rows
            if r["flip"] == axes.BASELINE_LABEL and r["workload"] == workload
        ]
        if not cell:
            continue
        baseline[workload] = {
            spec.name: float(
                sum(float(r[spec.name]) for r in cell) / len(cell)
            )
            for spec in METRICS
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "ablate",
        "generated_by": "repro.ablation",
        "quick": bool(quick),
        "seed": -1 if seed is None else int(seed),
        "workloads": list(workloads),
        "replicates": int(replicates),
        "n_rows": len(rows),
        "baseline_config": axes.baseline_config().canonical(),
        "baseline": baseline,
        "ranking": [
            {
                "rank": rank,
                "flip": s.flip,
                "axis": s.axis,
                "value": s.value,
                "importance": s.importance,
                "n_pairs": s.n_pairs,
                "metrics": s.metrics,
            }
            for rank, s in enumerate(ranked, start=1)
        ],
    }


def render_csv(rows) -> str:
    """The raw replicate rows as CSV (deterministic column and row order:
    rows are emitted exactly as generated — flip-matrix order)."""
    out = io.StringIO()
    out.write(",".join(CSV_COLUMNS) + "\n")
    for row in rows:
        out.write(",".join(_fmt(row[c]) for c in CSV_COLUMNS) + "\n")
    return out.getvalue()


def render_markdown(payload: dict) -> str:
    """The importance-ranking report (docs/ABLATION.md defines the
    metrics and the normalization)."""
    lines: list[str] = []
    lines.append("# Ablation importance ranking")
    lines.append("")
    mode = "quick" if payload["quick"] else "full"
    seed = payload["seed"]
    lines.append(
        f"Matrix: baseline + {len(payload['ranking'])} one-component flips "
        f"over workloads {', '.join(payload['workloads'])} "
        f"({payload['replicates']} replicates, seed {seed}, {mode} mode)."
    )
    base_cfg = " ".join(
        f"{k}={v}" for k, v in payload["baseline_config"].items()
    )
    lines.append("")
    lines.append(f"Baseline configuration: `{base_cfg}`")
    lines.append("")
    lines.append(
        "Importance = mean |normalized delta| across the metric set "
        "(relative deltas for scale metrics, absolute for rates); "
        "brackets are seeded-bootstrap 95% CIs over paired "
        "(workload, replicate) deltas.  See docs/ABLATION.md."
    )
    lines.append("")
    header = ["rank", "flip", "importance"] + [
        f"d {spec.name}" for spec in METRICS
    ]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for entry in payload["ranking"]:
        cells = [str(entry["rank"]), f"`{entry['flip']}`",
                 f"{entry['importance']:.4f}"]
        for spec in METRICS:
            m = entry["metrics"][spec.name]
            cells.append(
                f"{m['delta']:+.4f} [{m['ci_lo']:+.4f}, {m['ci_hi']:+.4f}]"
            )
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    lines.append("## Baseline reference")
    lines.append("")
    bheader = ["workload"] + [spec.name for spec in METRICS]
    lines.append("| " + " | ".join(bheader) + " |")
    lines.append("|" + "|".join("---" for _ in bheader) + "|")
    for workload in payload["workloads"]:
        base = payload["baseline"].get(workload)
        if base is None:
            continue
        cells = [workload] + [f"{base[spec.name]:.4f}" for spec in METRICS]
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)
